#!/usr/bin/env python
"""Micro-benchmark harness for the force-kernel backends.

Times the engine's hot loops — neighbor-list build, LJ/EAM/granular
force evaluation, the LJ force-accumulation scatter, and a full LJ-melt
timestep — at 4k and 32k atoms for every registered kernel backend,
and writes the measurements to ``BENCH_kernels.json`` at the repo root.
That file seeds the repo's tracked performance trajectory: re-run after
kernel work and diff the ``speedups`` section.

Usage::

    python benchmarks/bench_kernels.py            # full run (~minutes)
    python benchmarks/bench_kernels.py --quick    # 4k atoms only (CI smoke)
    python benchmarks/bench_kernels.py --out PATH # custom output location
    python benchmarks/bench_kernels.py --trace DIR # also write Chrome
                                                   # traces of the
                                                   # full-step sections

The harness is a plain script (not a pytest module) so it can run
without the test extras installed.
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.md.kernels import (  # noqa: E402
    available_backends,
    backend_diagnostics,
    get_backend,
    resolve_auto_backend,
)
from repro.md.kernels.compiled import (  # noqa: E402
    compiled_available,
    provider_info,
)
from repro.md.lattice import (  # noqa: E402
    chute_system,
    eam_solid_system,
    lj_melt_system,
)
from repro.md.neighbor import NeighborList  # noqa: E402
from repro.observability.telemetry import (  # noqa: E402
    TelemetrySampler,
    detect_provider,
    platform_provenance,
)
from repro.platforms.power import MIN_RUN_SECONDS  # noqa: E402
from repro.report import (  # noqa: E402
    energy_provenance,
    make_report,
    platform_info,
)
from repro.md.potentials.eam import EAMAlloy  # noqa: E402
from repro.md.potentials.granular import HookeHistory  # noqa: E402
from repro.md.potentials.lj import LennardJonesCut  # noqa: E402
from repro.md.simulation import Simulation  # noqa: E402

#: The acceptance bar for the optimized backend on the 32k-atom LJ
#: force-accumulation micro-benchmark (vs the numpy_ref oracle).
ACCUMULATE_SPEEDUP_THRESHOLD = 3.0

#: Acceptance bars for the compiled backend vs numpy_fast at 32k LJ.
COMPILED_ACCUMULATE_THRESHOLD = 5.0
COMPILED_NEIGH_THRESHOLD = 3.0


def _timed(fn, reps: int, *, setup=None, warmup: int = 1) -> dict:
    """Best/mean wall-clock of ``reps`` calls (plus warmup calls)."""
    # The compiled backend JIT-compiles (numba) or builds its native
    # library (cc) on first use; skipping warmup would charge that
    # one-time cost to the measurement, so the guard is unconditional.
    assert warmup >= 1, "warmup must stay >= 1 (JIT/compile on first call)"
    if setup is not None:
        setup()
    for _ in range(warmup):  # warmup: JIT, scratch allocation, caches
        fn()
    times = []
    for _ in range(reps):
        if setup is not None:
            setup()
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return {
        "best_s": min(times),
        "mean_s": sum(times) / len(times),
        "reps": reps,
    }


def _record(results: list, verbose: bool, **entry) -> None:
    results.append(entry)
    if verbose:
        backend = entry.get("backend") or "-"
        print(
            f"  {entry['group']:<12} {entry['benchmark']:<8} "
            f"n={entry['n_atoms']:<6} {backend:<10} "
            f"best={entry['best_s'] * 1e3:9.2f} ms",
            flush=True,
        )


# ---------------------------------------------------------------------------
# Benchmark system builders: (system, neighbor kwargs, potential factory)
# ---------------------------------------------------------------------------
def _lj_case(n: int):
    system = lj_melt_system(n, seed=12345)
    return system, dict(cutoff=2.5, skin=0.3), lambda: LennardJonesCut(cutoff=2.5)


def _eam_case(n: int):
    system = eam_solid_system(n, seed=777)
    return system, dict(cutoff=4.95, skin=1.0), EAMAlloy


def _granular_case(n: int):
    layers = 4
    side = max(2, round(math.sqrt(n / layers)))
    system = chute_system(side, side, layers, seed=999)
    return (
        system,
        dict(cutoff=1.0, skin=0.1, full=True),
        lambda: HookeHistory(dt=1e-4),
    )


_CASES = {"lj": _lj_case, "eam": _eam_case, "granular": _granular_case}


def run(
    sizes: list[int],
    *,
    quick: bool,
    verbose: bool = True,
    trace_dir: Path | None = None,
) -> dict:
    # Skip "compiled" when no provider works: get_backend would fall
    # back to numpy_fast and the entries would be mislabeled.
    backends = tuple(
        name
        for name in available_backends()
        if name != "compiled" or compiled_available()
    )
    results: list[dict] = []
    eval_reps = 2 if quick else 3
    step_reps = 3 if quick else 5

    for n in sizes:
        for bench, case in _CASES.items():
            system, nl_kwargs, make_potential = case(n)
            n_atoms = system.n_atoms
            if verbose:
                print(f"[{bench} n={n_atoms}]", flush=True)

            # -- Neigh: list construction, cell path (and the brute-force
            # path where it is tractable).
            nlist = NeighborList(
                nl_kwargs["cutoff"],
                nl_kwargs["skin"],
                full=nl_kwargs.get("full", False),
                brute_force_max=0,
            )
            timing = _timed(lambda: nlist.build(system), reps=1)
            _record(
                results, verbose,
                group="neigh_build", benchmark=bench, n_atoms=n_atoms,
                backend="numpy_fast", variant="cell", pairs=len(nlist.pair_i),
                **timing,
            )
            if "compiled" in backends:
                fast = NeighborList(
                    nl_kwargs["cutoff"],
                    nl_kwargs["skin"],
                    full=nl_kwargs.get("full", False),
                    brute_force_max=0,
                )
                fast.kernels = get_backend("compiled")
                timing = _timed(lambda: fast.build(system), reps=1)
                _record(
                    results, verbose,
                    group="neigh_build", benchmark=bench, n_atoms=n_atoms,
                    backend="compiled", variant="cell",
                    pairs=len(fast.pair_i), **timing,
                )
            if n_atoms <= 8192:
                brute = NeighborList(
                    nl_kwargs["cutoff"],
                    nl_kwargs["skin"],
                    full=nl_kwargs.get("full", False),
                    brute_force_max=10**9,
                )
                timing = _timed(lambda: brute.build(system), reps=1)
                _record(
                    results, verbose,
                    group="neigh_build", benchmark=bench, n_atoms=n_atoms,
                    backend=None, variant="brute_force",
                    pairs=len(brute.pair_i), **timing,
                )

            # -- Pair: full force evaluation on each backend.
            for backend_name in backends:
                potential = make_potential()
                potential.backend = get_backend(backend_name)

                def eval_forces():
                    system.forces[:] = 0.0
                    if system.torques is not None:
                        system.torques[:] = 0.0
                    potential.compute(system, nlist)

                timing = _timed(eval_forces, reps=eval_reps)
                _record(
                    results, verbose,
                    group="force_eval", benchmark=bench, n_atoms=n_atoms,
                    backend=backend_name, pairs=len(nlist.pair_i), **timing,
                )

            # -- LJ extras: the accumulation micro-benchmark and a full
            # timestep (the acceptance-tracked numbers).
            if bench != "lj":
                continue

            ref = get_backend("numpy_ref")
            i, j, dr, r = ref.current_pairs(system, nlist, nl_kwargs["cutoff"])
            lj = make_potential()
            _, f_over_r = lj.pair_terms(r, r * r, None, None, None, None)
            forces = np.zeros_like(system.forces)
            for backend_name in backends:
                backend = get_backend(backend_name)
                timing = _timed(
                    lambda: backend.accumulate_scaled_pair_forces(
                        forces, i, j, dr, f_over_r
                    ),
                    reps=eval_reps + 2,
                )
                _record(
                    results, verbose,
                    group="accumulate", benchmark=bench, n_atoms=n_atoms,
                    backend=backend_name, pairs=len(i), **timing,
                )

            for backend_name in backends:
                sim = Simulation(
                    lj_melt_system(n, seed=12345),
                    [LennardJonesCut(cutoff=2.5)],
                    dt=0.005,
                    skin=0.3,
                    backend=backend_name,
                )
                if trace_dir is not None:
                    from repro.observability import Tracer

                    sim.attach_tracer(Tracer())
                sim.setup()
                # Time fresh post-setup steps: no rebuild lands inside
                # the window (half-skin takes ~25 melt steps to cross).
                timing = _timed(sim.step, reps=step_reps)
                # Measured energy over a separate stepping window.  Full
                # runs keep stepping until the window clears the power
                # methodology's 10 s floor, so the record loses its
                # power_under_sampled flag; quick (CI) runs stay short
                # and keep the flag honestly true.
                sampler = TelemetrySampler(detect_provider())
                sampler.start()
                window0 = time.perf_counter()
                energy_steps = 0
                while True:
                    for _ in range(step_reps):
                        sim.step()
                    energy_steps += step_reps
                    if quick or (
                        time.perf_counter() - window0 >= MIN_RUN_SECONDS
                    ):
                        break
                sampler.stop()
                _record(
                    results, verbose,
                    group="full_step", benchmark=bench, n_atoms=sim.system.n_atoms,
                    backend=backend_name, pairs=len(sim.neighbor.pair_i),
                    energy=sampler.summary(steps=energy_steps),
                    energy_steps=energy_steps,
                    **timing,
                )
                if trace_dir is not None:
                    path = sim.tracer.write_chrome_trace(
                        trace_dir / f"full_step_{bench}_n{n_atoms}_{backend_name}.json",
                        process_name=f"bench:{bench}:{backend_name}",
                    )
                    if verbose:
                        print(f"  trace -> {path}", flush=True)

    return make_report(
        "kernels",
        backend={
            "requested": list(backends),
            "resolved": list(backends),
            "auto_resolves_to": resolve_auto_backend(),
        },
        precision="double",
        energy=energy_provenance(),
        platform=platform_info(
            numba=_numba_version(),
            kernel_backends=backend_diagnostics(),
            compiled_provider=provider_info(),
            telemetry=platform_provenance(),
        ),
        quick=quick,
        requested_sizes=sizes,
        backends=list(backends),
        kernel_backend_auto=resolve_auto_backend(),
        results=results,
        speedups=_speedups(results),
    )


def _numba_version() -> str | None:
    try:
        import numba

        return numba.__version__
    except ImportError:
        return None


def _speedups(results: list[dict]) -> list[dict]:
    """Backend ratios for every (group, benchmark, n_atoms) pairing:
    fast-over-ref, and compiled-over-fast when the compiled backend
    produced timings."""
    keyed: dict[tuple, dict[str, float]] = {}
    for entry in results:
        if entry.get("backend") is None:
            continue
        # The cell/brute neigh_build variants are different algorithms,
        # not different backends; only compare cell against cell.
        if entry.get("variant") not in (None, "cell"):
            continue
        key = (entry["group"], entry["benchmark"], entry["n_atoms"])
        keyed.setdefault(key, {})[entry["backend"]] = entry["best_s"]
    out = []
    for (group, bench, n_atoms), per_backend in sorted(keyed.items()):
        row = {"group": group, "benchmark": bench, "n_atoms": n_atoms}
        if {"numpy_ref", "numpy_fast"} <= set(per_backend):
            row["speedup_fast_over_ref"] = (
                per_backend["numpy_ref"] / per_backend["numpy_fast"]
            )
        if {"numpy_fast", "compiled"} <= set(per_backend):
            row["speedup_compiled_over_fast"] = (
                per_backend["numpy_fast"] / per_backend["compiled"]
            )
        if len(row) > 3:
            out.append(row)
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="4k atoms only with fewer repetitions (CI smoke test)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_kernels.json",
        help="output JSON path (default: BENCH_kernels.json at repo root)",
    )
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="DIR",
        help="also write Chrome traces of the full-step sections to DIR",
    )
    args = parser.parse_args(argv)

    # Fail on an unwritable destination now, not after minutes of timing.
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.touch()
    if args.trace is not None:
        args.trace.mkdir(parents=True, exist_ok=True)

    sizes = [4096] if args.quick else [4096, 32768]
    report = run(sizes, quick=args.quick, trace_dir=args.trace)

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    failures = []
    for entry in report["speedups"]:
        ratios = ", ".join(
            f"{key.split('speedup_')[1]}={entry[key]:.2f}x"
            for key in ("speedup_fast_over_ref", "speedup_compiled_over_fast")
            if key in entry
        )
        print(
            f"speedup {entry['group']}/{entry['benchmark']}"
            f"/n{entry['n_atoms']}: {ratios}"
        )
        if args.quick or entry["n_atoms"] < 32_000:
            continue
        fast_over_ref = entry.get("speedup_fast_over_ref")
        compiled_over_fast = entry.get("speedup_compiled_over_fast")
        if (
            entry["group"] == "accumulate"
            and fast_over_ref is not None
            and fast_over_ref < ACCUMULATE_SPEEDUP_THRESHOLD
        ):
            failures.append(
                f"32k LJ accumulation fast-over-ref "
                f"{fast_over_ref:.2f}x < {ACCUMULATE_SPEEDUP_THRESHOLD:.0f}x"
            )
        if entry["benchmark"] != "lj" or compiled_over_fast is None:
            continue
        if (
            entry["group"] == "accumulate"
            and compiled_over_fast < COMPILED_ACCUMULATE_THRESHOLD
        ):
            failures.append(
                f"32k LJ accumulation compiled-over-fast "
                f"{compiled_over_fast:.2f}x < {COMPILED_ACCUMULATE_THRESHOLD:.0f}x"
            )
        if (
            entry["group"] == "neigh_build"
            and compiled_over_fast < COMPILED_NEIGH_THRESHOLD
        ):
            failures.append(
                f"32k LJ neighbor build compiled-over-fast "
                f"{compiled_over_fast:.2f}x < {COMPILED_NEIGH_THRESHOLD:.0f}x"
            )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
