#!/usr/bin/env python
"""Measured precision-mode benchmark for the real engine (Fig. 15).

Runs the LJ and Rhodopsin suite benchmarks through the engine's
:class:`~repro.md.precision.PrecisionPolicy` modes (single / mixed /
double) with identical seeds and measures what the paper's Section 8
plots from hardware:

* **throughput** — timesteps/second per mode (LJ at 32k atoms, where
  the single > mixed > double ordering is resolvable above timer noise);
* **drift** — long-run total-energy drift per atom over 2000 NVE steps,
  the accuracy cost of each mode (MIXED must stay within ~2x of
  DOUBLE's discretization drift; SINGLE drifts measurably);
* **oracle error** — relative force error of the production
  ``numpy_fast`` backend in each mode against the float64 ``numpy_ref``
  oracle, asserting the per-mode tolerance tiers (1e-12 / 1e-5 / 1e-4).

Results land in ``BENCH_precision.json`` at the repo root — the
measured companion to the modeled ``benchmarks/test_fig15_precision_cpu.py``.

Usage::

    python benchmarks/bench_precision.py           # full run (~10 min)
    python benchmarks/bench_precision.py --smoke   # small LJ only (CI)
    python benchmarks/bench_precision.py --out PATH
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.md.kernels import (  # noqa: E402
    backend_spec,
    get_backend,
    resolve_auto_backend,
)
from repro.observability.telemetry import (  # noqa: E402
    TelemetrySampler,
    detect_provider,
    platform_provenance,
)
from repro.platforms.power import MIN_RUN_SECONDS  # noqa: E402
from repro.report import (  # noqa: E402
    energy_provenance,
    make_report,
    platform_info,
)
from repro.suite import get_benchmark  # noqa: E402

MODES = ("single", "mixed", "double")

#: Per-mode relative force-error ceilings of numpy_fast vs the float64
#: numpy_ref oracle (the acceptance tiers; also PrecisionPolicy.force_rtol).
ORACLE_TOLERANCES = {"double": 1e-12, "mixed": 1e-5, "single": 1e-4}

#: MIXED's energy drift must stay within this factor of DOUBLE's.
MIXED_DRIFT_FACTOR = 2.0


def _throughput(bench_name: str, n_atoms: int, *, warmup: int, steps: int,
                verbose: bool, reps: int = 2,
                min_seconds: float = 0.0) -> list[dict]:
    """Timesteps/second per mode on identically seeded systems.

    Best of ``reps`` timed blocks — container schedulers routinely
    steal 5-10% of one block, which is the size of the mixed-vs-double
    gap the acceptance check rides on.  With ``min_seconds`` (full
    runs), extra untimed blocks keep the telemetry window open past the
    power methodology's 10 s floor, so the energy record sheds its
    ``power_under_sampled`` flag without touching the best-of timing.
    """
    out = []
    for mode in MODES:
        bench = get_benchmark(bench_name)
        sim = bench.build(n_atoms)
        sim.set_precision(mode)
        sim.setup()
        sim.run(warmup)
        wall = float("inf")
        # One telemetry window spans all reps: the sampler integrates
        # joules over identical steps, which averages out scheduler
        # noise the same way best-of-reps does for wall time.
        sampler = TelemetrySampler(detect_provider()).start()
        window0 = time.perf_counter()
        sampled_steps = 0
        for _ in range(reps):
            tick = time.perf_counter()
            sim.run(steps)
            wall = min(wall, time.perf_counter() - tick)
            sampled_steps += steps
        while time.perf_counter() - window0 < min_seconds:
            sim.run(steps)
            sampled_steps += steps
        sampler.stop()
        power = sampler.summary(steps=sampled_steps)
        ts_per_s = steps / wall
        entry = {
            "group": "throughput",
            "benchmark": bench_name,
            "n_atoms": sim.system.n_atoms,
            "mode": mode,
            "steps": steps,
            "reps": reps,
            "energy_steps": sampled_steps,
            "wall_s": wall,
            "ts_per_s": ts_per_s,
            "energy": float(sim.total_energy()),
            "joules_per_step": power["joules_per_step"],
            "mean_watts": power["mean_watts"],
            "ts_per_s_per_watt": (
                ts_per_s / power["mean_watts"]
                if power["mean_watts"] > 0
                else 0.0
            ),
            "power_provider": power["provider"],
            "power_provider_kind": power["kind"],
            "power_under_sampled": power["under_sampled"],
        }
        out.append(entry)
        if verbose:
            print(f"  throughput {bench_name:<6} n={entry['n_atoms']:<6} "
                  f"{mode:<6} {entry['ts_per_s']:8.3f} TS/s", flush=True)
    return out


def _drift(bench_name: str, n_atoms: int, *, steps: int, sample_every: int,
           verbose: bool) -> list[dict]:
    """Max |E(t) - E(0)| per atom over a long NVE run, per mode."""
    out = []
    for mode in MODES:
        bench = get_benchmark(bench_name)
        sim = bench.build(n_atoms)
        sim.set_precision(mode)
        sim.setup()
        e0 = float(sim.total_energy())
        worst = 0.0
        done = 0
        while done < steps:
            n = min(sample_every, steps - done)
            sim.run(n)
            done += n
            worst = max(worst, abs(float(sim.total_energy()) - e0))
        entry = {
            "group": "drift",
            "benchmark": bench_name,
            "n_atoms": sim.system.n_atoms,
            "mode": mode,
            "steps": steps,
            "initial_energy": e0,
            "final_energy": float(sim.total_energy()),
            "max_drift_per_atom": worst / sim.system.n_atoms,
        }
        out.append(entry)
        if verbose:
            print(f"  drift      {bench_name:<6} n={entry['n_atoms']:<6} "
                  f"{mode:<6} max|dE|/atom = "
                  f"{entry['max_drift_per_atom']:.3e}", flush=True)
    return out


def _oracle_error(n_atoms: int, *, verbose: bool, evolve_steps: int = 10
                  ) -> list[dict]:
    """numpy_fast force error vs the float64 numpy_ref oracle, per mode.

    Each mode evolves its own trajectory a few steps off the initial
    lattice (whose symmetric net-zero forces would make relative error
    meaningless), then the float64 reference backend re-evaluates forces
    on *that exact configuration*.  The reported number is the global
    relative RMS error — purely the cost of the mode's dtype policy
    (storage rounding + compute rounding), not trajectory divergence.
    """
    out = []
    for mode in MODES:
        bench = get_benchmark("lj")
        sim = bench.build(n_atoms)
        sim.set_precision(mode)
        sim.setup()
        sim.run(evolve_steps)
        forces = sim.system.forces.astype(np.float64)

        ref_sim = bench.build(n_atoms)
        ref_sim.set_backend(get_backend("numpy_ref"))
        ref_sim.system.positions[...] = sim.system.positions.astype(np.float64)
        ref_sim.setup()
        ref_forces = np.asarray(ref_sim.system.forces, dtype=np.float64)

        err = float(
            np.linalg.norm(forces - ref_forces) / np.linalg.norm(ref_forces)
        )
        entry = {
            "group": "oracle_error",
            "benchmark": "lj",
            "n_atoms": sim.system.n_atoms,
            "mode": mode,
            "rel_force_error": err,
            "tolerance": ORACLE_TOLERANCES[mode],
        }
        out.append(entry)
        if verbose:
            print(f"  oracle     lj     n={entry['n_atoms']:<6} {mode:<6} "
                  f"rel |dF| = {err:.3e} (tol {entry['tolerance']:.0e})",
                  flush=True)
    return out


def run(*, smoke: bool, verbose: bool = True) -> dict:
    results: list[dict] = []
    if smoke:
        results += _throughput("lj", 2048, warmup=3, steps=10, verbose=verbose)
        results += _drift("lj", 2048, steps=200, sample_every=50,
                          verbose=verbose)
        results += _oracle_error(2048, verbose=verbose)
    else:
        results += _throughput("lj", 32768, warmup=5, steps=20,
                               verbose=verbose,
                               min_seconds=MIN_RUN_SECONDS)
        results += _throughput("rhodo", 2000, warmup=2, steps=8,
                               verbose=verbose,
                               min_seconds=MIN_RUN_SECONDS)
        results += _drift("lj", 4096, steps=2000, sample_every=100,
                          verbose=verbose)
        results += _drift("rhodo", 2000, steps=100, sample_every=25,
                          verbose=verbose)
        results += _oracle_error(4096, verbose=verbose)
    return make_report(
        "precision",
        # Thresholds here are calibrated on the default backend; the
        # record still names what `auto` would pick on this host.
        backend={
            "requested": "default",
            "resolved": backend_spec(get_backend(None)),
            "auto_resolves_to": resolve_auto_backend(),
        },
        precision=list(MODES),
        energy=energy_provenance(),
        platform=platform_info(telemetry=platform_provenance()),
        smoke=smoke,
        modes=list(MODES),
        results=results,
        summary=_summary(results),
    )


def _summary(results: list[dict]) -> dict:
    """The acceptance-tracked ratios, keyed for easy diffing."""
    ts = {
        (e["benchmark"], e["mode"]): e["ts_per_s"]
        for e in results
        if e["group"] == "throughput"
    }
    drift = {
        (e["benchmark"], e["mode"]): e["max_drift_per_atom"]
        for e in results
        if e["group"] == "drift"
    }
    summary: dict = {"speedup_single_over_double": {},
                     "speedup_mixed_over_double": {},
                     "drift_ratio_mixed_over_double": {},
                     "drift_ratio_single_over_double": {}}
    for bench in {b for b, _ in ts}:
        summary["speedup_single_over_double"][bench] = (
            ts[(bench, "single")] / ts[(bench, "double")]
        )
        summary["speedup_mixed_over_double"][bench] = (
            ts[(bench, "mixed")] / ts[(bench, "double")]
        )
    for bench in {b for b, _ in drift}:
        base = drift[(bench, "double")] or np.finfo(np.float64).tiny
        summary["drift_ratio_mixed_over_double"][bench] = (
            drift[(bench, "mixed")] / base
        )
        summary["drift_ratio_single_over_double"][bench] = (
            drift[(bench, "single")] / base
        )
    return summary


def check(report: dict, *, smoke: bool) -> list[str]:
    """Acceptance assertions; returns human-readable failure strings."""
    failures: list[str] = []
    by_mode = {
        (e["group"], e["benchmark"], e["mode"]): e for e in report["results"]
    }

    # Ordering: single >= mixed > double on the LJ throughput case.
    # (The smoke system is small enough that single vs mixed can land
    # inside timer noise, so the smoke run only checks finiteness and
    # the oracle tiers; the full 32k run enforces the ordering.)
    for e in report["results"]:
        if e["group"] == "throughput" and not np.isfinite(e["energy"]):
            failures.append(
                f"{e['benchmark']}/{e['mode']}: non-finite energy"
            )
    if not smoke:
        ts = {m: by_mode[("throughput", "lj", m)]["ts_per_s"] for m in MODES}
        if not ts["single"] >= ts["mixed"]:
            failures.append(
                f"lj throughput: single ({ts['single']:.3f} TS/s) slower "
                f"than mixed ({ts['mixed']:.3f} TS/s)"
            )
        if not ts["mixed"] > ts["double"]:
            failures.append(
                f"lj throughput: mixed ({ts['mixed']:.3f} TS/s) not above "
                f"double ({ts['double']:.3f} TS/s)"
            )
        # MIXED accuracy: drift within ~2x of double's discretization
        # drift over the 2000-step LJ run, while single drifts measurably.
        d = {
            m: by_mode[("drift", "lj", m)]["max_drift_per_atom"]
            for m in MODES
        }
        if d["mixed"] > MIXED_DRIFT_FACTOR * d["double"]:
            failures.append(
                f"lj drift: mixed {d['mixed']:.3e} exceeds "
                f"{MIXED_DRIFT_FACTOR:.0f}x double {d['double']:.3e}"
            )
        if not d["single"] > d["double"]:
            failures.append(
                f"lj drift: single {d['single']:.3e} not above double "
                f"{d['double']:.3e}"
            )

    # Oracle tiers hold in every run, smoke included.
    for e in report["results"]:
        if e["group"] != "oracle_error":
            continue
        if e["rel_force_error"] > e["tolerance"]:
            failures.append(
                f"oracle {e['mode']}: rel force error "
                f"{e['rel_force_error']:.3e} > {e['tolerance']:.0e}"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small LJ-only run asserting finite energies and the "
             "per-mode oracle tolerances (CI)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_precision.json",
        help="output JSON path (default: BENCH_precision.json at repo root)",
    )
    args = parser.parse_args(argv)

    # Fail on an unwritable destination now, not after minutes of timing.
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.touch()

    report = run(smoke=args.smoke)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    for key, per_bench in report["summary"].items():
        for bench, value in sorted(per_bench.items()):
            print(f"{key}[{bench}]: {value:.3f}")

    failures = check(report, smoke=args.smoke)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
