#!/usr/bin/env python
"""Strong-scaling benchmark for the shared-memory parallel engine.

Measures the real domain-decomposed multiprocessing executor
(:class:`repro.parallel.engine.ParallelForceExecutor`) against the
serial engine on the 32k-atom LJ melt at 1/2/4 workers, and checks
serial/parallel force parity on all five paper benchmarks.  Results go
to ``BENCH_scaling.json`` at the repo root — the tracked strong-scaling
record this repo's perf trajectory diffs against.

Timing methodology (single-core CI containers are the norm here):

* Every run takes ``--warmup`` untimed steps first, so the one-off
  initial neighbor build and scratch growth never land in the window.
* ``wall_s_per_step`` is honest wall clock.  On a host with fewer cores
  than workers it serializes and says nothing about scaling.
* ``critical_path_s_per_step`` models the step latency with true
  concurrency: master CPU per step plus the slowest worker's CPU per
  step (pair evaluation + amortized domain rebuilds).  CPU time is
  scheduling-invariant, so this metric is stable on a time-sliced box.
* ``force-path`` speedup compares only the work the engine
  parallelizes — serial (Pair + Neigh) CPU against the slowest worker's
  (pair + rebuild) CPU — isolating decomposition quality from the
  fixed master-side integration cost.

Usage::

    python benchmarks/bench_scaling.py            # full run (~2 min)
    python benchmarks/bench_scaling.py --quick    # 4k LJ, 2 workers (CI)
    python benchmarks/bench_scaling.py --out PATH # custom output location

The harness is a plain script (not a pytest module) so it can run
without the test extras installed.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.md.kernels import (  # noqa: E402
    AUTO_BACKEND,
    BACKEND_ENV_VAR,
    available_backends,
    backend_diagnostics,
    backend_spec,
    get_backend,
    resolve_auto_backend,
)
from repro.md.kernels.compiled import (  # noqa: E402
    compiled_available,
    provider_info,
)
from repro.observability.telemetry import (  # noqa: E402
    TelemetrySampler,
    detect_provider,
    platform_provenance,
)
from repro.platforms.power import MIN_RUN_SECONDS  # noqa: E402
from repro.parallel.engine import ParallelForceExecutor  # noqa: E402
from repro.report import (  # noqa: E402
    energy_provenance,
    make_report,
    platform_info,
)
from repro.suite import get_benchmark  # noqa: E402

#: Acceptance bar: 4-worker critical-path speedup on the 32k-atom LJ
#: melt (vs the serial engine's steady-state CPU per step).  Both
#: speedup bars are calibrated on the numpy_fast backend and are only
#: enforced there: a faster serial backend (compiled) shrinks the
#: parallelizable Pair/Neigh fraction, so its ratios are reported but
#: judged against no fixed floor.
SCALING_SPEEDUP_THRESHOLD = 1.8

#: CI smoke floor: 2-worker force-path speedup on the small LJ case.
#: The owner-computes directed scheme pays 2x pair math, so 2 workers
#: roughly break even on pair work and win only on the neighbor task;
#: the band tolerates timer noise on shared CI runners.
SMOKE_SPEEDUP_FLOOR = 0.75

#: Serial/parallel agreement required on forces (max abs component).
PARITY_TOLERANCE = 1e-10

#: Small per-benchmark sizes for the five-benchmark parity sweep.
PARITY_SIZES = {"lj": 2048, "chain": 2000, "eam": 1372, "rhodo": 1000, "chute": 1800}


def _energy_fields(sampler: TelemetrySampler, steps: int) -> dict:
    """The joules/provider tags every measured window carries."""
    summary = sampler.summary(steps=steps)
    return {
        "joules_per_step": summary["joules_per_step"],
        "mean_watts": summary["mean_watts"],
        "ts_per_s_per_watt": summary["ts_per_s_per_watt"],
        "power_provider": summary["provider"],
        "power_provider_kind": summary["kind"],
        "power_under_sampled": summary["under_sampled"],
    }


def _serial_window(sim, steps: int, min_seconds: float = 0.0) -> dict:
    """Time >= ``steps`` steps; keep stepping until ``min_seconds``.

    The extension is what lets full (non-quick) runs clear the power
    methodology's 10 s floor instead of shipping every energy record
    flagged ``power_under_sampled``; per-step figures divide by the
    steps actually taken, so the timing semantics are unchanged.
    """
    timers0 = dict(sim.timers.seconds)
    builds0 = sim.neighbor.stats.n_builds
    sampler = TelemetrySampler(detect_provider()).start()
    wall0, cpu0 = time.perf_counter(), time.process_time()
    done = 0
    while True:
        for _ in range(steps):
            sim.step()
        done += steps
        if time.perf_counter() - wall0 >= min_seconds:
            break
    wall1, cpu1 = time.perf_counter(), time.process_time()
    sampler.stop()
    tasks = {k: sim.timers.seconds[k] - timers0[k] for k in timers0}
    return {
        "wall_s_per_step": (wall1 - wall0) / done,
        "cpu_s_per_step": (cpu1 - cpu0) / done,
        "pair_s_per_step": tasks["Pair"] / done,
        "neigh_s_per_step": tasks["Neigh"] / done,
        "builds": sim.neighbor.stats.n_builds - builds0,
        "steps_measured": done,
        **_energy_fields(sampler, done),
    }


def _serial_case(
    name: str, n_atoms: int, warmup: int, steps: int, windows: int,
    backend: str | None = None, min_seconds: float = 0.0,
):
    sim = get_benchmark(name).build(n_atoms)
    if backend is not None:
        sim.set_backend(backend)
    sim.setup()
    for _ in range(warmup):
        sim.step()
    samples = [
        _serial_window(sim, steps, min_seconds) for _ in range(windows)
    ]
    # Best (minimum-CPU) window: on a time-sliced host, contention only
    # ever inflates CPU time, so the minimum is the honest estimate.
    best = dict(min(samples, key=lambda s: s["cpu_s_per_step"]))
    best["steps"] = steps
    best["warmup"] = warmup
    best["windows"] = windows
    best["window_cpu_s_per_step"] = [s["cpu_s_per_step"] for s in samples]
    return sim, best


def _parallel_window(
    sim, executor, steps: int, min_seconds: float = 0.0
) -> dict:
    executor.reset_timings()
    sampler = TelemetrySampler(detect_provider()).start()
    wall0, cpu0 = time.perf_counter(), time.process_time()
    done = 0
    while True:
        for _ in range(steps):
            sim.step()
        done += steps
        if time.perf_counter() - wall0 >= min_seconds:
            break
    wall1, cpu1 = time.perf_counter(), time.process_time()
    sampler.stop()
    steps = done
    measured = max(1, executor.steps_measured)
    master_cpu = (cpu1 - cpu0) / steps
    pair_cpu = executor.worker_pair_cpu_seconds / measured
    neigh_cpu = executor.worker_neigh_cpu_seconds / measured
    critical = master_cpu + float((pair_cpu + neigh_cpu).max())
    return {
        "wall_s_per_step": (wall1 - wall0) / steps,
        "master_cpu_s_per_step": master_cpu,
        "worker_pair_cpu_s_per_step": pair_cpu.tolist(),
        "worker_neigh_cpu_s_per_step": neigh_cpu.tolist(),
        "critical_path_s_per_step": critical,
        "builds": executor.builds_measured,
        "steps_measured": steps,
        **_energy_fields(sampler, steps),
    }


def _parallel_case(
    name: str, n_atoms: int, workers: int, warmup: int, steps: int,
    windows: int, min_seconds: float = 0.0,
):
    sim = get_benchmark(name).build(n_atoms)
    executor = ParallelForceExecutor(workers, quasi_2d=(name == "chute"))
    sim.force_executor = executor
    executor.bind(sim)
    try:
        sim.setup()
        for _ in range(warmup):
            sim.step()
        samples = [
            _parallel_window(sim, executor, steps, min_seconds)
            for _ in range(windows)
        ]
        best = dict(
            min(samples, key=lambda s: s["critical_path_s_per_step"])
        )
        best["workers"] = workers
        best["steps"] = steps
        best["warmup"] = warmup
        best["windows"] = windows
        best["window_critical_path_s_per_step"] = [
            s["critical_path_s_per_step"] for s in samples
        ]
        return sim, best
    finally:
        executor.close()


def _parity(serial_sim, parallel_sim) -> dict:
    force_delta = float(
        np.abs(serial_sim.system.forces - parallel_sim.system.forces).max()
    )
    energy_delta = abs(
        serial_sim.potential_energy - parallel_sim.potential_energy
    )
    return {
        "force_delta_max": force_delta,
        "energy_delta": energy_delta,
        "ok": bool(force_delta < PARITY_TOLERANCE),
    }


def run(*, quick: bool, backend: str | None = None, verbose: bool = True) -> dict:
    results: list[dict] = []
    parity_results: list[dict] = []

    # Pin the requested backend for every simulation this process (and
    # its worker processes) builds.  The default request is now "auto":
    # the serial record runs the compiled backend wherever a native
    # provider passes its smoke test instead of silently timing
    # numpy_fast on compiled-capable hosts.  get_backend degrades an
    # unavailable optional backend to numpy_fast with a warning, so
    # "resolved" records what actually ran.
    if backend is None:
        backend = AUTO_BACKEND
    os.environ[BACKEND_ENV_VAR] = backend
    resolved = backend_spec(get_backend(backend))
    if verbose and backend == AUTO_BACKEND:
        print(f"backend auto -> {resolved!r}", flush=True)
    elif verbose and backend != resolved:
        print(
            f"requested backend {backend!r} unavailable "
            f"({backend_diagnostics().get(backend)}); running {resolved!r}",
            flush=True,
        )

    # ------------------------------------------------------------------
    # Strong scaling on the LJ melt.
    # ------------------------------------------------------------------
    scaling_atoms = 4096 if quick else 32768
    worker_counts = [2] if quick else [1, 2, 4]
    warmup, steps = (2, 6) if quick else (3, 12)
    windows = 2
    # Full runs stretch each measured window past the power
    # methodology's floor so energy records stop shipping
    # power_under_sampled; quick (CI) runs stay short and keep the
    # flag honestly true.
    min_seconds = 0.0 if quick else MIN_RUN_SECONDS

    if verbose:
        print(f"[scaling lj n={scaling_atoms}]", flush=True)
    serial_sim, serial = _serial_case(
        "lj", scaling_atoms, warmup, steps, windows, min_seconds=min_seconds
    )
    serial["benchmark"] = "lj"
    serial["n_atoms"] = serial_sim.system.n_atoms
    if verbose:
        print(
            f"  serial     {serial['wall_s_per_step'] * 1e3:8.1f} ms/step wall "
            f"(Pair {serial['pair_s_per_step'] * 1e3:.1f}, "
            f"Neigh {serial['neigh_s_per_step'] * 1e3:.1f}, "
            f"builds {serial['builds']})",
            flush=True,
        )

    for workers in worker_counts:
        parallel_sim, entry = _parallel_case(
            "lj", scaling_atoms, workers, warmup, steps, windows,
            min_seconds=min_seconds,
        )
        entry["benchmark"] = "lj"
        entry["n_atoms"] = parallel_sim.system.n_atoms
        entry["parity"] = _parity(serial_sim, parallel_sim)
        crit = entry["critical_path_s_per_step"]
        worker_cpu = np.array(entry["worker_pair_cpu_s_per_step"]) + np.array(
            entry["worker_neigh_cpu_s_per_step"]
        )
        entry["speedup_wall"] = serial["wall_s_per_step"] / entry["wall_s_per_step"]
        entry["speedup_critical_path"] = serial["cpu_s_per_step"] / crit
        entry["speedup_force_path"] = (
            serial["pair_s_per_step"] + serial["neigh_s_per_step"]
        ) / float(worker_cpu.max())
        results.append(entry)
        if verbose:
            print(
                f"  workers={workers}  {crit * 1e3:8.1f} ms/step critical path "
                f"-> {entry['speedup_critical_path']:.2f}x critical, "
                f"{entry['speedup_force_path']:.2f}x force-path, "
                f"{entry['speedup_wall']:.2f}x wall "
                f"(parity |dF|={entry['parity']['force_delta_max']:.1e})",
                flush=True,
            )

    # ------------------------------------------------------------------
    # Serial timesteps-per-second, one row per usable kernel backend.
    # ------------------------------------------------------------------
    backend_rows: list[dict] = []
    for name in ("numpy_fast", "compiled"):
        if name == "compiled" and not compiled_available():
            continue
        sim, window = _serial_case(
            "lj", scaling_atoms, warmup, steps, windows, backend=name,
            min_seconds=min_seconds,
        )
        row = {
            "backend": name,
            "n_atoms": sim.system.n_atoms,
            "wall_s_per_step": window["wall_s_per_step"],
            "ts_per_s": 1.0 / window["wall_s_per_step"],
            "pair_s_per_step": window["pair_s_per_step"],
            "neigh_s_per_step": window["neigh_s_per_step"],
            "joules_per_step": window["joules_per_step"],
            "ts_per_s_per_watt": window["ts_per_s_per_watt"],
            "power_provider": window["power_provider"],
            "power_under_sampled": window["power_under_sampled"],
        }
        backend_rows.append(row)
        if verbose:
            print(
                f"  serial backend={name:<10} "
                f"{row['wall_s_per_step'] * 1e3:8.1f} ms/step "
                f"({row['ts_per_s']:.2f} TS/s)",
                flush=True,
            )
    fast_row = next(
        (r for r in backend_rows if r["backend"] == "numpy_fast"), None
    )
    for row in backend_rows:
        if fast_row is not None:
            row["speedup_over_numpy_fast"] = (
                fast_row["wall_s_per_step"] / row["wall_s_per_step"]
            )

    # ------------------------------------------------------------------
    # Five-benchmark parity sweep at 2 workers.
    # ------------------------------------------------------------------
    parity_warmup, parity_steps = (1, 3) if quick else (2, 6)
    for name, n_atoms in PARITY_SIZES.items():
        serial_sim, _ = _serial_case(name, n_atoms, parity_warmup, parity_steps, 1)
        parallel_sim, _ = _parallel_case(
            name, n_atoms, 2, parity_warmup, parity_steps, 1
        )
        entry = _parity(serial_sim, parallel_sim)
        entry["benchmark"] = name
        entry["n_atoms"] = serial_sim.system.n_atoms
        entry["steps"] = parity_warmup + parity_steps
        parity_results.append(entry)
        if verbose:
            status = "OK" if entry["ok"] else "DIVERGED"
            print(
                f"  parity {name:<6} n={entry['n_atoms']:<6} "
                f"|dF|max={entry['force_delta_max']:.2e} "
                f"|dE|={entry['energy_delta']:.2e}  {status}",
                flush=True,
            )

    return make_report(
        "scaling",
        backend={
            "requested": backend,
            "resolved": resolved,
            "auto_resolves_to": resolve_auto_backend(),
        },
        precision="double",
        energy=energy_provenance(),
        platform=platform_info(
            cores_available=os.cpu_count(),
            kernel_backends=backend_diagnostics(),
            compiled_provider=provider_info(),
            telemetry=platform_provenance(),
        ),
        quick=quick,
        methodology=(
            "warmup steps excluded; best of repeated measurement windows "
            "(contention only inflates CPU time, so the minimum is the "
            "honest estimate); critical_path = master CPU/step + max "
            "over workers of (pair + amortized rebuild) CPU/step; CPU "
            "time is scheduling-invariant so the metric holds on hosts "
            "with fewer cores than workers"
        ),
        serial=serial,
        serial_backends=backend_rows,
        scaling=results,
        parity=parity_results,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="4k atoms, 2 workers, fewer steps (CI smoke test)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_scaling.json",
        help="output JSON path (default: BENCH_scaling.json at repo root)",
    )
    parser.add_argument(
        "--backend",
        choices=(*available_backends(), AUTO_BACKEND),
        default=None,
        help="kernel backend for every engine in the run (default: auto — "
        "compiled when a native provider works, else numpy_fast)",
    )
    args = parser.parse_args(argv)

    # Fail on an unwritable destination now, not after minutes of timing.
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.touch()

    report = run(quick=args.quick, backend=args.backend)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    failures = []
    enforce_speedups = report["backend"]["resolved"] == "numpy_fast"
    for entry in report["parity"]:
        if not entry["ok"]:
            failures.append(
                f"parity diverged on {entry['benchmark']}: "
                f"|dF|max = {entry['force_delta_max']:.3e}"
            )
    for entry in report["scaling"]:
        if not entry["parity"]["ok"]:
            failures.append(
                f"parity diverged on lj n={entry['n_atoms']} "
                f"workers={entry['workers']}"
            )
        if not enforce_speedups:
            continue
        if args.quick and entry["workers"] == 2:
            if entry["speedup_force_path"] < SMOKE_SPEEDUP_FLOOR:
                failures.append(
                    f"2-worker force-path speedup "
                    f"{entry['speedup_force_path']:.2f}x below the "
                    f"{SMOKE_SPEEDUP_FLOOR:.2f}x smoke floor"
                )
        if not args.quick and entry["workers"] == 4:
            if entry["speedup_critical_path"] < SCALING_SPEEDUP_THRESHOLD:
                failures.append(
                    f"4-worker critical-path speedup "
                    f"{entry['speedup_critical_path']:.2f}x below the "
                    f"{SCALING_SPEEDUP_THRESHOLD:.1f}x acceptance threshold"
                )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
