#!/usr/bin/env python
"""Throughput benchmark for the async batch-simulation service.

Replays a characterization-campaign-shaped workload — a small LJ sweep
whose configs repeat, the way real campaigns resubmit the same
(size, steps, seed) point across analyses — two ways:

* **sequential baseline** — every submission executed naively, one at
  a time, with no cache (what every harness in this repo did before
  ``repro.service`` existed);
* **service** — the same submissions pushed by N concurrent submitter
  threads into a :class:`~repro.service.BatchService`, which runs each
  *unique* config once on a bounded worker pool and answers the
  duplicates from the content-addressed cache / in-flight coalescing.

Jobs/min for both paths, the dedup hit rate, a resubmit-after-
completion cache check, and a fault-recovery bitwise-identity record
land in ``BENCH_service.json`` at the repo root.

Methodology note: this repo's CI boxes are single-core, so the
speedup here is *deduplication* throughput — the service executes
``unique/submissions`` of the work — not CPU parallelism.  On
multi-core hosts the bounded pool adds real concurrency on top.  The
acceptance bar (>= 3x jobs/min at 4 workers) therefore holds on any
host, because the sweep's repeat factor (6x) exceeds it.

Usage::

    python benchmarks/bench_service.py            # full run
    python benchmarks/bench_service.py --quick    # small sweep (CI)
    python benchmarks/bench_service.py --out PATH # custom output
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.md.kernels import resolve_auto_backend  # noqa: E402
from repro.report import (  # noqa: E402
    energy_provenance,
    make_report,
    platform_info,
)
from repro.service import (  # noqa: E402
    BatchService,
    JobSpec,
    execute_job,
)

#: Acceptance bar: service jobs/min over sequential jobs/min at
#: --workers workers on the repeated-config LJ sweep.
SERVICE_SPEEDUP_THRESHOLD = 3.0

#: Each unique config appears this many times in the submission list.
REPEAT_FACTOR = 6


def _sweep(quick: bool) -> list[JobSpec]:
    """The unique configs of the LJ sweep (campaign-shaped)."""
    n_atoms = 500 if quick else 2048
    steps = 30 if quick else 60
    seeds = (1, 2, 3, 4)
    return [
        JobSpec(
            benchmark="lj",
            n_atoms=n_atoms,
            steps=steps,
            seed=seed,
            backend="auto",
        )
        for seed in seeds
    ]


def _submissions(unique: list[JobSpec]) -> list[JobSpec]:
    """The full submission list: every unique config, repeated."""
    return [spec for spec in unique for _ in range(REPEAT_FACTOR)]


def _sequential(submissions: list[JobSpec], verbose: bool) -> dict:
    """The no-service baseline: naive re-execution of every submission."""
    tick = time.perf_counter()
    digests = [execute_job(spec).state_digest for spec in submissions]
    wall = time.perf_counter() - tick
    if verbose:
        print(f"  sequential: {len(submissions)} jobs in {wall:.2f} s "
              f"({len(submissions) / wall * 60:.1f} jobs/min)", flush=True)
    return {
        "jobs": len(submissions),
        "wall_s": wall,
        "jobs_per_min": len(submissions) / wall * 60.0,
        "unique_digests": len(set(digests)),
    }


def _service_run(
    submissions: list[JobSpec], workers: int, submitters: int, verbose: bool
) -> tuple[dict, BatchService]:
    """Push the sweep through a BatchService from N submitter threads."""
    service = BatchService(workers)
    # Start the clock from a warm pool: spawned workers pay a one-time
    # fresh-interpreter boot that is not throughput (and the sequential
    # baseline pays no boot at all).
    service.wait_ready()
    shards = [submissions[i::submitters] for i in range(submitters)]
    handles: list[list] = [[] for _ in range(submitters)]

    def submitter(idx: int) -> None:
        handles[idx] = [service.submit(spec) for spec in shards[idx]]

    tick = time.perf_counter()
    threads = [
        threading.Thread(target=submitter, args=(i,))
        for i in range(submitters)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    results = [job.result(600) for shard in handles for job in shard]
    wall = time.perf_counter() - tick

    dedup = service.metrics.counter("service_dedup_hits_total").value
    entry = {
        "jobs": len(submissions),
        "submitters": submitters,
        "workers": workers,
        "wall_s": wall,
        "jobs_per_min": len(submissions) / wall * 60.0,
        "dedup_hits": dedup,
        "dedup_hit_rate": dedup / len(submissions),
        "cache": service.cache.stats(),
        "unique_digests": len({r.state_digest for r in results}),
        "queue_wait": service.metrics.histogram(
            "service_queue_wait_seconds"
        ).snapshot(),
        "job_seconds": service.metrics.histogram(
            "service_job_seconds"
        ).snapshot(),
    }
    if verbose:
        print(f"  service:    {len(submissions)} jobs in {wall:.2f} s "
              f"({entry['jobs_per_min']:.1f} jobs/min, "
              f"{int(dedup)} dedup hits)", flush=True)
    return entry, service


def run(*, quick: bool, workers: int = 4, verbose: bool = True) -> dict:
    unique = _sweep(quick)
    submissions = _submissions(unique)
    if verbose:
        print(f"[service sweep: {len(unique)} unique configs x "
              f"{REPEAT_FACTOR} = {len(submissions)} submissions]",
              flush=True)

    # Warm one-time costs (native kernel build/JIT, lattice caches) so
    # neither path is charged for them.
    warm = JobSpec(benchmark="lj", n_atoms=150, steps=2, backend="auto")
    execute_job(warm)

    sequential = _sequential(submissions, verbose)
    service_entry, service = _service_run(
        submissions, workers, submitters=4, verbose=verbose
    )
    speedup = service_entry["jobs_per_min"] / sequential["jobs_per_min"]

    # Resubmit an identical config to the *running* service: it must be
    # answered from the cache without re-executing.
    resubmit_job = service.submit(unique[0])
    resubmit = resubmit_job.result(60)
    resubmit_entry = {
        "cached": resubmit.cached,
        "cache_hits_total": service.metrics.counter(
            "service_cache_hits_total"
        ).value,
        "digest_matches_first_run": bool(
            resubmit.state_digest
            == service.cache.get(unique[0].cache_key()).state_digest
        ),
    }
    service.close()

    # Fault-recovery record: the same physics as unique[0], but on the
    # 2-worker engine with an injected worker kill (PR-4 fault plan).
    # The recovered run must land bitwise on an *uninterrupted* run of
    # the same configuration (recovery is bitwise-neutral at a fixed
    # worker count); against the serial result the engine's contract is
    # parity within tolerance, not bit identity, so that comparison is
    # recorded as an energy delta rather than asserted.
    def _two_worker_spec(fault_plan=None, checkpoint_every=0):
        return JobSpec(
            benchmark="lj",
            n_atoms=unique[0].n_atoms,
            steps=unique[0].steps,
            seed=unique[0].seed,
            backend="auto",
            workers=2,
            fault_plan=fault_plan,
            checkpoint_every=checkpoint_every,
        )

    faulty = _two_worker_spec(fault_plan="kill:1:7", checkpoint_every=10)
    fault_result = execute_job(faulty)
    clean_result = execute_job(_two_worker_spec())
    fault_entry = {
        "fault_plan": faulty.fault_plan,
        "recovery_events": fault_result.recovery_events,
        "same_cache_key": faulty.cache_key() == unique[0].cache_key(),
        "bitwise_identical": bool(
            fault_result.state_digest == clean_result.state_digest
        ),
        "energy_delta_vs_serial": abs(
            fault_result.total_energy - resubmit.total_energy
        ),
    }
    if verbose:
        print(f"  speedup {speedup:.2f}x; resubmit cached="
              f"{resubmit_entry['cached']}; fault recovery "
              f"events={fault_entry['recovery_events']} "
              f"bitwise={fault_entry['bitwise_identical']}", flush=True)

    return make_report(
        "service",
        backend={
            "requested": "auto",
            "resolved": resolve_auto_backend(),
        },
        precision="double",
        energy=energy_provenance(),
        platform=platform_info(
            cores_available=os.cpu_count(),
            kernel_backend_auto=resolve_auto_backend(),
        ),
        quick=quick,
        sweep={
            "unique_configs": len(unique),
            "repeat_factor": REPEAT_FACTOR,
            "submissions": len(submissions),
            "n_atoms": unique[0].n_atoms,
            "steps": unique[0].steps,
            "cache_keys": [spec.cache_key() for spec in unique],
        },
        methodology=(
            "sequential = naive one-at-a-time re-execution of every "
            "submission with no cache; service = same submissions from "
            "4 concurrent submitter threads into a BatchService, which "
            "executes each unique config once and answers duplicates "
            "via content-addressed caching / in-flight coalescing. On "
            "single-core hosts the speedup is dedup throughput (bounded "
            "by the repeat factor), not CPU parallelism; multi-core "
            "hosts add pool concurrency on top."
        ),
        sequential=sequential,
        service=service_entry,
        speedup_jobs_per_min=speedup,
        resubmit=resubmit_entry,
        fault_recovery=fault_entry,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small LJ sweep (CI smoke test)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="service pool size (acceptance bar is measured at 4)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_service.json",
        help="output JSON path (default: BENCH_service.json at repo root)",
    )
    args = parser.parse_args(argv)

    # Fail on an unwritable destination now, not after minutes of timing.
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.touch()

    report = run(quick=args.quick, workers=args.workers)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    failures = []
    if report["speedup_jobs_per_min"] < SERVICE_SPEEDUP_THRESHOLD:
        failures.append(
            f"service speedup {report['speedup_jobs_per_min']:.2f}x below "
            f"the {SERVICE_SPEEDUP_THRESHOLD:.0f}x acceptance threshold"
        )
    if report["service"]["dedup_hits"] <= 0:
        failures.append("no dedup hits recorded on a repeated-config sweep")
    if not report["resubmit"]["cached"]:
        failures.append("resubmitted identical config was not cache-served")
    if report["sequential"]["unique_digests"] != report["sweep"]["unique_configs"]:
        failures.append("sequential baseline digests disagree across repeats")
    if report["service"]["unique_digests"] != report["sweep"]["unique_configs"]:
        failures.append("service digests disagree with the unique sweep")
    if not report["fault_recovery"]["bitwise_identical"]:
        failures.append(
            "fault-recovered run is not bitwise-identical to the "
            "uninterrupted result"
        )
    if not report["fault_recovery"]["same_cache_key"]:
        failures.append("fault plan leaked into the cache key")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
