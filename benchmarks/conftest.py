"""Shared helpers for the per-figure benchmark harness.

Each file under ``benchmarks/`` regenerates one of the paper's tables or
figures (see DESIGN.md's per-experiment index), timing the generation
with pytest-benchmark and asserting the paper's qualitative shape on
the produced series.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.figures.campaign import clear_cache


@pytest.fixture
def cold_campaign():
    """Clear the shared campaign cache so timings measure real work."""
    clear_cache()
    yield
    clear_cache()


def run_cold(benchmark, generate, *args, **kwargs):
    """Benchmark ``generate`` with a cache clear before every round."""
    def setup():
        clear_cache()
        return args, kwargs

    return benchmark.pedantic(generate, setup=setup, rounds=2, iterations=1)
