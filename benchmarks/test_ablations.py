"""Bench: the ablation studies DESIGN.md calls out.

Not paper figures — these time (and shape-check) the design-choice
sweeps built on top of the reproduction: the neighbor-skin trade-off,
Newton's third law for Chute, the GPU rank-budget tuning, weak scaling,
and the -DFFT_SINGLE flag.
"""

import pytest

from repro.studies.fft_precision import fft_precision_study
from repro.studies.gpu_ranks import best_total_ranks, gpu_rank_tuning_study
from repro.studies.newton import newton_ablation
from repro.studies.skin import optimal_skin, skin_sweep_model
from repro.studies.weak_scaling import weak_scaling_study


def test_skin_sweep(benchmark):
    points = benchmark.pedantic(skin_sweep_model, rounds=2, iterations=1)
    assert 0.1 <= optimal_skin(points) <= 0.5


def test_newton_ablation(benchmark):
    comparisons = benchmark.pedantic(newton_ablation, rounds=2, iterations=1)
    at_scale = [c for c in comparisons if c.n_atoms > 1_000_000 and c.n_ranks == 1]
    assert at_scale[0].speedup_from_newton > 1.3


def test_gpu_rank_tuning(benchmark):
    points = benchmark.pedantic(gpu_rank_tuning_study, rounds=2, iterations=1)
    assert best_total_ranks(points) == 48


def test_weak_scaling(benchmark):
    points = benchmark.pedantic(weak_scaling_study, rounds=2, iterations=1)
    assert points[-1].weak_efficiency > 0.8


def test_fft_precision_flag(benchmark):
    points = benchmark.pedantic(fft_precision_study, rounds=2, iterations=1)
    assert points[-1].slowdown == pytest.approx(1.35, abs=0.15)
