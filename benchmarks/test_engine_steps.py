"""Bench: per-timestep cost of the functional engine per benchmark.

Not a paper figure — this times the *substrate* itself, one suite
benchmark per case at laptop scale, so regressions in the numpy engine
show up in benchmark history.
"""

import pytest

from repro.suite import BENCHMARK_NAMES, get_benchmark


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_engine_timestep(benchmark, name):
    sim = get_benchmark(name).build(300)
    sim.setup()
    sim.run(3)  # warm the neighbor list and force caches

    def steps():
        sim.run(5)
        return sim.counts.timesteps

    total = benchmark.pedantic(steps, rounds=3, iterations=1)
    assert total >= 18
