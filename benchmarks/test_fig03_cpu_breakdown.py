"""Bench: regenerate Figure 3 (CPU task breakdown)."""

from repro.figures import fig03

from benchmarks.conftest import run_cold


def test_fig03_full_grid(benchmark, cold_campaign):
    data = run_cold(benchmark, fig03.generate)
    assert len(data.series) == 5 * 4 * 7
    # Paper shape: LJ is >75% Pair serially; Comm grows with ranks for
    # small systems; Chain/Chute Pair shares sit far below LJ's.
    assert data.series[("lj", 32, 1)]["Pair"] > 0.75
    assert data.series[("lj", 32, 64)]["Comm"] > data.series[("lj", 32, 1)]["Comm"]
    assert data.series[("chain", 864, 1)]["Pair"] < data.series[("lj", 864, 1)]["Pair"]
    assert data.series[("chute", 864, 1)]["Pair"] < data.series[("lj", 864, 1)]["Pair"]
