"""Bench: regenerate Figure 4 (MPI overhead and imbalance)."""

from repro.figures import fig04

from benchmarks.conftest import run_cold


def test_fig04_overhead_and_imbalance(benchmark, cold_campaign):
    data = run_cold(benchmark, fig04.generate)
    # Overhead decreases with system size; Chain/Chute imbalance exceeds
    # LJ/EAM (the paper's Section 5.1 orderings).
    small_mpi, _ = data.series[("lj", 32, 64)]
    big_mpi, _ = data.series[("lj", 2048, 64)]
    assert big_mpi < small_mpi
    _, chain_imb = data.series[("chain", 2048, 64)]
    _, eam_imb = data.series[("eam", 2048, 64)]
    assert chain_imb > eam_imb
