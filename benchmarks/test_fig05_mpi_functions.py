"""Bench: regenerate Figure 5 (MPI function breakdown)."""

from repro.figures import fig05

from benchmarks.conftest import run_cold


def test_fig05_function_breakdown(benchmark, cold_campaign):
    data = run_cold(benchmark, fig05.generate)
    # MPI_Init is the dominant entry for small fast systems and its
    # share grows with the rank count (Section 5.1).
    small = data.series[("lj", 32, 64)]
    assert small["MPI_Init"] == max(small.values())
    assert small["MPI_Init"] > data.series[("lj", 32, 4)]["MPI_Init"]
    # Data exchange grows more prominent with system size.
    big = data.series[("lj", 2048, 64)]
    assert big["MPI_Send"] + big["MPI_Sendrecv"] > small["MPI_Send"] + small["MPI_Sendrecv"]
