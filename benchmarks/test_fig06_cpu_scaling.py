"""Bench: regenerate Figure 6 (CPU perf / energy / parallel efficiency)."""

import pytest

from repro.figures import fig06

from benchmarks.conftest import run_cold


def test_fig06_cpu_strong_scaling(benchmark, cold_campaign):
    data = run_cold(benchmark, fig06.generate)
    # Anchors and orderings from Section 5.2.
    assert data.series[("rhodo", 2048, 64)]["ts_per_s"] == pytest.approx(10.77, rel=0.2)
    chute_32 = data.series[("chute", 32, 64)]["ts_per_s"]
    assert chute_32 > data.series[("lj", 32, 64)]["ts_per_s"]
    assert chute_32 == pytest.approx(10_697, rel=0.25)
    # Chute has the worst parallel efficiency for > 32k atoms.
    for size in (256, 864, 2048):
        chute_eff = data.series[("chute", size, 64)]["parallel_efficiency_pct"]
        for bench in ("lj", "eam", "rhodo"):
            assert chute_eff < data.series[(bench, size, 64)]["parallel_efficiency_pct"]
