"""Bench: regenerate Figure 7 (GPU task breakdown, no Chute)."""

from repro.figures import fig07

from benchmarks.conftest import run_cold


def test_fig07_gpu_task_breakdown(benchmark, cold_campaign):
    data = run_cold(benchmark, fig07.generate)
    assert {key[0] for key in data.series} == {"rhodo", "lj", "chain", "eam"}
    # Rhodopsin's GPU pair share falls below 25%; EAM stays pair-bound;
    # SHAKE keeps Rhodopsin's Modify prominent (Section 6.1).
    assert data.series[("rhodo", 2048, 8)]["Pair"] < 0.25
    eam = data.series[("eam", 2048, 1)]
    assert eam["Pair"] == max(eam.values())
    assert data.series[("rhodo", 2048, 8)]["Modify"] > 0.10
