"""Bench: regenerate Figure 8 (GPU kernels and data movement)."""

from repro.figures import fig08

from benchmarks.conftest import run_cold


def _top_compute_kernel(fractions):
    compute = {k: v for k, v in fractions.items() if not k.startswith("[")}
    return max(compute, key=compute.get)


def test_fig08_kernel_breakdown(benchmark, cold_campaign):
    data = run_cold(benchmark, fig08.generate)
    # Data movement dominates device activity (Section 6.1).
    lj = data.series[("lj", 2048, 8)]
    moved = sum(v for k, v in lj.items() if k.startswith("[CUDA"))
    assert moved > 0.35
    # Rhodopsin's kernel ordering flips between 864k and 2048k atoms.
    assert _top_compute_kernel(data.series[("rhodo", 864, 8)]) in (
        "make_rho",
        "particle_map",
        "interp",
    )
    assert _top_compute_kernel(data.series[("rhodo", 2048, 8)]) == "calc_neigh_list_cell"
