"""Bench: regenerate Figure 9 (GPU perf / energy / parallel efficiency)."""

import pytest

from repro.figures import fig09

from benchmarks.conftest import run_cold


def test_fig09_gpu_strong_scaling(benchmark, cold_campaign):
    data = run_cold(benchmark, fig09.generate)
    assert data.series[("rhodo", 2048, 8)]["ts_per_s"] == pytest.approx(16.09, rel=0.2)
    # EAM beats Chain on the GPU (reverse of the CPU ordering).
    for size in (256, 2048):
        assert (
            data.series[("eam", size, 8)]["ts_per_s"]
            > data.series[("chain", size, 8)]["ts_per_s"]
        )
    # Efficiency floor well below the CPU instance's.
    floor = min(m["parallel_efficiency_pct"] for m in data.series.values())
    assert floor < 40.0
