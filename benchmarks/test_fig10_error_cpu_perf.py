"""Bench: regenerate Figure 10 (rhodo CPU perf vs error threshold)."""

import pytest

from repro.figures import fig10

from benchmarks.conftest import run_cold


def test_fig10_threshold_sweep(benchmark, cold_campaign):
    data = run_cold(benchmark, fig10.generate)
    assert data.series[(1e-4, 2048, 64)]["ts_per_s"] == pytest.approx(10.77, rel=0.2)
    assert data.series[(1e-7, 2048, 64)]["ts_per_s"] == pytest.approx(3.54, rel=0.25)
    # Monotone degradation and worse strong scaling at tight thresholds.
    for size in (32, 2048):
        perf = [data.series[(t, size, 64)]["ts_per_s"] for t in (1e-4, 1e-5, 1e-6, 1e-7)]
        assert perf == sorted(perf, reverse=True)
    assert (
        data.series[(1e-7, 2048, 64)]["parallel_efficiency_pct"]
        < data.series[(1e-4, 2048, 64)]["parallel_efficiency_pct"]
    )
