"""Bench: regenerate Figure 11 (rhodo task breakdown vs threshold)."""

from repro.figures import fig11

from benchmarks.conftest import run_cold


def test_fig11_kspace_share_growth(benchmark, cold_campaign):
    data = run_cold(benchmark, fig11.generate)
    for size in (256, 2048):
        shares = [
            data.series[(t, size, 64)]["Kspace"] for t in (1e-4, 1e-5, 1e-6, 1e-7)
        ]
        assert shares == sorted(shares)
    assert data.series[(1e-7, 2048, 2)]["Kspace"] > 0.5
