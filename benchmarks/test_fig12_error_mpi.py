"""Bench: regenerate Figure 12 (rhodo MPI functions vs threshold)."""

from repro.figures import fig12

from benchmarks.conftest import run_cold


def test_fig12_send_prevalence(benchmark, cold_campaign):
    data = run_cold(benchmark, fig12.generate)
    # At tight thresholds Send's share grows with system size: less
    # synchronization, more actual data exchange (Section 7).
    small = data.series[(1e-7, 32, 16)]["MPI_Send"]
    big = data.series[(1e-7, 2048, 16)]["MPI_Send"]
    assert big > small
    for fractions in data.series.values():
        assert abs(sum(fractions.values()) - 1.0) < 1e-9
