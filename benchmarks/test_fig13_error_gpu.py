"""Bench: regenerate Figure 13 (rhodo GPU perf vs error threshold)."""

import pytest

from repro.figures import fig13

from benchmarks.conftest import run_cold


def test_fig13_gpu_collapse(benchmark, cold_campaign):
    data = run_cold(benchmark, fig13.generate)
    base = data.series[(1e-4, 2048, 8)]["ts_per_s"]
    tight = data.series[(1e-7, 2048, 8)]["ts_per_s"]
    assert base == pytest.approx(16.09, rel=0.2)
    assert tight == pytest.approx(0.46, rel=0.35)
    # The GPU pays an order of magnitude more than the CPU's ~3x.
    assert base / tight > 15.0
