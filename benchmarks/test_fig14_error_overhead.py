"""Bench: regenerate Figure 14 (rhodo MPI overhead vs threshold)."""

from repro.figures import fig14

from benchmarks.conftest import run_cold


def test_fig14_overhead_reduction(benchmark, cold_campaign):
    data = run_cold(benchmark, fig14.generate)
    # Lowering the threshold reduces the relative MPI overhead.
    base_mpi, _ = data.series[(1e-4, 2048, 64)]
    tight_mpi, _ = data.series[(1e-7, 2048, 64)]
    assert tight_mpi < base_mpi
    for mpi_pct, imb_pct in data.series.values():
        assert 0 <= imb_pct <= mpi_pct <= 100
