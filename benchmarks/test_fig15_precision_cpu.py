"""Bench: regenerate Figure 15 (CPU precision sensitivity).

Two layers now cover this figure:

* the calibrated cost model reproduces the paper's absolute anchors
  (LJ 115.2 -> 98.9 TS/s single -> double, Rhodopsin 11.5 -> 8.4);
* the real engine *measures* the same single/mixed/double modes through
  its PrecisionPolicy — ``benchmarks/bench_precision.py`` writes the
  tracked ``BENCH_precision.json`` whose ordering and accuracy ratios
  are consumed here.  The numpy engine's dtype sensitivity differs from
  vectorized C++, so only the paper's *shape* claims (ordering, mixed
  recovering speed at double-like drift) transfer; the absolute anchor
  ratios stay modeled.
"""

import json
from pathlib import Path

import pytest

from repro.figures import fig15

from benchmarks.conftest import run_cold

MEASURED = Path(__file__).resolve().parents[1] / "BENCH_precision.json"


def test_fig15_cpu_precision(benchmark, cold_campaign):
    data = run_cold(benchmark, fig15.generate)
    assert data.series[("lj", "single", 2048, 64)] == pytest.approx(115.2, rel=0.2)
    assert data.series[("lj", "double", 2048, 64)] == pytest.approx(98.9, rel=0.2)
    assert data.series[("rhodo", "single", 2048, 64)] == pytest.approx(11.5, rel=0.2)
    assert data.series[("rhodo", "double", 2048, 64)] == pytest.approx(8.4, rel=0.2)
    # Double is never faster than mixed/single anywhere in the sweep.
    for (bench, precision, size, ranks), ts in data.series.items():
        if precision == "double":
            assert ts <= data.series[(bench, "single", size, ranks)] + 1e-9


def test_fig15_measured_engine_ordering():
    """The paper's precision ordering, measured on the real kernels."""
    if not MEASURED.exists():
        pytest.skip("run benchmarks/bench_precision.py to generate "
                    "BENCH_precision.json")
    summary = json.loads(MEASURED.read_text())["summary"]

    # single >= double holds on every measured benchmark; on LJ (the
    # acceptance case) mixed also clearly beats double.
    for bench, ratio in summary["speedup_single_over_double"].items():
        assert ratio >= 1.0, f"{bench}: single slower than double ({ratio:.3f})"
    assert summary["speedup_mixed_over_double"]["lj"] > 1.0

    # Accuracy side of the tradeoff: mixed drifts like double (within
    # 2x over the 2000-step NVE run) while single drifts measurably.
    assert summary["drift_ratio_mixed_over_double"]["lj"] <= 2.0
    assert summary["drift_ratio_single_over_double"]["lj"] > 1.0
