"""Bench: regenerate Figure 15 (CPU precision sensitivity)."""

import pytest

from repro.figures import fig15

from benchmarks.conftest import run_cold


def test_fig15_cpu_precision(benchmark, cold_campaign):
    data = run_cold(benchmark, fig15.generate)
    assert data.series[("lj", "single", 2048, 64)] == pytest.approx(115.2, rel=0.2)
    assert data.series[("lj", "double", 2048, 64)] == pytest.approx(98.9, rel=0.2)
    assert data.series[("rhodo", "single", 2048, 64)] == pytest.approx(11.5, rel=0.2)
    assert data.series[("rhodo", "double", 2048, 64)] == pytest.approx(8.4, rel=0.2)
    # Double is never faster than mixed/single anywhere in the sweep.
    for (bench, precision, size, ranks), ts in data.series.items():
        if precision == "double":
            assert ts <= data.series[(bench, "single", size, ranks)] + 1e-9
