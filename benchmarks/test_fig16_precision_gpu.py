"""Bench: regenerate Figure 16 (GPU precision sensitivity)."""

import pytest

from repro.figures import fig16

from benchmarks.conftest import run_cold


def test_fig16_gpu_precision(benchmark, cold_campaign):
    data = run_cold(benchmark, fig16.generate)
    assert data.series[("lj", "single", 2048, 8)] == pytest.approx(170.0, rel=0.2)
    assert data.series[("lj", "double", 2048, 8)] == pytest.approx(121.6, rel=0.2)
    # LJ-on-GPU is the most precision-sensitive configuration; the
    # Rhodopsin step barely notices (Section 8).
    lj_drop = data.series[("lj", "double", 2048, 8)] / data.series[
        ("lj", "single", 2048, 8)
    ]
    rhodo_drop = data.series[("rhodo", "double", 2048, 8)] / data.series[
        ("rhodo", "single", 2048, 8)
    ]
    assert lj_drop < 0.85 < 0.90 < rhodo_drop
