"""Bench: regenerate the Section 10 headline turnaround numbers."""

import pytest

from repro.figures import headline

from benchmarks.conftest import run_cold


def test_headline_turnaround(benchmark, cold_campaign):
    data = run_cold(benchmark, headline.generate)
    assert data.series["cpu_ns_per_day"] == pytest.approx(2.0, rel=0.2)
    assert data.series["gpu_ns_per_day"] == pytest.approx(2.8, rel=0.2)
    assert data.series["gpu_utilization"] == pytest.approx(0.30, abs=0.12)
