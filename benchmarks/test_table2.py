"""Bench: regenerate Table 2 (benchmark suite taxonomy)."""

from repro.figures import table2

from benchmarks.conftest import run_cold


def test_table2_taxonomy(benchmark, cold_campaign):
    data = run_cold(benchmark, table2.generate)
    assert list(data.series) == ["rhodo", "lj", "chain", "eam", "chute"]
    assert data.series["lj"]["Neighbors/atom"] == "55"
    assert data.series["rhodo"]["kspace_style"] == "pppm"
    assert "gran/hooke/history" in data.render()


def test_table2_neighbors_measured_by_engine(benchmark):
    """The neighbors/atom column re-derived by actually building the
    LJ system and constructing its neighbor list."""
    measured = benchmark.pedantic(
        table2.measure_neighbors, args=("lj", 500), rounds=2, iterations=1
    )
    assert abs(measured - 55) / 55 < 0.06
