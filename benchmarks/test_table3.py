"""Bench: regenerate Table 3 (instance descriptions)."""

from repro.figures import table3

from benchmarks.conftest import run_cold


def test_table3_instances(benchmark, cold_campaign):
    data = run_cold(benchmark, table3.generate)
    rendered = data.render()
    assert "Intel Xeon Platinum 8358" in rendered
    assert "NVIDIA V100" in rendered
    assert len(data.series["cpu_specs"]) == 9
    assert len(data.series["gpu_specs"]) == 8
