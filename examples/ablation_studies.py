"""Ablations of the design choices the paper's setup fixes.

Five studies (see ``repro.studies``): the neighbor-skin trade-off, what
Chute loses without Newton's third law, the ranks-per-GPU tuning behind
the paper's 48-rank remark, the weak-scaling view prior work reported,
and the ``-DFFT_SINGLE`` build flag.

Run:  python examples/ablation_studies.py
"""

from repro.core.report import render_table
from repro.studies.fft_precision import fft_precision_study
from repro.studies.gpu_ranks import best_total_ranks, gpu_rank_tuning_study
from repro.studies.newton import newton_ablation
from repro.studies.skin import optimal_skin, skin_sweep_functional, skin_sweep_model
from repro.studies.weak_scaling import weak_scaling_study


def skin_study() -> None:
    print("--- Neighbor-skin trade-off (LJ) ---")
    model_points = skin_sweep_model()
    rows = [
        [p.skin, f"{p.rebuild_every:.1f}", f"{p.stored_pairs_per_atom:.1f}",
         f"{p.step_seconds * 1e3:.1f}"]
        for p in model_points
    ]
    print(render_table(
        ["skin [sigma]", "rebuild every", "pairs/atom", "step [ms] (2048k, model)"],
        rows,
    ))
    print(f"model optimum: skin = {optimal_skin(model_points)} "
          "(Table 2 uses 0.3)\n")

    engine_points = skin_sweep_functional("lj", n_atoms=300, skins=(0.1, 0.3, 0.6))
    rows = [
        [p.skin, f"{p.rebuild_every:.1f}", f"{p.stored_pairs_per_atom:.1f}"]
        for p in engine_points
    ]
    print(render_table(
        ["skin [sigma]", "rebuild every (measured)", "pairs/atom (measured)"], rows,
        title="Functional-engine confirmation (300 atoms, 150 steps):",
    ))
    print()


def newton_study() -> None:
    print("--- Newton's third law for Chute (paper runs it off) ---")
    rows = [
        [f"{c.n_atoms // 1000}k", c.n_ranks, f"{c.ts_newton_off:.0f}",
         f"{c.ts_newton_on:.0f}", f"{c.speedup_from_newton:.2f}x"]
        for c in newton_ablation()
    ]
    print(render_table(
        ["atoms", "ranks", "TS/s newton off", "TS/s newton on", "gain"], rows
    ))
    print("the halved pair work wins when compute-bound; the extra reverse\n"
          "exchange eats the gain for small, communication-bound runs.\n")


def gpu_rank_study() -> None:
    print("--- Ranks-per-GPU tuning (Section 6.2's 48-rank remark) ---")
    points = gpu_rank_tuning_study()
    rows = [
        [p.total_ranks, p.ranks_per_gpu, f"{p.ts_per_s:.1f}",
         f"{100 * p.gpu_utilization:.0f}%"]
        for p in points
    ]
    print(render_table(["total ranks", "ranks/GPU", "TS/s", "GPU util"], rows))
    print(f"best budget: {best_total_ranks(points)} total ranks "
          "(paper: no more than 48 beneficial)\n")


def weak_scaling() -> None:
    print("--- Weak scaling (the prior-work view, 32k atoms/rank) ---")
    rows = [
        [p.n_ranks, f"{p.n_atoms // 1000}k", f"{100 * p.weak_efficiency:.1f}%"]
        for p in weak_scaling_study("lj")
    ]
    print(render_table(["ranks", "atoms", "weak efficiency"], rows))
    print()


def fft_flag() -> None:
    print("--- The -DFFT_SINGLE build flag (Section 4.3) ---")
    rows = [
        [f"{p.kspace_error:.0e}", f"{p.ts_fft_single:.2f}",
         f"{p.ts_fft_double:.2f}", f"{p.slowdown:.2f}x"]
        for p in fft_precision_study()
    ]
    print(render_table(
        ["threshold", "TS/s (FFT single)", "TS/s (FFT double)", "single's gain"],
        rows,
    ))


if __name__ == "__main__":
    skin_study()
    newton_study()
    gpu_rank_study()
    weak_scaling()
    fft_flag()
