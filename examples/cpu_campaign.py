"""The CPU-instance characterization campaign (Figures 3-6).

Replays Section 5 of the paper on the simulated dual-socket Xeon 8358:
task breakdowns, MPI overhead/imbalance, MPI function breakdowns, and
the performance / energy-efficiency / parallel-efficiency triple, for
all five benchmarks, four sizes and seven rank counts.  Results are
also written to ``runs.csv`` in the authors' artifact layout.

Run:  python examples/cpu_campaign.py [output_dir]
"""

import sys
from pathlib import Path

from repro.core import ExperimentSpec, Mode, RunsTable, run_experiment
from repro.figures import fig03, fig04, fig05, fig06
from repro.perfmodel.workloads import RANK_COUNTS, SIZES_K
from repro.suite import CPU_BENCHMARKS


def run_campaign(output_dir: Path) -> None:
    print("Simulating the CPU campaign "
          f"({len(CPU_BENCHMARKS)} benchmarks x {len(SIZES_K)} sizes x "
          f"{len(RANK_COUNTS)} rank counts)...")
    table = RunsTable()
    for bench in CPU_BENCHMARKS:
        for size in SIZES_K:
            for ranks in RANK_COUNTS:
                spec = ExperimentSpec(
                    bench, "cpu", size, ranks, mode=Mode.PROFILING
                )
                table.add(run_experiment(spec))
    csv_path = output_dir / "lammps" / "runs.csv"
    table.to_csv(csv_path)
    print(f"wrote {len(table)} runs to {csv_path}\n")

    # Condensed figure renderings (full tables in EXPERIMENTS.md).
    print(fig06.generate(sizes_k=(32, 2048), ranks=(1, 16, 64)).render())
    print()
    print(fig03.generate(sizes_k=(2048,), ranks=(1, 64)).render())
    print()
    print(fig04.generate(sizes_k=(32, 2048), ranks=(16, 64)).render())
    print()
    print(fig05.generate(benchmarks=("lj", "rhodo"), sizes_k=(32, 2048),
                         ranks=(16, 64)).render())


if __name__ == "__main__":
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("campaign_output")
    run_campaign(out)
