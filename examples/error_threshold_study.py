"""The k-space error-threshold sensitivity study (Section 7).

Sweeps the PPPM relative force-error threshold from the 1e-4 baseline
down to 1e-7 for Rhodopsin on both instances (Figures 10-14), and shows
the *mechanism* with the functional engine: the LAMMPS-style accuracy
machinery grows the FFT grid, whose cost the model then pays — mildly
on the CPU (the FFT stays local) and catastrophically on the GPU (the
grids cross PCIe every step).

Run:  python examples/error_threshold_study.py
"""

from repro.core.report import render_table
from repro.figures import fig10, fig11, fig13, fig14
from repro.md.kspace.error import select_grid
from repro.perfmodel.workloads import get_workload

import numpy as np

THRESHOLDS = (1e-4, 1e-5, 1e-6, 1e-7)


def show_grid_growth() -> None:
    """The mechanism: the error machinery inflates the PPPM grid."""
    w = get_workload("rhodo")
    rows = []
    for n_k in (32, 2048):
        n = n_k * 1000
        for acc in THRESHOLDS:
            alpha, grid = select_grid(
                acc, w.box_lengths(n), w.cutoff, n, w.qsq_per_atom * n,
                two_charge_force=332.06,
            )
            rows.append([
                f"{n_k}k", f"{acc:.0e}", f"{alpha:.3f}",
                "x".join(str(g) for g in grid), f"{np.prod(grid):.2e}",
            ])
    print(render_table(
        ["atoms", "threshold", "alpha", "grid", "points"], rows,
        title="PPPM grid selection (LAMMPS error machinery):",
    ))
    print()


def main() -> None:
    show_grid_growth()
    print(fig10.generate(sizes_k=(2048,), ranks=(1, 16, 64)).render())
    print()
    print(fig11.generate(sizes_k=(2048,), ranks=(2, 64)).render())
    print()
    print(fig13.generate(sizes_k=(2048,), gpus=(1, 8)).render())
    print()
    print(fig14.generate(sizes_k=(32, 2048)).render())
    print()

    d10 = fig10.generate(sizes_k=(2048,), ranks=(1, 64))
    d13 = fig13.generate(sizes_k=(2048,), gpus=(1, 8))
    cpu_ratio = (
        d10.series[(1e-4, 2048, 64)]["ts_per_s"]
        / d10.series[(1e-7, 2048, 64)]["ts_per_s"]
    )
    gpu_ratio = (
        d13.series[(1e-4, 2048, 8)]["ts_per_s"]
        / d13.series[(1e-7, 2048, 8)]["ts_per_s"]
    )
    print(f"1e-4 -> 1e-7 slowdown at 2048k:  CPU {cpu_ratio:.1f}x (paper ~3x), "
          f"GPU {gpu_ratio:.1f}x (paper ~35x)")


if __name__ == "__main__":
    main()
