"""Full reproduction: every table and figure, one report.

Regenerates all 17 evaluation artifacts (Tables 2-3, Figures 3-16, the
Section 10 headline) plus the paper-vs-measured anchor scoreboard and
writes them into a single markdown report — the complete evaluation
section of the paper, re-derived.

Run:  python examples/full_reproduction.py [report.md]
      (takes a minute or two; the campaign cache is shared across figures)
"""

import importlib
import sys
import time
from pathlib import Path

FIGURES = (
    "table2",
    "table3",
    *(f"fig{n:02d}" for n in range(3, 17)),
    "headline",
)


def anchor_scoreboard() -> str:
    from repro.core.report import render_table
    from repro.gpu import simulate_gpu_run
    from repro.parallel import simulate_cpu_run
    from repro.perfmodel.calibration import PAPER_ANCHORS as A

    rows = []
    checks = [
        ("rhodo CPU 2048k/64 [TS/s]", A.rhodo_cpu_2048k_64r_ts,
         simulate_cpu_run("rhodo", 2_048_000, 64).ts_per_s),
        ("rhodo CPU @1e-7 [TS/s]", A.rhodo_cpu_2048k_64r_ts_e7,
         simulate_cpu_run("rhodo", 2_048_000, 64, kspace_error=1e-7).ts_per_s),
        ("lj CPU single [TS/s]", A.lj_cpu_2048k_64r_ts_single,
         simulate_cpu_run("lj", 2_048_000, 64, precision="single").ts_per_s),
        ("lj CPU double [TS/s]", A.lj_cpu_2048k_64r_ts_double,
         simulate_cpu_run("lj", 2_048_000, 64, precision="double").ts_per_s),
        ("rhodo GPU 2048k/8 [TS/s]", A.rhodo_gpu_2048k_8g_ts,
         simulate_gpu_run("rhodo", 2_048_000, 8).ts_per_s),
        ("rhodo GPU @1e-7 [TS/s]", A.rhodo_gpu_2048k_8g_ts_e7,
         simulate_gpu_run("rhodo", 2_048_000, 8, kspace_error=1e-7).ts_per_s),
        ("lj GPU single [TS/s]", A.lj_gpu_2048k_8g_ts_single,
         simulate_gpu_run("lj", 2_048_000, 8, precision="single").ts_per_s),
        ("lj GPU double [TS/s]", A.lj_gpu_2048k_8g_ts_double,
         simulate_gpu_run("lj", 2_048_000, 8, precision="double").ts_per_s),
        ("rhodo CPU [ns/day]", A.rhodo_cpu_ns_per_day,
         simulate_cpu_run("rhodo", 2_048_000, 64).ns_per_day(2.0)),
        ("rhodo GPU [ns/day]", A.rhodo_gpu_ns_per_day,
         simulate_gpu_run("rhodo", 2_048_000, 8).ns_per_day(2.0)),
    ]
    for name, paper, measured in checks:
        delta = 100.0 * (measured - paper) / paper
        rows.append([name, f"{paper:.2f}", f"{measured:.2f}", f"{delta:+.1f}%"])
    return render_table(["anchor", "paper", "measured", "delta"], rows)


def main(output: Path) -> None:
    sections = ["# Full reproduction report\n"]
    sections.append("## Paper-vs-measured anchors\n")
    sections.append("```\n" + anchor_scoreboard() + "\n```\n")

    total_start = time.perf_counter()
    for name in FIGURES:
        start = time.perf_counter()
        module = importlib.import_module(f"repro.figures.{name}")
        rendered = module.generate().render()
        elapsed = time.perf_counter() - start
        print(f"  {name:<9s} regenerated in {elapsed:6.2f}s")
        sections.append(f"## {name}\n")
        sections.append("```\n" + rendered + "\n```\n")

    output.write_text("\n".join(sections))
    print(f"\nwrote {output} ({output.stat().st_size / 1024:.0f} KiB) in "
          f"{time.perf_counter() - total_start:.1f}s")


if __name__ == "__main__":
    main(Path(sys.argv[1]) if len(sys.argv) > 1 else Path("reproduction_report.md"))
