"""The GPU-instance characterization campaign (Figures 7-9).

Replays Section 6 on the simulated 8xV100 node: per-task breakdowns,
the CUDA kernel / data-movement profile, and multi-device strong
scaling — including the paper's headline findings that data movement
dominates device activity and that multi-GPU parallel efficiency
collapses well below the CPU instance's.

Run:  python examples/gpu_campaign.py
"""

from repro.core.report import render_breakdown
from repro.figures import fig07, fig08, fig09
from repro.gpu import simulate_gpu_run
from repro.parallel import simulate_cpu_run


def main() -> None:
    print(fig09.generate(sizes_k=(32, 2048)).render())
    print()
    print(fig07.generate(sizes_k=(2048,), gpus=(1, 8)).render())
    print()
    print(fig08.generate(benchmarks=("rhodo",), sizes_k=(864, 2048), gpus=(8,)).render())
    print()

    print("Kernel/data-movement profile, LJ 2048k on 8 GPUs:")
    r = simulate_gpu_run("lj", 2_048_000, 8)
    print(render_breakdown(r.kernel_fractions()))
    print()

    print("Strong-scaling summary at 2048k atoms (parallel efficiency %):")
    for bench in ("lj", "chain", "eam", "rhodo"):
        g1 = simulate_gpu_run(bench, 2_048_000, 1)
        g8 = simulate_gpu_run(bench, 2_048_000, 8)
        c1 = simulate_cpu_run(bench, 2_048_000, 1)
        c64 = simulate_cpu_run(bench, 2_048_000, 64)
        gpu_eff = 100 * g8.ts_per_s / (g1.ts_per_s * 8)
        cpu_eff = 100 * c64.ts_per_s / (c1.ts_per_s * 64)
        print(f"  {bench:<6s}  GPU 8-dev: {gpu_eff:5.1f}%   CPU 64-rank: {cpu_eff:5.1f}%")
    print()
    r = simulate_gpu_run("rhodo", 2_048_000, 8)
    print(f"rhodopsin 2M atoms, 8 GPUs: {r.ts_per_s:.1f} TS/s, "
          f"avg GPU utilization {100 * r.gpu_utilization:.0f}% "
          "(paper: ~30%)")


if __name__ == "__main__":
    main()
