"""Section 10's takeaways, quantified: what would each fix buy?

The paper ends with optimization directions for next-generation
commodity platforms.  With both the workload and the platforms modelled,
each direction becomes a knob:

* port the fixes (SHAKE) and bonded terms to the device,
* replace contended PCIe with an NVLink-class interconnect,
* fuse kernels / cut offload synchronization,
* balance the CPU ranks,

plus the introduction's framing question — how far commodity hardware
stays from an Anton-3-class DSA even after all of it.

Run:  python examples/next_platform_projections.py
"""

from repro.core.report import render_table
from repro.studies.takeaways import (
    GPU_IMPROVEMENTS,
    commodity_fleet_gap,
    dsa_gap,
    project_cpu_balance,
    project_gpu_improvements,
)


def gpu_directions() -> None:
    print("--- GPU-node directions (rhodopsin, 2048k atoms, 8 x V100) ---")
    projections = project_gpu_improvements()
    rows = []
    for improvement in GPU_IMPROVEMENTS:
        m = projections[improvement.name]
        rows.append([
            improvement.name,
            f"{m['ts_per_s']:.1f}",
            f"{m['speedup']:.2f}x",
            f"{m['ns_per_day']:.2f}",
            f"{100 * m['gpu_utilization']:.0f}%",
        ])
    print(render_table(
        ["improvement", "TS/s", "speedup", "ns/day", "GPU util"], rows
    ))
    print()


def cpu_direction() -> None:
    print("--- CPU-node direction: remove the work imbalance ---")
    rows = []
    for bench in ("chute", "chain", "rhodo", "lj", "eam"):
        result = project_cpu_balance(bench)
        rows.append([
            bench,
            f"{result['ts_per_s']:.1f}",
            f"{result['ts_per_s_balanced']:.1f}",
            f"{result['speedup']:.2f}x",
        ])
    print(render_table(
        ["benchmark", "TS/s (as measured)", "TS/s (balanced)", "gain"], rows,
    ))
    print("(Chute — the paper's worst case — has the most to recover)\n")


def the_gap() -> None:
    print("--- How far from a DSA? (the introduction's 1000x) ---")
    projections = project_gpu_improvements()
    base = projections["baseline"]["ns_per_day"]
    best = projections["all-combined"]["ns_per_day"]
    print(f"single 8-GPU node today:      {base:6.2f} ns/day  "
          f"({dsa_gap(base):,.0f}x behind Anton 3)")
    print(f"single node, all fixes:       {best:6.2f} ns/day  "
          f"({dsa_gap(best):,.0f}x behind)")
    fleet = commodity_fleet_gap()
    print(f"512-node commodity fleet:     like-for-like gap {fleet:,.0f}x "
          "(the paper: 'up to 1000x slower than DSAs')")


if __name__ == "__main__":
    gpu_directions()
    cpu_direction()
    the_gap()
