"""Physics showcase: the functional MD engine on its own terms.

Demonstrates that the substrate under the characterization study is a
real molecular-dynamics engine, not a stopwatch:

* Ewald summation reproduces the NaCl Madelung constant;
* PPPM converges to Ewald as its grid refines;
* a rigid-water (SHAKE) box runs stable NPT dynamics with PPPM
  electrostatics — the full Rhodopsin-proxy stack;
* a granular bed flows down the 26-degree chute under gravity while
  dissipating energy through frictional contacts.

Run:  python examples/physics_showcase.py
"""

import numpy as np

from repro.md import EwaldSummation, NeighborList, PPPM
from repro.md.atoms import AtomSystem
from repro.md.box import Box
from repro.md.potentials.charmm import CharmmCoulLong
from repro.suite import get_benchmark


def madelung_demo() -> None:
    print("--- Ewald summation vs the NaCl Madelung constant ---")
    n = 4
    coords = (
        np.array(np.meshgrid(*[np.arange(n)] * 3, indexing="ij")).reshape(3, -1).T
    ).astype(float)
    charges = np.where(coords.sum(axis=1) % 2 == 0, 1.0, -1.0)
    system = AtomSystem(coords + 0.25, Box([n, n, n]), charges=charges)

    alpha = 2.0
    pair = CharmmCoulLong(
        epsilon=[0.0], sigma=[1.0], lj_inner=1.2, cutoff=1.9, alpha=alpha
    )
    nlist = NeighborList(1.9, 0.0)
    nlist.build(system)
    real = pair.energy_only(system, nlist)
    recip = EwaldSummation(alpha, accuracy=1e-8).energy_only(system)
    madelung = -2.0 * (real + recip) / system.n_atoms
    print(f"computed Madelung constant: {madelung:.6f}   (exact: 1.747565)\n")


def pppm_convergence_demo() -> None:
    print("--- PPPM converges to Ewald with grid refinement ---")
    rng = np.random.default_rng(3)
    box = Box([9.0, 9.0, 9.0])
    q = rng.normal(size=60)
    q -= q.mean()
    system = AtomSystem(rng.uniform(0, 9, (60, 3)), box, charges=q)
    system.forces[:] = 0.0
    EwaldSummation(1.0, accuracy=1e-10).compute(system)
    reference = system.forces.copy()
    for grid in ((16,) * 3, (24,) * 3, (32,) * 3):
        system.forces[:] = 0.0
        PPPM(accuracy=1e-4, cutoff=3.0, alpha=1.0, grid=grid).compute(system)
        rel = np.sqrt(np.mean((system.forces - reference) ** 2)) / np.sqrt(
            np.mean(reference**2)
        )
        print(f"  grid {grid[0]:>2d}^3: relative RMS force error {rel:.2e}")
    print()


def rhodo_stack_demo() -> None:
    print("--- Rigid-water NPT dynamics (the rhodopsin-proxy stack) ---")
    sim = get_benchmark("rhodo").build(300)
    sim.run(40)
    assert sim.constraints is not None
    print(f"  atoms: {sim.system.n_atoms}, SHAKE constraints: {sim.n_constraints}")
    print(f"  PPPM grid: {sim.kspace.grid}, alpha={sim.kspace.alpha:.3f}")
    print(f"  after 40 steps: T={sim.system.temperature(sim.n_constraints):.3f}, "
          f"max constraint violation {sim.constraints.max_violation(sim.system):.1e}")
    print()


def chute_flow_demo() -> None:
    print("--- Granular chute flow with frictional contact history ---")
    sim = get_benchmark("chute").build(200)
    potential = sim.potentials[0]
    sim.run(400)
    v_down = sim.system.velocities[:, 0].mean()
    print(f"  grains: {sim.system.n_atoms}, active contacts: "
          f"{potential.active_contacts}")
    print(f"  mean downhill velocity after 400 steps: {v_down:.4f} (flows +x)")


if __name__ == "__main__":
    madelung_demo()
    pppm_convergence_demo()
    rhodo_stack_demo()
    chute_flow_demo()
