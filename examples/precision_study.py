"""The floating-point precision study (Section 8, Figures 15-16).

LAMMPS normally computes pairwise forces in single precision and
accumulates in double ("mixed"); this study switches the whole pairwise
computation to pure single or pure double on both instances and shows
the paper's finding: the impact depends entirely on how pair-bound each
configuration is (LJ-on-GPU most sensitive, Rhodopsin-on-GPU barely).

Run:  python examples/precision_study.py
"""

from repro.core.report import render_table
from repro.figures import fig15, fig16
from repro.gpu import simulate_gpu_run
from repro.parallel import simulate_cpu_run


def main() -> None:
    print(fig15.generate(sizes_k=(2048,), ranks=(1, 64)).render())
    print()
    print(fig16.generate(sizes_k=(2048,), gpus=(1, 8)).render())
    print()

    rows = []
    for bench in ("lj", "eam", "chain", "rhodo"):
        cpu_s = simulate_cpu_run(bench, 2_048_000, 64, precision="single").ts_per_s
        cpu_d = simulate_cpu_run(bench, 2_048_000, 64, precision="double").ts_per_s
        gpu_s = simulate_gpu_run(bench, 2_048_000, 8, precision="single").ts_per_s
        gpu_d = simulate_gpu_run(bench, 2_048_000, 8, precision="double").ts_per_s
        rows.append([
            bench,
            f"{100 * (1 - cpu_d / cpu_s):.1f}%",
            f"{100 * (1 - gpu_d / gpu_s):.1f}%",
        ])
    print(render_table(
        ["benchmark", "CPU double penalty", "GPU double penalty"],
        rows,
        title="Single -> double slowdown at 2048k atoms "
              "(EAM tracks LJ, Chain tracks Rhodopsin):",
    ))


if __name__ == "__main__":
    main()
