"""Quickstart: run a real MD benchmark, then model it at paper scale.

Two layers in one script:

1. the functional engine actually simulates a small LJ melt (the
   ``in.lj`` deck) and prints its thermodynamics and the Table 1 task
   breakdown of the run;
2. the calibrated performance model evaluates the same benchmark at the
   paper's 2-million-atom scale on the simulated Xeon 8358 node and
   8xV100 node.

Run:  python examples/quickstart.py
"""

from repro.core.report import render_breakdown, render_table
from repro.gpu import simulate_gpu_run
from repro.parallel import simulate_cpu_run
from repro.suite import get_benchmark


def run_functional_lj() -> None:
    print("=" * 68)
    print("1. Functional engine: 500-atom LJ melt, 200 velocity-Verlet steps")
    print("=" * 68)
    sim = get_benchmark("lj").build(500)
    sim.setup()
    e0 = sim.total_energy()
    sim.run(200)
    e1 = sim.total_energy()

    print(f"atoms:               {sim.system.n_atoms}")
    print(f"neighbors/atom:      {sim.neighbor.stats.last_neighbors_per_atom:.1f}"
          "   (Table 2 says 55)")
    print(f"energy drift:        {abs(e1 - e0) / abs(e0):.2e} over 200 steps")
    print(f"temperature:         {sim.system.temperature():.3f}")
    print(f"neighbor rebuilds:   {sim.counts.neighbor_builds}")
    print()
    print(render_breakdown(sim.task_breakdown(), title="Task breakdown (measured):"))
    print()


def model_paper_scale() -> None:
    print("=" * 68)
    print("2. Performance model: LJ with 2,048k atoms on the paper's nodes")
    print("=" * 68)
    rows = []
    for ranks in (1, 8, 64):
        r = simulate_cpu_run("lj", 2_048_000, ranks)
        rows.append([f"CPU, {ranks} ranks", f"{r.ts_per_s:.1f}",
                     f"{r.power_watts:.0f}", f"{r.energy_efficiency:.3f}"])
    for gpus in (1, 8):
        g = simulate_gpu_run("lj", 2_048_000, gpus)
        rows.append([f"GPU, {gpus} device(s)", f"{g.ts_per_s:.1f}",
                     f"{g.power_watts:.0f}", f"{g.energy_efficiency:.3f}"])
    print(render_table(["configuration", "TS/s", "watts", "TS/s/W"], rows))
    print()
    r = simulate_cpu_run("rhodo", 2_048_000, 64)
    g = simulate_gpu_run("rhodo", 2_048_000, 8)
    print("Headline (Section 10): rhodopsin 2M atoms at a 2 fs timestep:")
    print(f"  CPU node: {r.ns_per_day(2.0):.2f} ns/day   (paper: ~2.0)")
    print(f"  GPU node: {g.ns_per_day(2.0):.2f} ns/day   (paper: ~2.8)")


if __name__ == "__main__":
    run_functional_lj()
    model_paper_scale()
