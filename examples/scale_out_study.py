"""Scale-out vs single-node study (the paper's Section 4.1 argument).

The paper motivates single-node characterization by the rapid
inefficiency of multi-node strong scaling — "33% parallel efficiency
for LJ on Haswell with 64 nodes" — and by weak memory utilization when
small subdomains are spread over many hosts.  This example reproduces
that contrast: single-node strong scaling, multi-node strong scaling,
and the weak-scaling view prior work reported.

Run:  python examples/scale_out_study.py
"""

from repro.core.report import render_table
from repro.parallel import simulate_cpu_run
from repro.parallel.multinode import simulate_multinode_run
from repro.perfmodel.workloads import get_workload
from repro.studies.weak_scaling import weak_scaling_study


def single_node() -> None:
    print("--- Single-node strong scaling (this paper's focus) ---")
    rows = []
    base = simulate_cpu_run("lj", 2_048_000, 1)
    for ranks in (1, 8, 32, 64):
        r = simulate_cpu_run("lj", 2_048_000, ranks)
        rows.append([ranks, f"{r.ts_per_s:.1f}",
                     f"{100 * r.ts_per_s / (base.ts_per_s * ranks):.1f}%"])
    print(render_table(["ranks", "TS/s", "parallel eff"], rows))
    print()


def multi_node() -> None:
    print("--- Multi-node strong scaling (LJ, 2048k atoms) ---")
    base = simulate_multinode_run("lj", 2_048_000, 1)
    rows = []
    for nodes in (1, 2, 8, 16, 64):
        r = simulate_multinode_run("lj", 2_048_000, nodes)
        eff = 100 * r.ts_per_s / (base.ts_per_s * nodes)
        rows.append([nodes, r.total_ranks, f"{r.ts_per_s:.0f}", f"{eff:.1f}%"])
    print(render_table(["nodes", "total ranks", "TS/s", "parallel eff"], rows))
    print("(the paper quotes ~33% at 64 nodes for LJ)\n")


def memory_argument() -> None:
    print("--- The memory argument (Section 4.1) ---")
    w = get_workload("rhodo")
    footprint = w.memory_bytes(2_048_000) / 1e9
    print(f"biggest experiment: {footprint:.1f} GB resident "
          "(the CPU instance has 1024 GB)")
    print("spreading it over 64 nodes leaves each node's DRAM ~0.04% used\n")


def weak_scaling_contrast() -> None:
    print("--- Weak scaling (what prior work showed) ---")
    rows = [
        [p.n_ranks, f"{p.n_atoms // 1000}k", f"{100 * p.weak_efficiency:.1f}%"]
        for p in weak_scaling_study("lj")
    ]
    print(render_table(["ranks", "atoms", "weak efficiency"], rows))


if __name__ == "__main__":
    single_node()
    multi_node()
    memory_argument()
    weak_scaling_contrast()
