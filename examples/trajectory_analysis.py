"""Trajectory analysis: structure and dynamics from the real engine.

Contrasts two suite benchmarks with the analysis computes:

* the LJ *melt* is a liquid — its g(r) has a smeared first shell and its
  mean-squared displacement grows (diffusion);
* the EAM *solid* is a crystal — sharp g(r) shells and bounded MSD.

Also writes an extended-XYZ trajectory (readable by OVITO/VMD/ASE) and a
checkpoint, demonstrating the production-run toolchain.

Run:  python examples/trajectory_analysis.py [output_dir]
"""

import sys
from pathlib import Path

import numpy as np

from repro.core.report import render_table
from repro.md.computes import MeanSquaredDisplacement, RadialDistribution
from repro.md.dump import XyzDumpWriter
from repro.md.restart import save_snapshot
from repro.suite import get_benchmark


def analyze(benchmark: str, n_atoms: int, steps: int, out_dir: Path):
    sim = get_benchmark(benchmark).build(n_atoms)
    sim.setup()
    sim.run(steps // 2)  # settle first

    writer = XyzDumpWriter(out_dir / f"{benchmark}.xyz", every=25)
    rdf = RadialDistribution(
        r_max=0.45 * float(sim.system.box.lengths.min()), n_bins=60
    )
    msd = MeanSquaredDisplacement(sim.system)
    for step in range(1, steps // 2 + 1):
        sim.step()
        if writer.should_dump(step):
            writer.write_frame(sim.system, step)
        if step % 20 == 0:
            rdf.sample(sim.system)
            msd.sample(sim.system, step * sim.dt)

    save_snapshot(sim, out_dir / f"{benchmark}.npz")
    g = rdf.g_of_r()
    r = rdf.bin_centers
    first_peak = r[np.argmax(g)]
    __, msd_values = msd.series()
    return {
        "benchmark": benchmark,
        "first_peak_r": first_peak,
        "peak_height": g.max(),
        "final_msd": msd_values[-1],
        "frames": writer.frames_written,
    }


def main(out_dir: Path) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    results = [
        analyze("lj", 500, 400, out_dir),
        analyze("eam", 500, 200, out_dir),
    ]
    rows = [
        [
            r["benchmark"],
            f"{r['first_peak_r']:.2f}",
            f"{r['peak_height']:.1f}",
            f"{r['final_msd']:.3f}",
            r["frames"],
        ]
        for r in results
    ]
    print(render_table(
        ["benchmark", "g(r) peak at", "peak height", "final MSD", "frames dumped"],
        rows,
        title="Liquid (lj) vs crystal (eam):",
    ))
    lj, eam = results
    print()
    print(f"the melt diffuses (MSD {lj['final_msd']:.3f}) while the solid's "
          f"atoms rattle in place (MSD {eam['final_msd']:.3f});")
    print(f"the crystal's g(r) peak ({eam['peak_height']:.1f}) towers over "
          f"the liquid's ({lj['peak_height']:.1f}).")
    print(f"trajectories + checkpoints written under {out_dir}/")


if __name__ == "__main__":
    main(Path(sys.argv[1]) if len(sys.argv) > 1 else Path("analysis_output"))
