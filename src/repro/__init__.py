"""repro — reproduction of "Characterizing Molecular Dynamics Simulation
on Commodity Platforms" (Peverelli et al., IISWC 2022).

The library has two layers:

1. a **functional MD engine** (:mod:`repro.md`) implementing, from
   scratch in numpy, all the physics the paper's five LAMMPS benchmarks
   exercise — LJ melt, FENE polymer chains, EAM copper, granular chute
   flow, and a solvated-biomolecule proxy with PPPM electrostatics,
   SHAKE constraints and NPT integration (packaged as the ready-made
   suite in :mod:`repro.suite`);
2. a **calibrated performance model** of the paper's two cloud nodes
   (:mod:`repro.platforms`, :mod:`repro.perfmodel`) with simulated
   single-node MPI (:mod:`repro.parallel`) and multi-GPU offload
   (:mod:`repro.gpu`) execution, driven by the Figure 2 automation
   framework (:mod:`repro.core`), regenerating every table and figure
   of the evaluation (:mod:`repro.figures`).

Quickstart::

    from repro.suite import get_benchmark
    sim = get_benchmark("lj").build(500)
    sim.run(100)
    print(sim.task_breakdown())

    from repro.parallel import simulate_cpu_run
    print(simulate_cpu_run("rhodo", 2_048_000, 64).ts_per_s)
"""

from repro.core import ExperimentSpec, Mode, RunsTable, run_experiment, sweep
from repro.gpu import simulate_gpu_run
from repro.parallel import simulate_cpu_run
from repro.suite import get_benchmark, registry

__version__ = "1.0.0"

__all__ = [
    "ExperimentSpec",
    "Mode",
    "sweep",
    "run_experiment",
    "RunsTable",
    "simulate_cpu_run",
    "simulate_gpu_run",
    "get_benchmark",
    "registry",
    "__version__",
]
