"""``python -m repro`` — thin shim over :mod:`repro.cli`.

The subcommand registry, shared option groups and command bodies all
live in :mod:`repro.cli`; this module only keeps the historical import
path (``from repro.__main__ import main``) working.
"""

from __future__ import annotations

import sys

from repro.cli import main

__all__ = ["main"]

if __name__ == "__main__":
    sys.exit(main())
