"""Command-line interface: ``python -m repro <command>``.

Commands mirror the workflow of the authors' run/profile scripts:

* ``campaign`` — sweep a parameter space on a simulated instance and
  write the results in the artifact layout (``runs.csv`` + profiles);
* ``figure``  — regenerate one paper table/figure as a text table;
* ``anchors`` — print the paper-vs-measured anchor scoreboard;
* ``run-deck`` — parse and execute a LAMMPS input deck (the supported
  command subset, see ``repro.md.deck``);
* ``trace``   — run a functional benchmark under the span tracer and
  write a Chrome trace, metrics snapshots and the timing tables (see
  ``docs/OBSERVABILITY.md``);
* ``power``   — run a functional benchmark under the hardware
  telemetry sampler (RAPL / procfs / calibrated model, auto-detected)
  and report the measured per-phase energy breakdown and TS/s/W (see
  ``docs/OBSERVABILITY.md`` §7);
* ``scale``   — run a benchmark on the real shared-memory parallel
  engine, check serial/parallel parity, and report the measured
  per-worker timeline and speedups (see ``docs/SCALING.md``);
* ``checkpoint`` — run a benchmark under periodic checkpointing with
  supervised crash recovery, optionally injecting worker faults, and
  verify restart parity against an uninterrupted run (see
  ``docs/RELIABILITY.md``); the run directory comes out *certified* —
  digest chain + manifest — ready for ``certify``;
* ``certify`` — verify a certified run directory by seedable interval
  replay (bitwise in a matching environment, tolerance-tiered
  cross-mode), or audit a service result cache with ``--cache`` (see
  ``docs/REPRODUCIBILITY.md``).
"""

from __future__ import annotations

import argparse
import importlib
import sys
from pathlib import Path

from repro.core.aggregator import RunsTable
from repro.core.artifact import ArtifactLayout
from repro.core.experiment import Mode, sweep
from repro.core.runner import run_experiment
from repro.md.precision import PARITY_TOLERANCES
from repro.perfmodel.workloads import GPU_COUNTS, RANK_COUNTS, SIZES_K
from repro.suite import BENCHMARK_NAMES, CPU_BENCHMARKS, GPU_BENCHMARKS

FIGURES = (
    "table2",
    "table3",
    *(f"fig{n:02d}" for n in range(3, 17)),
    "headline",
)


def _cmd_campaign(args: argparse.Namespace) -> int:
    benchmarks = args.benchmarks or (
        CPU_BENCHMARKS if args.platform == "cpu" else GPU_BENCHMARKS
    )
    resources = args.resources or (
        RANK_COUNTS if args.platform == "cpu" else GPU_COUNTS
    )
    sizes = args.sizes or SIZES_K
    table = RunsTable()
    layout = ArtifactLayout(args.out)
    specs = list(
        sweep(benchmarks, args.platform, sizes, resources, mode=Mode.PROFILING)
    )
    print(f"running {len(specs)} simulated experiments on the "
          f"{args.platform} instance ...")
    for spec in specs:
        record = run_experiment(spec)
        table.add(record)
        layout.write_profile(record)
    written = layout.write_runs(table)
    for platform, path in written.items():
        print(f"wrote {platform} runs to {path}")
    print(f"wrote {len(layout.profile_index())} profile files under {args.out}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    module = importlib.import_module(f"repro.figures.{args.name}")
    print(module.generate().render())
    return 0


def _cmd_anchors(args: argparse.Namespace) -> int:
    from repro.gpu import simulate_gpu_run
    from repro.parallel import simulate_cpu_run
    from repro.perfmodel.calibration import PAPER_ANCHORS as A

    rows = [
        ("rhodo CPU 2048k/64 [TS/s]", A.rhodo_cpu_2048k_64r_ts,
         simulate_cpu_run("rhodo", 2_048_000, 64).ts_per_s),
        ("rhodo CPU 2048k/64 @1e-7 [TS/s]", A.rhodo_cpu_2048k_64r_ts_e7,
         simulate_cpu_run("rhodo", 2_048_000, 64, kspace_error=1e-7).ts_per_s),
        ("lj CPU single [TS/s]", A.lj_cpu_2048k_64r_ts_single,
         simulate_cpu_run("lj", 2_048_000, 64, precision="single").ts_per_s),
        ("lj CPU double [TS/s]", A.lj_cpu_2048k_64r_ts_double,
         simulate_cpu_run("lj", 2_048_000, 64, precision="double").ts_per_s),
        ("rhodo GPU 2048k/8 [TS/s]", A.rhodo_gpu_2048k_8g_ts,
         simulate_gpu_run("rhodo", 2_048_000, 8).ts_per_s),
        ("rhodo GPU @1e-7 [TS/s]", A.rhodo_gpu_2048k_8g_ts_e7,
         simulate_gpu_run("rhodo", 2_048_000, 8, kspace_error=1e-7).ts_per_s),
        ("lj GPU single [TS/s]", A.lj_gpu_2048k_8g_ts_single,
         simulate_gpu_run("lj", 2_048_000, 8, precision="single").ts_per_s),
        ("rhodo CPU [ns/day]", A.rhodo_cpu_ns_per_day,
         simulate_cpu_run("rhodo", 2_048_000, 64).ns_per_day(2.0)),
        ("rhodo GPU [ns/day]", A.rhodo_gpu_ns_per_day,
         simulate_gpu_run("rhodo", 2_048_000, 8).ns_per_day(2.0)),
    ]
    print(f"{'anchor':<36s} {'paper':>8s} {'measured':>9s} {'delta':>7s}")
    print("-" * 64)
    for name, paper, measured in rows:
        delta = 100.0 * (measured - paper) / paper
        print(f"{name:<36s} {paper:>8.2f} {measured:>9.2f} {delta:>+6.1f}%")
    return 0


def _cmd_run_deck(args: argparse.Namespace) -> int:
    from repro.core.report import render_breakdown
    from repro.md.deck import parse_deck

    deck = parse_deck(Path(args.deck).read_text())
    print(f"parsed {len(deck.commands)} commands "
          f"({deck.units} units, {deck.simulation.system.n_atoms} atoms); "
          f"running {deck.run_steps} steps ...")
    simulation = deck.run()
    print(f"done: {simulation.counts.timesteps} steps, "
          f"T = {simulation.system.temperature():.4f}, "
          f"E_total = {simulation.total_energy():.4f}")
    print(render_breakdown(simulation.task_breakdown(), title="Task breakdown:"))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.observability import (
        MetricsRegistry,
        Tracer,
        render_agreement,
        render_span_table,
        render_task_table,
    )
    from repro.suite import get_benchmark

    bench = get_benchmark(args.experiment)
    tracer = Tracer(capacity=args.capacity)
    metrics = MetricsRegistry()
    sim = bench.build_instrumented(args.atoms, tracer=tracer, metrics=metrics)
    print(f"built {args.experiment}: {sim.system.n_atoms} atoms, "
          f"backend {sim.backend.name}")
    if args.warmup:
        sim.run(args.warmup)
    tracer.reset()

    out = Path(args.out)
    metrics_path = out / "metrics.jsonl"
    if metrics_path.exists():
        metrics_path.unlink()  # JSONL appends; start each invocation fresh
    print(f"tracing {args.steps} steps ...")
    from repro.md import RunConfig

    chunk = max(1, min(args.snapshot_every, args.steps))
    done = 0
    while done < args.steps:
        n = min(chunk, args.steps - done)
        sim.run(RunConfig(steps=n, reset_timers=done == 0))
        done += n
        metrics.write_snapshot(metrics_path, step=done, experiment=args.experiment)

    trace_path = tracer.write_chrome_trace(
        out / "trace.json", process_name=f"repro:{args.experiment}"
    )
    print()
    print(render_task_table(sim.timers, args.steps))
    print()
    print(render_span_table(tracer))
    print()
    print(tracer.flame_report())
    print()
    print(render_agreement(sim.timers, tracer))
    if tracer.n_dropped:
        print(f"ring buffer wrapped: {tracer.n_dropped} oldest spans dropped "
              f"(raise --capacity to keep them)")
    print(f"wrote {trace_path} (open in chrome://tracing or ui.perfetto.dev)")
    print(f"wrote {metrics_path}")
    return 0


def _cmd_power(args: argparse.Namespace) -> int:
    import json as _json

    from repro.md import RunConfig
    from repro.observability import MetricsRegistry, Tracer
    from repro.observability.telemetry import (
        TelemetrySampler,
        attribute_energy,
        detect_provider,
        platform_provenance,
        render_energy_table,
    )
    from repro.suite import get_benchmark

    try:
        provider = detect_provider(args.provider)
    except (RuntimeError, ValueError) as exc:
        print(f"power provider unavailable: {exc}", file=sys.stderr)
        return 2

    bench = get_benchmark(args.experiment)
    tracer = Tracer(capacity=args.capacity)
    metrics = MetricsRegistry()
    sim = bench.build_instrumented(args.atoms, tracer=tracer, metrics=metrics)
    print(f"built {args.experiment}: {sim.system.n_atoms} atoms, "
          f"backend {sim.backend.name}; power provider "
          f"{provider.name} ({provider.kind})")
    if args.warmup:
        sim.run(args.warmup)
    tracer.reset()

    sampler = TelemetrySampler(
        provider, period_s=args.period, metrics=metrics
    )
    chunk = max(1, min(args.report_every, args.steps))
    print(f"running {args.steps} steps, sampling every {args.period:g} s ...")
    done = 0
    sampler.start()
    try:
        while done < args.steps:
            n = min(chunk, args.steps - done)
            sim.run(RunConfig(steps=n, reset_timers=done == 0))
            done += n
            sample = sampler.sample_now()
            print(f"  step {done:>6d}/{args.steps}: {sample.watts:7.2f} W, "
                  f"{sampler.total_joules:9.2f} J cumulative", flush=True)
    finally:
        sampler.stop()

    attribution = attribute_energy(sampler.samples, tracer.records())
    duration = sampler.duration_s
    ts_per_s = args.steps / duration if duration > 0 else 0.0
    watts = sampler.mean_watts
    print()
    print(render_energy_table(attribution, steps=args.steps))
    print()
    print(f"throughput:        {ts_per_s:10.3f} TS/s over {duration:.2f} s")
    print(f"mean power:        {watts:10.2f} W ({provider.name}, {provider.kind})")
    print(f"energy efficiency: {ts_per_s / watts if watts else 0.0:10.4f} TS/s/W")
    print(f"energy per step:   "
          f"{sampler.total_joules / args.steps:10.3f} J/step")
    if sampler.under_sampled:
        print(f"NOTE: run lasted {duration:.2f} s < "
              f"{sampler.min_run_seconds:.0f} s — under-sampled; do not "
              "compare these numbers across runs")

    if args.trace:
        path = tracer.write_chrome_trace(
            Path(args.trace), process_name=f"repro:power:{args.experiment}"
        )
        print(f"wrote {path}")
    if args.json:
        report = {
            "schema": "repro-power-report/1",
            "experiment": args.experiment,
            "n_atoms": sim.system.n_atoms,
            "steps": args.steps,
            "warmup": args.warmup,
            "duration_s": duration,
            "ts_per_s": ts_per_s,
            "mean_watts": watts,
            "joules": sampler.total_joules,
            "joules_per_step": sampler.total_joules / args.steps,
            "ts_per_s_per_watt": ts_per_s / watts if watts else 0.0,
            "sampling": sampler.provenance(),
            "attribution": attribution.to_json(),
            "platform": platform_provenance(),
        }
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(_json.dumps(report, indent=2) + "\n")
        print(f"wrote {path}")
    return 0


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.parallel.engine import ParallelForceExecutor
    from repro.reliability import (
        CertificationRecorder,
        CheckpointManager,
        FaultPlan,
        ResilientRunner,
    )
    from repro.suite import get_benchmark

    bench = get_benchmark(args.experiment)
    # Resolve $REPRO_FAULT_PLAN here (not just engine-side) so that
    # checkpoint-phase faults reach the manager too, and so the
    # verify-parity reference below can be pinned fault-free.
    plan = (
        FaultPlan.parse(args.fault_plan)
        if args.fault_plan
        else FaultPlan.from_env()
    )
    plan_text = args.fault_plan or (
        "; ".join(s.spec_string() for s in plan.specs) if plan else ""
    )

    def build(fault_plan=None):
        sim = bench.build(args.atoms)
        sim.set_precision(args.precision)
        if args.workers > 1:
            executor = ParallelForceExecutor(
                args.workers,
                quasi_2d=args.experiment == "chute",
                fault_plan=fault_plan,
                barrier_timeout=args.barrier_timeout,
                precision=args.precision,
            )
            sim.force_executor = executor
            executor.bind(sim)
        return sim

    sim = build(fault_plan=plan)
    print(f"built {args.experiment}: {sim.system.n_atoms} atoms on "
          f"{args.workers} worker(s) at {args.precision} precision; "
          f"checkpoint every {args.every} steps "
          f"under {args.out}"
          + (f"; fault plan {plan_text!r}" if plan_text else ""))
    manager = CheckpointManager(
        args.out, every=args.every, keep_last=args.keep_last, fault_plan=plan
    )
    # Digest on the checkpoint cadence so every retained snapshot has a
    # chain entry for `repro certify` to replay against.
    certifier = CertificationRecorder(
        args.out, every=args.every if args.every > 0 else max(1, args.steps)
    )
    runner = ResilientRunner(
        sim, manager, max_restarts=args.max_restarts, digest=certifier,
        logger=print
    )
    events = runner.run(args.steps)
    manifest = certifier.finalize(
        sim,
        steps=args.steps,
        benchmark=args.experiment,
        n_atoms=args.atoms,
        workers=1 if runner.degraded else args.workers,
        checkpoint_every=args.every,
        extra={
            "recovery_events": len(events),
            "degraded": runner.degraded,
            **({"fault_plan": plan_text} if plan_text else {}),
        },
    )
    sim.close()
    retained = [p.name for p in manager.checkpoints()]
    print(f"finished at step {sim.step_number}: "
          f"E_total = {sim.total_energy():.10f}, "
          f"{manager.writes} checkpoint writes, retained {retained}")
    print(f"recovery events: {len(events)} "
          f"({sum(e.action == 'respawn' for e in events)} respawn(s), "
          f"{sum(e.action == 'degrade-serial' for e in events)} degradation(s))")
    print(f"certification: chain head {manifest.chain_head[:16]}… "
          f"({manifest.chain_entries} digest entries) sealed in "
          f"{args.out}/manifest.json — verify with "
          f"`python -m repro certify {args.out}`")

    if not args.verify_parity:
        return 0
    # An explicitly empty plan keeps the reference run fault-free even
    # when $REPRO_FAULT_PLAN is set in the environment.
    reference = build(fault_plan=FaultPlan())
    reference.run(args.steps)
    reference.close()
    delta = float(np.abs(reference.system.positions - sim.system.positions).max())
    bitwise = bool(
        np.array_equal(reference.system.positions, sim.system.positions)
        and np.array_equal(reference.system.velocities, sim.system.velocities)
    )
    tolerance = PARITY_TOLERANCES[args.precision]
    verdict = "OK" if (bitwise or delta <= tolerance) else "DIVERGED"
    print(f"parity vs uninterrupted run: bitwise={bitwise}, "
          f"|dx|max = {delta:.3e} (tol {tolerance:.0e}, {verdict})")
    return 0 if verdict == "OK" else 1


def _cmd_scale(args: argparse.Namespace) -> int:
    import os

    import numpy as np

    from repro.md import RunConfig
    from repro.parallel.engine import ParallelForceExecutor
    from repro.suite import get_benchmark

    bench = get_benchmark(args.experiment)
    quasi_2d = args.experiment == "chute"

    backend_name = None
    if args.backend:
        from repro.md.kernels import (
            backend_diagnostics,
            backend_spec,
            get_backend,
        )

        # get_backend degrades an unavailable optional backend to the
        # default with a warning; surface the reason on the CLI too.
        backend_name = backend_spec(get_backend(args.backend))
        if backend_name != args.backend:
            print(f"backend {args.backend!r} is unavailable "
                  f"({backend_diagnostics().get(args.backend, 'unknown')}); "
                  f"using {backend_name!r}")

    serial = bench.build(args.atoms)
    serial.set_precision(args.precision)
    if backend_name:
        serial.set_backend(backend_name)
    serial.setup()
    print(f"built {args.experiment}: {serial.system.n_atoms} atoms, "
          f"{os.cpu_count()} cores visible; running {args.steps} steps at "
          f"{args.precision} precision on the {serial.backend.name} "
          f"backend, serial then on {args.workers} workers")
    import time as _time

    tick = _time.perf_counter()
    cpu_tick = _time.process_time()
    serial.run(RunConfig(steps=args.steps, reset_timers=True))
    serial_wall = _time.perf_counter() - tick
    serial_cpu = _time.process_time() - cpu_tick
    serial_pair = serial.timers.seconds.get("Pair", 0.0)

    manager = None
    if args.checkpoint_every > 0:
        from repro.reliability import CheckpointManager

        manager = CheckpointManager(
            args.checkpoint_dir, every=args.checkpoint_every
        )
        print(f"checkpointing every {args.checkpoint_every} steps "
              f"under {args.checkpoint_dir}")

    parallel = bench.build(args.atoms)
    parallel.set_precision(args.precision)
    if backend_name:
        parallel.set_backend(backend_name)
    executor = ParallelForceExecutor(
        args.workers, quasi_2d=quasi_2d, precision=args.precision
    )
    parallel.force_executor = executor
    executor.bind(parallel)
    with parallel:
        parallel.setup()
        # Drop the setup-time initial build from the accumulators; the
        # serial side's reset_timers does the same for its task timers.
        executor.reset_timings()
        storage = np.dtype(executor.precision.storage_dtype)
        print(f"shm arena: {executor.arena_nbytes / 1e6:.2f} MB "
              f"({storage.name} per-atom exchange state)")
        tick = _time.perf_counter()
        cpu_tick = _time.process_time()
        parallel.run(
            RunConfig(steps=args.steps, reset_timers=True, checkpoint=manager)
        )
        parallel_wall = _time.perf_counter() - tick
        master_cpu = _time.process_time() - cpu_tick
        if manager is not None:
            print(f"wrote {manager.writes} checkpoints, retained "
                  f"{[p.name for p in manager.checkpoints()]}")

        force_delta = float(
            np.abs(serial.system.forces - parallel.system.forces).max()
        )
        energy_delta = abs(serial.potential_energy - parallel.potential_energy)
        parity_tol = PARITY_TOLERANCES[args.precision]
        print(f"parity: |dF|max = {force_delta:.3e}, "
              f"|dE| = {energy_delta:.3e} "
              f"(tol {parity_tol:.0e}, "
              f"{'OK' if force_delta < parity_tol else 'DIVERGED'})")
        print(f"serial:   {args.steps / serial_wall:8.2f} steps/s "
              f"({serial_wall:.3f} s wall, Pair {serial_pair:.3f} s)")
        print(f"parallel: {args.steps / parallel_wall:8.2f} steps/s "
              f"({parallel_wall:.3f} s wall)")
        steps = max(1, executor.steps_measured)
        # Critical path under true concurrency: master CPU per step plus
        # the slowest worker's (pair + amortized rebuild) CPU per step.
        # CPU time is scheduling-invariant, so this holds on hosts with
        # fewer cores than workers (where wall clock just serializes).
        worker_cpu = (
            executor.worker_pair_cpu_seconds + executor.worker_neigh_cpu_seconds
        ) / steps
        critical = master_cpu / args.steps + float(worker_cpu.max())
        print(f"wall-clock speedup:     {serial_wall / parallel_wall:.2f}x")
        print(f"critical-path speedup:  {serial_cpu / args.steps / critical:.2f}x "
              f"(slowest worker pair+rebuild CPU: {worker_cpu.max()*1e3:.2f} "
              f"ms/step)")
        print()
        print(executor.timeline().render())
    return 0 if force_delta < parity_tol else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.service import BatchService, SpoolServer

    spool = Path(args.spool)
    service = BatchService(
        args.workers,
        cache_dir=spool / "cache",
        max_cache_entries=args.cache_entries,
        max_requeues=args.max_requeues,
    )
    server = SpoolServer(spool, service, poll=args.poll)
    server.install_signal_handlers()
    print(f"serving spool {spool} on {args.workers} workers "
          f"(cache: {spool / 'cache'}); SIGTERM drains and exits")
    try:
        server.serve_forever(max_seconds=args.max_seconds)
    finally:
        service.close()
        snapshot = service.metrics.write_snapshot(spool / "metrics.jsonl")
        stats = service.stats()
        cache = stats["cache"]
        print(f"drained: answered {server.answered} tickets, "
              f"cache {cache['hits']} hits / {cache['misses']} misses, "
              f"{stats['worker_respawns']} worker respawns; "
              f"metrics -> {snapshot}")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import JobSpec, SpoolClient

    if (args.experiment is None) == (args.deck is None):
        print("give exactly one of an experiment name or --deck PATH")
        return 2
    deck_text = None
    if args.deck is not None:
        deck_text = open(args.deck).read()
    spec = JobSpec(
        benchmark=args.experiment,
        deck=deck_text,
        n_atoms=args.atoms,
        steps=args.steps,
        seed=args.seed,
        precision=args.precision,
        backend=args.backend,
        workers=args.workers,
        tag=args.tag,
    )
    client = SpoolClient(args.spool)
    tickets = [client.submit(spec) for _ in range(args.repeat)]
    print(f"submitted {len(tickets)} ticket(s) for key "
          f"{spec.cache_key()[:16]}…")
    if args.no_wait:
        for ticket in tickets:
            print(f"  ticket {ticket}")
        return 0
    failures = 0
    for ticket in tickets:
        try:
            result = client.wait(ticket, timeout=args.timeout)
        except (RuntimeError, TimeoutError) as e:
            print(f"  {ticket[:8]} FAILED: {e}")
            failures += 1
            continue
        source = "cache" if result.cached else f"worker {result.worker_id}"
        print(f"  {ticket[:8]} done via {source}: "
              f"E_total={result.total_energy:.6f} "
              f"T={result.temperature:.4f} "
              f"({result.ts_per_s:.1f} steps/s, "
              f"digest {result.state_digest[:12]}…)")
    return 1 if failures else 0


def _cmd_certify(args: argparse.Namespace) -> int:
    from repro.md.restart import SnapshotError
    from repro.reliability.certify import (
        CertificationError,
        DigestChainError,
        ManifestError,
        audit_cache,
        certify_run,
    )

    if (args.run_dir is None) == (args.cache is None):
        print("give exactly one of a run directory or --cache DIR")
        return 2
    if args.cache is not None:
        report = audit_cache(
            args.cache,
            replay=args.replay,
            limit=args.limit,
            seed=args.seed,
            logger=print,
        )
        for key, problem in report.findings:
            print(f"FINDING {key[:16]}…: {problem}")
        for key, reason in report.skipped.items():
            print(f"skipped {key[:16]}…: {reason}")
        return 0 if report.ok else 1
    deck_text = None
    if args.deck is not None:
        deck_text = open(args.deck).read()
    try:
        report = certify_run(
            args.run_dir,
            seed=args.seed,
            at_step=args.at_step,
            backend=args.backend,
            precision=args.precision,
            workers=args.workers,
            deck_text=deck_text,
            logger=print,
        )
    except (CertificationError, DigestChainError, ManifestError,
            SnapshotError) as exc:
        print(f"CERTIFICATION FAILED ({type(exc).__name__}): {exc}")
        return 1
    for line in report.checks:
        print(f"  {line}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="IISWC'22 MD-characterization reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    campaign = sub.add_parser("campaign", help="run a simulated campaign")
    campaign.add_argument("--platform", choices=("cpu", "gpu"), default="cpu")
    campaign.add_argument("--benchmarks", nargs="*", default=None)
    campaign.add_argument("--sizes", nargs="*", type=int, default=None,
                          help="system sizes in thousands of atoms")
    campaign.add_argument("--resources", nargs="*", type=int, default=None,
                          help="MPI ranks (cpu) or devices (gpu)")
    campaign.add_argument("--out", default="campaign_output")
    campaign.set_defaults(func=_cmd_campaign)

    figure = sub.add_parser("figure", help="regenerate one table/figure")
    figure.add_argument("name", choices=FIGURES)
    figure.set_defaults(func=_cmd_figure)

    anchors = sub.add_parser("anchors", help="paper-vs-measured scoreboard")
    anchors.set_defaults(func=_cmd_anchors)

    run_deck = sub.add_parser("run-deck", help="execute a LAMMPS input deck")
    run_deck.add_argument("deck", help="path to the input script")
    run_deck.set_defaults(func=_cmd_run_deck)

    trace = sub.add_parser("trace", help="trace a functional benchmark run")
    trace.add_argument("experiment", choices=BENCHMARK_NAMES)
    trace.add_argument("--steps", type=int, default=50)
    trace.add_argument("--atoms", type=int, default=500,
                       help="target atom count (builders round to lattice)")
    trace.add_argument("--warmup", type=int, default=5,
                       help="untraced steps before recording starts")
    trace.add_argument("--out", default="trace_out")
    trace.add_argument("--capacity", type=int, default=65_536,
                       help="span ring-buffer capacity")
    trace.add_argument("--snapshot-every", type=int, default=10,
                       help="steps between metrics snapshots")
    trace.set_defaults(func=_cmd_trace)

    power = sub.add_parser(
        "power", help="measure per-phase energy with hardware telemetry"
    )
    power.add_argument("experiment", nargs="?", default="lj",
                       choices=BENCHMARK_NAMES)
    power.add_argument("--steps", type=int, default=40)
    power.add_argument("--atoms", type=int, default=32768,
                       help="target atom count (builders round to lattice)")
    power.add_argument("--warmup", type=int, default=3,
                       help="untraced/unsampled steps before measurement")
    power.add_argument("--provider", choices=("rapl", "procfs", "model"),
                       default=None,
                       help="force a power provider (default: auto-detect "
                            "rapl -> procfs -> model, or "
                            "$REPRO_POWER_PROVIDER)")
    power.add_argument("--period", type=float, default=0.5,
                       help="sampling period in seconds (paper cadence 0.5)")
    power.add_argument("--report-every", type=int, default=10,
                       help="steps between live power readouts")
    power.add_argument("--capacity", type=int, default=65_536,
                       help="span ring-buffer capacity")
    power.add_argument("--json", default=None, metavar="PATH",
                       help="write the full energy report as JSON")
    power.add_argument("--trace", default=None, metavar="PATH",
                       help="also write the Chrome trace of the sampled run")
    power.set_defaults(func=_cmd_power)

    scale = sub.add_parser(
        "scale", help="run on the shared-memory parallel engine"
    )
    scale.add_argument("experiment", choices=BENCHMARK_NAMES)
    scale.add_argument("--workers", type=int, default=2,
                       help="worker process count (one subdomain each)")
    scale.add_argument("--steps", type=int, default=20)
    scale.add_argument("--atoms", type=int, default=2000,
                       help="target atom count (builders round to lattice)")
    scale.add_argument("--checkpoint-every", type=int, default=0,
                       help="periodic checkpoint cadence in steps (0 = off)")
    scale.add_argument("--checkpoint-dir", default="checkpoint_out",
                       help="directory for --checkpoint-every snapshots")
    scale.add_argument("--backend", default=None, metavar="NAME",
                       help="kernel backend (numpy_ref, numpy_fast, "
                            "compiled); an unavailable optional backend "
                            "falls back to numpy_fast with the reason "
                            "printed, an unknown name lists what exists")
    scale.add_argument("--precision", choices=("single", "mixed", "double"),
                       default="double",
                       help="dtype policy for both the serial reference and "
                            "the worker pool (parity tolerance scales with "
                            "the mode)")
    scale.set_defaults(func=_cmd_scale)

    checkpoint = sub.add_parser(
        "checkpoint",
        help="run under periodic checkpointing with crash recovery",
    )
    checkpoint.add_argument("experiment", choices=BENCHMARK_NAMES)
    checkpoint.add_argument("--steps", type=int, default=40)
    checkpoint.add_argument("--atoms", type=int, default=500,
                            help="target atom count (builders round to lattice)")
    checkpoint.add_argument("--workers", type=int, default=1,
                            help="worker processes (1 = serial executor)")
    checkpoint.add_argument("--every", type=int, default=10,
                            help="checkpoint cadence in steps")
    checkpoint.add_argument("--keep-last", type=int, default=3,
                            help="checkpoint retention depth")
    checkpoint.add_argument("--out", default="checkpoint_out",
                            help="checkpoint directory")
    checkpoint.add_argument("--fault-plan", default=None,
                            help="inject faults: kind:worker:step[:phase];... "
                                 "(kinds kill/hang; phases step/rebuild/"
                                 "checkpoint)")
    checkpoint.add_argument("--max-restarts", type=int, default=2,
                            help="pool respawns before degrading to serial")
    checkpoint.add_argument("--barrier-timeout", type=float, default=30.0,
                            help="seconds before a silent worker is declared "
                                 "hung")
    checkpoint.add_argument("--verify-parity", action="store_true",
                            help="re-run uninterrupted and compare final state")
    checkpoint.add_argument("--precision",
                            choices=("single", "mixed", "double"),
                            default="double",
                            help="dtype policy; checkpoints record it and "
                                 "restarts refuse a silent mode change")
    checkpoint.set_defaults(func=_cmd_checkpoint)

    serve = sub.add_parser(
        "serve",
        help="run the batch-simulation service over a file spool",
    )
    serve.add_argument("--spool", default="service_spool",
                       help="spool directory shared with submitters")
    serve.add_argument("--workers", type=int, default=2,
                       help="pool size: jobs executed concurrently")
    serve.add_argument("--cache-entries", type=int, default=1024,
                       help="memory-layer bound of the result cache")
    serve.add_argument("--max-requeues", type=int, default=2,
                       help="pool-worker deaths one job survives")
    serve.add_argument("--poll", type=float, default=0.1,
                       help="spool polling period in seconds")
    serve.add_argument("--max-seconds", type=float, default=None,
                       help="exit (with drain) after this long; default "
                            "runs until SIGTERM/SIGINT")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit jobs to a running `repro serve`"
    )
    submit.add_argument("experiment", nargs="?", default=None,
                        choices=BENCHMARK_NAMES,
                        help="suite benchmark (or use --deck)")
    submit.add_argument("--deck", default=None, metavar="PATH",
                        help="submit a LAMMPS input deck instead")
    submit.add_argument("--spool", default="service_spool",
                        help="spool directory of the server")
    submit.add_argument("--atoms", type=int, default=500,
                        help="target atom count (builders round to lattice)")
    submit.add_argument("--steps", type=int, default=100)
    submit.add_argument("--seed", type=int, default=None,
                        help="builder seed (default: benchmark's own)")
    submit.add_argument("--precision", choices=("single", "mixed", "double"),
                        default="double")
    submit.add_argument("--backend", default=None, metavar="NAME",
                        help="kernel backend (numpy_ref, numpy_fast, "
                             "compiled, auto)")
    submit.add_argument("--workers", type=int, default=1,
                        help="engine workers per job (1 = serial)")
    submit.add_argument("--tag", default=None, help="free-form job label")
    submit.add_argument("--repeat", type=int, default=1,
                        help="submit the same spec N times (dedup demo)")
    submit.add_argument("--no-wait", action="store_true",
                        help="print tickets and exit without waiting")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="seconds to wait per ticket")
    submit.set_defaults(func=_cmd_submit)

    certify = sub.add_parser(
        "certify",
        help="verify a certified run directory by replay (or audit a "
             "service result cache with --cache)",
    )
    certify.add_argument("run_dir", nargs="?", default=None,
                         help="run directory holding checkpoints, "
                              "digests.jsonl, and manifest.json")
    certify.add_argument("--cache", default=None, metavar="DIR",
                         help="audit a service result cache instead of a "
                              "run directory")
    certify.add_argument("--seed", type=int, default=None,
                         help="seed for the interval (or cache-sample) "
                              "choice; default picks randomly")
    certify.add_argument("--at-step", type=int, default=None,
                         help="pin the replayed interval to the one "
                              "starting at this checkpoint step")
    certify.add_argument("--backend", default=None, metavar="NAME",
                         help="replay on this kernel backend instead of "
                              "the manifest's (forces a cross-mode "
                              "verdict)")
    certify.add_argument("--precision",
                         choices=("single", "mixed", "double"),
                         default=None,
                         help="replay at this precision instead of the "
                              "manifest's (forces a cross-mode verdict)")
    certify.add_argument("--workers", type=int, default=None,
                         help="replay on this many engine workers instead "
                              "of the manifest's")
    certify.add_argument("--deck", default=None, metavar="PATH",
                         help="deck text for deck-based manifests (hash "
                              "must match the sealed deck_sha256)")
    certify.add_argument("--replay", action="store_true",
                         help="with --cache: also re-execute entries and "
                              "compare chain heads")
    certify.add_argument("--limit", type=int, default=None,
                         help="with --cache --replay: at most this many "
                              "re-executions")
    certify.set_defaults(func=_cmd_certify)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
