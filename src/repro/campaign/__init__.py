"""Declarative characterization campaigns.

The paper is a *campaign* — sweeps over ranks, precision modes and
problem sizes — and this package is its orchestration API: one TOML
spec (a ``[base]`` job section plus ``[sweep]`` axes) expands into a
validated job matrix, runs through the batch service (overlapping
sweep cells get content-addressed dedup and in-flight coalescing for
free), and lands as one merged, provenance-stamped
``repro-bench-report/2`` record plus optional figure regeneration.

See ``docs/CAMPAIGN.md`` for the spec format and
``python -m repro campaign --help`` for the CLI.
"""

from repro.campaign.spec import (
    CampaignError,
    CampaignSpec,
    load_campaign,
    parse_campaign,
)
from repro.campaign.runner import run_campaign

__all__ = [
    "CampaignError",
    "CampaignSpec",
    "load_campaign",
    "parse_campaign",
    "run_campaign",
]
