"""Run a campaign's job matrix through the batch service.

The runner is deliberately thin: expansion and validation live in
:mod:`repro.campaign.spec`, execution semantics (content-addressed
dedup, in-flight coalescing, bounded pool, fault recovery) live in
:class:`repro.service.BatchService`.  What this module adds is the
*accounting* — which sweep cells collapsed onto the same content
address, how many executions the dedup layer saved — and the merged
``repro-bench-report/2`` record a characterization campaign is run
for, plus optional figure regeneration from the freshly merged data.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.campaign.spec import CampaignSpec
from repro.report import energy_provenance, make_report, platform_info
from repro.service import BatchService, JobResult, JobSpec

__all__ = ["run_campaign", "render_figures"]


def _dedup_accounting(
    specs: list[JobSpec], results: list[JobResult], metrics: dict
) -> dict:
    """How much execution the content-address layer saved.

    ``coalesced`` counts submissions answered by an in-flight job
    (the scheduler's ``service_dedup_hits_total``); ``served_cached``
    counts submissions answered from the completed-result cache.  Both
    are dedup hits from the campaign's point of view.
    """
    keys = [spec.cache_key() for spec in specs]
    unique = sorted(set(keys))
    coalesced = int(
        metrics.get("service_dedup_hits_total", {}).get("value", 0)
    )
    served_cached = sum(1 for result in results if result.cached)
    return {
        "cells": len(specs),
        "unique_addresses": len(unique),
        "collapsed_cells": len(specs) - len(unique),
        "coalesced": coalesced,
        "served_cached": served_cached,
        "dedup_hits": coalesced + served_cached,
        "cache_keys": unique,
    }


def _cell_row(spec: JobSpec, result: JobResult) -> dict:
    """One merged row: the swept coordinates plus the measured outcome."""
    return {
        "benchmark": spec.benchmark,
        "deck_job": spec.deck is not None,
        "n_atoms": result.n_atoms,
        "steps": result.steps,
        "seed": result.seed,
        "precision": spec.precision,
        "backend_requested": spec.backend,
        "backend": result.backend,
        "backend_provider": result.backend_provider,
        "workers": spec.workers,
        "tag": spec.tag,
        "cache_key": spec.cache_key(),
        "cached": result.cached,
        "total_energy": result.total_energy,
        "potential_energy": result.potential_energy,
        "temperature": result.temperature,
        "state_digest": result.state_digest,
        "digest_head": result.digest_head,
        "wall_seconds": result.wall_seconds,
        "ts_per_s": result.ts_per_s,
        "recovery_events": result.recovery_events,
    }


def render_figures(names, directory: str | Path) -> list[str]:
    """Regenerate named figures into ``directory`` (one .txt each)."""
    import importlib

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name in names:
        module = importlib.import_module(f"repro.figures.{name}")
        path = directory / f"{name}.txt"
        path.write_text(module.generate().render() + "\n")
        written.append(str(path))
    return written


def run_campaign(
    spec: CampaignSpec,
    *,
    out: str | Path | None = None,
    pool_workers: int | None = None,
    figure_dir: str | Path | None = None,
    timeout: float | None = None,
    verbose: bool = False,
) -> dict:
    """Expand ``spec``, execute the matrix, write the merged record.

    Returns the validated ``repro-bench-report/2`` dict (also written
    to ``out`` / the spec's ``out`` path).  Figure hooks render after
    the record lands, into ``figure_dir`` (default: ``figures/`` next
    to the report).
    """
    specs = spec.expand()
    n_workers = int(pool_workers or spec.pool_workers)
    wait = float(timeout or spec.timeout_seconds)
    if verbose:
        axes = ", ".join(
            f"{name}x{len(values)}" for name, values in spec.axes.items()
        ) or "no axes"
        print(
            f"campaign {spec.name!r}: {len(specs)} cells ({axes}), "
            f"pool={n_workers}",
            flush=True,
        )

    with BatchService(n_workers=n_workers) as service:
        if not service.wait_ready(timeout=wait):
            raise RuntimeError("batch-service pool failed to come up")
        results = service.map(specs, timeout=wait)
        stats = service.stats()

    dedup = _dedup_accounting(specs, results, stats.get("metrics", {}))
    rows = [_cell_row(s, r) for s, r in zip(specs, results)]
    precisions = sorted({spec_.precision for spec_ in specs})
    requested = sorted({str(spec_.backend) for spec_ in specs})
    resolved = sorted({row["backend"] for row in rows})

    report = make_report(
        "campaign",
        backend={
            "requested": requested if len(requested) > 1 else requested[0],
            "resolved": resolved if len(resolved) > 1 else resolved[0],
        },
        precision=precisions if len(precisions) > 1 else precisions[0],
        energy=energy_provenance(),
        platform=platform_info(pool_workers=n_workers),
        campaign={
            "name": spec.name,
            "source_sha256": spec.source_sha256,
            "axes": {name: list(values) for name, values in spec.axes.items()},
            "base": dict(spec.base),
        },
        dedup=dedup,
        cells=rows,
        service={
            "workers": stats.get("workers"),
            "worker_respawns": stats.get("worker_respawns"),
            "jobs_seen": stats.get("jobs_seen"),
            "cache": stats.get("cache"),
        },
    )

    destination = Path(out) if out is not None else Path(spec.out)
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(json.dumps(report, indent=2) + "\n")
    if verbose:
        print(
            f"wrote {destination} ({dedup['cells']} cells, "
            f"{dedup['unique_addresses']} unique, "
            f"{dedup['dedup_hits']} dedup hits)",
            flush=True,
        )

    if spec.figures:
        target = (
            Path(figure_dir)
            if figure_dir is not None
            else destination.parent / "figures"
        )
        for path in render_figures(spec.figures, target):
            if verbose:
                print(f"figure -> {path}", flush=True)

    return report
