"""Campaign specs: one declarative TOML file -> a validated job matrix.

A spec has three tables::

    [campaign]
    name    = "precision-sweep"          # required
    out     = "BENCH_campaign.json"      # merged report destination
    figures = ["table2"]                 # regenerate after the run
    pool_workers = 2                     # batch-service pool size

    [base]                               # JobSpec defaults for every cell
    benchmark = "lj"
    n_atoms   = 500
    steps     = 40

    [sweep]                              # axes: field -> list of values
    precision = ["single", "double"]
    workers   = [1, 2]

Expansion is the cartesian product of the sweep axes over the base
section — 4 cells above.  Axes are cycled in declaration order with
the *last* axis fastest, so cell order is deterministic and diffs
stay readable.  Validation is strict: unknown fields, empty axes and
an axis that repeats a ``[base]`` key all raise :class:`CampaignError`
before anything runs.

Because ``workers`` (and the other strategy knobs) are excluded from
the job content address, sweeping them collapses cells onto the same
address — the batch service then executes the physics once and answers
every collapsed cell from cache or in-flight coalescing.  That is the
paper-campaign workflow: wide matrices, paid for once per unique
physics.

Parsing uses :mod:`tomllib` (Python 3.11+) and falls back to a small
built-in reader for the spec subset on older interpreters — no
third-party dependency either way.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from pathlib import Path

from repro.service import JobSpec

__all__ = [
    "CampaignError",
    "CampaignSpec",
    "parse_campaign",
    "load_campaign",
    "JOB_FIELDS",
    "CAMPAIGN_FIELDS",
]

#: JobSpec fields a ``[base]`` section or sweep axis may set.
#: ``fault_plan`` is deliberately excluded: fault injection is a
#: reliability-test knob, not a characterization axis.
JOB_FIELDS = (
    "benchmark",
    "deck",
    "n_atoms",
    "steps",
    "seed",
    "precision",
    "backend",
    "workers",
    "checkpoint_every",
    "tag",
)

#: Keys the ``[campaign]`` table understands.
CAMPAIGN_FIELDS = ("name", "out", "figures", "pool_workers", "timeout_seconds")


class CampaignError(ValueError):
    """A campaign spec is malformed; the message names every problem."""


@dataclass(frozen=True)
class CampaignSpec:
    """A validated campaign: base job config + sweep axes.

    Construct via :func:`parse_campaign` / :func:`load_campaign`; the
    constructor re-validates so programmatic construction is equally
    safe.
    """

    name: str
    base: dict
    sweep: dict
    out: str = "BENCH_campaign.json"
    figures: tuple = ()
    pool_workers: int = 2
    timeout_seconds: float = 600.0
    #: SHA-256 of the source TOML text (provenance; None if built in code).
    source_sha256: str | None = None

    def __post_init__(self) -> None:
        problems = _validate_tables(self.base, self.sweep)
        if not self.name:
            problems.insert(0, "[campaign] name must be a non-empty string")
        if int(self.pool_workers) < 1:
            problems.append("[campaign] pool_workers must be >= 1")
        if problems:
            raise CampaignError("; ".join(problems))

    @property
    def axes(self) -> dict:
        """Sweep axes in declaration order (axis -> tuple of values)."""
        return {key: tuple(values) for key, values in self.sweep.items()}

    @property
    def n_cells(self) -> int:
        cells = 1
        for values in self.sweep.values():
            cells *= len(values)
        return cells

    def expand(self) -> list[JobSpec]:
        """The job matrix: one validated JobSpec per sweep cell."""
        names = list(self.sweep)
        jobs = []
        for combo in itertools.product(*(self.sweep[n] for n in names)):
            cell = dict(self.base)
            cell.update(zip(names, combo))
            try:
                jobs.append(JobSpec(**cell))
            except (ValueError, KeyError) as exc:
                where = ", ".join(
                    f"{n}={v!r}" for n, v in zip(names, combo)
                ) or "<no axes>"
                raise CampaignError(f"cell ({where}): {exc}") from exc
        return jobs


def _validate_tables(base, sweep) -> list[str]:
    problems = []
    for key in base:
        if key not in JOB_FIELDS:
            problems.append(
                f"[base] unknown field {key!r}; allowed: {sorted(JOB_FIELDS)}"
            )
    for key, values in sweep.items():
        if key not in JOB_FIELDS:
            problems.append(
                f"[sweep] unknown axis {key!r}; allowed: {sorted(JOB_FIELDS)}"
            )
            continue
        if key in base:
            problems.append(
                f"[sweep] axis {key!r} duplicates a [base] key — "
                "set it in exactly one place"
            )
        if not isinstance(values, (list, tuple)):
            problems.append(f"[sweep] axis {key!r} must be a list of values")
        elif len(values) == 0:
            problems.append(f"[sweep] axis {key!r} is empty")
    return problems


# ---------------------------------------------------------------------------
# TOML loading (stdlib tomllib, with a subset fallback for 3.10)
# ---------------------------------------------------------------------------
def _loads_toml(text: str) -> dict:
    try:
        import tomllib
    except ImportError:  # Python < 3.11
        return _mini_toml(text)
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise CampaignError(f"invalid TOML: {exc}") from exc


def _mini_parse_value(token: str, where: str):
    token = token.strip()
    if token.startswith("[") and token.endswith("]"):
        inner = token[1:-1].strip()
        if not inner:
            return []
        return [
            _mini_parse_value(part, where) for part in _split_array(inner, where)
        ]
    if (token.startswith('"') and token.endswith('"') and len(token) >= 2) or (
        token.startswith("'") and token.endswith("'") and len(token) >= 2
    ):
        return token[1:-1]
    if token == "true":
        return True
    if token == "false":
        return False
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    raise CampaignError(f"{where}: cannot parse value {token!r}")


def _split_array(inner: str, where: str) -> list[str]:
    """Split a single-line array body on top-level commas."""
    parts, depth, quote, current = [], 0, None, []
    for ch in inner:
        if quote is not None:
            current.append(ch)
            if ch == quote:
                quote = None
            continue
        if ch in "\"'":
            quote = ch
            current.append(ch)
        elif ch == "[":
            depth += 1
            current.append(ch)
        elif ch == "]":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if quote is not None:
        raise CampaignError(f"{where}: unterminated string in array")
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _mini_toml(text: str) -> dict:
    """Parse the campaign-spec TOML subset: tables of scalar/array keys.

    Intentionally small — named tables, ``key = value`` lines, strings,
    ints, floats, booleans and single-line arrays.  Duplicate keys and
    duplicate tables are rejected, matching tomllib.
    """
    data: dict = {}
    table = data
    table_name = "<root>"
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        where = f"line {lineno}"
        if line.startswith("["):
            if not line.endswith("]"):
                raise CampaignError(f"{where}: malformed table header {line!r}")
            name = line[1:-1].strip()
            if not name:
                raise CampaignError(f"{where}: empty table name")
            if name in data:
                raise CampaignError(f"{where}: duplicate table [{name}]")
            table = data.setdefault(name, {})
            table_name = name
            continue
        if "=" not in line:
            raise CampaignError(f"{where}: expected 'key = value', got {line!r}")
        key, _, value = line.partition("=")
        key = key.strip().strip('"').strip("'")
        if not key:
            raise CampaignError(f"{where}: empty key")
        if key in table:
            raise CampaignError(
                f"{where}: duplicate key {key!r} in [{table_name}]"
            )
        table[key] = _mini_parse_value(value, where)
    return data


def parse_campaign(text: str) -> CampaignSpec:
    """Parse and validate one campaign spec from TOML text."""
    data = _loads_toml(text)
    if not isinstance(data, dict):
        raise CampaignError("spec must be a TOML document of tables")
    problems = []
    unknown_tables = sorted(set(data) - {"campaign", "base", "sweep"})
    if unknown_tables:
        problems.append(
            f"unknown table(s) {unknown_tables}; expected [campaign], "
            "[base], [sweep]"
        )
    meta = data.get("campaign", {})
    base = data.get("base", {})
    sweep = data.get("sweep", {})
    for section, content in (("campaign", meta), ("base", base), ("sweep", sweep)):
        if not isinstance(content, dict):
            problems.append(f"[{section}] must be a table")
    if isinstance(meta, dict):
        for key in meta:
            if key not in CAMPAIGN_FIELDS:
                problems.append(
                    f"[campaign] unknown field {key!r}; allowed: "
                    f"{sorted(CAMPAIGN_FIELDS)}"
                )
    if problems:
        raise CampaignError("; ".join(problems))

    figures = meta.get("figures", [])
    if isinstance(figures, str):
        figures = [figures]
    return CampaignSpec(
        name=str(meta.get("name", "")),
        base=dict(base),
        sweep=dict(sweep),
        out=str(meta.get("out", "BENCH_campaign.json")),
        figures=tuple(figures),
        pool_workers=int(meta.get("pool_workers", 2)),
        timeout_seconds=float(meta.get("timeout_seconds", 600.0)),
        source_sha256=hashlib.sha256(text.encode()).hexdigest(),
    )


def load_campaign(path: str | Path) -> CampaignSpec:
    """Read and validate a campaign spec file."""
    return parse_campaign(Path(path).read_text())
