"""Command-line interface: ``python -m repro <command>``.

Subcommands register themselves declaratively instead of growing one
monolithic parser: each module under :mod:`repro.cli.commands` calls
:func:`command` with a name, a help line, and a ``configure(parser)``
hook, and the decorated function becomes the command body.  Shared
flags (``--precision``, ``--backend``, ``--workers``) come from
:mod:`repro.cli.options` so every command spells them identically.

Commands mirror the workflow of the authors' run/profile scripts:

* ``campaign`` — expand a declarative TOML sweep spec into a job
  matrix and run it through the batch service with content-addressed
  dedup, landing one merged ``repro-bench-report/2`` record (see
  ``docs/CAMPAIGN.md``);
* ``model-campaign`` — sweep a parameter space on a *simulated*
  instance (the calibrated performance model) and write the results
  in the artifact layout (``runs.csv`` + profiles);
* ``figure``  — regenerate one paper table/figure as a text table;
* ``anchors`` — print the paper-vs-measured anchor scoreboard;
* ``run-deck`` — parse and execute a LAMMPS input deck (the supported
  command subset, see ``repro.md.deck``);
* ``trace``   — run a functional benchmark under the span tracer and
  write a Chrome trace, metrics snapshots and the timing tables (see
  ``docs/OBSERVABILITY.md``);
* ``power``   — run a functional benchmark under the hardware
  telemetry sampler (RAPL / procfs / calibrated model, auto-detected)
  and report the measured per-phase energy breakdown and TS/s/W (see
  ``docs/OBSERVABILITY.md`` §7);
* ``scale``   — run a benchmark on the real shared-memory parallel
  engine, check serial/parallel parity, and report the measured
  per-worker timeline and speedups (see ``docs/SCALING.md``);
* ``checkpoint`` — run a benchmark under periodic checkpointing with
  supervised crash recovery, optionally injecting worker faults, and
  verify restart parity against an uninterrupted run (see
  ``docs/RELIABILITY.md``); the run directory comes out *certified* —
  digest chain + manifest — ready for ``certify``;
* ``serve`` / ``submit`` — the async batch-simulation service over a
  file spool (see ``docs/SERVICE.md``);
* ``certify`` — verify a certified run directory by seedable interval
  replay (bitwise in a matching environment, tolerance-tiered
  cross-mode), or audit a service result cache with ``--cache`` (see
  ``docs/REPRODUCIBILITY.md``).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Command", "command", "registered_commands", "build_parser", "main"]


@dataclass(frozen=True)
class Command:
    """One registered subcommand: metadata plus its two hooks."""

    name: str
    help: str
    #: Adds the command's arguments to its freshly made subparser.
    configure: Callable[[argparse.ArgumentParser], None]
    #: The command body; returns the process exit code.
    run: Callable[[argparse.Namespace], int]
    #: Extra keyword arguments for ``add_parser`` (e.g. description).
    parser_kwargs: dict = field(default_factory=dict)


#: Registration order is presentation order in ``--help``.
_REGISTRY: dict[str, Command] = {}


def command(
    name: str,
    help: str,
    *,
    configure: Callable[[argparse.ArgumentParser], None] | None = None,
    **parser_kwargs,
):
    """Decorator: register the function as the body of subcommand ``name``."""

    def decorator(run: Callable[[argparse.Namespace], int]):
        if name in _REGISTRY:
            raise ValueError(f"duplicate CLI command {name!r}")
        _REGISTRY[name] = Command(
            name=name,
            help=help,
            configure=configure or (lambda parser: None),
            run=run,
            parser_kwargs=parser_kwargs,
        )
        return run

    return decorator


def registered_commands() -> dict[str, Command]:
    """Name -> Command, in registration order (loads command modules)."""
    from repro.cli import commands as _commands

    _commands.load()
    return dict(_REGISTRY)


def build_parser() -> argparse.ArgumentParser:
    """The full ``python -m repro`` parser over every registered command."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="IISWC'22 MD-characterization reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for cmd in registered_commands().values():
        subparser = sub.add_parser(cmd.name, help=cmd.help, **cmd.parser_kwargs)
        cmd.configure(subparser)
        subparser.set_defaults(func=cmd.run)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Parse ``argv`` and run the selected command; returns its exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)
