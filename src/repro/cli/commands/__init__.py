"""Subcommand modules; importing one registers its commands.

:func:`load` imports every module exactly once, in the order commands
should appear in ``python -m repro --help``.  New commands add their
module name here — nothing else in the CLI needs to change.
"""

from __future__ import annotations

import importlib

#: ``--help`` presentation order.
_MODULES = (
    "campaign",
    "model",
    "deck",
    "trace",
    "power",
    "scale",
    "checkpoint",
    "service",
    "certify",
)

_loaded = False


def load() -> None:
    global _loaded
    if _loaded:
        return
    for name in _MODULES:
        importlib.import_module(f"repro.cli.commands.{name}")
    _loaded = True
