"""``campaign`` — run a declarative sweep spec through the batch service."""

from __future__ import annotations

import argparse

from repro.cli import command


def _configure(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("spec", help="campaign spec file (TOML: [campaign] "
                                     "metadata, [base] job defaults, [sweep] "
                                     "axes; see docs/CAMPAIGN.md)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="merged report destination (default: the "
                             "spec's `out`, else BENCH_campaign.json)")
    parser.add_argument("--pool-workers", type=int, default=None,
                        help="batch-service pool size (default: the "
                             "spec's `pool_workers`, else 2)")
    parser.add_argument("--figure-dir", default=None, metavar="DIR",
                        help="where figure hooks render (default: "
                             "figures/ next to the report)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="seconds to wait for the matrix (default: "
                             "the spec's `timeout_seconds`, else 600)")
    parser.add_argument("--dry-run", action="store_true",
                        help="print the expanded job matrix and exit "
                             "without executing")


@command(
    "campaign",
    "expand a declarative TOML sweep and run it with dedup",
    configure=_configure,
)
def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignError, load_campaign, run_campaign

    try:
        spec = load_campaign(args.spec)
        jobs = spec.expand()
    except (CampaignError, OSError) as exc:
        print(f"invalid campaign spec: {exc}")
        return 2

    if args.dry_run:
        keys = [job.cache_key() for job in jobs]
        print(f"campaign {spec.name!r}: {len(jobs)} cells, "
              f"{len(set(keys))} unique content addresses")
        for job, key in zip(jobs, keys):
            what = job.benchmark or "<deck>"
            print(f"  {key[:16]}… {what} n={job.n_atoms} steps={job.steps} "
                  f"seed={job.seed} precision={job.precision} "
                  f"backend={job.backend} workers={job.workers}")
        return 0

    try:
        report = run_campaign(
            spec,
            out=args.out,
            pool_workers=args.pool_workers,
            figure_dir=args.figure_dir,
            timeout=args.timeout,
            verbose=True,
        )
    except (CampaignError, RuntimeError, TimeoutError) as exc:
        print(f"campaign failed: {exc}")
        return 1
    dedup = report["dedup"]
    print(f"done: {dedup['cells']} cells, {dedup['unique_addresses']} "
          f"executed, {dedup['dedup_hits']} dedup hits")
    return 0
