"""``certify`` — replay-verify a certified run directory or audit a cache."""

from __future__ import annotations

import argparse

from repro.cli import command
from repro.cli.options import (
    add_backend_option,
    add_precision_option,
    add_workers_option,
)


def _configure(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("run_dir", nargs="?", default=None,
                        help="run directory holding checkpoints, "
                             "digests.jsonl, and manifest.json")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="audit a service result cache instead of a "
                             "run directory")
    parser.add_argument("--seed", type=int, default=None,
                        help="seed for the interval (or cache-sample) "
                             "choice; default picks randomly")
    parser.add_argument("--at-step", type=int, default=None,
                        help="pin the replayed interval to the one "
                             "starting at this checkpoint step")
    add_backend_option(
        parser,
        help="replay on this kernel backend instead of the manifest's "
             "(forces a cross-mode verdict)",
    )
    add_precision_option(
        parser,
        default=None,
        help="replay at this precision instead of the manifest's "
             "(forces a cross-mode verdict)",
    )
    add_workers_option(
        parser,
        default=None,
        help="replay on this many engine workers instead of the "
             "manifest's",
    )
    parser.add_argument("--deck", default=None, metavar="PATH",
                        help="deck text for deck-based manifests (hash "
                             "must match the sealed deck_sha256)")
    parser.add_argument("--replay", action="store_true",
                        help="with --cache: also re-execute entries and "
                             "compare chain heads")
    parser.add_argument("--limit", type=int, default=None,
                        help="with --cache --replay: at most this many "
                             "re-executions")


@command(
    "certify",
    "verify a certified run directory by replay (or audit a "
    "service result cache with --cache)",
    configure=_configure,
)
def _cmd_certify(args: argparse.Namespace) -> int:
    from repro.md.restart import SnapshotError
    from repro.reliability.certify import (
        CertificationError,
        DigestChainError,
        ManifestError,
        audit_cache,
        certify_run,
    )

    if (args.run_dir is None) == (args.cache is None):
        print("give exactly one of a run directory or --cache DIR")
        return 2
    if args.cache is not None:
        report = audit_cache(
            args.cache,
            replay=args.replay,
            limit=args.limit,
            seed=args.seed,
            logger=print,
        )
        for key, problem in report.findings:
            print(f"FINDING {key[:16]}…: {problem}")
        for key, reason in report.skipped.items():
            print(f"skipped {key[:16]}…: {reason}")
        return 0 if report.ok else 1
    deck_text = None
    if args.deck is not None:
        deck_text = open(args.deck).read()
    try:
        report = certify_run(
            args.run_dir,
            seed=args.seed,
            at_step=args.at_step,
            backend=args.backend,
            precision=args.precision,
            workers=args.workers,
            deck_text=deck_text,
            logger=print,
        )
    except (CertificationError, DigestChainError, ManifestError,
            SnapshotError) as exc:
        print(f"CERTIFICATION FAILED ({type(exc).__name__}): {exc}")
        return 1
    for line in report.checks:
        print(f"  {line}")
    return 0
