"""``checkpoint`` — periodic checkpointing with supervised crash recovery."""

from __future__ import annotations

import argparse

from repro.cli import command
from repro.cli.options import add_precision_option, add_workers_option
from repro.suite import BENCHMARK_NAMES


def _configure(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("experiment", choices=BENCHMARK_NAMES)
    parser.add_argument("--steps", type=int, default=40)
    parser.add_argument("--atoms", type=int, default=500,
                        help="target atom count (builders round to lattice)")
    add_workers_option(parser, default=1,
                       help="worker processes (1 = serial executor)")
    parser.add_argument("--every", type=int, default=10,
                        help="checkpoint cadence in steps")
    parser.add_argument("--keep-last", type=int, default=3,
                        help="checkpoint retention depth")
    parser.add_argument("--out", default="checkpoint_out",
                        help="checkpoint directory")
    parser.add_argument("--fault-plan", default=None,
                        help="inject faults: kind:worker:step[:phase];... "
                             "(kinds kill/hang; phases step/rebuild/"
                             "checkpoint)")
    parser.add_argument("--max-restarts", type=int, default=2,
                        help="pool respawns before degrading to serial")
    parser.add_argument("--barrier-timeout", type=float, default=30.0,
                        help="seconds before a silent worker is declared "
                             "hung")
    parser.add_argument("--verify-parity", action="store_true",
                        help="re-run uninterrupted and compare final state")
    add_precision_option(
        parser,
        help="dtype policy; checkpoints record it and restarts refuse a "
             "silent mode change",
    )


@command(
    "checkpoint",
    "run under periodic checkpointing with crash recovery",
    configure=_configure,
)
def _cmd_checkpoint(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.md.precision import PARITY_TOLERANCES
    from repro.parallel.engine import ParallelForceExecutor
    from repro.reliability import (
        CertificationRecorder,
        CheckpointManager,
        FaultPlan,
        ResilientRunner,
    )
    from repro.suite import get_benchmark

    bench = get_benchmark(args.experiment)
    # Resolve $REPRO_FAULT_PLAN here (not just engine-side) so that
    # checkpoint-phase faults reach the manager too, and so the
    # verify-parity reference below can be pinned fault-free.
    plan = (
        FaultPlan.parse(args.fault_plan)
        if args.fault_plan
        else FaultPlan.from_env()
    )
    plan_text = args.fault_plan or (
        "; ".join(s.spec_string() for s in plan.specs) if plan else ""
    )

    def build(fault_plan=None):
        sim = bench.build(args.atoms)
        sim.set_precision(args.precision)
        if args.workers > 1:
            executor = ParallelForceExecutor(
                args.workers,
                quasi_2d=args.experiment == "chute",
                fault_plan=fault_plan,
                barrier_timeout=args.barrier_timeout,
                precision=args.precision,
            )
            sim.force_executor = executor
            executor.bind(sim)
        return sim

    sim = build(fault_plan=plan)
    print(f"built {args.experiment}: {sim.system.n_atoms} atoms on "
          f"{args.workers} worker(s) at {args.precision} precision; "
          f"checkpoint every {args.every} steps "
          f"under {args.out}"
          + (f"; fault plan {plan_text!r}" if plan_text else ""))
    manager = CheckpointManager(
        args.out, every=args.every, keep_last=args.keep_last, fault_plan=plan
    )
    # Digest on the checkpoint cadence so every retained snapshot has a
    # chain entry for `repro certify` to replay against.
    certifier = CertificationRecorder(
        args.out, every=args.every if args.every > 0 else max(1, args.steps)
    )
    runner = ResilientRunner(
        sim, manager, max_restarts=args.max_restarts, digest=certifier,
        logger=print
    )
    events = runner.run(args.steps)
    manifest = certifier.finalize(
        sim,
        steps=args.steps,
        benchmark=args.experiment,
        n_atoms=args.atoms,
        workers=1 if runner.degraded else args.workers,
        checkpoint_every=args.every,
        extra={
            "recovery_events": len(events),
            "degraded": runner.degraded,
            **({"fault_plan": plan_text} if plan_text else {}),
        },
    )
    sim.close()
    retained = [p.name for p in manager.checkpoints()]
    print(f"finished at step {sim.step_number}: "
          f"E_total = {sim.total_energy():.10f}, "
          f"{manager.writes} checkpoint writes, retained {retained}")
    print(f"recovery events: {len(events)} "
          f"({sum(e.action == 'respawn' for e in events)} respawn(s), "
          f"{sum(e.action == 'degrade-serial' for e in events)} degradation(s))")
    print(f"certification: chain head {manifest.chain_head[:16]}… "
          f"({manifest.chain_entries} digest entries) sealed in "
          f"{args.out}/manifest.json — verify with "
          f"`python -m repro certify {args.out}`")

    if not args.verify_parity:
        return 0
    # An explicitly empty plan keeps the reference run fault-free even
    # when $REPRO_FAULT_PLAN is set in the environment.
    reference = build(fault_plan=FaultPlan())
    reference.run(args.steps)
    reference.close()
    delta = float(np.abs(reference.system.positions - sim.system.positions).max())
    bitwise = bool(
        np.array_equal(reference.system.positions, sim.system.positions)
        and np.array_equal(reference.system.velocities, sim.system.velocities)
    )
    tolerance = PARITY_TOLERANCES[args.precision]
    verdict = "OK" if (bitwise or delta <= tolerance) else "DIVERGED"
    print(f"parity vs uninterrupted run: bitwise={bitwise}, "
          f"|dx|max = {delta:.3e} (tol {tolerance:.0e}, {verdict})")
    return 0 if verdict == "OK" else 1
