"""``run-deck`` — parse and execute a LAMMPS input deck."""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.cli import command


def _configure(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("deck", help="path to the input script")


@command(
    "run-deck",
    "execute a LAMMPS input deck",
    configure=_configure,
)
def _cmd_run_deck(args: argparse.Namespace) -> int:
    from repro.core.report import render_breakdown
    from repro.md.deck import parse_deck

    deck = parse_deck(Path(args.deck).read_text())
    print(f"parsed {len(deck.commands)} commands "
          f"({deck.units} units, {deck.simulation.system.n_atoms} atoms); "
          f"running {deck.run_steps} steps ...")
    simulation = deck.run()
    print(f"done: {simulation.counts.timesteps} steps, "
          f"T = {simulation.system.temperature():.4f}, "
          f"E_total = {simulation.total_energy():.4f}")
    print(render_breakdown(simulation.task_breakdown(), title="Task breakdown:"))
    return 0
