"""Performance-model commands: ``model-campaign``, ``figure``, ``anchors``.

These run on the *calibrated analytical model* (no MD is executed):
``model-campaign`` sweeps simulated instances into the artifact
layout, ``figure`` regenerates one paper table/figure, ``anchors``
prints the paper-vs-measured scoreboard.  The measured counterpart of
``model-campaign`` is the declarative ``campaign`` command.
"""

from __future__ import annotations

import argparse
import importlib

from repro.cli import command

FIGURES = (
    "table2",
    "table3",
    *(f"fig{n:02d}" for n in range(3, 17)),
    "headline",
)


def _configure_model_campaign(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--platform", choices=("cpu", "gpu"), default="cpu")
    parser.add_argument("--benchmarks", nargs="*", default=None)
    parser.add_argument("--sizes", nargs="*", type=int, default=None,
                        help="system sizes in thousands of atoms")
    parser.add_argument("--resources", nargs="*", type=int, default=None,
                        help="MPI ranks (cpu) or devices (gpu)")
    parser.add_argument("--out", default="campaign_output")


@command(
    "model-campaign",
    "sweep the calibrated performance model (simulated instance)",
    configure=_configure_model_campaign,
)
def _cmd_model_campaign(args: argparse.Namespace) -> int:
    from repro.core.aggregator import RunsTable
    from repro.core.artifact import ArtifactLayout
    from repro.core.experiment import Mode, sweep
    from repro.core.runner import run_experiment
    from repro.perfmodel.workloads import GPU_COUNTS, RANK_COUNTS, SIZES_K
    from repro.suite import CPU_BENCHMARKS, GPU_BENCHMARKS

    benchmarks = args.benchmarks or (
        CPU_BENCHMARKS if args.platform == "cpu" else GPU_BENCHMARKS
    )
    resources = args.resources or (
        RANK_COUNTS if args.platform == "cpu" else GPU_COUNTS
    )
    sizes = args.sizes or SIZES_K
    table = RunsTable()
    layout = ArtifactLayout(args.out)
    specs = list(
        sweep(benchmarks, args.platform, sizes, resources, mode=Mode.PROFILING)
    )
    print(f"running {len(specs)} simulated experiments on the "
          f"{args.platform} instance ...")
    for spec in specs:
        record = run_experiment(spec)
        table.add(record)
        layout.write_profile(record)
    written = layout.write_runs(table)
    for platform, path in written.items():
        print(f"wrote {platform} runs to {path}")
    print(f"wrote {len(layout.profile_index())} profile files under {args.out}")
    return 0


def _configure_figure(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("name", choices=FIGURES)


@command(
    "figure",
    "regenerate one table/figure",
    configure=_configure_figure,
)
def _cmd_figure(args: argparse.Namespace) -> int:
    module = importlib.import_module(f"repro.figures.{args.name}")
    print(module.generate().render())
    return 0


@command("anchors", "paper-vs-measured scoreboard")
def _cmd_anchors(args: argparse.Namespace) -> int:
    from repro.gpu import simulate_gpu_run
    from repro.parallel import simulate_cpu_run
    from repro.perfmodel.calibration import PAPER_ANCHORS as A

    rows = [
        ("rhodo CPU 2048k/64 [TS/s]", A.rhodo_cpu_2048k_64r_ts,
         simulate_cpu_run("rhodo", 2_048_000, 64).ts_per_s),
        ("rhodo CPU 2048k/64 @1e-7 [TS/s]", A.rhodo_cpu_2048k_64r_ts_e7,
         simulate_cpu_run("rhodo", 2_048_000, 64, kspace_error=1e-7).ts_per_s),
        ("lj CPU single [TS/s]", A.lj_cpu_2048k_64r_ts_single,
         simulate_cpu_run("lj", 2_048_000, 64, precision="single").ts_per_s),
        ("lj CPU double [TS/s]", A.lj_cpu_2048k_64r_ts_double,
         simulate_cpu_run("lj", 2_048_000, 64, precision="double").ts_per_s),
        ("rhodo GPU 2048k/8 [TS/s]", A.rhodo_gpu_2048k_8g_ts,
         simulate_gpu_run("rhodo", 2_048_000, 8).ts_per_s),
        ("rhodo GPU @1e-7 [TS/s]", A.rhodo_gpu_2048k_8g_ts_e7,
         simulate_gpu_run("rhodo", 2_048_000, 8, kspace_error=1e-7).ts_per_s),
        ("lj GPU single [TS/s]", A.lj_gpu_2048k_8g_ts_single,
         simulate_gpu_run("lj", 2_048_000, 8, precision="single").ts_per_s),
        ("rhodo CPU [ns/day]", A.rhodo_cpu_ns_per_day,
         simulate_cpu_run("rhodo", 2_048_000, 64).ns_per_day(2.0)),
        ("rhodo GPU [ns/day]", A.rhodo_gpu_ns_per_day,
         simulate_gpu_run("rhodo", 2_048_000, 8).ns_per_day(2.0)),
    ]
    print(f"{'anchor':<36s} {'paper':>8s} {'measured':>9s} {'delta':>7s}")
    print("-" * 64)
    for name, paper, measured in rows:
        delta = 100.0 * (measured - paper) / paper
        print(f"{name:<36s} {paper:>8.2f} {measured:>9.2f} {delta:>+6.1f}%")
    return 0
