"""``power`` — per-phase energy measurement with hardware telemetry."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.cli import command
from repro.suite import BENCHMARK_NAMES


def _configure(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("experiment", nargs="?", default="lj",
                        choices=BENCHMARK_NAMES)
    parser.add_argument("--steps", type=int, default=40)
    parser.add_argument("--atoms", type=int, default=32768,
                        help="target atom count (builders round to lattice)")
    parser.add_argument("--warmup", type=int, default=3,
                        help="untraced/unsampled steps before measurement")
    parser.add_argument("--provider",
                        choices=("rapl", "dram", "procfs", "model"),
                        default=None,
                        help="force a power provider (default: auto-detect "
                             "rapl -> procfs -> model, or "
                             "$REPRO_POWER_PROVIDER; `dram` reads the RAPL "
                             "memory-controller subdomain and is never "
                             "auto-selected)")
    parser.add_argument("--period", type=float, default=0.5,
                        help="sampling period in seconds (paper cadence 0.5)")
    parser.add_argument("--report-every", type=int, default=10,
                        help="steps between live power readouts")
    parser.add_argument("--capacity", type=int, default=65_536,
                        help="span ring-buffer capacity")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the full energy report as JSON "
                             "(repro-bench-report/2, kind `power`)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="also write the Chrome trace of the sampled run")


@command(
    "power",
    "measure per-phase energy with hardware telemetry",
    configure=_configure,
)
def _cmd_power(args: argparse.Namespace) -> int:
    import json as _json

    from repro.md import RunConfig
    from repro.observability import MetricsRegistry, Tracer
    from repro.observability.telemetry import (
        TelemetrySampler,
        attribute_energy,
        detect_provider,
        platform_provenance,
        render_energy_table,
    )
    from repro.suite import get_benchmark

    try:
        provider = detect_provider(args.provider)
    except (RuntimeError, ValueError) as exc:
        print(f"power provider unavailable: {exc}", file=sys.stderr)
        return 2

    bench = get_benchmark(args.experiment)
    tracer = Tracer(capacity=args.capacity)
    metrics = MetricsRegistry()
    sim = bench.build_instrumented(args.atoms, tracer=tracer, metrics=metrics)
    print(f"built {args.experiment}: {sim.system.n_atoms} atoms, "
          f"backend {sim.backend.name}; power provider "
          f"{provider.name} ({provider.kind})")
    if args.warmup:
        sim.run(args.warmup)
    tracer.reset()

    sampler = TelemetrySampler(
        provider, period_s=args.period, metrics=metrics
    )
    chunk = max(1, min(args.report_every, args.steps))
    print(f"running {args.steps} steps, sampling every {args.period:g} s ...")
    done = 0
    sampler.start()
    try:
        while done < args.steps:
            n = min(chunk, args.steps - done)
            sim.run(RunConfig(steps=n, reset_timers=done == 0))
            done += n
            sample = sampler.sample_now()
            print(f"  step {done:>6d}/{args.steps}: {sample.watts:7.2f} W, "
                  f"{sampler.total_joules:9.2f} J cumulative", flush=True)
    finally:
        sampler.stop()

    attribution = attribute_energy(sampler.samples, tracer.records())
    duration = sampler.duration_s
    ts_per_s = args.steps / duration if duration > 0 else 0.0
    watts = sampler.mean_watts
    print()
    print(render_energy_table(attribution, steps=args.steps))
    print()
    print(f"throughput:        {ts_per_s:10.3f} TS/s over {duration:.2f} s")
    print(f"mean power:        {watts:10.2f} W ({provider.name}, {provider.kind})")
    print(f"energy efficiency: {ts_per_s / watts if watts else 0.0:10.4f} TS/s/W")
    print(f"energy per step:   "
          f"{sampler.total_joules / args.steps:10.3f} J/step")
    if sampler.under_sampled:
        print(f"NOTE: run lasted {duration:.2f} s < "
              f"{sampler.min_run_seconds:.0f} s — under-sampled; do not "
              "compare these numbers across runs")

    if args.trace:
        path = tracer.write_chrome_trace(
            Path(args.trace), process_name=f"repro:power:{args.experiment}"
        )
        print(f"wrote {path}")
    if args.json:
        from repro.report import make_report, platform_info

        report = make_report(
            "power",
            backend={"requested": "auto", "resolved": sim.backend.name},
            precision="double",
            energy={"provider": provider.name, "kind": provider.kind},
            platform=platform_info(**platform_provenance()),
            experiment=args.experiment,
            n_atoms=sim.system.n_atoms,
            steps=args.steps,
            warmup=args.warmup,
            duration_s=duration,
            ts_per_s=ts_per_s,
            mean_watts=watts,
            joules=sampler.total_joules,
            joules_per_step=sampler.total_joules / args.steps,
            ts_per_s_per_watt=ts_per_s / watts if watts else 0.0,
            sampling=sampler.provenance(),
            attribution=attribution.to_json(),
        )
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(_json.dumps(report, indent=2) + "\n")
        print(f"wrote {path}")
    return 0
