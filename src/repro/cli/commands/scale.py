"""``scale`` — run on the shared-memory parallel engine with parity checks."""

from __future__ import annotations

import argparse

from repro.cli import command
from repro.cli.options import (
    add_backend_option,
    add_precision_option,
    add_workers_option,
)
from repro.suite import BENCHMARK_NAMES


def _configure(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("experiment", choices=BENCHMARK_NAMES)
    add_workers_option(parser, default=2,
                       help="worker process count (one subdomain each)")
    parser.add_argument("--steps", type=int, default=20)
    parser.add_argument("--atoms", type=int, default=2000,
                        help="target atom count (builders round to lattice)")
    parser.add_argument("--checkpoint-every", type=int, default=0,
                        help="periodic checkpoint cadence in steps (0 = off)")
    parser.add_argument("--checkpoint-dir", default="checkpoint_out",
                        help="directory for --checkpoint-every snapshots")
    add_backend_option(parser)
    add_precision_option(
        parser,
        help="dtype policy for both the serial reference and the worker "
             "pool (parity tolerance scales with the mode)",
    )


@command(
    "scale",
    "run on the shared-memory parallel engine",
    configure=_configure,
)
def _cmd_scale(args: argparse.Namespace) -> int:
    import os

    import numpy as np

    from repro.md import RunConfig
    from repro.md.precision import PARITY_TOLERANCES
    from repro.parallel.engine import ParallelForceExecutor
    from repro.suite import get_benchmark

    bench = get_benchmark(args.experiment)
    quasi_2d = args.experiment == "chute"

    backend_name = None
    if args.backend:
        from repro.md.kernels import (
            backend_diagnostics,
            backend_spec,
            get_backend,
        )

        # get_backend degrades an unavailable optional backend to the
        # default with a warning; surface the reason on the CLI too.
        backend_name = backend_spec(get_backend(args.backend))
        if backend_name != args.backend:
            print(f"backend {args.backend!r} is unavailable "
                  f"({backend_diagnostics().get(args.backend, 'unknown')}); "
                  f"using {backend_name!r}")

    serial = bench.build(args.atoms)
    serial.set_precision(args.precision)
    if backend_name:
        serial.set_backend(backend_name)
    serial.setup()
    print(f"built {args.experiment}: {serial.system.n_atoms} atoms, "
          f"{os.cpu_count()} cores visible; running {args.steps} steps at "
          f"{args.precision} precision on the {serial.backend.name} "
          f"backend, serial then on {args.workers} workers")
    import time as _time

    tick = _time.perf_counter()
    cpu_tick = _time.process_time()
    serial.run(RunConfig(steps=args.steps, reset_timers=True))
    serial_wall = _time.perf_counter() - tick
    serial_cpu = _time.process_time() - cpu_tick
    serial_pair = serial.timers.seconds.get("Pair", 0.0)

    manager = None
    if args.checkpoint_every > 0:
        from repro.reliability import CheckpointManager

        manager = CheckpointManager(
            args.checkpoint_dir, every=args.checkpoint_every
        )
        print(f"checkpointing every {args.checkpoint_every} steps "
              f"under {args.checkpoint_dir}")

    parallel = bench.build(args.atoms)
    parallel.set_precision(args.precision)
    if backend_name:
        parallel.set_backend(backend_name)
    executor = ParallelForceExecutor(
        args.workers, quasi_2d=quasi_2d, precision=args.precision
    )
    parallel.force_executor = executor
    executor.bind(parallel)
    with parallel:
        parallel.setup()
        # Drop the setup-time initial build from the accumulators; the
        # serial side's reset_timers does the same for its task timers.
        executor.reset_timings()
        storage = np.dtype(executor.precision.storage_dtype)
        print(f"shm arena: {executor.arena_nbytes / 1e6:.2f} MB "
              f"({storage.name} per-atom exchange state)")
        tick = _time.perf_counter()
        cpu_tick = _time.process_time()
        parallel.run(
            RunConfig(steps=args.steps, reset_timers=True, checkpoint=manager)
        )
        parallel_wall = _time.perf_counter() - tick
        master_cpu = _time.process_time() - cpu_tick
        if manager is not None:
            print(f"wrote {manager.writes} checkpoints, retained "
                  f"{[p.name for p in manager.checkpoints()]}")

        force_delta = float(
            np.abs(serial.system.forces - parallel.system.forces).max()
        )
        energy_delta = abs(serial.potential_energy - parallel.potential_energy)
        parity_tol = PARITY_TOLERANCES[args.precision]
        print(f"parity: |dF|max = {force_delta:.3e}, "
              f"|dE| = {energy_delta:.3e} "
              f"(tol {parity_tol:.0e}, "
              f"{'OK' if force_delta < parity_tol else 'DIVERGED'})")
        print(f"serial:   {args.steps / serial_wall:8.2f} steps/s "
              f"({serial_wall:.3f} s wall, Pair {serial_pair:.3f} s)")
        print(f"parallel: {args.steps / parallel_wall:8.2f} steps/s "
              f"({parallel_wall:.3f} s wall)")
        steps = max(1, executor.steps_measured)
        # Critical path under true concurrency: master CPU per step plus
        # the slowest worker's (pair + amortized rebuild) CPU per step.
        # CPU time is scheduling-invariant, so this holds on hosts with
        # fewer cores than workers (where wall clock just serializes).
        worker_cpu = (
            executor.worker_pair_cpu_seconds + executor.worker_neigh_cpu_seconds
        ) / steps
        critical = master_cpu / args.steps + float(worker_cpu.max())
        print(f"wall-clock speedup:     {serial_wall / parallel_wall:.2f}x")
        print(f"critical-path speedup:  {serial_cpu / args.steps / critical:.2f}x "
              f"(slowest worker pair+rebuild CPU: {worker_cpu.max()*1e3:.2f} "
              f"ms/step)")
        print()
        print(executor.timeline().render())
    return 0 if force_delta < parity_tol else 1
