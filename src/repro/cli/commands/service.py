"""Batch-service commands: ``serve`` (spool server) and ``submit``."""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.cli import command
from repro.cli.options import (
    add_backend_option,
    add_precision_option,
    add_workers_option,
)
from repro.suite import BENCHMARK_NAMES


def _configure_serve(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--spool", default="service_spool",
                        help="spool directory shared with submitters")
    add_workers_option(parser, default=2,
                       help="pool size: jobs executed concurrently")
    parser.add_argument("--cache-entries", type=int, default=1024,
                        help="memory-layer bound of the result cache")
    parser.add_argument("--max-requeues", type=int, default=2,
                        help="pool-worker deaths one job survives")
    parser.add_argument("--poll", type=float, default=0.1,
                        help="spool polling period in seconds")
    parser.add_argument("--max-seconds", type=float, default=None,
                        help="exit (with drain) after this long; default "
                             "runs until SIGTERM/SIGINT")


@command(
    "serve",
    "run the batch-simulation service over a file spool",
    configure=_configure_serve,
)
def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import BatchService, SpoolServer

    spool = Path(args.spool)
    service = BatchService(
        args.workers,
        cache_dir=spool / "cache",
        max_cache_entries=args.cache_entries,
        max_requeues=args.max_requeues,
    )
    server = SpoolServer(spool, service, poll=args.poll)
    server.install_signal_handlers()
    print(f"serving spool {spool} on {args.workers} workers "
          f"(cache: {spool / 'cache'}); SIGTERM drains and exits")
    try:
        server.serve_forever(max_seconds=args.max_seconds)
    finally:
        service.close()
        snapshot = service.metrics.write_snapshot(spool / "metrics.jsonl")
        stats = service.stats()
        cache = stats["cache"]
        print(f"drained: answered {server.answered} tickets, "
              f"cache {cache['hits']} hits / {cache['misses']} misses, "
              f"{stats['worker_respawns']} worker respawns; "
              f"metrics -> {snapshot}")
    return 0


def _configure_submit(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("experiment", nargs="?", default=None,
                        choices=BENCHMARK_NAMES,
                        help="suite benchmark (or use --deck)")
    parser.add_argument("--deck", default=None, metavar="PATH",
                        help="submit a LAMMPS input deck instead")
    parser.add_argument("--spool", default="service_spool",
                        help="spool directory of the server")
    parser.add_argument("--atoms", type=int, default=500,
                        help="target atom count (builders round to lattice)")
    parser.add_argument("--steps", type=int, default=100)
    parser.add_argument("--seed", type=int, default=None,
                        help="builder seed (default: benchmark's own)")
    add_precision_option(parser)
    add_backend_option(parser)
    add_workers_option(parser, default=1,
                       help="engine workers per job (1 = serial)")
    parser.add_argument("--tag", default=None, help="free-form job label")
    parser.add_argument("--repeat", type=int, default=1,
                        help="submit the same spec N times (dedup demo)")
    parser.add_argument("--no-wait", action="store_true",
                        help="print tickets and exit without waiting")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="seconds to wait per ticket")


@command(
    "submit",
    "submit jobs to a running `repro serve`",
    configure=_configure_submit,
)
def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import JobSpec, SpoolClient

    if (args.experiment is None) == (args.deck is None):
        print("give exactly one of an experiment name or --deck PATH")
        return 2
    deck_text = None
    if args.deck is not None:
        deck_text = open(args.deck).read()
    spec = JobSpec(
        benchmark=args.experiment,
        deck=deck_text,
        n_atoms=args.atoms,
        steps=args.steps,
        seed=args.seed,
        precision=args.precision,
        backend=args.backend,
        workers=args.workers,
        tag=args.tag,
    )
    client = SpoolClient(args.spool)
    tickets = [client.submit(spec) for _ in range(args.repeat)]
    print(f"submitted {len(tickets)} ticket(s) for key "
          f"{spec.cache_key()[:16]}…")
    if args.no_wait:
        for ticket in tickets:
            print(f"  ticket {ticket}")
        return 0
    failures = 0
    for ticket in tickets:
        try:
            result = client.wait(ticket, timeout=args.timeout)
        except (RuntimeError, TimeoutError) as e:
            print(f"  {ticket[:8]} FAILED: {e}")
            failures += 1
            continue
        source = "cache" if result.cached else f"worker {result.worker_id}"
        print(f"  {ticket[:8]} done via {source}: "
              f"E_total={result.total_energy:.6f} "
              f"T={result.temperature:.4f} "
              f"({result.ts_per_s:.1f} steps/s, "
              f"digest {result.state_digest[:12]}…)")
    return 1 if failures else 0
