"""``trace`` — run a functional benchmark under the span tracer."""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.cli import command
from repro.suite import BENCHMARK_NAMES


def _configure(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("experiment", choices=BENCHMARK_NAMES)
    parser.add_argument("--steps", type=int, default=50)
    parser.add_argument("--atoms", type=int, default=500,
                        help="target atom count (builders round to lattice)")
    parser.add_argument("--warmup", type=int, default=5,
                        help="untraced steps before recording starts")
    parser.add_argument("--out", default="trace_out")
    parser.add_argument("--capacity", type=int, default=65_536,
                        help="span ring-buffer capacity")
    parser.add_argument("--snapshot-every", type=int, default=10,
                        help="steps between metrics snapshots")


@command(
    "trace",
    "trace a functional benchmark run",
    configure=_configure,
)
def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.observability import (
        MetricsRegistry,
        Tracer,
        render_agreement,
        render_span_table,
        render_task_table,
    )
    from repro.suite import get_benchmark

    bench = get_benchmark(args.experiment)
    tracer = Tracer(capacity=args.capacity)
    metrics = MetricsRegistry()
    sim = bench.build_instrumented(args.atoms, tracer=tracer, metrics=metrics)
    print(f"built {args.experiment}: {sim.system.n_atoms} atoms, "
          f"backend {sim.backend.name}")
    if args.warmup:
        sim.run(args.warmup)
    tracer.reset()

    out = Path(args.out)
    metrics_path = out / "metrics.jsonl"
    if metrics_path.exists():
        metrics_path.unlink()  # JSONL appends; start each invocation fresh
    print(f"tracing {args.steps} steps ...")
    from repro.md import RunConfig

    chunk = max(1, min(args.snapshot_every, args.steps))
    done = 0
    while done < args.steps:
        n = min(chunk, args.steps - done)
        sim.run(RunConfig(steps=n, reset_timers=done == 0))
        done += n
        metrics.write_snapshot(metrics_path, step=done, experiment=args.experiment)

    trace_path = tracer.write_chrome_trace(
        out / "trace.json", process_name=f"repro:{args.experiment}"
    )
    print()
    print(render_task_table(sim.timers, args.steps))
    print()
    print(render_span_table(tracer))
    print()
    print(tracer.flame_report())
    print()
    print(render_agreement(sim.timers, tracer))
    if tracer.n_dropped:
        print(f"ring buffer wrapped: {tracer.n_dropped} oldest spans dropped "
              f"(raise --capacity to keep them)")
    print(f"wrote {trace_path} (open in chrome://tracing or ui.perfetto.dev)")
    print(f"wrote {metrics_path}")
    return 0
