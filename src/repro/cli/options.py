"""Shared option groups so every command spells common flags one way.

``--precision``, ``--backend`` and ``--workers`` appear across half
the subcommands; before the registry refactor each parser re-declared
them with drifting help strings and defaults.  Commands now call these
helpers and override only what genuinely differs (the default worker
count, or a command-specific help suffix).
"""

from __future__ import annotations

import argparse

__all__ = [
    "PRECISION_CHOICES",
    "add_precision_option",
    "add_backend_option",
    "add_workers_option",
]

PRECISION_CHOICES = ("single", "mixed", "double")

_BACKEND_HELP = (
    "kernel backend (numpy_ref, numpy_fast, compiled, auto); an "
    "unavailable optional backend falls back to numpy_fast with the "
    "reason printed, an unknown name lists what exists"
)


def add_precision_option(
    parser: argparse.ArgumentParser,
    *,
    default: str | None = "double",
    help: str = "dtype policy for the run",
) -> None:
    """``--precision {single,mixed,double}`` with the canonical choices."""
    parser.add_argument(
        "--precision", choices=PRECISION_CHOICES, default=default, help=help
    )


def add_backend_option(
    parser: argparse.ArgumentParser,
    *,
    help: str = _BACKEND_HELP,
) -> None:
    """``--backend NAME`` selecting a kernel backend (default: auto)."""
    parser.add_argument("--backend", default=None, metavar="NAME", help=help)


def add_workers_option(
    parser: argparse.ArgumentParser,
    *,
    default: int | None = 1,
    help: str = "worker process count",
) -> None:
    """``--workers N`` for commands that fan work across processes."""
    parser.add_argument("--workers", type=int, default=default, help=help)
