"""The experiment-automation framework (the paper's Figure 2).

The paper's methodology (Section 4.2) is an open-source framework that,
for each experiment, takes an executable + settings, runs it in either
**benchmarking** mode (performance + power via powerstat / nvidia-smi)
or **profiling** mode (VTune / NSight), logs the data, and aggregates it
into formatted output.  This package is that framework, driving the
simulated platforms:

* :mod:`repro.core.experiment` — experiment specifications and sweeps;
* :mod:`repro.core.runner` — mode A (profiling) / mode B (benchmarking)
  execution producing :class:`~repro.core.runner.RunRecord` rows;
* :mod:`repro.core.aggregator` — the ``runs.csv`` store and queries;
* :mod:`repro.core.metrics` — TS/s, TS/s/W, parallel efficiency, ns/day;
* :mod:`repro.core.report` — formatted text tables (the "visualizer").
"""

from repro.core.aggregator import RunsTable
from repro.core.experiment import ExperimentSpec, Mode, sweep
from repro.core.metrics import ns_per_day, parallel_efficiency, timesteps_for_runtime
from repro.core.runner import RunRecord, run_experiment

__all__ = [
    "ExperimentSpec",
    "Mode",
    "sweep",
    "run_experiment",
    "RunRecord",
    "RunsTable",
    "parallel_efficiency",
    "ns_per_day",
    "timesteps_for_runtime",
]
