"""The campaign results store — the framework's ``runs.csv`` analogue.

The authors' artifact collects every run into ``<bench>/runs.csv``
files that the chart generators consume; :class:`RunsTable` plays that
role here, with csv round-tripping and simple query helpers.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.core.runner import RunRecord

__all__ = ["RunsTable"]


class RunsTable:
    """An append-only table of :class:`RunRecord` rows."""

    def __init__(self, records: Iterable[RunRecord] = ()) -> None:
        self._records: list[RunRecord] = list(records)

    def add(self, record: RunRecord) -> None:
        self._records.append(record)

    def extend(self, records: Iterable[RunRecord]) -> None:
        self._records.extend(records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self._records)

    # ------------------------------------------------------------- query
    def query(
        self,
        *,
        benchmark: str | None = None,
        platform: str | None = None,
        size_k: int | None = None,
        resources: int | None = None,
        label: str | None = None,
        predicate: Callable[[RunRecord], bool] | None = None,
    ) -> list[RunRecord]:
        """Filter rows by any combination of campaign dimensions."""
        out = []
        for record in self._records:
            if benchmark is not None and record.benchmark != benchmark:
                continue
            if platform is not None and record.platform != platform:
                continue
            if size_k is not None and record.size_k != size_k:
                continue
            if resources is not None and record.resources != resources:
                continue
            if label is not None and record.label != label:
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return out

    def series(
        self, field: str, *, sort_by: str = "resources", **filters
    ) -> list[tuple]:
        """``(sort_key, field_value)`` pairs for plotting one curve."""
        rows = self.query(**filters)
        rows.sort(key=lambda r: getattr(r, sort_by))
        return [(getattr(r, sort_by), getattr(r, field)) for r in rows]

    # --------------------------------------------------------------- csv
    def to_csv(self, path: str | Path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(RunRecord.CSV_FIELDS)
            for record in self._records:
                writer.writerow(record.to_row())

    @classmethod
    def from_csv(cls, path: str | Path) -> "RunsTable":
        with Path(path).open(newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader)
            if tuple(header) != RunRecord.CSV_FIELDS:
                raise ValueError(f"unexpected runs.csv header: {header}")
            return cls(RunRecord.from_row(row) for row in reader)
