"""Artifact-compatible output layout.

The authors' benchmarking repository (github.com/necst/lammps-benchmarks,
DOI 10.5281/zenodo.7153144) collects results as

* ``lammps/runs.csv`` — CPU-instance performance runs,
* ``lammps_gpu/runs.csv`` — GPU-instance performance runs,
* ``<bench_name>/prof/`` — per-experiment profiling data that the
  post-processing scripts (``aggregate_mpi_data.py`` etc.) consume.

:class:`ArtifactLayout` writes this reproduction's records in the same
shape, so the directory a campaign produces mirrors the paper's
artifact — with JSON profile files standing in for the VTune/NSight
reports.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.aggregator import RunsTable
from repro.core.runner import RunRecord

__all__ = ["ArtifactLayout"]

_PLATFORM_DIRS = {"cpu": "lammps", "gpu": "lammps_gpu"}


class ArtifactLayout:
    """Reads/writes campaign results in the authors' artifact layout."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------- write
    def write_runs(self, table: RunsTable) -> dict[str, Path]:
        """Split records per platform into ``<dir>/runs.csv`` files."""
        written: dict[str, Path] = {}
        for platform, directory in _PLATFORM_DIRS.items():
            subset = RunsTable(r for r in table if r.platform == platform)
            if len(subset) == 0:
                continue
            path = self.root / directory / "runs.csv"
            subset.to_csv(path)
            written[platform] = path
        return written

    def write_profile(self, record: RunRecord) -> Path:
        """One profiling record -> ``<label>/prof/<size>_<res>.json``."""
        if not record.task_fractions and not record.kernel_fractions:
            raise ValueError(
                "record carries no profiling payload; run it in "
                "profiling mode (Figure 2's mode A)"
            )
        directory = self.root / record.label / "prof"
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{record.size_k}k_{record.resources}.json"
        payload = {
            "benchmark": record.benchmark,
            "platform": record.platform,
            "size_k": record.size_k,
            "resources": record.resources,
            "ts_per_s": record.ts_per_s,
            "task_fractions": record.task_fractions,
            "mpi_function_fractions": record.mpi_function_fractions,
            "kernel_fractions": record.kernel_fractions,
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        return path

    # -------------------------------------------------------------- read
    def load_runs(self, platform: str) -> RunsTable:
        try:
            directory = _PLATFORM_DIRS[platform]
        except KeyError:
            raise ValueError(f"platform must be one of {tuple(_PLATFORM_DIRS)}") from None
        return RunsTable.from_csv(self.root / directory / "runs.csv")

    def load_profile(self, label: str, size_k: int, resources: int) -> dict:
        path = self.root / label / "prof" / f"{size_k}k_{resources}.json"
        return json.loads(path.read_text())

    def profile_index(self) -> list[Path]:
        """All profile files currently in the artifact tree."""
        return sorted(self.root.glob("*/prof/*.json"))
