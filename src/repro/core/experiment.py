"""Experiment specifications and parameter-space sweeps.

The framework's entry point: the user "defines the mode of operation,
namely profiling or benchmarking, and the parameter space, e.g., number
of MPI processes, system sizes, and input of the benchmark"
(Section 4.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from enum import Enum
from typing import Iterable, Iterator

from repro.perfmodel.workloads import get_workload

__all__ = ["Mode", "ExperimentSpec", "sweep"]


class Mode(str, Enum):
    """The framework's two modes of operation (Figure 2 A / B)."""

    PROFILING = "profiling"  # mode A: VTune / NSight equivalents
    BENCHMARKING = "benchmarking"  # mode B: performance + power


@dataclass(frozen=True)
class ExperimentSpec:
    """One point of the campaign's parameter space.

    ``resources`` is MPI ranks on the CPU instance and GPU devices on
    the GPU instance (where the rank count is derived from the device
    count, Section 6).
    """

    benchmark: str
    platform: str  # "cpu" | "gpu"
    size_k: int  # thousands of atoms
    resources: int
    mode: Mode = Mode.BENCHMARKING
    precision: str = "mixed"
    kspace_error: float | None = None
    seed: int = 0
    #: Minimum wall-clock runtime so power sampling gets enough samples
    #: (Section 4.2: "at least ten seconds").
    min_runtime_s: float = 10.0

    def __post_init__(self) -> None:
        get_workload(self.benchmark)  # validates the name
        if self.platform not in ("cpu", "gpu"):
            raise ValueError(f"platform must be 'cpu' or 'gpu', got {self.platform!r}")
        if self.size_k <= 0 or self.resources <= 0:
            raise ValueError("size_k and resources must be positive")

    @property
    def n_atoms(self) -> int:
        return self.size_k * 1000

    @property
    def label(self) -> str:
        """The paper's naming: ``rhodo``, ``rhodo-e-6``, ``lj-double``…"""
        name = self.benchmark
        if self.kspace_error is not None and self.kspace_error != 1e-4:
            exponent = round(-1 * _log10(self.kspace_error))
            name = f"{name}-e-{exponent}"
        if self.precision != "mixed":
            name = f"{name}-{self.precision}"
        return name

    def with_mode(self, mode: Mode) -> "ExperimentSpec":
        return replace(self, mode=mode)


def _log10(x: float) -> float:
    import math

    return math.log10(x)


def sweep(
    benchmarks: Iterable[str],
    platform: str,
    sizes_k: Iterable[int],
    resources: Iterable[int],
    *,
    mode: Mode = Mode.BENCHMARKING,
    precisions: Iterable[str] = ("mixed",),
    kspace_errors: Iterable[float | None] = (None,),
) -> Iterator[ExperimentSpec]:
    """The cartesian parameter-space iterator of the framework."""
    for bench, size, res, prec, err in itertools.product(
        benchmarks, sizes_k, resources, precisions, kspace_errors
    ):
        if err is not None and not get_workload(bench).has_kspace:
            continue
        yield ExperimentSpec(
            benchmark=bench,
            platform=platform,
            size_k=size,
            resources=res,
            mode=mode,
            precision=prec,
            kspace_error=err,
        )
