"""Derived performance metrics (Section 5.2 definitions).

* performance: timesteps per second (TS/s) — the paper's standard
  metric, independent of each experiment's timestep granularity;
* energy efficiency: TS/s per watt;
* parallel efficiency: ``P_n / (P_1 * n)`` with ``P_n`` the performance
  on ``n`` resources;
* ns/day: simulated time per wall-clock day, given the physical
  timestep (used for the Section 10 headline numbers).
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "parallel_efficiency",
    "parallel_efficiency_series",
    "energy_efficiency",
    "ns_per_day",
    "timesteps_for_runtime",
]

SECONDS_PER_DAY = 86_400.0


def parallel_efficiency(p_n: float, p_1: float, n: int) -> float:
    """``P_n / (P_1 * n)`` — Section 5.2's definition."""
    if p_1 <= 0 or n < 1:
        raise ValueError("p_1 must be positive and n >= 1")
    return p_n / (p_1 * n)


def parallel_efficiency_series(
    performances: Sequence[float], resources: Sequence[int]
) -> list[float]:
    """Efficiency of each point relative to the smallest resource count.

    The baseline is the first entry scaled back to one resource (the
    paper's GPU plots use the 1-device run as ``P_1``).
    """
    if len(performances) != len(resources) or not performances:
        raise ValueError("need equal-length, non-empty series")
    base = performances[0] / resources[0]
    return [p / (base * n) for p, n in zip(performances, resources)]


def energy_efficiency(ts_per_s: float, watts: float) -> float:
    """Timesteps per second per watt (Figure 6/9 middle rows)."""
    if watts <= 0:
        raise ValueError("watts must be positive")
    return ts_per_s / watts


def ns_per_day(ts_per_s: float, timestep_fs: float) -> float:
    """Simulated nanoseconds per day of wall clock."""
    if ts_per_s < 0 or timestep_fs <= 0:
        raise ValueError("ts_per_s >= 0 and timestep_fs > 0 required")
    return ts_per_s * timestep_fs * 1e-6 * SECONDS_PER_DAY


def timesteps_for_runtime(ts_per_s: float, min_runtime_s: float) -> int:
    """Steps needed so a run lasts at least ``min_runtime_s``.

    The methodology sets "each benchmark to run enough timesteps to
    reach a run time of at least ten seconds" so the 0.5 s power
    sampler collects enough points (Section 4.2).
    """
    if ts_per_s <= 0 or min_runtime_s <= 0:
        raise ValueError("ts_per_s and min_runtime_s must be positive")
    return max(1, math.ceil(ts_per_s * min_runtime_s))
