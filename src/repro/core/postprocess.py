"""Post-processing of artifact profile data (the authors' scripts).

The paper's artifact post-processes profiling output with
``aggregate_mpi_data.py``, ``parse_task_breakdown.py`` and
``aggregate_gpu_data.py``; these functions are their equivalents,
consuming an :class:`~repro.core.artifact.ArtifactLayout` tree and
producing the aggregated tables the chart generators plot.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path

from repro.core.artifact import ArtifactLayout
from repro.core.report import render_table

__all__ = [
    "aggregate_task_breakdown",
    "aggregate_mpi_data",
    "aggregate_gpu_data",
    "render_aggregate",
]


def _iter_profiles(layout: ArtifactLayout):
    for path in layout.profile_index():
        yield json.loads(Path(path).read_text())


def aggregate_task_breakdown(
    layout: ArtifactLayout,
) -> dict[tuple[str, int, int], dict[str, float]]:
    """``parse_task_breakdown`` equivalent.

    Returns ``{(benchmark, size_k, resources): {task: fraction}}`` for
    every profile in the tree that carries a task breakdown.
    """
    out: dict[tuple[str, int, int], dict[str, float]] = {}
    for profile in _iter_profiles(layout):
        fractions = profile.get("task_fractions") or {}
        if not fractions:
            continue
        key = (profile["benchmark"], profile["size_k"], profile["resources"])
        out[key] = fractions
    return out


def aggregate_mpi_data(
    layout: ArtifactLayout,
) -> dict[str, dict[tuple[int, int], dict[str, float]]]:
    """``aggregate_mpi_data`` equivalent.

    Groups MPI-function breakdowns per benchmark:
    ``{benchmark: {(size_k, resources): {function: fraction}}}``.
    """
    out: dict[str, dict[tuple[int, int], dict[str, float]]] = defaultdict(dict)
    for profile in _iter_profiles(layout):
        functions = profile.get("mpi_function_fractions") or {}
        if not functions:
            continue
        out[profile["benchmark"]][
            (profile["size_k"], profile["resources"])
        ] = functions
    return dict(out)


def aggregate_gpu_data(
    layout: ArtifactLayout,
) -> dict[str, dict[tuple[int, int], dict[str, float]]]:
    """``aggregate_gpu_data`` equivalent: per-kernel fractions."""
    out: dict[str, dict[tuple[int, int], dict[str, float]]] = defaultdict(dict)
    for profile in _iter_profiles(layout):
        kernels = profile.get("kernel_fractions") or {}
        if not kernels:
            continue
        out[profile["benchmark"]][
            (profile["size_k"], profile["resources"])
        ] = kernels
    return dict(out)


def render_aggregate(
    aggregate: dict[tuple[str, int, int], dict[str, float]],
    *,
    title: str = "Aggregated task breakdown",
    top_n: int = 5,
) -> str:
    """Human-readable rendering of an aggregated breakdown."""
    rows = []
    for (bench, size, resources), fractions in sorted(aggregate.items()):
        top = sorted(fractions.items(), key=lambda kv: -kv[1])[:top_n]
        cells = ", ".join(f"{name}={100 * value:.1f}%" for name, value in top)
        rows.append([bench, size, resources, cells])
    return render_table(
        ["benchmark", "size[k]", "resources", f"top {top_n} entries"],
        rows,
        title=title,
    )
