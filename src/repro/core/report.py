"""Formatted text output — the framework's "visualizer" stage.

The authors post-process ``runs.csv`` into seaborn charts; in a
terminal-only reproduction the equivalent deliverable is aligned text
tables, one per paper figure, which the examples print and
``EXPERIMENTS.md`` embeds.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "render_breakdown", "render_series", "format_value"]


def format_value(value, precision: int = 3) -> str:
    """Human-friendly cell formatting."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 10_000 or 0 < abs(value) < 1e-3:
            return f"{value:.2e}"
        return f"{value:.{precision}g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render an aligned, pipe-separated text table."""
    str_rows = [[format_value(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_breakdown(
    fractions: dict[str, float], *, width: int = 40, title: str | None = None
) -> str:
    """ASCII stacked-bar rendering of a task/function breakdown."""
    lines = []
    if title:
        lines.append(title)
    for name, fraction in sorted(fractions.items(), key=lambda kv: -kv[1]):
        bar = "#" * max(0, round(fraction * width))
        lines.append(f"  {name:<22s} {100 * fraction:5.1f}% {bar}")
    return "\n".join(lines)


def render_series(
    points: "Sequence[tuple]",
    *,
    width: int = 50,
    title: str | None = None,
) -> str:
    """ASCII bar chart of an ``(x, y)`` series (the seaborn stand-in).

    Each row is one x value with a bar proportional to y and the numeric
    value appended — readable renderings of the scaling curves the paper
    plots (Figures 6, 9, 10, 13, 15, 16).
    """
    points = list(points)
    if not points:
        raise ValueError("no points to render")
    y_max = max(y for _, y in points)
    if y_max <= 0:
        y_max = 1.0
    lines = []
    if title:
        lines.append(title)
    x_width = max(len(format_value(x)) for x, _ in points)
    for x, y in points:
        bar = "#" * max(1 if y > 0 else 0, round(width * y / y_max))
        lines.append(f"  {format_value(x):>{x_width}s} | {bar} {format_value(y)}")
    return "\n".join(lines)
