"""Experiment execution: benchmarking (mode B) and profiling (mode A).

``run_experiment`` drives one :class:`~repro.core.experiment.ExperimentSpec`
through the simulated platform executors and packages the observations
into a flat :class:`RunRecord` — the row format the aggregator stores in
``runs.csv`` (mirroring the authors' artifact layout).

Benchmarking mode additionally emulates the measurement protocol: it
sizes the run to last at least ten seconds and feeds the mean power
through the 0.5 s :class:`~repro.platforms.power.PowerSampler` loop, so
the recorded watts carry realistic sampling noise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.experiment import ExperimentSpec, Mode
from repro.core.metrics import timesteps_for_runtime
from repro.gpu.executor import GpuRunResult, simulate_gpu_run
from repro.parallel.executor import CpuRunResult, simulate_cpu_run
from repro.perfmodel.workloads import get_workload
from repro.platforms.power import PowerSampler

__all__ = ["RunRecord", "run_experiment"]


@dataclass
class RunRecord:
    """One row of the campaign's results table."""

    label: str
    benchmark: str
    platform: str
    size_k: int
    resources: int
    mode: str
    precision: str
    kspace_error: float | None
    n_timesteps: int
    runtime_s: float
    ts_per_s: float
    power_watts: float
    energy_efficiency: float
    mpi_time_fraction: float
    mpi_imbalance_fraction: float
    utilization: float
    memory_gb: float
    #: Profiling payloads (mode A): task and function breakdowns.
    task_fractions: dict[str, float] = field(default_factory=dict)
    mpi_function_fractions: dict[str, float] = field(default_factory=dict)
    kernel_fractions: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------- csv
    CSV_FIELDS = (
        "label",
        "benchmark",
        "platform",
        "size_k",
        "resources",
        "mode",
        "precision",
        "kspace_error",
        "n_timesteps",
        "runtime_s",
        "ts_per_s",
        "power_watts",
        "energy_efficiency",
        "mpi_time_fraction",
        "mpi_imbalance_fraction",
        "utilization",
        "memory_gb",
        "task_fractions",
        "mpi_function_fractions",
        "kernel_fractions",
    )

    def to_row(self) -> list[str]:
        values = []
        for name in self.CSV_FIELDS:
            value = getattr(self, name)
            if isinstance(value, dict):
                values.append(json.dumps(value, sort_keys=True))
            elif value is None:
                values.append("")
            else:
                values.append(str(value))
        return values

    @classmethod
    def from_row(cls, row: list[str]) -> "RunRecord":
        if len(row) != len(cls.CSV_FIELDS):
            raise ValueError(
                f"expected {len(cls.CSV_FIELDS)} columns, got {len(row)}"
            )
        kwargs: dict = {}
        for name, raw in zip(cls.CSV_FIELDS, row):
            if name in ("task_fractions", "mpi_function_fractions", "kernel_fractions"):
                kwargs[name] = json.loads(raw) if raw else {}
            elif name == "kspace_error":
                kwargs[name] = float(raw) if raw else None
            elif name in ("size_k", "resources", "n_timesteps"):
                kwargs[name] = int(raw)
            elif name in (
                "runtime_s",
                "ts_per_s",
                "power_watts",
                "energy_efficiency",
                "mpi_time_fraction",
                "mpi_imbalance_fraction",
                "utilization",
                "memory_gb",
            ):
                kwargs[name] = float(raw)
            else:
                kwargs[name] = raw
        return cls(**kwargs)


def run_experiment(spec: ExperimentSpec) -> RunRecord:
    """Execute one experiment on the simulated platform."""
    if spec.platform == "cpu":
        result: CpuRunResult | GpuRunResult = simulate_cpu_run(
            spec.benchmark,
            spec.n_atoms,
            spec.resources,
            precision=spec.precision,
            kspace_error=spec.kspace_error,
            seed=spec.seed,
        )
        mpi_fraction = result.mpi_time_fraction
        imbalance = result.mpi_imbalance_fraction
        utilization = result.core_utilization
        mpi_functions = result.mpi_function_fractions()
        kernels: dict[str, float] = {}
    else:
        result = simulate_gpu_run(
            spec.benchmark,
            spec.n_atoms,
            spec.resources,
            precision=spec.precision,
            kspace_error=spec.kspace_error,
            seed=spec.seed,
        )
        mpi_fraction = 0.0
        imbalance = 0.0
        utilization = result.gpu_utilization
        mpi_functions = {}
        kernels = result.kernel_fractions()

    # Benchmarking protocol: size the run for the power sampler.
    n_steps = timesteps_for_runtime(result.ts_per_s, spec.min_runtime_s)
    runtime_s = n_steps / result.ts_per_s
    sampler = PowerSampler(seed=spec.seed)
    samples = sampler.sample_run(result.power_watts, runtime_s)
    measured_watts = PowerSampler.average(samples)

    record = RunRecord(
        label=spec.label,
        benchmark=spec.benchmark,
        platform=spec.platform,
        size_k=spec.size_k,
        resources=spec.resources,
        mode=spec.mode.value,
        precision=spec.precision,
        kspace_error=spec.kspace_error
        if get_workload(spec.benchmark).has_kspace
        else None,
        n_timesteps=n_steps,
        runtime_s=runtime_s,
        ts_per_s=result.ts_per_s,
        power_watts=measured_watts,
        energy_efficiency=result.ts_per_s / measured_watts,
        mpi_time_fraction=mpi_fraction,
        mpi_imbalance_fraction=imbalance,
        utilization=utilization,
        memory_gb=result.memory_bytes / 1e9,
    )
    if spec.mode is Mode.PROFILING:
        record.task_fractions = result.task_fractions()
        record.mpi_function_fractions = mpi_functions
        record.kernel_fractions = kernels
    return record
