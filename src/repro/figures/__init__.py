"""Per-figure data generators: one module per paper table/figure.

Every module exposes ``generate(...)`` returning a
:class:`~repro.figures.base.FigureData` whose ``series`` holds exactly
the numbers the paper's plot shows and whose ``render()`` produces a
text table.  The benchmark harness under ``benchmarks/`` times these
generators and asserts the paper's qualitative shapes on their output;
``EXPERIMENTS.md`` records the paper-vs-measured comparison.
"""

from repro.figures.base import FigureData

__all__ = ["FigureData"]
