"""Common scaffolding for figure/table reproduction modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["FigureData"]


@dataclass
class FigureData:
    """The data behind one reproduced figure or table.

    ``series`` is figure-specific structured data (documented per
    module); ``renderer`` turns it into the text table the examples
    print and EXPERIMENTS.md embeds.
    """

    figure_id: str
    title: str
    series: dict[str, Any] = field(default_factory=dict)
    renderer: Callable[["FigureData"], str] | None = None

    def render(self) -> str:
        header = f"=== {self.figure_id}: {self.title} ==="
        if self.renderer is None:
            return header
        return header + "\n" + self.renderer(self)
