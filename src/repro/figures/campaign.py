"""Shared (memoized) campaign execution for the figure generators.

Most figures slice the same sweep — five benchmarks x four sizes x the
resource ladder — so records are cached per spec, letting the sixteen
figure modules (and the benchmark harness that runs them all) share one
simulated campaign.
"""

from __future__ import annotations

from repro.core.experiment import ExperimentSpec, Mode
from repro.core.runner import RunRecord, run_experiment
from repro.perfmodel.workloads import GPU_COUNTS, RANK_COUNTS, SIZES_K

__all__ = [
    "cached_run",
    "clear_cache",
    "SIZES_K",
    "RANK_COUNTS",
    "GPU_COUNTS",
    "ERROR_THRESHOLDS",
]

#: The Section 7 k-space error sweep.
ERROR_THRESHOLDS: tuple[float, ...] = (1e-4, 1e-5, 1e-6, 1e-7)

_CACHE: dict[ExperimentSpec, RunRecord] = {}


def cached_run(spec: ExperimentSpec) -> RunRecord:
    """Run (or recall) one experiment; profiling mode is always used so
    every record carries the breakdowns any figure might need."""
    spec = spec.with_mode(Mode.PROFILING)
    if spec not in _CACHE:
        _CACHE[spec] = run_experiment(spec)
    return _CACHE[spec]


def clear_cache() -> None:
    """Drop all memoized runs (benchmark timing uses this per round)."""
    _CACHE.clear()
