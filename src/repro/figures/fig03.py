"""Figure 3 — CPU execution-time breakdown by task.

One panel per (benchmark, size): the Table 1 task shares for each MPI
process count.  The paper's headline observations, asserted by the
benchmark harness:

* the Pair share tracks neighbors/atom (LJ > EAM >> Chain/Chute even
  though Chain and LJ share a force field);
* LJ spends > 75 % of a serial run in Pair;
* parallelization shrinks the Pair share less for larger systems, while
  Comm grows to dominate small systems at high rank counts.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.experiment import ExperimentSpec
from repro.core.report import render_table
from repro.figures.base import FigureData
from repro.figures.campaign import RANK_COUNTS, SIZES_K, cached_run
from repro.suite import CPU_BENCHMARKS

__all__ = ["generate"]


def generate(
    benchmarks: Iterable[str] = CPU_BENCHMARKS,
    sizes_k: Iterable[int] = SIZES_K,
    ranks: Iterable[int] = RANK_COUNTS,
) -> FigureData:
    """``series[(benchmark, size_k, n_ranks)] -> {task: fraction}``."""
    series: dict[tuple[str, int, int], Mapping[str, float]] = {}
    for bench in benchmarks:
        for size in sizes_k:
            for n_ranks in ranks:
                record = cached_run(
                    ExperimentSpec(bench, "cpu", size, n_ranks)
                )
                series[(bench, size, n_ranks)] = record.task_fractions

    def _render(data: FigureData) -> str:
        tasks = ("Bond", "Comm", "Kspace", "Modify", "Neigh", "Other", "Output", "Pair")
        headers = ["benchmark", "size[k]", "ranks", *tasks]
        rows = [
            [b, s, r, *(f"{100 * frac.get(t, 0.0):.1f}%" for t in tasks)]
            for (b, s, r), frac in sorted(data.series.items())
        ]
        return render_table(headers, rows)

    return FigureData(
        figure_id="Figure 3",
        title="CPU task breakdown per benchmark/size/rank-count",
        series=series,
        renderer=_render,
    )
