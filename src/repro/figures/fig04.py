"""Figure 4 — total MPI overhead and MPI imbalance percentages.

For the "-long" (10k-timestep) profiling runs: the per-rank share of
time inside MPI calls (top row) and the share spent waiting for data
(bottom row).  Shapes asserted downstream:

* overhead decreases with system size (computation grows faster than
  communication, the paper's O(L^3) vs O(L^2) argument);
* EAM and LJ have far lower imbalance than Chain and Chute.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.experiment import ExperimentSpec
from repro.core.report import render_table
from repro.figures.base import FigureData
from repro.figures.campaign import SIZES_K, cached_run
from repro.suite import CPU_BENCHMARKS

__all__ = ["generate", "MPI_RANKS"]

#: The paper's Figures 4/5 sweep ranks 4..64 (1-2 ranks have ~no MPI).
MPI_RANKS: tuple[int, ...] = (4, 8, 16, 32, 64)


def generate(
    benchmarks: Iterable[str] = CPU_BENCHMARKS,
    sizes_k: Iterable[int] = SIZES_K,
    ranks: Iterable[int] = MPI_RANKS,
    kspace_error: float | None = None,
) -> FigureData:
    """``series[(bench, size, ranks)] -> (mpi_pct, imbalance_pct)``.

    ``kspace_error`` reuses this generator for Figure 14's rhodo sweep.
    """
    series: dict[tuple[str, int, int], tuple[float, float]] = {}
    for bench in benchmarks:
        for size in sizes_k:
            for n_ranks in ranks:
                record = cached_run(
                    ExperimentSpec(
                        bench, "cpu", size, n_ranks, kspace_error=kspace_error
                    )
                )
                series[(bench, size, n_ranks)] = (
                    100.0 * record.mpi_time_fraction,
                    100.0 * record.mpi_imbalance_fraction,
                )

    def _render(data: FigureData) -> str:
        headers = ["benchmark", "size[k]", "ranks", "MPI time %", "MPI imbalance %"]
        rows = [
            [b, s, r, f"{t:.1f}", f"{i:.2f}"]
            for (b, s, r), (t, i) in sorted(data.series.items())
        ]
        return render_table(headers, rows)

    return FigureData(
        figure_id="Figure 4",
        title="MPI overhead and imbalance (long runs)",
        series=series,
        renderer=_render,
    )
