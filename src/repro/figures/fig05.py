"""Figure 5 — breakdown of MPI time by function.

Per (benchmark, size, ranks): the share of MPI time in MPI_Init,
MPI_Send, MPI_Sendrecv, MPI_Wait, MPI_Allreduce and the rest.  Shapes
asserted downstream (Section 5.1's findings):

* MPI_Init takes a considerable share, growing with the rank count;
* small systems are dominated by Init + Wait (synchronization, not
  data), while Send/Sendrecv/Allreduce grow with system size.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.experiment import ExperimentSpec
from repro.core.report import render_table
from repro.figures.base import FigureData
from repro.figures.campaign import SIZES_K, cached_run
from repro.figures.fig04 import MPI_RANKS
from repro.parallel.mpi_model import MPI_FUNCTIONS
from repro.suite import CPU_BENCHMARKS

__all__ = ["generate"]


def generate(
    benchmarks: Iterable[str] = CPU_BENCHMARKS,
    sizes_k: Iterable[int] = SIZES_K,
    ranks: Iterable[int] = MPI_RANKS,
    kspace_error: float | None = None,
) -> FigureData:
    """``series[(bench, size, ranks)] -> {mpi_function: fraction}``.

    ``kspace_error`` reuses this generator for Figure 12's rhodo sweep.
    """
    series: dict[tuple[str, int, int], Mapping[str, float]] = {}
    for bench in benchmarks:
        for size in sizes_k:
            for n_ranks in ranks:
                record = cached_run(
                    ExperimentSpec(
                        bench, "cpu", size, n_ranks, kspace_error=kspace_error
                    )
                )
                series[(bench, size, n_ranks)] = record.mpi_function_fractions

    def _render(data: FigureData) -> str:
        headers = ["benchmark", "size[k]", "ranks", *MPI_FUNCTIONS]
        rows = [
            [b, s, r, *(f"{100 * frac.get(fn, 0.0):.1f}%" for fn in MPI_FUNCTIONS)]
            for (b, s, r), frac in sorted(data.series.items())
        ]
        return render_table(headers, rows)

    return FigureData(
        figure_id="Figure 5",
        title="MPI function breakdown of the MPI overhead",
        series=series,
        renderer=_render,
    )
