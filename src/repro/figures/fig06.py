"""Figure 6 — CPU performance, energy efficiency, parallel efficiency.

The strong-scaling triple for every benchmark and size on the CPU
instance.  Anchors and shapes asserted downstream:

* Rhodopsin is slowest in absolute TS/s (10.77 TS/s at 2048k/64);
* Chute leads at 32k but loses its advantage at larger sizes and shows
  the worst parallel efficiency;
* all efficiencies stay in (0, 100]; energy efficiency peaks for the
  small/cheap configurations.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.experiment import ExperimentSpec
from repro.core.metrics import parallel_efficiency
from repro.core.report import render_table
from repro.figures.base import FigureData
from repro.figures.campaign import RANK_COUNTS, SIZES_K, cached_run
from repro.suite import CPU_BENCHMARKS

__all__ = ["generate"]


def generate(
    benchmarks: Iterable[str] = CPU_BENCHMARKS,
    sizes_k: Iterable[int] = SIZES_K,
    ranks: Iterable[int] = RANK_COUNTS,
    *,
    kspace_error: float | None = None,
    precision: str = "mixed",
) -> FigureData:
    """``series[(bench, size, ranks)] -> {ts_per_s, ts_per_s_per_watt,
    parallel_efficiency_pct}`` (reused by Figures 10 and 15 sweeps)."""
    ranks = tuple(ranks)
    series: dict[tuple[str, int, int], dict[str, float]] = {}
    for bench in benchmarks:
        for size in sizes_k:
            baseline: float | None = None
            for n_ranks in ranks:
                record = cached_run(
                    ExperimentSpec(
                        bench,
                        "cpu",
                        size,
                        n_ranks,
                        kspace_error=kspace_error,
                        precision=precision,
                    )
                )
                if baseline is None:
                    baseline = record.ts_per_s / n_ranks
                series[(bench, size, n_ranks)] = {
                    "ts_per_s": record.ts_per_s,
                    "ts_per_s_per_watt": record.energy_efficiency,
                    "parallel_efficiency_pct": 100.0
                    * parallel_efficiency(record.ts_per_s, baseline, n_ranks),
                }

    def _render(data: FigureData) -> str:
        headers = ["benchmark", "size[k]", "ranks", "TS/s", "TS/s/W", "par.eff %"]
        rows = [
            [
                b,
                s,
                r,
                f"{m['ts_per_s']:.4g}",
                f"{m['ts_per_s_per_watt']:.4g}",
                f"{m['parallel_efficiency_pct']:.1f}",
            ]
            for (b, s, r), m in sorted(data.series.items())
        ]
        return render_table(headers, rows)

    return FigureData(
        figure_id="Figure 6",
        title="CPU performance / energy efficiency / parallel efficiency",
        series=series,
        renderer=_render,
    )
