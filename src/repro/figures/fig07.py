"""Figure 7 — GPU execution-time breakdown by task (no Chute).

Shapes asserted downstream (Section 6.1):

* the Rhodopsin Pair share drops below 25 % (the GPU pair kernel is
  well optimized), while EAM still spends most of its time in Pair;
* Rhodopsin's Modify share grows vs the CPU breakdown (SHAKE has no GPU
  implementation and runs on the host).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.experiment import ExperimentSpec
from repro.core.report import render_table
from repro.figures.base import FigureData
from repro.figures.campaign import GPU_COUNTS, SIZES_K, cached_run
from repro.suite import GPU_BENCHMARKS

__all__ = ["generate"]


def generate(
    benchmarks: Iterable[str] = GPU_BENCHMARKS,
    sizes_k: Iterable[int] = SIZES_K,
    gpus: Iterable[int] = GPU_COUNTS,
) -> FigureData:
    """``series[(benchmark, size_k, n_gpus)] -> {task: fraction}``."""
    series: dict[tuple[str, int, int], Mapping[str, float]] = {}
    for bench in benchmarks:
        for size in sizes_k:
            for n_gpus in gpus:
                record = cached_run(ExperimentSpec(bench, "gpu", size, n_gpus))
                series[(bench, size, n_gpus)] = record.task_fractions

    def _render(data: FigureData) -> str:
        tasks = ("Bond", "Comm", "Kspace", "Modify", "Neigh", "Other", "Output", "Pair")
        headers = ["benchmark", "size[k]", "gpus", *tasks]
        rows = [
            [b, s, g, *(f"{100 * frac.get(t, 0.0):.1f}%" for t in tasks)]
            for (b, s, g), frac in sorted(data.series.items())
        ]
        return render_table(headers, rows)

    return FigureData(
        figure_id="Figure 7",
        title="GPU task breakdown per benchmark/size/device-count",
        series=series,
        renderer=_render,
    )
