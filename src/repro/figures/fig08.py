"""Figure 8 — GPU kernels and data-movement breakdown.

Per configuration: the share of device time in each named CUDA kernel
and the memcpy/memset entries.  Shapes asserted downstream:

* data movement (HtoD + DtoH) takes the majority of active device time
  ("the amount of computation per communication is sub-optimal");
* the combined EAM pair kernels outlast Rhodopsin's k_charmm_long;
* for Rhodopsin, the long-range kernels (make_rho/particle_map) lead up
  to 864k atoms, then calc_neigh_list_cell becomes prevalent at 2048k.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.experiment import ExperimentSpec
from repro.core.report import render_table
from repro.figures.base import FigureData
from repro.figures.campaign import GPU_COUNTS, SIZES_K, cached_run
from repro.suite import GPU_BENCHMARKS

__all__ = ["generate"]


def generate(
    benchmarks: Iterable[str] = GPU_BENCHMARKS,
    sizes_k: Iterable[int] = SIZES_K,
    gpus: Iterable[int] = GPU_COUNTS,
) -> FigureData:
    """``series[(benchmark, size_k, n_gpus)] -> {kernel: fraction}``."""
    series: dict[tuple[str, int, int], Mapping[str, float]] = {}
    for bench in benchmarks:
        for size in sizes_k:
            for n_gpus in gpus:
                record = cached_run(ExperimentSpec(bench, "gpu", size, n_gpus))
                series[(bench, size, n_gpus)] = record.kernel_fractions

    def _render(data: FigureData) -> str:
        lines = []
        for (b, s, g), fractions in sorted(data.series.items()):
            top = sorted(fractions.items(), key=lambda kv: -kv[1])[:6]
            cells = ", ".join(f"{k}={100 * v:.1f}%" for k, v in top)
            lines.append([b, s, g, cells])
        return render_table(["benchmark", "size[k]", "gpus", "top entries"], lines)

    return FigureData(
        figure_id="Figure 8",
        title="GPU kernel and data-movement breakdown",
        series=series,
        renderer=_render,
    )
