"""Figure 9 — GPU performance, energy efficiency, parallel efficiency.

The multi-device strong-scaling triple.  Shapes asserted downstream
(Section 6.2):

* multi-GPU parallel efficiency is considerably worse than the CPU
  instance's MPI scaling, dropping below ~30 % (the paper quotes a
  23.28 % floor);
* EAM outperforms Chain on the GPU instance — the reverse of the CPU
  ordering;
* energy efficiency is lower than the CPU instance's at comparable
  throughput.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.experiment import ExperimentSpec
from repro.core.metrics import parallel_efficiency
from repro.core.report import render_table
from repro.figures.base import FigureData
from repro.figures.campaign import GPU_COUNTS, SIZES_K, cached_run
from repro.suite import GPU_BENCHMARKS

__all__ = ["generate"]


def generate(
    benchmarks: Iterable[str] = GPU_BENCHMARKS,
    sizes_k: Iterable[int] = SIZES_K,
    gpus: Iterable[int] = GPU_COUNTS,
    *,
    kspace_error: float | None = None,
    precision: str = "mixed",
) -> FigureData:
    """``series[(bench, size, gpus)] -> {ts_per_s, ts_per_s_per_watt,
    parallel_efficiency_pct, gpu_utilization}`` (reused by Figures 13/16)."""
    gpus = tuple(gpus)
    series: dict[tuple[str, int, int], dict[str, float]] = {}
    for bench in benchmarks:
        for size in sizes_k:
            baseline: float | None = None
            for n_gpus in gpus:
                record = cached_run(
                    ExperimentSpec(
                        bench,
                        "gpu",
                        size,
                        n_gpus,
                        kspace_error=kspace_error,
                        precision=precision,
                    )
                )
                if baseline is None:
                    baseline = record.ts_per_s / n_gpus
                series[(bench, size, n_gpus)] = {
                    "ts_per_s": record.ts_per_s,
                    "ts_per_s_per_watt": record.energy_efficiency,
                    "parallel_efficiency_pct": 100.0
                    * parallel_efficiency(record.ts_per_s, baseline, n_gpus),
                    "gpu_utilization": record.utilization,
                }

    def _render(data: FigureData) -> str:
        headers = ["benchmark", "size[k]", "gpus", "TS/s", "TS/s/W", "par.eff %", "util"]
        rows = [
            [
                b,
                s,
                g,
                f"{m['ts_per_s']:.4g}",
                f"{m['ts_per_s_per_watt']:.4g}",
                f"{m['parallel_efficiency_pct']:.1f}",
                f"{m['gpu_utilization']:.2f}",
            ]
            for (b, s, g), m in sorted(data.series.items())
        ]
        return render_table(headers, rows)

    return FigureData(
        figure_id="Figure 9",
        title="GPU performance / energy efficiency / parallel efficiency",
        series=series,
        renderer=_render,
    )
