"""Figure 10 — Rhodopsin CPU performance vs k-space error threshold.

Performance and parallel efficiency for thresholds 1e-4 … 1e-7.
Anchors: at 2048k/64 ranks, 10.77 TS/s and 74.29 % efficiency at 1e-4
fall to 3.54 TS/s and 56.54 % at 1e-7.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.report import render_table
from repro.figures import fig06
from repro.figures.base import FigureData
from repro.figures.campaign import ERROR_THRESHOLDS, RANK_COUNTS, SIZES_K

__all__ = ["generate"]


def generate(
    sizes_k: Iterable[int] = SIZES_K,
    ranks: Iterable[int] = RANK_COUNTS,
    thresholds: Iterable[float] = ERROR_THRESHOLDS,
) -> FigureData:
    """``series[(threshold, size, ranks)] -> {ts_per_s, parallel_efficiency_pct}``."""
    series: dict[tuple[float, int, int], dict[str, float]] = {}
    for threshold in thresholds:
        sub = fig06.generate(
            benchmarks=("rhodo",),
            sizes_k=sizes_k,
            ranks=ranks,
            kspace_error=threshold,
        )
        for (bench, size, n_ranks), metrics in sub.series.items():
            series[(threshold, size, n_ranks)] = {
                "ts_per_s": metrics["ts_per_s"],
                "parallel_efficiency_pct": metrics["parallel_efficiency_pct"],
            }

    def _render(data: FigureData) -> str:
        headers = ["threshold", "size[k]", "ranks", "TS/s", "par.eff %"]
        rows = [
            [f"{t:.0e}", s, r, f"{m['ts_per_s']:.4g}", f"{m['parallel_efficiency_pct']:.1f}"]
            for (t, s, r), m in sorted(data.series.items(), key=lambda kv: (-kv[0][0], kv[0][1], kv[0][2]))
        ]
        return render_table(headers, rows)

    return FigureData(
        figure_id="Figure 10",
        title="Rhodopsin CPU performance vs kspace error threshold",
        series=series,
        renderer=_render,
    )
