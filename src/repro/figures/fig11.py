"""Figure 11 — Rhodopsin CPU task breakdown vs k-space error threshold.

Shape asserted downstream: the Kspace share of the timestep grows
monotonically as the threshold tightens from 1e-4 to 1e-7.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.experiment import ExperimentSpec
from repro.core.report import render_table
from repro.figures.base import FigureData
from repro.figures.campaign import ERROR_THRESHOLDS, SIZES_K, cached_run

__all__ = ["generate", "BREAKDOWN_RANKS"]

#: The paper's Figure 11 plots ranks 2..64.
BREAKDOWN_RANKS: tuple[int, ...] = (2, 4, 8, 16, 32, 64)


def generate(
    sizes_k: Iterable[int] = SIZES_K,
    ranks: Iterable[int] = BREAKDOWN_RANKS,
    thresholds: Iterable[float] = ERROR_THRESHOLDS,
) -> FigureData:
    """``series[(threshold, size, ranks)] -> {task: fraction}``."""
    series: dict[tuple[float, int, int], Mapping[str, float]] = {}
    for threshold in thresholds:
        for size in sizes_k:
            for n_ranks in ranks:
                record = cached_run(
                    ExperimentSpec(
                        "rhodo", "cpu", size, n_ranks, kspace_error=threshold
                    )
                )
                series[(threshold, size, n_ranks)] = record.task_fractions

    def _render(data: FigureData) -> str:
        tasks = ("Bond", "Comm", "Kspace", "Modify", "Neigh", "Other", "Output", "Pair")
        headers = ["threshold", "size[k]", "ranks", *tasks]
        rows = [
            [f"{t:.0e}", s, r, *(f"{100 * frac.get(k, 0.0):.1f}%" for k in tasks)]
            for (t, s, r), frac in sorted(
                data.series.items(), key=lambda kv: (-kv[0][0], kv[0][1], kv[0][2])
            )
        ]
        return render_table(headers, rows)

    return FigureData(
        figure_id="Figure 11",
        title="Rhodopsin CPU task breakdown vs kspace error threshold",
        series=series,
        renderer=_render,
    )
