"""Figure 12 — Rhodopsin MPI function breakdown vs error threshold.

Shape asserted downstream: at tighter thresholds and bigger systems the
MPI_Send share grows over the other functions — "less time is spent on
synchronization between tasks and more time is spent on actual data
exchange" (Section 7).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.experiment import ExperimentSpec
from repro.core.report import render_table
from repro.figures.base import FigureData
from repro.figures.campaign import ERROR_THRESHOLDS, SIZES_K, cached_run
from repro.figures.fig04 import MPI_RANKS
from repro.parallel.mpi_model import MPI_FUNCTIONS

__all__ = ["generate"]


def generate(
    sizes_k: Iterable[int] = SIZES_K,
    ranks: Iterable[int] = MPI_RANKS,
    thresholds: Iterable[float] = ERROR_THRESHOLDS,
) -> FigureData:
    """``series[(threshold, size, ranks)] -> {mpi_function: fraction}``."""
    series: dict[tuple[float, int, int], Mapping[str, float]] = {}
    for threshold in thresholds:
        for size in sizes_k:
            for n_ranks in ranks:
                record = cached_run(
                    ExperimentSpec(
                        "rhodo", "cpu", size, n_ranks, kspace_error=threshold
                    )
                )
                series[(threshold, size, n_ranks)] = record.mpi_function_fractions

    def _render(data: FigureData) -> str:
        headers = ["threshold", "size[k]", "ranks", *MPI_FUNCTIONS]
        rows = [
            [
                f"{t:.0e}",
                s,
                r,
                *(f"{100 * frac.get(fn, 0.0):.1f}%" for fn in MPI_FUNCTIONS),
            ]
            for (t, s, r), frac in sorted(
                data.series.items(), key=lambda kv: (-kv[0][0], kv[0][1], kv[0][2])
            )
        ]
        return render_table(headers, rows)

    return FigureData(
        figure_id="Figure 12",
        title="Rhodopsin MPI function breakdown vs kspace error threshold",
        series=series,
        renderer=_render,
    )
