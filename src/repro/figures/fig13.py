"""Figure 13 — Rhodopsin GPU performance vs k-space error threshold.

Anchor: at 2048k atoms on 8 GPUs, 16.09 TS/s at 1e-4 collapses to
0.46 TS/s at 1e-7 — a ~35x penalty (vs ~3x on the CPU instance),
because the grown FFT grid must cross PCIe every step.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.report import render_table
from repro.figures import fig09
from repro.figures.base import FigureData
from repro.figures.campaign import ERROR_THRESHOLDS, GPU_COUNTS, SIZES_K

__all__ = ["generate"]


def generate(
    sizes_k: Iterable[int] = SIZES_K,
    gpus: Iterable[int] = GPU_COUNTS,
    thresholds: Iterable[float] = ERROR_THRESHOLDS,
) -> FigureData:
    """``series[(threshold, size, gpus)] -> {ts_per_s, parallel_efficiency_pct}``."""
    series: dict[tuple[float, int, int], dict[str, float]] = {}
    for threshold in thresholds:
        sub = fig09.generate(
            benchmarks=("rhodo",),
            sizes_k=sizes_k,
            gpus=gpus,
            kspace_error=threshold,
        )
        for (bench, size, n_gpus), metrics in sub.series.items():
            series[(threshold, size, n_gpus)] = {
                "ts_per_s": metrics["ts_per_s"],
                "parallel_efficiency_pct": metrics["parallel_efficiency_pct"],
            }

    def _render(data: FigureData) -> str:
        headers = ["threshold", "size[k]", "gpus", "TS/s", "par.eff %"]
        rows = [
            [f"{t:.0e}", s, g, f"{m['ts_per_s']:.4g}", f"{m['parallel_efficiency_pct']:.1f}"]
            for (t, s, g), m in sorted(
                data.series.items(), key=lambda kv: (-kv[0][0], kv[0][1], kv[0][2])
            )
        ]
        return render_table(headers, rows)

    return FigureData(
        figure_id="Figure 13",
        title="Rhodopsin GPU performance vs kspace error threshold",
        series=series,
        renderer=_render,
    )
