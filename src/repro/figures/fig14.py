"""Figure 14 — Rhodopsin MPI overhead and imbalance vs error threshold.

Shape asserted downstream: the *relative* MPI overhead decreases as the
threshold tightens — the long-range compute (and genuine data exchange)
grows faster than the synchronization overheads (Section 7).
"""

from __future__ import annotations

from typing import Iterable

from repro.core.report import render_table
from repro.figures import fig04
from repro.figures.base import FigureData
from repro.figures.campaign import SIZES_K

__all__ = ["generate", "FIG14_THRESHOLDS"]

#: The paper shows the baseline, 1e-6 and 1e-7 (1e-5 behaves like 1e-6).
FIG14_THRESHOLDS: tuple[float, ...] = (1e-4, 1e-6, 1e-7)


def generate(
    sizes_k: Iterable[int] = SIZES_K,
    thresholds: Iterable[float] = FIG14_THRESHOLDS,
) -> FigureData:
    """``series[(threshold, size, ranks)] -> (mpi_pct, imbalance_pct)``."""
    series: dict[tuple[float, int, int], tuple[float, float]] = {}
    for threshold in thresholds:
        sub = fig04.generate(
            benchmarks=("rhodo",), sizes_k=sizes_k, kspace_error=threshold
        )
        for (bench, size, n_ranks), values in sub.series.items():
            series[(threshold, size, n_ranks)] = values

    def _render(data: FigureData) -> str:
        headers = ["threshold", "size[k]", "ranks", "MPI time %", "MPI imbalance %"]
        rows = [
            [f"{t:.0e}", s, r, f"{m[0]:.1f}", f"{m[1]:.2f}"]
            for (t, s, r), m in sorted(
                data.series.items(), key=lambda kv: (-kv[0][0], kv[0][1], kv[0][2])
            )
        ]
        return render_table(headers, rows)

    return FigureData(
        figure_id="Figure 14",
        title="Rhodopsin MPI overhead and imbalance vs kspace error threshold",
        series=series,
        renderer=_render,
    )
