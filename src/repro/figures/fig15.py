"""Figure 15 — LJ and Rhodopsin CPU performance by floating-point precision.

Anchors: LJ 2048k/64 ranks drops 115.2 -> 98.9 TS/s from single to
double; Rhodopsin drops 11.5 -> 8.4 TS/s; mixed stays close to single.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.experiment import ExperimentSpec
from repro.core.report import render_table
from repro.figures.base import FigureData
from repro.figures.campaign import RANK_COUNTS, SIZES_K, cached_run
from repro.perfmodel.precision import PRECISIONS

__all__ = ["generate", "PRECISION_BENCHMARKS"]

#: The paper plots LJ and Rhodopsin (EAM behaves like LJ, Chain like
#: Rhodopsin — asserted separately).
PRECISION_BENCHMARKS: tuple[str, ...] = ("lj", "rhodo")


def generate(
    benchmarks: Iterable[str] = PRECISION_BENCHMARKS,
    sizes_k: Iterable[int] = SIZES_K,
    ranks: Iterable[int] = RANK_COUNTS,
) -> FigureData:
    """``series[(bench, precision, size, ranks)] -> ts_per_s``."""
    series: dict[tuple[str, str, int, int], float] = {}
    for bench in benchmarks:
        for precision in PRECISIONS:
            for size in sizes_k:
                for n_ranks in ranks:
                    record = cached_run(
                        ExperimentSpec(
                            bench, "cpu", size, n_ranks, precision=precision.value
                        )
                    )
                    series[(bench, precision.value, size, n_ranks)] = record.ts_per_s

    def _render(data: FigureData) -> str:
        headers = ["benchmark", "precision", "size[k]", "ranks", "TS/s"]
        rows = [
            [b, p, s, r, f"{ts:.4g}"] for (b, p, s, r), ts in sorted(data.series.items())
        ]
        return render_table(headers, rows)

    return FigureData(
        figure_id="Figure 15",
        title="CPU performance by floating-point precision (LJ, Rhodopsin)",
        series=series,
        renderer=_render,
    )
