"""Figure 16 — LJ and Rhodopsin GPU performance by floating-point precision.

Anchors: LJ 2048k on 8 GPUs drops 170.0 -> 121.6 TS/s from single to
double (the V100's FP64 throughput); Rhodopsin barely moves (17.1 ->
16.5 TS/s) because its step is not pair-kernel-bound on the GPU.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.experiment import ExperimentSpec
from repro.core.report import render_table
from repro.figures.base import FigureData
from repro.figures.campaign import GPU_COUNTS, SIZES_K, cached_run
from repro.figures.fig15 import PRECISION_BENCHMARKS
from repro.perfmodel.precision import PRECISIONS

__all__ = ["generate"]


def generate(
    benchmarks: Iterable[str] = PRECISION_BENCHMARKS,
    sizes_k: Iterable[int] = SIZES_K,
    gpus: Iterable[int] = GPU_COUNTS,
) -> FigureData:
    """``series[(bench, precision, size, gpus)] -> ts_per_s``."""
    series: dict[tuple[str, str, int, int], float] = {}
    for bench in benchmarks:
        for precision in PRECISIONS:
            for size in sizes_k:
                for n_gpus in gpus:
                    record = cached_run(
                        ExperimentSpec(
                            bench, "gpu", size, n_gpus, precision=precision.value
                        )
                    )
                    series[(bench, precision.value, size, n_gpus)] = record.ts_per_s

    def _render(data: FigureData) -> str:
        headers = ["benchmark", "precision", "size[k]", "gpus", "TS/s"]
        rows = [
            [b, p, s, g, f"{ts:.4g}"] for (b, p, s, g), ts in sorted(data.series.items())
        ]
        return render_table(headers, rows)

    return FigureData(
        figure_id="Figure 16",
        title="GPU performance by floating-point precision (LJ, Rhodopsin)",
        series=series,
        renderer=_render,
    )
