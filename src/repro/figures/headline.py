"""Section 10's headline turnaround numbers.

"Rhodopsin with 2 million atoms on a single CPU node runs at 2 ns/day
on current commodity hardware.  Our GPU node with eight devices reached
2.8 ns/day" — at the benchmark's 2 fs timestep.  Also the ~30 % average
per-GPU utilization quoted for 2-million-atom systems.
"""

from __future__ import annotations

from repro.core.experiment import ExperimentSpec
from repro.core.report import render_table
from repro.figures.base import FigureData
from repro.figures.campaign import cached_run
from repro.perfmodel.workloads import get_workload

__all__ = ["generate"]


def generate() -> FigureData:
    """``series`` holds cpu/gpu ns-per-day and the GPU utilization."""
    timestep_fs = get_workload("rhodo").timestep_fs
    cpu = cached_run(ExperimentSpec("rhodo", "cpu", 2048, 64))
    gpu = cached_run(ExperimentSpec("rhodo", "gpu", 2048, 8))
    to_ns_day = timestep_fs * 1e-6 * 86_400.0
    series = {
        "cpu_ns_per_day": cpu.ts_per_s * to_ns_day,
        "gpu_ns_per_day": gpu.ts_per_s * to_ns_day,
        "gpu_utilization": gpu.utilization,
        "cpu_ts_per_s": cpu.ts_per_s,
        "gpu_ts_per_s": gpu.ts_per_s,
    }

    def _render(data: FigureData) -> str:
        rows = [
            ["CPU node (64 ranks)", f"{data.series['cpu_ts_per_s']:.2f}",
             f"{data.series['cpu_ns_per_day']:.2f}", "-"],
            ["GPU node (8 x V100)", f"{data.series['gpu_ts_per_s']:.2f}",
             f"{data.series['gpu_ns_per_day']:.2f}",
             f"{100 * data.series['gpu_utilization']:.0f}%"],
        ]
        return render_table(
            ["platform", "TS/s", "ns/day", "avg GPU util"], rows
        )

    return FigureData(
        figure_id="Section 10",
        title="Rhodopsin 2M-atom headline turnaround",
        series=series,
        renderer=_render,
    )
