"""Table 2 — "Main characteristics of our benchmark suite".

The taxonomy rows come straight from the suite definitions; the
``measure_neighbors`` helper additionally *derives* the neighbors/atom
column from the functional engine's geometry, validating that the
quoted numbers fall out of density x cutoff rather than being copied.
"""

from __future__ import annotations

from repro.core.report import render_table
from repro.figures.base import FigureData
from repro.suite import registry

__all__ = ["generate", "measure_neighbors"]

_ROWS = (
    ("Min atoms", lambda t: f"{t.min_atoms // 1000}k"),
    ("Force field", lambda t: t.force_field),
    ("Cutoff", lambda t: f"{t.cutoff} {t.cutoff_units}"),
    ("Neighbor skin", lambda t: f"{t.neighbor_skin} {t.cutoff_units}"),
    ("Neighbors/atom", lambda t: str(t.neighbors_per_atom)),
    ("pair_modify", lambda t: t.pair_modify_mix or "-"),
    ("kspace_style", lambda t: t.kspace_style or "-"),
    (
        "Kspace error",
        lambda t: f"{t.kspace_error:.1e}" if t.kspace_error else "-",
    ),
    ("Integration", lambda t: t.integration),
)

#: Paper column order.
_ORDER = ("rhodo", "lj", "chain", "eam", "chute")


def generate() -> FigureData:
    """The Table 2 grid, benchmarks as columns."""
    taxonomies = {name: registry[name].taxonomy for name in _ORDER}
    series = {
        name: {label: fn(tax) for label, fn in _ROWS}
        for name, tax in taxonomies.items()
    }

    def _render(data: FigureData) -> str:
        headers = ["Characteristic", *_ORDER]
        rows = [
            [label, *(data.series[name][label] for name in _ORDER)]
            for label, _ in _ROWS
        ]
        return render_table(headers, rows)

    return FigureData(
        figure_id="Table 2",
        title="Main characteristics of the benchmark suite",
        series=series,
        renderer=_render,
    )


def measure_neighbors(benchmark: str, n_atoms: int = 500) -> float:
    """Neighbors/atom measured by actually building the system.

    Runs the functional builder and reads the neighbor-list statistics;
    small systems under-report the bulk value slightly (surface and
    minimum-image effects), which the validation test accounts for.
    """
    sim = registry[benchmark].build(n_atoms)
    sim.setup()
    return sim.neighbor.stats.last_neighbors_per_atom
