"""Table 3 — "CPU and GPU Instances Description"."""

from __future__ import annotations

from repro.core.report import render_table
from repro.figures.base import FigureData
from repro.platforms.instances import CPU_INSTANCE, GPU_INSTANCE

__all__ = ["generate"]


def generate() -> FigureData:
    """Instance spec grid matching the paper's Table 3 sections."""
    cpu, gpu = CPU_INSTANCE, GPU_INSTANCE
    cpu_rows = [
        ("CPU", cpu.cpu.model, gpu.cpu.model),
        ("Cores", cpu.cpu.cores, gpu.cpu.cores),
        ("Threads", cpu.cpu.threads, gpu.cpu.threads),
        (
            "Freq. (turbo)",
            f"{cpu.cpu.frequency_ghz} GHz ({cpu.cpu.turbo_ghz} GHz)",
            f"{gpu.cpu.frequency_ghz} GHz ({gpu.cpu.turbo_ghz} GHz)",
        ),
        ("L1 Cache", f"{cpu.cpu.l1_kb_per_core} KB/core", f"{gpu.cpu.l1_kb_per_core} KB/core"),
        ("L2 Cache", f"{cpu.cpu.l2_mb_per_core} MB/core", f"{gpu.cpu.l2_mb_per_core} MB/core"),
        ("L3 Cache", f"{cpu.cpu.l3_mb_shared} MB shared", f"{gpu.cpu.l3_mb_shared} MB shared"),
        ("Tech. Node", f"{cpu.cpu.tech_node_nm} nm", f"{gpu.cpu.tech_node_nm} nm"),
        ("TDP", f"{cpu.cpu.tdp_watts:.0f} W", f"{gpu.cpu.tdp_watts:.0f} W"),
    ]
    device = gpu.gpu
    assert device is not None
    gpu_rows = [
        ("GPU", "-", device.model),
        ("SM", "-", device.sms),
        ("Global Mem.", "-", f"{device.global_memory_gb} GB HBM"),
        ("L2 Cache", "-", f"{device.l2_mb_shared} MB shared"),
        ("L1 Cache", "-", f"{device.l1_kb_per_sm} KB/SM"),
        ("Frequency", "-", f"{device.frequency_ghz} GHz"),
        ("Tech. Node", "-", f"{device.tech_node_nm} nm"),
        ("TDP", "-", f"{device.tdp_watts:.0f} W"),
    ]
    instance_rows = [
        ("Sockets", cpu.sockets, gpu.sockets),
        ("Memory", f"{cpu.memory_gb} GB DDR4", f"{gpu.memory_gb} GB DDR4"),
        ("OS", cpu.os, gpu.os),
        ("Kernel", cpu.kernel, gpu.kernel),
    ]
    series = {
        "cpu_specs": cpu_rows,
        "gpu_specs": gpu_rows,
        "instance_specs": instance_rows,
    }

    def _render(data: FigureData) -> str:
        headers = ["Spec", "CPU Inst.", "GPU Inst."]
        blocks = []
        for section, rows in data.series.items():
            blocks.append(render_table(headers, rows, title=f"[{section}]"))
        return "\n\n".join(blocks)

    return FigureData(
        figure_id="Table 3",
        title="CPU and GPU instance descriptions",
        series=series,
        renderer=_render,
    )
