"""Simulated multi-GPU execution (the LAMMPS GPU-package substitute).

The reference GPU package accelerates *portions* of the timestep as CUDA
kernels while the host keeps ownership of integration, fixes (SHAKE has
no GPU implementation) and bonded forces; every step therefore moves
positions host-to-device and forces device-to-host, which is exactly the
data-movement bottleneck Section 6 diagnoses.  This package models that
offload structure:

* :mod:`repro.gpu.kernels` — the kernel catalogue of Figure 8 with
  per-kernel cost laws;
* :mod:`repro.gpu.transfers` — the PCIe memcpy model (shared host
  bandwidth, per-transfer latency);
* :mod:`repro.gpu.executor` — the simulated GPU-instance run behind
  Figures 7-9, 13 and 16.
"""

from repro.gpu.executor import GpuRunResult, simulate_gpu_run
from repro.gpu.kernels import KERNELS_BY_BENCHMARK, GpuKernelCoefficients
from repro.gpu.transfers import PcieModel

__all__ = [
    "simulate_gpu_run",
    "GpuRunResult",
    "KERNELS_BY_BENCHMARK",
    "GpuKernelCoefficients",
    "PcieModel",
]
