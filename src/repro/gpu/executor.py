"""Simulated GPU-instance experiment runs (Section 6's campaign).

The reference GPU package structure being modelled:

* the box is decomposed over ``total_ranks`` MPI processes on the host
  (the paper found no more than 48 beneficial despite 52 cores);
* ranks share devices — several subdomains time-multiplex each V100,
  which raises utilization but serializes their kernels and transfers;
* every step ships positions to the device and forces back over PCIe;
* pair forces, neighbor builds and the PPPM grid kernels run on the
  device; integration, fixes (SHAKE has no GPU port), bonded forces and
  the PPPM FFTs stay on the host CPU.

The step time is the serialized device queue plus the non-overlapped
host work plus MPI — which is exactly why multi-GPU strong scaling
collapses (Figure 9) and why a tight error threshold drowns the run in
``CUDA memcpy`` (Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpu.kernels import (
    DATA_MOVEMENT_ENTRIES,
    GpuKernelCoefficients,
    kernel_seconds_per_step,
    pair_kernel_names,
)
from repro.gpu.transfers import PcieModel
from repro.parallel.decomposition import SubdomainGeometry
from repro.parallel.mpi_model import MpiModel
from repro.perfmodel.costs import CpuCostCoefficients, CpuCostModel, kspace_grid
from repro.perfmodel.precision import Precision
from repro.perfmodel.workloads import WorkloadParams, get_workload
from repro.platforms.instances import GPU_INSTANCE, InstanceSpec
from repro.platforms.power import GpuPowerModel

__all__ = ["GpuRunResult", "simulate_gpu_run", "GpuModelConfig"]


@dataclass(frozen=True)
class GpuModelConfig:
    """Tunable structure of the offload model (calibrated defaults)."""

    #: Paper finding: beyond 48 total MPI ranks nothing improved.
    max_total_ranks: int = 48
    #: The CUDA driver and OS need a few cores; claiming them for MPI
    #: ranks slows every host task (why 52 ranks lose to 48).
    driver_reserved_cores: int = 4
    oversubscription_penalty: float = 1.3
    #: The GPU-instance host core is slower than the 8358 (2.0 vs 2.6 GHz
    #: base, older microarchitecture).
    host_core_slowdown: float = 1.45
    #: Host-side Modify penalty: SHAKE/NPT run serially per rank without
    #: the INTEL package's vectorization.
    host_modify_factor: float = 2.4
    #: Bonded forces have no GPU port either and run serially per rank.
    host_bond_factor: float = 3.0
    #: Fraction of host work hidden under device execution.
    host_overlap: float = 0.3
    #: Host<->device synchronization cost per rank per step (driver
    #: polling, fence waits) — independent of the device count, this is
    #: the serial fraction that caps multi-GPU strong scaling.
    offload_sync_s: float = 3.0e-4
    #: The distributed FFT on the weaker host scales worse than on the
    #: CPU instance.
    host_fft_exponent: float = 0.5
    #: Grid bricks move as strided chunks: effective PCIe efficiency
    #: relative to the already-derated atom-payload bandwidth.
    grid_transfer_efficiency: float = 0.5
    #: Grids shipped per step: rho down, three field components up, and
    #: per-rank ghost-brick overlap.
    grids_moved_per_step: float = 7.0
    #: Per-benchmark pair-kernel tuning quality (k_charmm_long is highly
    #: optimized; the EAM split is handled in the kernel model).
    pair_quality: dict = field(
        default_factory=lambda: {"lj": 1.0, "chain": 1.3, "eam": 1.0, "rhodo": 0.4}
    )
    #: Neighbor-kernel congestion: atomics degrade beyond this many
    #: atoms per device (the Rhodopsin "breaking point" of Section 6.1).
    neigh_congestion_atoms: float = 1.2e5
    neigh_congestion_cap: float = 3.5

    def ranks_for(self, n_gpus: int, instance: InstanceSpec) -> int:
        total = min(self.max_total_ranks, instance.total_cores)
        # Keep ranks evenly divisible across devices.
        return max(n_gpus, (total // n_gpus) * n_gpus)


@dataclass
class GpuRunResult:
    """Everything measured (modelled) for one GPU-instance run."""

    benchmark: str
    n_atoms: int
    n_gpus: int
    total_ranks: int
    precision: str
    kspace_error: float | None
    #: Per-step seconds by Table 1 task (Figure 7).
    task_seconds: dict[str, float]
    #: Per-step device seconds by kernel / data-movement entry (Figure 8).
    kernel_seconds: dict[str, float]
    step_seconds: float
    ts_per_s: float
    #: Share of the step the device spends executing kernels.
    gpu_utilization: float
    #: Achieved share of PCIe peak during the step.
    pcie_utilization: float
    power_watts: float
    energy_efficiency: float
    memory_bytes: float

    def task_fractions(self) -> dict[str, float]:
        total = sum(self.task_seconds.values())
        if total <= 0:
            return {k: 0.0 for k in self.task_seconds}
        return {k: v / total for k, v in self.task_seconds.items()}

    def kernel_fractions(self) -> dict[str, float]:
        total = sum(self.kernel_seconds.values())
        if total <= 0:
            return {k: 0.0 for k in self.kernel_seconds}
        return {k: v / total for k, v in self.kernel_seconds.items()}

    def ns_per_day(self, timestep_fs: float) -> float:
        return self.ts_per_s * timestep_fs * 1e-6 * 86_400.0


def simulate_gpu_run(
    benchmark: str,
    n_atoms: int,
    n_gpus: int,
    *,
    precision: Precision | str = Precision.MIXED,
    kspace_error: float | None = None,
    seed: int = 0,
    instance: InstanceSpec = GPU_INSTANCE,
    config: GpuModelConfig | None = None,
    kernel_coefficients: GpuKernelCoefficients | None = None,
    pcie: PcieModel | None = None,
) -> GpuRunResult:
    """Model one run of ``benchmark`` on ``n_gpus`` V100s."""
    workload = get_workload(benchmark)
    if not workload.gpu_supported:
        raise ValueError(
            f"{benchmark!r} is unsupported by the reference GPU package "
            "(gran/hooke pair style, Section 6)"
        )
    instance.validate_resources(n_gpus=n_gpus)
    if kspace_error is not None and not workload.has_kspace:
        raise ValueError(f"{benchmark} computes no long-range forces")

    cfg = config if config is not None else GpuModelConfig()
    kc = kernel_coefficients if kernel_coefficients is not None else GpuKernelCoefficients()
    pcie = pcie if pcie is not None else PcieModel()
    precision = Precision(precision)

    total_ranks = cfg.ranks_for(n_gpus, instance)
    ranks_per_gpu = total_ranks // n_gpus
    n_dev = n_atoms / n_gpus
    n_rank = n_atoms / total_ranks

    # ------------------------------------------------------------- device
    kernels = kernel_seconds_per_step(workload, n_dev, precision, kc)
    # Pair quality tuning and neighbor congestion.
    quality = cfg.pair_quality.get(benchmark, 1.0)
    for name in pair_kernel_names(benchmark):
        kernels[name] *= quality
    congestion = 1.0 + min(
        (n_dev / cfg.neigh_congestion_atoms) ** 1.5, cfg.neigh_congestion_cap
    )
    kernels["calc_neigh_list_cell"] *= congestion

    kernel_total = sum(kernels.values())
    n_kernels_launched = sum(1 for v in kernels.values() if v > 0)
    launch_total = ranks_per_gpu * n_kernels_launched * kc.launch_latency_s

    # -------------------------------------------------------- data motion
    bytes_per_coord = 4.0 if precision is not Precision.DOUBLE else 8.0
    atom_payload = n_dev * 3.0 * bytes_per_coord  # each direction
    htod = pcie.transfer_seconds(atom_payload, n_gpus, ranks_per_gpu)
    dtoh = pcie.transfer_seconds(atom_payload, n_gpus, ranks_per_gpu)
    memset = 0.05 * (htod + dtoh)

    grid_transfer = 0.0
    host_fft = 0.0
    grid_points = 0.0
    effective_error = kspace_error if kspace_error is not None else (
        1e-4 if workload.has_kspace else None
    )
    if workload.has_kspace:
        _, grid = kspace_grid(workload, n_atoms, effective_error or 1e-4)
        grid_points = float(np.prod(grid))
        grid_bytes = cfg.grids_moved_per_step * grid_points * 4.0 / n_gpus
        raw = pcie.transfer_seconds(grid_bytes, n_gpus, 2 * ranks_per_gpu)
        grid_transfer = raw / cfg.grid_transfer_efficiency
        # Four FFTs on the host, scaling sub-linearly over the ranks.
        host_coeffs = CpuCostCoefficients().slowed(cfg.host_core_slowdown)
        # (FFT threads are MKL-internal and pinned; oversubscription is
        # charged on the fix/bond path below.)
        host_fft = (
            grid_points
            * np.log2(max(grid_points, 2.0))
            * host_coeffs.fft_per_point_log
            * host_coeffs.core_slowdown
            / total_ranks**cfg.host_fft_exponent
        )
        # Split the memcpy entries: grid traffic is HtoD-dominated
        # (three field grids up vs one density grid down).
        htod += 0.7 * grid_transfer
        dtoh += 0.3 * grid_transfer

    device_time = kernel_total + launch_total + htod + dtoh + memset

    # ---------------------------------------------------------------- host
    host_slowdown = cfg.host_core_slowdown
    if total_ranks > instance.total_cores - cfg.driver_reserved_cores:
        # Ranks fight the CUDA driver threads for cores.
        host_slowdown *= cfg.oversubscription_penalty
    host_model = CpuCostModel(
        CpuCostCoefficients().slowed(host_slowdown), precision
    )
    host = host_model.compute_times(
        workload,
        n_rank,
        total_ranks,
        kspace_error=effective_error,
        n_atoms_total=n_atoms,
    )
    # SHAKE/NPT (no GPU port) pay the serial host penalty; plain NVE
    # integration does not.
    # Thermostats/constraints (Langevin, SHAKE+NPT) have no GPU port and
    # run un-vectorized on the host; plain NVE integration is cheap.
    modify_penalty = cfg.host_modify_factor if workload.modify_weight > 1.5 else 1.0
    host_modify = host.modify * modify_penalty
    host_bond = host.bond * cfg.host_bond_factor
    host_other = host.other + host.output
    host_work = host_modify + host_bond + host_other + host_fft

    # ------------------------------------------------------------- MPI
    geometry = SubdomainGeometry.build(
        total_ranks,
        workload.box_lengths(n_atoms),
        ghost_cutoff=workload.cutoff + workload.skin,
        number_density=workload.number_density,
        quasi_2d=workload.quasi_2d,
    )
    mpi_model = MpiModel()
    # Device time-multiplexing averages subdomain variation over the
    # ranks sharing a GPU, so per-rank jitter is half the CPU case's.
    jitter = 1.0 + 0.5 * (
        mpi_model.rank_jitter(workload, total_ranks, n_atoms, seed) - 1.0
    )
    per_rank = (device_time + host_work) * jitter
    mpi_times = mpi_model.step_times(
        workload, geometry, per_rank, kspace_grid_points=grid_points, seed=seed
    )
    # Imbalance is carried by the explicit barrier term below; keep only
    # the transfer/collective parts of the MPI model here.
    comm = (
        mpi_times.total
        - mpi_times.per_function["MPI_Init"]
        - mpi_times.imbalance
        + float(np.max(per_rank) - np.mean(per_rank))
    )

    # --------------------------------------------------------------- step
    step_seconds = (
        device_time
        + (1.0 - cfg.host_overlap) * host_work
        + cfg.offload_sync_s
        + comm
    )
    ts_per_s = 1.0 / step_seconds

    gpu_utilization = min(1.0, (kernel_total + 0.3 * (htod + dtoh)) / step_seconds)
    pcie_payload = 2.0 * atom_payload + (
        cfg.grids_moved_per_step * grid_points * 4.0 / n_gpus
        if workload.has_kspace
        else 0.0
    )
    pcie_utilization = pcie.utilization(pcie_payload, step_seconds, n_gpus)

    # Task breakdown (Figure 7).
    pair_kernel_time = sum(kernels[k] for k in pair_kernel_names(benchmark))
    kspace_kernels = sum(
        kernels.get(k, 0.0) for k in ("make_rho", "particle_map", "interp")
    )
    task_seconds = {
        "Bond": host_bond,
        "Comm": comm,
        "Kspace": kspace_kernels + host_fft + grid_transfer,
        "Modify": host_modify,
        "Neigh": kernels["calc_neigh_list_cell"],
        "Other": launch_total + memset + host_other + cfg.offload_sync_s,
        "Output": host.output,
        "Pair": pair_kernel_time + (htod + dtoh - grid_transfer),
    }

    kernel_seconds = dict(kernels)
    kernel_seconds["[CUDA memcpy HtoD]"] = htod
    kernel_seconds["[CUDA memcpy DtoH]"] = dtoh
    kernel_seconds["[CUDA memset]"] = memset
    for entry in DATA_MOVEMENT_ENTRIES:
        kernel_seconds.setdefault(entry, 0.0)

    power = GpuPowerModel(instance).watts(
        n_gpus,
        gpu_utilization,
        host_active_cores=total_ranks,
        host_utilization=0.5 * workload.core_utilization,
    )

    return GpuRunResult(
        benchmark=benchmark,
        n_atoms=n_atoms,
        n_gpus=n_gpus,
        total_ranks=total_ranks,
        precision=str(precision.value),
        kspace_error=effective_error if workload.has_kspace else None,
        task_seconds=task_seconds,
        kernel_seconds=kernel_seconds,
        step_seconds=step_seconds,
        ts_per_s=ts_per_s,
        gpu_utilization=gpu_utilization,
        pcie_utilization=pcie_utilization,
        power_watts=power,
        energy_efficiency=ts_per_s / power,
        memory_bytes=workload.memory_bytes(n_atoms),
    )
