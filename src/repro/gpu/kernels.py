"""CUDA kernel catalogue and per-kernel cost laws (Figure 8).

The paper's NSight profiles name the kernels we model:

* ``k_lj_fast`` — LJ pair kernel (LJ and Chain benchmarks);
* ``k_eam_fast`` / ``k_energy_fast`` — the EAM pair computation is split
  in two, whose combined runtime exceeds the Rhodopsin pair kernel
  (Section 6.1 flags this as an optimization opportunity);
* ``k_charmm_long`` — CHARMM + real-space Coulomb pair kernel (Rhodopsin);
* ``calc_neigh_list_cell`` — on-device neighbor-list build, which becomes
  the longest-running Rhodopsin kernel at 2048k atoms;
* ``make_rho`` / ``particle_map`` / ``interp`` — PPPM charge assignment,
  particle-to-grid mapping and field interpolation (the FFTs themselves
  run on the host in the reference package);
* ``kernel_special`` / ``kernel_zero`` / ``kernel_info`` / ``transpose``
  — small bookkeeping kernels;
* the ``[CUDA memcpy HtoD]`` / ``[CUDA memcpy DtoH]`` / ``[CUDA memset]``
  data-movement entries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.precision import Precision, gpu_precision_pair_factor
from repro.perfmodel.workloads import WorkloadParams

__all__ = [
    "GpuKernelCoefficients",
    "KERNELS_BY_BENCHMARK",
    "DATA_MOVEMENT_ENTRIES",
    "pair_kernel_names",
    "kernel_seconds_per_step",
]

#: Compute kernels each benchmark launches (Figure 8's legend).
KERNELS_BY_BENCHMARK: dict[str, tuple[str, ...]] = {
    "lj": (
        "k_lj_fast",
        "calc_neigh_list_cell",
        "kernel_special",
        "kernel_zero",
        "kernel_info",
        "transpose",
    ),
    "chain": (
        "k_lj_fast",
        "calc_neigh_list_cell",
        "kernel_special",
        "kernel_zero",
        "kernel_info",
        "transpose",
    ),
    "eam": (
        "k_eam_fast",
        "k_energy_fast",
        "interp",
        "calc_neigh_list_cell",
        "kernel_special",
        "kernel_zero",
        "kernel_info",
        "transpose",
    ),
    "rhodo": (
        "k_charmm_long",
        "make_rho",
        "particle_map",
        "interp",
        "calc_neigh_list_cell",
        "kernel_special",
        "kernel_zero",
        "kernel_info",
        "transpose",
    ),
}

DATA_MOVEMENT_ENTRIES = (
    "[CUDA memcpy HtoD]",
    "[CUDA memcpy DtoH]",
    "[CUDA memset]",
)


@dataclass(frozen=True)
class GpuKernelCoefficients:
    """Per-operation device-time constants for one V100 (single precision).

    Calibrated against the paper's Section 6/8 anchors (see
    ``tests/test_model_anchors.py``).
    """

    #: Seconds per pair interaction in the pair kernel.
    pair_per_interaction: float = 1.1e-10
    #: EAM splits pair work into two kernels whose *combined* time beats
    #: k_charmm_long (Section 6.1) — extra factor on the eam pair work.
    eam_split_overhead: float = 1.6
    #: Seconds per stored list pair for the on-device neighbor build.
    neigh_per_list_pair: float = 1.15e-10
    #: Per-atom binning cost of the neighbor kernel — dominant for small
    #: cutoffs (Chain), where cells hold few atoms and occupancy is poor.
    neigh_per_atom: float = 2.0e-9
    #: Seconds per atom per PPPM grid kernel (order^3 stencil folded).
    kspace_grid_per_atom: float = 4.0e-8
    #: Seconds per atom for the small bookkeeping kernels, together.
    bookkeeping_per_atom: float = 6.0e-10
    #: Fixed launch latency per kernel invocation.
    launch_latency_s: float = 6.0e-6


def pair_kernel_names(benchmark: str) -> tuple[str, ...]:
    """The pair-force kernel(s) of a benchmark."""
    if benchmark in ("lj", "chain"):
        return ("k_lj_fast",)
    if benchmark == "eam":
        return ("k_eam_fast", "k_energy_fast")
    if benchmark == "rhodo":
        return ("k_charmm_long",)
    raise KeyError(f"benchmark {benchmark!r} has no GPU pair kernel")


def kernel_seconds_per_step(
    workload: WorkloadParams,
    n_atoms_device: float,
    precision: Precision | str,
    coefficients: GpuKernelCoefficients | None = None,
) -> dict[str, float]:
    """Device seconds per timestep, by kernel, for one device's atoms.

    Launch latencies are *not* included (the executor adds them per rank
    sharing the device); only the occupancy-limited compute time is.
    """
    c = coefficients if coefficients is not None else GpuKernelCoefficients()
    name = workload.name
    if name not in KERNELS_BY_BENCHMARK:
        raise KeyError(
            f"the reference GPU package does not support {name!r} "
            "(gran/hooke/history has no CUDA pair style, Section 6)"
        )
    precision_factor = gpu_precision_pair_factor(name, precision)
    times: dict[str, float] = {k: 0.0 for k in KERNELS_BY_BENCHMARK[name]}

    # Pair kernels: the GPU package always builds full lists on device,
    # so the pair work is N * nn (no Newton halving on the GPU).
    pair_work = n_atoms_device * workload.neighbors_per_atom
    pair_time = (
        pair_work * c.pair_per_interaction * workload.pair_cost_factor * precision_factor
    )
    kernels = pair_kernel_names(name)
    if name == "eam":
        pair_time *= c.eam_split_overhead
        times["k_eam_fast"] = 0.62 * pair_time
        times["k_energy_fast"] = 0.38 * pair_time
        times["interp"] = 0.2e-9 * n_atoms_device  # embedding interpolation
    else:
        times[kernels[0]] = pair_time

    # On-device neighbor build, amortized over the rebuild cadence.
    list_pairs = n_atoms_device * workload.list_neighbors_per_atom
    times["calc_neigh_list_cell"] = (
        list_pairs * c.neigh_per_list_pair + n_atoms_device * c.neigh_per_atom
    ) / workload.rebuild_every

    # PPPM grid kernels (Rhodopsin only).
    if workload.has_kspace:
        grid_kernel = n_atoms_device * c.kspace_grid_per_atom
        times["make_rho"] = 0.45 * grid_kernel
        times["particle_map"] = 0.15 * grid_kernel
        times["interp"] = times.get("interp", 0.0) + 0.40 * grid_kernel

    # Small bookkeeping kernels.
    book = n_atoms_device * c.bookkeeping_per_atom
    times["kernel_special"] = 0.4 * book
    times["kernel_zero"] = 0.3 * book
    times["kernel_info"] = 0.1 * book
    times["transpose"] = 0.2 * book
    return times
