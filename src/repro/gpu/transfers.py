"""PCIe data-movement model for the GPU instance.

Section 6.2's central finding: "data movement through PCIe occupies most
of the runtime, but the PCIe bandwidth is under-utilized".  The model
captures both halves: each V100 sits on a gen3 x16 link (~12 GB/s
peak), but the many small per-rank transfers achieve only a fraction of
it, and the eight devices contend for the host's finite aggregate
bandwidth — so the *effective* per-device rate falls as devices are
added even while each link sits mostly idle.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PcieModel"]


@dataclass(frozen=True)
class PcieModel:
    """Effective PCIe transfer costs.

    Parameters
    ----------
    link_bandwidth_b_s:
        Peak single-direction bandwidth of one device's link.
    host_aggregate_b_s:
        Total host-side bandwidth shared by all active devices.
    transfer_latency_s:
        Fixed cost per memcpy call (driver + DMA setup), the term that
        keeps the links under-utilized for small per-rank payloads.
    small_transfer_efficiency:
        Fraction of link bandwidth achieved by the per-rank subdomain
        payloads (sub-MB transfers never reach peak).
    """

    link_bandwidth_b_s: float = 12.0e9
    host_aggregate_b_s: float = 30.0e9
    transfer_latency_s: float = 9.0e-6
    small_transfer_efficiency: float = 0.8

    def effective_bandwidth(self, n_devices: int) -> float:
        """Per-device effective bandwidth with ``n_devices`` active."""
        if n_devices < 1:
            raise ValueError("n_devices must be >= 1")
        shared = self.host_aggregate_b_s / n_devices
        return min(self.link_bandwidth_b_s, shared) * self.small_transfer_efficiency

    def transfer_seconds(
        self, payload_bytes: float, n_devices: int, n_transfers: int = 1
    ) -> float:
        """Wall time to move ``payload_bytes`` in ``n_transfers`` memcpys."""
        if payload_bytes < 0 or n_transfers < 0:
            raise ValueError("payload and transfer count must be non-negative")
        if n_transfers == 0:
            return 0.0
        bandwidth = self.effective_bandwidth(n_devices)
        return payload_bytes / bandwidth + n_transfers * self.transfer_latency_s

    def utilization(
        self, payload_bytes: float, elapsed_seconds: float, n_devices: int
    ) -> float:
        """Achieved share of the link's peak bandwidth (Section 6.2's
        under-utilization measure)."""
        if elapsed_seconds <= 0:
            return 0.0
        achieved = payload_bytes / elapsed_seconds
        return min(1.0, achieved / self.link_bandwidth_b_s)
