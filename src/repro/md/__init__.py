"""A functional molecular-dynamics engine (the "LAMMPS" substrate).

This package implements, from scratch and in numpy, every MD ingredient
the paper's benchmark suite exercises: periodic boxes, neighbor lists
with skin, the pairwise/many-body/bonded/long-range force fields of
Table 2, NVE/NVT/NPT integration, SHAKE constraints, and the Figure 1
timestep loop with the Table 1 task breakdown.

See :mod:`repro.suite` for the five ready-made benchmark experiments and
:mod:`repro.perfmodel` for the calibrated performance layer that maps
this engine's operation counts onto the paper's CPU/GPU instances.
"""

from repro.md.atoms import AtomSystem, Topology
from repro.md.bonded import CosineDihedral, FENEBond, HarmonicAngle, HarmonicBond
from repro.md.box import Box
from repro.md.config import RunConfig
from repro.md.computes import (
    MeanSquaredDisplacement,
    RadialDistribution,
    VelocityAutocorrelation,
)
from repro.md.constraints import ShakeConstraints
from repro.md.deck import DeckError, parse_deck, run_deck
from repro.md.dump import XyzDumpWriter
from repro.md.fixes import (
    BerendsenThermostat,
    BottomWall,
    Gravity,
    LangevinThermostat,
    VelocityRescale,
)
from repro.md.integrators import NoseHooverNPT, NoseHooverNVT, VelocityVerletNVE
from repro.md.kernels import KernelBackend, available_backends, get_backend
from repro.md.kspace import PPPM, EwaldSummation
from repro.md.minimize import minimize
from repro.md.neighbor import NeighborList
from repro.md.potentials import (
    CharmmCoulLong,
    EAMAlloy,
    EAMParameters,
    HookeHistory,
    LennardJonesCut,
)
from repro.md.precision import (
    Precision,
    PrecisionPolicy,
    parse_precision,
    policy_for,
)
from repro.md.restart import load_system, restore_simulation, save_snapshot
from repro.md.simulation import Simulation
from repro.md.thermo import ThermoLog
from repro.md.timers import TASKS, TaskTimers

__all__ = [
    "AtomSystem",
    "Topology",
    "Box",
    "NeighborList",
    "Simulation",
    "RunConfig",
    "Precision",
    "PrecisionPolicy",
    "parse_precision",
    "policy_for",
    "TaskTimers",
    "TASKS",
    "ThermoLog",
    "VelocityVerletNVE",
    "NoseHooverNVT",
    "NoseHooverNPT",
    "ShakeConstraints",
    "LangevinThermostat",
    "Gravity",
    "BottomWall",
    "LennardJonesCut",
    "CharmmCoulLong",
    "EAMAlloy",
    "EAMParameters",
    "HookeHistory",
    "FENEBond",
    "HarmonicBond",
    "HarmonicAngle",
    "CosineDihedral",
    "EwaldSummation",
    "PPPM",
    "BerendsenThermostat",
    "VelocityRescale",
    "RadialDistribution",
    "MeanSquaredDisplacement",
    "VelocityAutocorrelation",
    "XyzDumpWriter",
    "minimize",
    "parse_deck",
    "run_deck",
    "DeckError",
    "save_snapshot",
    "load_system",
    "restore_simulation",
    "KernelBackend",
    "get_backend",
    "available_backends",
]
