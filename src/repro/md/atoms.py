"""Structure-of-arrays particle store with molecular topology.

This mirrors LAMMPS' ``Atom`` class at the granularity this study needs:
per-atom state (positions, velocities, forces, type, charge, mass,
image flags, and — for the granular Chute benchmark — radius and angular
velocity) plus the bonded topology (bonds / angles) consumed by the
bonded-force and constraint (SHAKE) machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.md.box import Box

__all__ = ["AtomSystem", "Topology"]


@dataclass
class Topology:
    """Bonded topology: bonds and angles with per-element type ids.

    ``bonds`` is an ``(Nb, 2)`` int array of atom indices, ``bond_types``
    the matching ``(Nb,)`` type-id array (and likewise for angles, whose
    rows are ``(i, j, k)`` with ``j`` the vertex atom).
    """

    bonds: np.ndarray = field(default_factory=lambda: np.empty((0, 2), dtype=np.int64))
    bond_types: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    angles: np.ndarray = field(default_factory=lambda: np.empty((0, 3), dtype=np.int64))
    angle_types: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    def __post_init__(self) -> None:
        self.bonds = np.asarray(self.bonds, dtype=np.int64).reshape(-1, 2)
        self.angles = np.asarray(self.angles, dtype=np.int64).reshape(-1, 3)
        if len(self.bond_types) == 0 and len(self.bonds) > 0:
            self.bond_types = np.zeros(len(self.bonds), dtype=np.int64)
        if len(self.angle_types) == 0 and len(self.angles) > 0:
            self.angle_types = np.zeros(len(self.angles), dtype=np.int64)
        self.bond_types = np.asarray(self.bond_types, dtype=np.int64)
        self.angle_types = np.asarray(self.angle_types, dtype=np.int64)
        if len(self.bond_types) != len(self.bonds):
            raise ValueError("bond_types length must match bonds")
        if len(self.angle_types) != len(self.angles):
            raise ValueError("angle_types length must match angles")

    @property
    def n_bonds(self) -> int:
        return len(self.bonds)

    @property
    def n_angles(self) -> int:
        return len(self.angles)

    def validate(self, n_atoms: int) -> None:
        """Raise if any topology element references a missing atom."""
        for name, arr in (("bonds", self.bonds), ("angles", self.angles)):
            if arr.size and (arr.min() < 0 or arr.max() >= n_atoms):
                raise ValueError(f"{name} reference atoms outside [0, {n_atoms})")


class AtomSystem:
    """All per-atom state of a simulation, stored as numpy arrays.

    Parameters
    ----------
    positions:
        ``(N, 3)`` initial coordinates.  They are wrapped into ``box``.
    box:
        The simulation :class:`~repro.md.box.Box`.
    velocities, masses, types, charges:
        Optional per-atom arrays; sensible defaults are zero velocities,
        unit masses, a single type ``0`` and zero charges.
    topology:
        Optional bonded :class:`Topology`.
    radii:
        Per-atom radii for granular (finite-size) particles; ``None``
        means point particles.
    dtype:
        Storage dtype of the *dynamical* state (positions, velocities,
        forces, angular state).  ``None`` infers float32 only when the
        ``positions`` input already is a float32 array (so restart files
        round-trip without silent upcast) and defaults to float64
        otherwise.  Static parameters (masses, charges, radii) always
        stay float64 — compute paths cast them per use.
    """

    def __init__(
        self,
        positions: np.ndarray,
        box: Box,
        *,
        velocities: np.ndarray | None = None,
        masses: np.ndarray | None = None,
        types: np.ndarray | None = None,
        charges: np.ndarray | None = None,
        topology: Topology | None = None,
        radii: np.ndarray | None = None,
        molecule_ids: np.ndarray | None = None,
        dtype: np.dtype | str | None = None,
    ) -> None:
        if dtype is None:
            source = np.asarray(positions)
            dtype = np.float32 if source.dtype == np.float32 else np.float64
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(
                f"storage dtype must be float32 or float64, got {dtype}"
            )
        positions = np.array(positions, dtype=dtype).reshape(-1, 3)
        n = len(positions)
        if n == 0:
            raise ValueError("an AtomSystem needs at least one atom")
        self.box = box
        self.images = np.zeros((n, 3), dtype=np.int64)
        self.positions, self.images = box.wrap_with_images(positions, self.images)

        self.velocities = self._per_atom(velocities, n, 3, 0.0, dtype=dtype)
        self.forces = np.zeros((n, 3), dtype=dtype)
        self.masses = self._per_atom(masses, n, None, 1.0)
        if np.any(self.masses <= 0):
            raise ValueError("atom masses must be positive")
        self.types = (
            np.zeros(n, dtype=np.int64)
            if types is None
            else np.asarray(types, dtype=np.int64).reshape(n).copy()
        )
        self.charges = self._per_atom(charges, n, None, 0.0)
        self.topology = topology if topology is not None else Topology()
        self.topology.validate(n)
        self.radii = None if radii is None else self._per_atom(radii, n, None, 0.5)
        self.molecule_ids = (
            np.zeros(n, dtype=np.int64)
            if molecule_ids is None
            else np.asarray(molecule_ids, dtype=np.int64).reshape(n).copy()
        )
        # Angular state only allocated for granular systems.
        self.omega = np.zeros((n, 3), dtype=dtype) if radii is not None else None
        self.torques = np.zeros((n, 3), dtype=dtype) if radii is not None else None

    @staticmethod
    def _per_atom(
        values: np.ndarray | float | None,
        n: int,
        width: int | None,
        default: float,
        dtype: np.dtype = np.dtype(np.float64),
    ) -> np.ndarray:
        shape = (n,) if width is None else (n, width)
        if values is None:
            return np.full(shape, default, dtype=dtype)
        arr = np.asarray(values, dtype=dtype)
        if arr.ndim == 0:
            return np.full(shape, float(arr), dtype=dtype)
        return arr.reshape(shape).copy()

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def n_atoms(self) -> int:
        return len(self.positions)

    @property
    def n_types(self) -> int:
        return int(self.types.max()) + 1

    @property
    def is_granular(self) -> bool:
        return self.radii is not None

    @property
    def dtype(self) -> np.dtype:
        """Storage dtype of the dynamical per-atom state."""
        return self.positions.dtype

    def cast_storage(self, dtype: np.dtype | str) -> None:
        """Cast the dynamical state (positions, velocities, forces,
        angular state) to ``dtype`` in place.

        float32 -> float64 is exact; float64 -> float32 rounds — the
        explicit entry point the precision policy (and the restart
        layer's ``cast=`` opt-in) uses, so no code path upcasts or
        downcasts silently.
        """
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(
                f"storage dtype must be float32 or float64, got {dtype}"
            )
        if self.positions.dtype == dtype:
            return
        self.positions = self.positions.astype(dtype)
        self.velocities = self.velocities.astype(dtype)
        self.forces = self.forces.astype(dtype)
        if self.omega is not None:
            self.omega = self.omega.astype(dtype)
        if self.torques is not None:
            self.torques = self.torques.astype(dtype)

    # ------------------------------------------------------------------
    # Thermodynamic state helpers
    # ------------------------------------------------------------------
    def kinetic_energy(self) -> float:
        """Total translational kinetic energy ``sum(m v^2) / 2``."""
        v2 = np.sum(self.velocities * self.velocities, axis=1)
        return 0.5 * float(np.dot(self.masses, v2))

    def temperature(self, n_constraints: int = 0) -> float:
        """Instantaneous temperature in reduced units (kB = 1).

        ``n_constraints`` removes degrees of freedom held by SHAKE.
        """
        dof = 3 * self.n_atoms - 3 - n_constraints
        if dof <= 0:
            return 0.0
        return 2.0 * self.kinetic_energy() / dof

    def momentum(self) -> np.ndarray:
        """Total linear momentum (should stay ~0 in NVE runs)."""
        return np.sum(self.masses[:, None] * self.velocities, axis=0)

    def zero_momentum(self) -> None:
        """Remove centre-of-mass drift from the velocities."""
        total_mass = float(np.sum(self.masses))
        v_cm = self.momentum() / total_mass
        self.velocities -= v_cm

    def density(self) -> float:
        """Number density N / V."""
        return self.n_atoms / self.box.volume

    # ------------------------------------------------------------------
    # Mutation helpers used by integrators
    # ------------------------------------------------------------------
    def wrap(self) -> None:
        """Re-wrap positions into the primary box image."""
        self.positions, self.images = self.box.wrap_with_images(
            self.positions, self.images
        )

    def unwrapped_positions(self) -> np.ndarray:
        """Positions with periodic image shifts undone."""
        shift = (self.images * self.box.lengths).astype(self.positions.dtype)
        return self.positions + shift

    def seed_velocities(self, temperature: float, rng: np.random.Generator) -> None:
        """Draw Maxwell–Boltzmann velocities at ``temperature`` (kB = 1)."""
        sigma = np.sqrt(temperature / self.masses)[:, None]
        self.velocities = (rng.normal(size=(self.n_atoms, 3)) * sigma).astype(
            self.dtype, copy=False
        )
        self.zero_momentum()
        # Rescale to hit the target temperature exactly after removing the
        # centre-of-mass motion.
        current = self.temperature()
        if current > 0 and temperature > 0:
            self.velocities *= np.sqrt(temperature / current)

    def copy(self) -> "AtomSystem":
        clone = AtomSystem(
            self.unwrapped_positions(),
            self.box.copy(),
            velocities=self.velocities,
            masses=self.masses,
            types=self.types,
            charges=self.charges,
            topology=Topology(
                self.topology.bonds.copy(),
                self.topology.bond_types.copy(),
                self.topology.angles.copy(),
                self.topology.angle_types.copy(),
            ),
            radii=None if self.radii is None else self.radii,
            molecule_ids=self.molecule_ids,
        )
        clone.forces = self.forces.copy()
        if self.omega is not None:
            clone.omega = self.omega.copy()
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AtomSystem(n_atoms={self.n_atoms}, n_types={self.n_types}, "
            f"n_bonds={self.topology.n_bonds}, box={self.box!r})"
        )
