"""Bonded interactions: harmonic bonds/angles and FENE bonds.

Table 1's "Bond" task (step VII of Figure 1).  Only Rhodopsin and Chain
compute bonded forces in the paper's suite: Chain uses the Kremer-Grest
FENE bead-spring potential; the Rhodopsin proxy uses harmonic bonds and
angles (with SHAKE holding the rigid water geometry).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.md.atoms import AtomSystem
from repro.md.potentials.base import ForceResult
from repro.md.precision import DOUBLE_POLICY, PrecisionPolicy

__all__ = [
    "BondedForce",
    "HarmonicBond",
    "FENEBond",
    "HarmonicAngle",
    "CosineDihedral",
]


def _per_type(values: float | np.ndarray) -> np.ndarray:
    return np.atleast_1d(np.asarray(values, dtype=float))


class BondedForce(abc.ABC):
    """Interface of bonded-force terms (evaluated over the topology)."""

    #: Precision policy the term evaluates under (installed by the
    #: owning Simulation; the default is full float64).
    policy: PrecisionPolicy = DOUBLE_POLICY

    def _compute_positions(self, system: AtomSystem) -> np.ndarray:
        """Positions in the policy's compute dtype (no-op at float64)."""
        return system.positions.astype(self.policy.compute_dtype, copy=False)

    @abc.abstractmethod
    def compute(self, system: AtomSystem) -> ForceResult:
        """Accumulate forces into ``system.forces`` and return totals."""


class HarmonicBond(BondedForce):
    """``E = K (r - r0)^2`` (LAMMPS convention, no 1/2 factor).

    ``k`` and ``r0`` may be per-bond-type arrays.
    """

    def __init__(self, k: float | np.ndarray = 100.0, r0: float | np.ndarray = 1.0):
        self.k = _per_type(k)
        self.r0 = _per_type(r0)

    def compute(self, system: AtomSystem) -> ForceResult:
        bonds = system.topology.bonds
        if len(bonds) == 0:
            return ForceResult()
        i, j = bonds[:, 0], bonds[:, 1]
        types = system.topology.bond_types
        ct = self.policy.compute_dtype
        k = self.k.astype(ct, copy=False)[np.minimum(types, len(self.k) - 1)]
        r0 = self.r0.astype(ct, copy=False)[np.minimum(types, len(self.r0) - 1)]
        positions = self._compute_positions(system)
        dr = system.box.minimum_image(positions[i] - positions[j])
        r = np.linalg.norm(dr, axis=1)
        stretch = r - r0
        energy = float(np.sum(k * stretch * stretch, dtype=np.float64))
        # F_i = -dE/dr * r_hat ; dE/dr = 2 k (r - r0)
        f_over_r = -2.0 * k * stretch / r
        fvec = f_over_r[:, None] * dr
        np.add.at(system.forces, i, fvec)
        np.subtract.at(system.forces, j, fvec)
        virial = float(np.sum(f_over_r * r * r, dtype=np.float64))
        return ForceResult(energy, virial, len(bonds))


class FENEBond(BondedForce):
    """Finite Extensible Nonlinear Elastic bond (Kremer-Grest).

    ``E = -0.5 K R0^2 ln(1 - (r/R0)^2) + 4 eps [(s/r)^12 - (s/r)^6] + eps``
    with the LJ part active only below the WCA cutoff ``2^(1/6) sigma``
    (exactly LAMMPS ``bond_style fene``).  Standard melt parameters are
    ``K = 30, R0 = 1.5`` in reduced units.
    """

    def __init__(
        self,
        k: float = 30.0,
        r0: float = 1.5,
        epsilon: float = 1.0,
        sigma: float = 1.0,
    ):
        self.k = float(k)
        self.r0 = float(r0)
        self.epsilon = float(epsilon)
        self.sigma = float(sigma)
        self.wca_cutoff = 2.0 ** (1.0 / 6.0) * self.sigma

    def compute(self, system: AtomSystem) -> ForceResult:
        bonds = system.topology.bonds
        if len(bonds) == 0:
            return ForceResult()
        i, j = bonds[:, 0], bonds[:, 1]
        positions = self._compute_positions(system)
        dr = system.box.minimum_image(positions[i] - positions[j])
        r2 = np.einsum("ij,ij->i", dr, dr)
        r = np.sqrt(r2)
        ratio2 = r2 / (self.r0 * self.r0)
        if np.any(ratio2 >= 1.0):
            raise FloatingPointError(
                "FENE bond overstretched beyond R0 — timestep too large"
            )
        # Attractive FENE spring.
        energy = -0.5 * self.k * self.r0**2 * np.log1p(-ratio2)
        f_over_r = -self.k / (1.0 - ratio2)
        # Repulsive WCA core.
        wca = r < self.wca_cutoff
        sr2 = np.where(wca, self.sigma * self.sigma / r2, 0.0)
        sr6 = sr2 * sr2 * sr2
        sr12 = sr6 * sr6
        energy = energy + np.where(
            wca, 4.0 * self.epsilon * (sr12 - sr6) + self.epsilon, 0.0
        )
        f_over_r = f_over_r + np.where(
            wca, 24.0 * self.epsilon * (2.0 * sr12 - sr6) / r2, 0.0
        )
        fvec = f_over_r[:, None] * dr
        np.add.at(system.forces, i, fvec)
        np.subtract.at(system.forces, j, fvec)
        virial = float(np.sum(f_over_r * r2, dtype=np.float64))
        return ForceResult(
            float(np.sum(energy, dtype=np.float64)), virial, len(bonds)
        )


class HarmonicAngle(BondedForce):
    """``E = K (theta - theta0)^2`` over ``(i, j, k)`` angle triples.

    ``theta0`` is in radians; ``j`` is the vertex atom.
    """

    def __init__(
        self,
        k: float | np.ndarray = 50.0,
        theta0: float | np.ndarray = np.deg2rad(109.47),
    ):
        self.k = _per_type(k)
        self.theta0 = _per_type(theta0)

    def compute(self, system: AtomSystem) -> ForceResult:
        angles = system.topology.angles
        if len(angles) == 0:
            return ForceResult()
        ai, aj, ak = angles[:, 0], angles[:, 1], angles[:, 2]
        types = system.topology.angle_types
        ct = self.policy.compute_dtype
        k = self.k.astype(ct, copy=False)[np.minimum(types, len(self.k) - 1)]
        theta0 = self.theta0.astype(ct, copy=False)[
            np.minimum(types, len(self.theta0) - 1)
        ]

        box = system.box
        positions = self._compute_positions(system)
        r_ij = box.minimum_image(positions[ai] - positions[aj])
        r_kj = box.minimum_image(positions[ak] - positions[aj])
        len_ij = np.linalg.norm(r_ij, axis=1)
        len_kj = np.linalg.norm(r_kj, axis=1)
        cos_theta = np.einsum("ij,ij->i", r_ij, r_kj) / (len_ij * len_kj)
        cos_theta = np.clip(cos_theta, -1.0, 1.0)
        theta = np.arccos(cos_theta)
        diff = theta - theta0
        energy = float(np.sum(k * diff * diff, dtype=np.float64))

        # dE/dtheta = 2 k (theta - theta0); chain rule through cos(theta).
        sin_theta = np.sqrt(np.maximum(1.0 - cos_theta * cos_theta, 1e-12))
        a = -2.0 * k * diff / sin_theta  # = dE/dcos(theta)
        # Gradients of cos(theta) wrt the end atoms.
        inv_ij = 1.0 / len_ij
        inv_kj = 1.0 / len_kj
        unit_ij = r_ij * inv_ij[:, None]
        unit_kj = r_kj * inv_kj[:, None]
        dcos_di = (unit_kj - cos_theta[:, None] * unit_ij) * inv_ij[:, None]
        dcos_dk = (unit_ij - cos_theta[:, None] * unit_kj) * inv_kj[:, None]
        f_i = -a[:, None] * dcos_di
        f_k = -a[:, None] * dcos_dk
        np.add.at(system.forces, ai, f_i)
        np.add.at(system.forces, ak, f_k)
        np.subtract.at(system.forces, aj, f_i + f_k)
        # Angle virial: sum of r . f over the two arms.
        virial = float(
            np.sum(np.einsum("ij,ij->i", r_ij, f_i), dtype=np.float64)
            + np.sum(np.einsum("ij,ij->i", r_kj, f_k), dtype=np.float64)
        )
        return ForceResult(energy, virial, len(angles))


class CosineDihedral(BondedForce):
    """CHARMM-style torsion: ``E = K (1 + cos(n phi - d))``.

    ``phi`` is the dihedral angle of the ``(i, j, k, l)`` quadruple
    (angle between the ijk and jkl planes); ``n`` is the multiplicity
    and ``d`` the phase in radians.  Forces are computed from the
    numerically safe gradient via the plane normals, and are validated
    against central finite differences by the test suite.

    Dihedral quadruples live in ``extra_dihedrals`` passed at
    construction (the base :class:`~repro.md.atoms.Topology` tracks
    bonds and angles; dihedrals are an add-on term).
    """

    def __init__(
        self,
        dihedrals: np.ndarray,
        k: float = 1.0,
        multiplicity: int = 3,
        phase: float = 0.0,
    ) -> None:
        self.dihedrals = np.asarray(dihedrals, dtype=np.int64).reshape(-1, 4)
        if k < 0 or multiplicity < 1:
            raise ValueError("k must be >= 0 and multiplicity >= 1")
        self.k = float(k)
        self.multiplicity = int(multiplicity)
        self.phase = float(phase)

    def dihedral_angles(self, system: AtomSystem) -> np.ndarray:
        """Signed dihedral angles phi for every quadruple."""
        if len(self.dihedrals) == 0:
            return np.empty(0)
        b1, b2, b3 = self._bond_vectors(system)
        n1 = np.cross(b1, b2)
        n2 = np.cross(b2, b3)
        b2_norm = np.linalg.norm(b2, axis=1)
        x = np.einsum("ij,ij->i", n1, n2)
        y = np.einsum("ij,ij->i", np.cross(n1, n2), b2 / b2_norm[:, None])
        return np.arctan2(y, x)

    def _bond_vectors(self, system: AtomSystem):
        d = self.dihedrals
        box = system.box
        positions = self._compute_positions(system)
        b1 = box.minimum_image(positions[d[:, 1]] - positions[d[:, 0]])
        b2 = box.minimum_image(positions[d[:, 2]] - positions[d[:, 1]])
        b3 = box.minimum_image(positions[d[:, 3]] - positions[d[:, 2]])
        return b1, b2, b3

    def compute(self, system: AtomSystem) -> ForceResult:
        if len(self.dihedrals) == 0:
            return ForceResult()
        d = self.dihedrals
        b1, b2, b3 = self._bond_vectors(system)
        phi = self.dihedral_angles(system)
        energy = float(
            np.sum(
                self.k * (1.0 + np.cos(self.multiplicity * phi - self.phase)),
                dtype=np.float64,
            )
        )
        # dE/dphi, then the textbook gradient through the plane normals
        # (Blondel & Karplus form, singularity-free).
        de_dphi = -self.k * self.multiplicity * np.sin(
            self.multiplicity * phi - self.phase
        )
        n1 = np.cross(b1, b2)
        n2 = np.cross(b2, b3)
        n1_sq = np.einsum("ij,ij->i", n1, n1)
        n2_sq = np.einsum("ij,ij->i", n2, n2)
        b2_norm = np.linalg.norm(b2, axis=1)
        # Guard degenerate (collinear) geometries.
        n1_sq = np.maximum(n1_sq, 1e-12)
        n2_sq = np.maximum(n2_sq, 1e-12)
        b2_norm = np.maximum(b2_norm, 1e-12)

        dphi_di = -(b2_norm / n1_sq)[:, None] * n1
        dphi_dl = (b2_norm / n2_sq)[:, None] * n2
        b1_dot_b2 = np.einsum("ij,ij->i", b1, b2)
        b3_dot_b2 = np.einsum("ij,ij->i", b3, b2)
        # Inner-atom gradients (Blondel-Karplus): the end-atom gradients
        # are redistributed so the four sum to zero.
        s = (b1_dot_b2 / b2_norm**2)[:, None] * dphi_di - (
            b3_dot_b2 / b2_norm**2
        )[:, None] * dphi_dl
        dphi_dj = -dphi_di - s
        dphi_dk = -dphi_dl + s

        for idx, grad in ((0, dphi_di), (1, dphi_dj), (2, dphi_dk), (3, dphi_dl)):
            np.add.at(system.forces, d[:, idx], -de_dphi[:, None] * grad)

        # Virial from r . f over the quadruple's atoms relative to their
        # centroid (internal torque-free forces).
        return ForceResult(energy, 0.0, len(d))
