"""Orthogonal simulation box with periodic boundary conditions.

The box is the spatial container of an MD experiment (Section 2 of the
paper): every particle position lives inside it, and interactions across
its faces obey the minimum-image convention when the corresponding
dimension is periodic.  All five suite benchmarks use fully periodic
boxes except Chute, whose z dimension is bounded by a wall (the paper's
granular chute flow).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Box"]


def _as_floating(values: np.ndarray) -> np.ndarray:
    """Pass float32/float64 arrays through; promote anything else to f64.

    The box preserves the caller's floating dtype so a SINGLE-precision
    engine's geometry (wrapping, minimum image) runs entirely in
    float32 — at float64 every operation below is bitwise-identical to
    the historical always-f64 arithmetic.
    """
    values = np.asarray(values)
    if values.dtype == np.float32 or values.dtype == np.float64:
        return values
    return values.astype(np.float64)


@dataclass
class Box:
    """An axis-aligned orthogonal simulation box.

    Parameters
    ----------
    lengths:
        Edge lengths ``(Lx, Ly, Lz)``.  Must all be positive.
    periodic:
        Per-dimension periodicity flags.  Non-periodic dimensions are
        treated as fixed boundaries (used by the Chute benchmark, which
        has a bottom wall).
    origin:
        Lower corner of the box.  Defaults to the coordinate origin.
    """

    lengths: np.ndarray
    periodic: np.ndarray = field(default=None)  # type: ignore[assignment]
    origin: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.lengths = np.asarray(self.lengths, dtype=float).reshape(3).copy()
        if np.any(self.lengths <= 0.0):
            raise ValueError(f"box lengths must be positive, got {self.lengths}")
        if self.periodic is None:
            self.periodic = np.ones(3, dtype=bool)
        else:
            self.periodic = np.asarray(self.periodic, dtype=bool).reshape(3).copy()
        if self.origin is None:
            self.origin = np.zeros(3, dtype=float)
        else:
            self.origin = np.asarray(self.origin, dtype=float).reshape(3).copy()

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def volume(self) -> float:
        """Volume of the box."""
        return float(np.prod(self.lengths))

    @property
    def upper(self) -> np.ndarray:
        """Upper corner of the box (``origin + lengths``)."""
        return self.origin + self.lengths

    def copy(self) -> "Box":
        return Box(self.lengths.copy(), self.periodic.copy(), self.origin.copy())

    # ------------------------------------------------------------------
    # Periodic wrapping
    # ------------------------------------------------------------------
    def wrap(self, positions: np.ndarray) -> np.ndarray:
        """Return ``positions`` wrapped into the primary box image.

        Only periodic dimensions are wrapped; non-periodic coordinates
        pass through unchanged (boundary enforcement for those is the
        job of wall fixes).
        """
        positions = _as_floating(positions)
        lengths = self.lengths.astype(positions.dtype, copy=False)
        origin = self.origin.astype(positions.dtype, copy=False)
        rel = positions - origin
        wrapped = rel - np.floor(rel / lengths) * lengths
        out = np.where(self.periodic, wrapped, rel) + origin
        return out

    def wrap_with_images(
        self, positions: np.ndarray, images: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Wrap ``positions`` and update per-atom image flags.

        ``images`` counts how many box lengths each atom has travelled in
        each dimension; LAMMPS keeps the same bookkeeping so unwrapped
        trajectories (needed e.g. for diffusion) remain reconstructable.
        """
        positions = _as_floating(positions)
        lengths = self.lengths.astype(positions.dtype, copy=False)
        origin = self.origin.astype(positions.dtype, copy=False)
        rel = positions - origin
        shift = np.floor(rel / lengths).astype(np.int64)
        shift = np.where(self.periodic, shift, 0)
        wrapped = positions - (shift * lengths).astype(positions.dtype)
        return wrapped, images + shift

    # ------------------------------------------------------------------
    # Minimum image
    # ------------------------------------------------------------------
    def minimum_image(self, dr: np.ndarray) -> np.ndarray:
        """Apply the minimum-image convention to displacement vectors.

        Parameters
        ----------
        dr:
            Array of displacement vectors with trailing dimension 3.
        """
        dr = _as_floating(dr)
        lengths = self.lengths.astype(dr.dtype, copy=False)
        shift = np.round(dr / lengths)
        shift = np.where(self.periodic, shift, dr.dtype.type(0.0))
        return dr - shift * lengths

    def distance(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Minimum-image distances between position arrays ``a`` and ``b``."""
        dr = self.minimum_image(np.asarray(a) - np.asarray(b))
        return np.sqrt(np.sum(dr * dr, axis=-1))

    # ------------------------------------------------------------------
    # Deformation (used by the NPT barostat)
    # ------------------------------------------------------------------
    def scale(self, factor: float | np.ndarray) -> None:
        """Scale box lengths in place about the box origin.

        ``factor`` may be a scalar (isotropic) or a length-3 array.
        """
        factor = np.asarray(factor, dtype=float)
        if np.any(factor <= 0):
            raise ValueError("box scale factor must be positive")
        self.lengths = self.lengths * factor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        per = "".join("p" if p else "f" for p in self.periodic)
        return f"Box(lengths={self.lengths.tolist()}, periodic='{per}')"
