"""Analysis computes: RDF, mean-squared displacement, VACF.

Figure 1's step VIII "computes system properties of interest" — beyond
the instantaneous thermo quantities, MD studies track structural and
dynamical observables.  These are the standard three:

* :class:`RadialDistribution` — g(r), the pair correlation function
  (distinguishes the LJ melt's liquid structure from the EAM crystal);
* :class:`MeanSquaredDisplacement` — MSD(t) from unwrapped coordinates
  (diffusive in a melt, bounded in a solid);
* :class:`VelocityAutocorrelation` — normalized VACF(t).
"""

from __future__ import annotations

import numpy as np

from repro.md.atoms import AtomSystem
from repro.md.neighbor import brute_force_pairs

__all__ = [
    "RadialDistribution",
    "MeanSquaredDisplacement",
    "VelocityAutocorrelation",
]


class RadialDistribution:
    """Accumulates the radial distribution function g(r).

    Parameters
    ----------
    r_max:
        Histogram range; must satisfy the minimum-image bound
        (``r_max <= L/2``) for every sampled configuration.
    n_bins:
        Number of radial bins.
    """

    def __init__(self, r_max: float, n_bins: int = 100) -> None:
        if r_max <= 0 or n_bins < 1:
            raise ValueError("r_max must be positive and n_bins >= 1")
        self.r_max = float(r_max)
        self.n_bins = int(n_bins)
        self._histogram = np.zeros(n_bins)
        self._n_samples = 0
        self._n_atoms = 0
        self._density = 0.0

    def sample(self, system: AtomSystem) -> None:
        """Accumulate one configuration's pair distances."""
        min_periodic = system.box.lengths[system.box.periodic]
        if len(min_periodic) and self.r_max > 0.5 * float(np.min(min_periodic)):
            raise ValueError("r_max exceeds the minimum-image bound")
        i, j = brute_force_pairs(system.positions, system.box, self.r_max)
        r = system.box.distance(system.positions[i], system.positions[j])
        hist, _ = np.histogram(r, bins=self.n_bins, range=(0.0, self.r_max))
        self._histogram += hist
        self._n_samples += 1
        self._n_atoms = system.n_atoms
        self._density = system.density()

    @property
    def bin_centers(self) -> np.ndarray:
        edges = np.linspace(0.0, self.r_max, self.n_bins + 1)
        return 0.5 * (edges[:-1] + edges[1:])

    def g_of_r(self) -> np.ndarray:
        """The normalized g(r) (ideal-gas shells = 1)."""
        if self._n_samples == 0:
            raise RuntimeError("no configurations sampled")
        edges = np.linspace(0.0, self.r_max, self.n_bins + 1)
        shell_volumes = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
        # Each half pair represents two ordered pairs.
        ideal = 0.5 * self._n_atoms * self._density * shell_volumes
        return self._histogram / (self._n_samples * ideal)


class MeanSquaredDisplacement:
    """MSD(t) relative to the reference configuration at construction."""

    def __init__(self, system: AtomSystem) -> None:
        self._reference = system.unwrapped_positions().copy()
        self.times: list[float] = []
        self.values: list[float] = []

    def sample(self, system: AtomSystem, time: float) -> float:
        displacement = system.unwrapped_positions() - self._reference
        msd = float(np.mean(np.sum(displacement**2, axis=1)))
        self.times.append(float(time))
        self.values.append(msd)
        return msd

    def series(self) -> tuple[np.ndarray, np.ndarray]:
        return np.array(self.times), np.array(self.values)


class VelocityAutocorrelation:
    """Normalized velocity autocorrelation C(t) = <v(0).v(t)> / <v(0)^2>."""

    def __init__(self, system: AtomSystem) -> None:
        self._v0 = system.velocities.copy()
        norm = float(np.mean(np.sum(self._v0**2, axis=1)))
        if norm <= 0:
            raise ValueError("reference velocities are all zero")
        self._norm = norm
        self.times: list[float] = []
        self.values: list[float] = []

    def sample(self, system: AtomSystem, time: float) -> float:
        c = float(np.mean(np.sum(self._v0 * system.velocities, axis=1))) / self._norm
        self.times.append(float(time))
        self.values.append(c)
        return c

    def series(self) -> tuple[np.ndarray, np.ndarray]:
        return np.array(self.times), np.array(self.values)
