"""The unified run-configuration surface of the engine.

:class:`RunConfig` collects what used to be a growing sprawl of
per-call keyword arguments — step count, precision mode, kernel
backend, checkpoint wiring, tracing, timer resets — into one dataclass
consumed by :meth:`repro.md.simulation.Simulation.run`::

    from repro.md import RunConfig, Simulation

    sim = Simulation(system, [lj], precision="mixed")
    sim.run(RunConfig(steps=1000, reset_timers=True))

The legacy spelling ``sim.run(1000, reset_timers=True,
checkpoint=mgr)`` keeps working through a deprecation shim that
forwards into a :class:`RunConfig` and emits one
``DeprecationWarning`` per process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.md.precision import Precision, parse_precision

if TYPE_CHECKING:
    from repro.md.kernels import KernelBackend

__all__ = ["RunConfig"]


@dataclass
class RunConfig:
    """Everything one ``Simulation.run`` call can configure.

    Parameters
    ----------
    steps:
        Number of timesteps to advance.
    precision:
        Optional precision mode (:class:`Precision` or case-insensitive
        name).  ``None`` keeps the simulation's current policy; a
        different mode re-precisions the serial engine in place before
        stepping (parallel executors must be constructed with their
        mode, since the shared-memory buffers are typed at start-up).
    backend:
        Optional kernel-backend override (registry name or
        :class:`~repro.md.kernels.base.KernelBackend` instance) applied
        before stepping.  ``None`` keeps the current backend.
    checkpoint:
        Optional :class:`repro.reliability.CheckpointManager` (anything
        with ``maybe_checkpoint(simulation)``), consulted after every
        completed step.
    digest:
        Optional :class:`repro.reliability.DigestRecorder` (anything
        with ``maybe_record(simulation)``), consulted after every
        completed step — the hash-chained trajectory digest hook
        (``docs/REPRODUCIBILITY.md``).
    tracer:
        Optional tracer spec re-wired through
        :meth:`~repro.md.simulation.Simulation.attach_tracer` before
        stepping.  ``None`` keeps the current tracer.
    reset_timers:
        Clear the task breakdown (and accumulated ``step_seconds``)
        before stepping, so warmup phases don't pollute reported
        fractions.
    """

    steps: int
    precision: Precision | str | None = None
    backend: "KernelBackend | str | None" = None
    checkpoint: Any = None
    digest: Any = None
    tracer: Any = None
    reset_timers: bool = False

    def __post_init__(self) -> None:
        self.steps = int(self.steps)
        if self.steps < 0:
            raise ValueError("steps must be non-negative")
        if self.precision is not None:
            # Fail fast on typos, before any stepping happens.
            self.precision = parse_precision(self.precision)
