"""SHAKE / RATTLE holonomic distance constraints.

The Rhodopsin benchmark adds SHAKE constraints (Andersen, 1983) to hold
rigid bond lengths and angles — in a real all-atom run the waters'
O-H bonds and H-O-H angle, which lets the 2 fs timestep survive.  The
paper's Section 6 notes that SHAKE has *no GPU implementation* in the
reference GPU package, leaving the CPU in charge of the Modify task;
our GPU executor models exactly that.

An H-O-H angle constraint is expressed as a third distance constraint
between the two hydrogens, so everything reduces to pair distances.
"""

from __future__ import annotations

import numpy as np

from repro.md.atoms import AtomSystem

__all__ = ["ShakeConstraints"]


class ShakeConstraints:
    """Iterative SHAKE position + RATTLE velocity constraint solver.

    Parameters
    ----------
    pairs:
        ``(M, 2)`` atom-index pairs to constrain.
    distances:
        Target distance per pair.
    tolerance:
        Relative convergence tolerance on ``|r^2 - d^2| / d^2``.
    max_iterations:
        Iteration cap; exceeded only for pathological configurations.
    """

    def __init__(
        self,
        pairs: np.ndarray,
        distances: np.ndarray,
        *,
        tolerance: float = 1e-8,
        max_iterations: int = 200,
    ) -> None:
        self.pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        self.distances = np.asarray(distances, dtype=float).reshape(-1)
        if len(self.distances) != len(self.pairs):
            raise ValueError("one target distance per constrained pair required")
        if np.any(self.distances <= 0):
            raise ValueError("constraint distances must be positive")
        self.tolerance = float(tolerance)
        self.max_iterations = int(max_iterations)
        self.last_iterations = 0

    @property
    def n_constraints(self) -> int:
        return len(self.pairs)

    def state_dict(self) -> dict:
        """SHAKE is stateless across steps; only the iteration diagnostic
        (exported to metrics) survives a checkpoint."""
        return {"last_iterations": self.last_iterations}

    def load_state_dict(self, state: dict) -> None:
        self.last_iterations = int(state.get("last_iterations", 0))

    # ------------------------------------------------------------------
    def apply_positions(
        self, system: AtomSystem, reference_positions: np.ndarray, dt: float
    ) -> None:
        """SHAKE: project post-drift positions back onto the constraints.

        ``reference_positions`` are the pre-drift coordinates whose bond
        vectors define the constraint directions (the classic SHAKE
        linearization).  Velocities receive the matching correction so
        the half-step kinetic state stays consistent.
        """
        i = self.pairs[:, 0]
        j = self.pairs[:, 1]
        box = system.box
        d2 = self.distances**2
        inv_mi = 1.0 / system.masses[i]
        inv_mj = 1.0 / system.masses[j]
        # The projection iterates to a relative tolerance (1e-8 by
        # default) that float32 state cannot represent, so narrow
        # storage modes solve on float64 working copies and round once
        # at write-back — the same "constraints stay in double" split
        # the reference CPU package makes.
        upcast = system.positions.dtype != np.float64
        positions = (
            system.positions.astype(np.float64) if upcast else system.positions
        )
        velocities = (
            system.velocities.astype(np.float64) if upcast else system.velocities
        )
        reference = np.asarray(reference_positions, dtype=np.float64)
        ref_dr = box.minimum_image(reference[i] - reference[j])

        for iteration in range(1, self.max_iterations + 1):
            dr = box.minimum_image(positions[i] - positions[j])
            r2 = np.einsum("ij,ij->i", dr, dr)
            diff = r2 - d2
            if np.all(np.abs(diff) <= self.tolerance * d2):
                self.last_iterations = iteration - 1
                if upcast:
                    system.positions[...] = positions
                    system.velocities[...] = velocities
                return
            # First-order Lagrange multiplier along the reference bond.
            denom = 2.0 * (inv_mi + inv_mj) * np.einsum("ij,ij->i", ref_dr, dr)
            # A vanishing projection means the linearization broke down.
            safe = np.where(np.abs(denom) > 1e-12, denom, np.sign(denom) * 1e-12 + 1e-12)
            g = diff / safe
            corr = g[:, None] * ref_dr
            np.add.at(positions, i, -inv_mi[:, None] * corr)
            np.add.at(positions, j, inv_mj[:, None] * corr)
            if dt > 0:
                np.add.at(velocities, i, -inv_mi[:, None] * corr / dt)
                np.add.at(velocities, j, inv_mj[:, None] * corr / dt)
        raise RuntimeError(
            f"SHAKE failed to converge in {self.max_iterations} iterations"
        )

    def apply_velocities(self, system: AtomSystem) -> None:
        """RATTLE: remove velocity components along the constraints."""
        i = self.pairs[:, 0]
        j = self.pairs[:, 1]
        box = system.box
        inv_mi = 1.0 / system.masses[i]
        inv_mj = 1.0 / system.masses[j]
        # Same float64 working-copy treatment as apply_positions.
        upcast = system.velocities.dtype != np.float64
        positions = np.asarray(system.positions, dtype=np.float64)
        velocities = (
            system.velocities.astype(np.float64) if upcast else system.velocities
        )
        for iteration in range(1, self.max_iterations + 1):
            dr = box.minimum_image(positions[i] - positions[j])
            r2 = np.einsum("ij,ij->i", dr, dr)
            dv = velocities[i] - velocities[j]
            rv = np.einsum("ij,ij->i", dr, dv)
            # Converged when the radial relative velocity (units 1/time,
            # normalized by r^2) is below tolerance.
            if np.all(np.abs(rv) <= self.tolerance * r2):
                self.last_iterations = iteration - 1
                if upcast:
                    system.velocities[...] = velocities
                return
            k = rv / (r2 * (inv_mi + inv_mj))
            corr = k[:, None] * dr
            np.add.at(velocities, i, -inv_mi[:, None] * corr)
            np.add.at(velocities, j, inv_mj[:, None] * corr)
        raise RuntimeError(
            f"RATTLE failed to converge in {self.max_iterations} iterations"
        )

    # ------------------------------------------------------------------
    def max_violation(self, system: AtomSystem) -> float:
        """Largest relative constraint violation ``|r - d| / d``."""
        i = self.pairs[:, 0]
        j = self.pairs[:, 1]
        r = system.box.distance(system.positions[i], system.positions[j])
        return float(np.max(np.abs(r - self.distances) / self.distances))
