"""LAMMPS input-deck parser for the bench-deck command subset.

The paper's workloads are defined by LAMMPS input scripts (the files
under ``lammps/bench``).  This module parses the command subset those
decks use and builds a runnable
:class:`~repro.md.simulation.Simulation`, so e.g. the stock ``in.lj``
deck runs *verbatim* on this engine (see ``decks/in.lj`` and the deck
tests).

Supported commands::

    units           lj | metal | real
    atom_style      <any>              (metadata only)
    dimension       3
    boundary        p p p
    lattice         fcc <density|a> | sc <density|a> | diamond <a>
    region          <id> block <xlo> <xhi> <ylo> <yhi> <zlo> <zhi>
    create_box      <ntypes> <region-id>
    create_atoms    <type> box
    mass            <type> <mass>
    velocity        all create <T> <seed> [ignored options...]
    pair_style      lj/cut <cutoff> | soft <cutoff> | tersoff
    pair_coeff      <i|*> <j|*> <coeffs...>     (file args for tersoff)
    neighbor        <skin> bin
    neigh_modify    ...                 (accepted, informational)
    fix             <id> all nve
    fix             <id> all langevin <T1> <T2> <damp> <seed>
    fix             <id> all nvt temp <T1> <T2> <damp>
    timestep        <dt>
    thermo          <interval>
    run             <steps>
    # comments and blank lines

Unsupported commands raise :class:`DeckError` naming the line — decks
never silently half-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.md.atoms import AtomSystem
from repro.md.box import Box
from repro.md.fixes import LangevinThermostat
from repro.md.integrators import NoseHooverNVT, VelocityVerletNVE
from repro.md.lattice import diamond_positions, fcc_positions, sc_positions
from repro.md.potentials.lj import LennardJonesCut
from repro.md.potentials.soft import SoftRepulsion
from repro.md.potentials.tersoff import Tersoff
from repro.md.simulation import Simulation

__all__ = ["DeckError", "ParsedDeck", "parse_deck", "run_deck"]


class DeckError(ValueError):
    """A deck line could not be understood or is out of order."""


@dataclass
class ParsedDeck:
    """The outcome of parsing: a ready simulation plus run directives."""

    simulation: Simulation
    run_steps: int
    units: str
    commands: list[str] = field(default_factory=list)

    def run(self) -> Simulation:
        """Execute the deck's ``run`` directive."""
        self.simulation.run(self.run_steps)
        return self.simulation


@dataclass
class _DeckState:
    units: str | None = None
    lattice_style: str | None = None
    lattice_value: float = 0.0
    lattice_constant: float = 0.0
    region: tuple[float, ...] | None = None
    n_types: int = 0
    system: AtomSystem | None = None
    masses: dict[int, float] = field(default_factory=dict)
    velocity_seeded: bool = False
    pair_style: str | None = None
    pair_cutoff: float = 0.0
    pair_coeffs: dict[tuple[int, int], tuple[float, ...]] = field(
        default_factory=dict
    )
    skin: float = 0.3
    integrator_cls: type | None = None
    integrator_args: tuple = ()
    fixes: list = field(default_factory=list)
    dt: float = 0.005
    thermo_every: int = 100
    run_steps: int | None = None


def _need(state_attr, message: str):
    def check(state: _DeckState):
        if getattr(state, state_attr) is None:
            raise DeckError(message)

    return check


def parse_deck(text: str) -> ParsedDeck:
    """Parse a deck and build the simulation it describes."""
    state = _DeckState()
    commands: list[str] = []

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        commands.append(line)
        tokens = line.split()
        command, args = tokens[0], tokens[1:]
        try:
            handler = _HANDLERS[command]
        except KeyError:
            raise DeckError(
                f"line {line_no}: unsupported command {command!r}"
            ) from None
        try:
            handler(state, args)
        except DeckError:
            raise
        except Exception as error:  # malformed arguments
            raise DeckError(f"line {line_no}: {command}: {error}") from error

    if state.system is None:
        raise DeckError("deck never created atoms (create_atoms missing)")
    if state.pair_style is None:
        raise DeckError("deck defines no pair_style")
    if state.run_steps is None:
        raise DeckError("deck has no run command")

    potential = _build_potential(state)
    integrator = (
        state.integrator_cls(*state.integrator_args)
        if state.integrator_cls is not None
        else VelocityVerletNVE()
    )
    simulation = Simulation(
        state.system,
        [potential],
        integrator=integrator,
        fixes=list(state.fixes),
        dt=state.dt,
        skin=state.skin,
        thermo_every=state.thermo_every,
    )
    return ParsedDeck(
        simulation=simulation,
        run_steps=state.run_steps,
        units=state.units or "lj",
        commands=commands,
    )


def run_deck(path: str | Path) -> Simulation:
    """Parse and execute a deck file."""
    deck = parse_deck(Path(path).read_text())
    return deck.run()


# ---------------------------------------------------------------------------
# Command handlers
# ---------------------------------------------------------------------------
def _cmd_units(state: _DeckState, args: list[str]) -> None:
    if len(args) != 1 or args[0] not in ("lj", "metal", "real"):
        raise DeckError(f"units must be lj/metal/real, got {args}")
    state.units = args[0]


def _cmd_noop(state: _DeckState, args: list[str]) -> None:
    return None


def _cmd_dimension(state: _DeckState, args: list[str]) -> None:
    if args != ["3"]:
        raise DeckError("only 3-dimensional decks are supported")


def _cmd_boundary(state: _DeckState, args: list[str]) -> None:
    if args != ["p", "p", "p"]:
        raise DeckError("only fully periodic boundaries are supported")


def _cmd_lattice(state: _DeckState, args: list[str]) -> None:
    style, value = args[0], float(args[1])
    if style not in ("fcc", "sc", "diamond"):
        raise DeckError(f"unsupported lattice style {style!r}")
    state.lattice_style = style
    state.lattice_value = value
    atoms_per_cell = {"fcc": 4, "sc": 1, "diamond": 8}[style]
    if state.units == "lj":
        # LAMMPS lj units: the value is a reduced *density*.
        state.lattice_constant = (atoms_per_cell / value) ** (1.0 / 3.0)
    else:
        # metal/real units: the value is the lattice constant itself.
        state.lattice_constant = value


def _cmd_region(state: _DeckState, args: list[str]) -> None:
    if len(args) < 8 or args[1] != "block":
        raise DeckError("only 'region <id> block xlo xhi ylo yhi zlo zhi'")
    bounds = tuple(float(x) for x in args[2:8])
    if bounds[0] != 0 or bounds[2] != 0 or bounds[4] != 0:
        raise DeckError("region must start at the origin")
    state.region = bounds


def _cmd_create_box(state: _DeckState, args: list[str]) -> None:
    state.n_types = int(args[0])
    if state.n_types < 1:
        raise DeckError("create_box needs at least one atom type")


def _cmd_create_atoms(state: _DeckState, args: list[str]) -> None:
    if state.lattice_style is None or state.region is None:
        raise DeckError("create_atoms before lattice/region")
    atom_type = int(args[0]) - 1
    # Region bounds are in lattice units: whole unit cells only.
    nx, ny, nz = (int(round(state.region[i])) for i in (1, 3, 5))
    if min(nx, ny, nz) < 1:
        raise DeckError("region must span at least one lattice cell")
    if nx != ny or ny != nz:
        raise DeckError("only cubic regions are supported")
    builder = {
        "fcc": fcc_positions,
        "sc": sc_positions,
        "diamond": diamond_positions,
    }[state.lattice_style]
    positions, box = builder(nx, state.lattice_constant)
    state.system = AtomSystem(
        positions, box, types=np.full(len(positions), atom_type, dtype=np.int64)
    )


def _cmd_mass(state: _DeckState, args: list[str]) -> None:
    state.masses[int(args[0]) - 1] = float(args[1])
    if state.system is not None:
        for atom_type, mass in state.masses.items():
            state.system.masses[state.system.types == atom_type] = mass


def _cmd_velocity(state: _DeckState, args: list[str]) -> None:
    if state.system is None:
        raise DeckError("velocity before create_atoms")
    if args[0] != "all" or args[1] != "create":
        raise DeckError("only 'velocity all create T seed ...'")
    temperature, seed = float(args[2]), int(args[3])
    state.system.seed_velocities(temperature, np.random.default_rng(seed))
    state.velocity_seeded = True


def _cmd_pair_style(state: _DeckState, args: list[str]) -> None:
    style = args[0]
    if style not in ("lj/cut", "soft", "tersoff"):
        raise DeckError(f"unsupported pair_style {style!r}")
    state.pair_style = style
    if style == "tersoff":
        # LAMMPS takes no cutoff here; it lives in the parameter set.
        state.pair_cutoff = Tersoff().cutoff
    else:
        state.pair_cutoff = float(args[1])


def _cmd_pair_coeff(state: _DeckState, args: list[str]) -> None:
    if state.pair_style is None:
        raise DeckError("pair_coeff before pair_style")

    if state.pair_style == "tersoff":
        # LAMMPS form is ``pair_coeff * * <file> <elements...>``; the
        # single-species T3 silicon set is built in, so the tokens are
        # accepted as provenance metadata only.
        if args[:2] != ["*", "*"]:
            raise DeckError("tersoff pair_coeff must be '* * <file> <elem>'")
        return

    def type_index(token: str) -> int:
        return 0 if token == "*" else int(token) - 1

    i, j = type_index(args[0]), type_index(args[1])
    state.pair_coeffs[(i, j)] = tuple(float(x) for x in args[2:])


def _cmd_neighbor(state: _DeckState, args: list[str]) -> None:
    state.skin = float(args[0])
    if len(args) > 1 and args[1] not in ("bin", "nsq"):
        raise DeckError(f"unsupported neighbor style {args[1]!r}")


def _cmd_fix(state: _DeckState, args: list[str]) -> None:
    if len(args) < 3 or args[1] != "all":
        raise DeckError("only 'fix <id> all <style> ...'")
    style = args[2]
    rest = args[3:]
    if style == "nve":
        state.integrator_cls = VelocityVerletNVE
        state.integrator_args = ()
    elif style == "nvt":
        if rest[:1] != ["temp"]:
            raise DeckError("fix nvt needs 'temp T1 T2 damp'")
        t_start, damp = float(rest[1]), float(rest[3])
        state.integrator_cls = NoseHooverNVT
        state.integrator_args = (t_start, damp)
    elif style == "langevin":
        t_start, damp, seed = float(rest[0]), float(rest[2]), int(rest[3])
        state.fixes.append(
            LangevinThermostat(t_start, damp, np.random.default_rng(seed))
        )
    else:
        raise DeckError(f"unsupported fix style {style!r}")


def _cmd_timestep(state: _DeckState, args: list[str]) -> None:
    state.dt = float(args[0])
    if state.dt <= 0:
        raise DeckError("timestep must be positive")


def _cmd_thermo(state: _DeckState, args: list[str]) -> None:
    state.thermo_every = int(args[0])


def _cmd_run(state: _DeckState, args: list[str]) -> None:
    state.run_steps = int(args[0])
    if state.run_steps < 0:
        raise DeckError("run steps must be non-negative")


def _build_potential(state: _DeckState):
    n_types = max(state.n_types, 1)
    if state.pair_style == "tersoff":
        return Tersoff()
    if state.pair_style == "soft":
        coeffs = state.pair_coeffs.get((0, 0), (1.0,))
        return SoftRepulsion(coeffs[0], state.pair_cutoff)
    # lj/cut: gather per-type epsilon/sigma from the diagonal coeffs
    # (a ``* *`` entry acts as the wildcard default for every type).
    epsilons = np.ones(n_types)
    sigmas = np.ones(n_types)
    wildcard = state.pair_coeffs.get((0, 0))
    for t in range(n_types):
        coeffs = state.pair_coeffs.get((t, t), wildcard)
        if coeffs is None:
            raise DeckError(f"no pair_coeff for type {t + 1}")
        epsilons[t], sigmas[t] = coeffs[0], coeffs[1]
    cutoff = state.pair_cutoff
    # A per-pair cutoff in pair_coeff overrides the global one.
    if wildcard is not None and len(wildcard) > 2:
        cutoff = wildcard[2]
    return LennardJonesCut(epsilons, sigmas, cutoff=cutoff)


_HANDLERS = {
    "units": _cmd_units,
    "atom_style": _cmd_noop,
    "atom_modify": _cmd_noop,
    "neigh_modify": _cmd_noop,
    "dimension": _cmd_dimension,
    "boundary": _cmd_boundary,
    "lattice": _cmd_lattice,
    "region": _cmd_region,
    "create_box": _cmd_create_box,
    "create_atoms": _cmd_create_atoms,
    "mass": _cmd_mass,
    "velocity": _cmd_velocity,
    "pair_style": _cmd_pair_style,
    "pair_coeff": _cmd_pair_coeff,
    "neighbor": _cmd_neighbor,
    "fix": _cmd_fix,
    "timestep": _cmd_timestep,
    "thermo": _cmd_thermo,
    "run": _cmd_run,
}
