"""Trajectory dump writer (the "dump files" half of the Output task).

Table 1's Output row covers "thermodynamic info and dump files"; this
module provides an extended-XYZ trajectory writer compatible with
common visualization tools (OVITO, VMD, ASE), plus a reader for
round-trip tests.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.md.atoms import AtomSystem

__all__ = ["XyzDumpWriter", "read_xyz_frames"]

_ELEMENT_NAMES = ("A", "B", "C", "D", "E", "F", "G", "H")


class XyzDumpWriter:
    """Appends extended-XYZ frames to a trajectory file.

    Parameters
    ----------
    path:
        Output file; parent directories are created.
    every:
        Dump interval in timesteps (0 disables dumping).
    """

    def __init__(self, path: str | Path, every: int = 100) -> None:
        if every < 0:
            raise ValueError("every must be non-negative")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.every = int(every)
        self.frames_written = 0
        # Truncate any previous trajectory.
        self.path.write_text("")

    def should_dump(self, step: int) -> bool:
        return self.every > 0 and step % self.every == 0

    def write_frame(self, system: AtomSystem, step: int) -> None:
        """Append one frame (positions in the primary image)."""
        lengths = system.box.lengths
        lattice = (
            f"{lengths[0]} 0.0 0.0 0.0 {lengths[1]} 0.0 0.0 0.0 {lengths[2]}"
        )
        lines = [str(system.n_atoms)]
        lines.append(
            f'Lattice="{lattice}" Properties=species:S:1:pos:R:3 step={step}'
        )
        for atom_type, position in zip(system.types, system.positions):
            name = _ELEMENT_NAMES[int(atom_type) % len(_ELEMENT_NAMES)]
            lines.append(
                f"{name} {position[0]:.8f} {position[1]:.8f} {position[2]:.8f}"
            )
        with self.path.open("a") as handle:
            handle.write("\n".join(lines) + "\n")
        self.frames_written += 1


def read_xyz_frames(path: str | Path) -> list[tuple[int, np.ndarray]]:
    """Parse a trajectory written by :class:`XyzDumpWriter`.

    Returns ``(step, positions)`` per frame.
    """
    frames: list[tuple[int, np.ndarray]] = []
    lines = Path(path).read_text().splitlines()
    cursor = 0
    while cursor < len(lines):
        if not lines[cursor].strip():
            cursor += 1
            continue
        n_atoms = int(lines[cursor])
        comment = lines[cursor + 1]
        step = 0
        for token in comment.split():
            if token.startswith("step="):
                step = int(token.split("=", 1)[1])
        body = lines[cursor + 2 : cursor + 2 + n_atoms]
        positions = np.array(
            [[float(x) for x in line.split()[1:4]] for line in body]
        )
        frames.append((step, positions))
        cursor += 2 + n_atoms
    return frames
