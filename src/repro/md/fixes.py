"""Fixes: per-step operations applied to groups of atoms.

Table 1 defines the "Modify" task as "fixes and computes invoked by
fixes" — applying constraint forces, controlling temperature, enforcing
boundary conditions.  The suite needs three of them:

* :class:`LangevinThermostat` — the Chain benchmark applies a Langevin
  thermostat to all atoms (Davidchack et al., 2009);
* :class:`Gravity` — drives the Chute flow down the incline;
* :class:`BottomWall` — the chute's lower boundary (its z dimension is
  not periodic).
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.md.atoms import AtomSystem

__all__ = [
    "Fix",
    "LangevinThermostat",
    "Gravity",
    "BottomWall",
    "BerendsenThermostat",
    "VelocityRescale",
]


class Fix(abc.ABC):
    """A per-timestep operation on (a group of) atoms."""

    @abc.abstractmethod
    def post_force(self, system: AtomSystem, dt: float, step: int) -> None:
        """Hook running after forces are computed, before final integrate."""

    def state_dict(self) -> dict:
        """Dynamical state a checkpoint must capture (default: none).

        Most fixes are pure functions of the instantaneous system state;
        the Langevin thermostat's RNG stream is the notable exception —
        without it a restart samples different kicks and the restarted
        trajectory silently diverges from the uninterrupted one.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore the variables :meth:`state_dict` captured."""
        if state:
            raise ValueError(
                f"{type(self).__name__} carries no dynamical state but the "
                f"snapshot provides {sorted(state)}"
            )


class LangevinThermostat(Fix):
    """Langevin dynamics: friction plus matched random kicks.

    Adds ``F = -m v / damp + sqrt(2 m kT / (damp dt)) xi`` with unit
    Gaussian ``xi`` — the standard fluctuation-dissipation pair that
    drives the system to the target temperature.
    """

    def __init__(
        self, temperature: float, damp: float, rng: np.random.Generator
    ) -> None:
        if temperature < 0 or damp <= 0:
            raise ValueError("temperature must be >= 0 and damp > 0")
        self.temperature = float(temperature)
        self.damp = float(damp)
        self.rng = rng

    def post_force(self, system: AtomSystem, dt: float, step: int) -> None:
        m = system.masses[:, None]
        drag = -m * system.velocities / self.damp
        sigma = np.sqrt(2.0 * m * self.temperature / (self.damp * dt))
        noise = sigma * self.rng.normal(size=system.velocities.shape)
        system.forces += drag + noise

    def state_dict(self) -> dict:
        # The bit-generator state is a plain nested dict of ints/strings
        # (JSON-serializable), so a restored stream continues bit-for-bit.
        return {"rng_state": self.rng.bit_generator.state}

    def load_state_dict(self, state: dict) -> None:
        self.rng.bit_generator.state = state["rng_state"]


class Gravity(Fix):
    """Uniform gravitational acceleration.

    For the chute flow the vector is tilted by the chute angle, so the
    packed granular bed flows "downhill" along x while being held by the
    bottom wall in z (LAMMPS ``fix gravity ... chute 26.0``).
    """

    def __init__(self, magnitude: float = 1.0, chute_angle_deg: float = 26.0):
        if magnitude < 0:
            raise ValueError("gravity magnitude must be non-negative")
        angle = math.radians(chute_angle_deg)
        self.vector = magnitude * np.array(
            [math.sin(angle), 0.0, -math.cos(angle)]
        )

    def post_force(self, system: AtomSystem, dt: float, step: int) -> None:
        system.forces += system.masses[:, None] * self.vector


class BottomWall(Fix):
    """Repulsive Hookean wall at the bottom of a non-periodic dimension.

    Granular particles overlapping the plane ``coord = position`` feel a
    spring force ``k * overlap`` pushing them back, with a normal-velocity
    damping term matching the granular pair style.
    """

    def __init__(
        self,
        position: float = 0.0,
        k: float = 200000.0,
        gamma: float = 50.0,
        dim: int = 2,
    ) -> None:
        self.position = float(position)
        self.k = float(k)
        self.gamma = float(gamma)
        if dim not in (0, 1, 2):
            raise ValueError("dim must be 0, 1 or 2")
        self.dim = int(dim)

    def post_force(self, system: AtomSystem, dt: float, step: int) -> None:
        radii = system.radii if system.radii is not None else 0.5
        gap = system.positions[:, self.dim] - self.position
        overlap = radii - gap
        touching = overlap > 0
        if not np.any(touching):
            return
        v_n = system.velocities[touching, self.dim]
        m = system.masses[touching]
        force = self.k * overlap[touching] - self.gamma * m * v_n
        system.forces[touching, self.dim] += force


class BerendsenThermostat(Fix):
    """Berendsen weak-coupling thermostat.

    Rescales velocities toward the target temperature with relaxation
    time ``damp``: ``lambda^2 = 1 + dt/damp (T0/T - 1)``.  Cheaper and
    smoother than Langevin but does not sample a canonical ensemble —
    provided as the common alternative knob for the Chain benchmark.
    """

    def __init__(self, temperature: float, damp: float) -> None:
        if temperature <= 0 or damp <= 0:
            raise ValueError("temperature and damp must be positive")
        self.temperature = float(temperature)
        self.damp = float(damp)

    def post_force(self, system: AtomSystem, dt: float, step: int) -> None:
        current = system.temperature()
        if current <= 0:
            return
        ratio = 1.0 + dt / self.damp * (self.temperature / current - 1.0)
        # Guard against overshoot for very cold/hot starts.
        scale = math.sqrt(min(max(ratio, 0.25), 4.0))
        system.velocities *= scale


class VelocityRescale(Fix):
    """Hard velocity rescaling to the target temperature every N steps.

    The bluntest thermostat — used during equilibration phases where a
    canonical distribution is not yet needed.
    """

    def __init__(self, temperature: float, every: int = 10) -> None:
        if temperature <= 0 or every < 1:
            raise ValueError("temperature must be positive and every >= 1")
        self.temperature = float(temperature)
        self.every = int(every)

    def post_force(self, system: AtomSystem, dt: float, step: int) -> None:
        if step % self.every:
            return
        current = system.temperature()
        if current <= 0:
            return
        system.velocities *= math.sqrt(self.temperature / current)
