"""Time integrators: velocity Verlet NVE and Nose-Hoover NVT/NPT.

Section 2 of the paper: all suite experiments except Rhodopsin use plain
``NVE`` velocity-Verlet integration (Swope et al., 1982); Rhodopsin uses
``NPT`` — Nose-Hoover style non-Hamiltonian equations of motion that
regulate both temperature and pressure.  In LAMMPS the integrator is a
*fix*, so its runtime lands in the "Modify" task of Table 1; the
simulation loop accounts for it the same way.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.md.atoms import AtomSystem

__all__ = ["Integrator", "VelocityVerletNVE", "NoseHooverNVT", "NoseHooverNPT"]


class Integrator(abc.ABC):
    """Velocity-Verlet split: a half step before and after the forces."""

    @abc.abstractmethod
    def initial_integrate(self, system: AtomSystem, dt: float) -> None:
        """Half-kick velocities and drift positions (steps I of Fig. 1)."""

    @abc.abstractmethod
    def final_integrate(self, system: AtomSystem, dt: float) -> None:
        """Second velocity half-kick once new forces are known."""

    def state_dict(self) -> dict:
        """Dynamical state that must survive a checkpoint/restart.

        Construction parameters (targets, damping times) are *not*
        included — a restart rebuilds the integrator from the deck and
        only reloads the evolving variables, so restoring into a
        differently configured integrator is an error the snapshot
        layer detects via the type tag.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore the variables :meth:`state_dict` captured."""
        if state:
            raise ValueError(
                f"{type(self).__name__} carries no dynamical state but the "
                f"snapshot provides {sorted(state)}"
            )


class VelocityVerletNVE(Integrator):
    """Plain NVE velocity Verlet (the ``NVE`` LAMMPS command).

    Assumes constant atom count, volume and energy with periodic
    boundaries — the setting of LJ, Chain, EAM and Chute.  For granular
    systems the angular velocities are advanced with the sphere inertia
    ``I = 2/5 m R^2``.
    """

    def initial_integrate(self, system: AtomSystem, dt: float) -> None:
        inv_m = 1.0 / system.masses[:, None]
        system.velocities += 0.5 * dt * system.forces * inv_m
        system.positions += dt * system.velocities
        if system.omega is not None and system.torques is not None:
            inertia = 0.4 * system.masses * system.radii**2
            system.omega += 0.5 * dt * system.torques / inertia[:, None]

    def final_integrate(self, system: AtomSystem, dt: float) -> None:
        inv_m = 1.0 / system.masses[:, None]
        system.velocities += 0.5 * dt * system.forces * inv_m
        if system.omega is not None and system.torques is not None:
            inertia = 0.4 * system.masses * system.radii**2
            system.omega += 0.5 * dt * system.torques / inertia[:, None]


class NoseHooverNVT(VelocityVerletNVE):
    """Single-chain Nose-Hoover thermostat around velocity Verlet.

    Parameters
    ----------
    temperature:
        Target temperature (kB = 1).
    t_damp:
        Thermostat relaxation time (LAMMPS ``Tdamp``); ~100 timesteps is
        the usual choice.
    n_constraints:
        Degrees of freedom removed by constraints (SHAKE), so the
        thermostat sees the correct temperature.
    """

    def __init__(
        self, temperature: float, t_damp: float, *, n_constraints: int = 0
    ) -> None:
        if temperature <= 0 or t_damp <= 0:
            raise ValueError("temperature and t_damp must be positive")
        self.temperature = float(temperature)
        self.t_damp = float(t_damp)
        self.n_constraints = int(n_constraints)
        self.zeta = 0.0  # thermostat friction variable

    def _thermostat_half(self, system: AtomSystem, dt: float) -> None:
        t_now = system.temperature(self.n_constraints)
        self.zeta += (
            0.5 * dt / (self.t_damp**2) * (t_now / self.temperature - 1.0)
        )
        system.velocities *= math.exp(-0.5 * dt * self.zeta)

    def initial_integrate(self, system: AtomSystem, dt: float) -> None:
        self._thermostat_half(system, dt)
        super().initial_integrate(system, dt)

    def final_integrate(self, system: AtomSystem, dt: float) -> None:
        super().final_integrate(system, dt)
        self._thermostat_half(system, dt)

    def state_dict(self) -> dict:
        return {"zeta": self.zeta}

    def load_state_dict(self, state: dict) -> None:
        self.zeta = float(state["zeta"])


class NoseHooverNPT(NoseHooverNVT):
    """Isotropic Nose-Hoover NPT (the Rhodopsin ``NPT`` command).

    Adds a barostat variable ``eta`` that dilates the box and particle
    positions toward the target pressure.  The virial needed for the
    instantaneous pressure is supplied each step by the simulation loop
    through :meth:`set_virial`.
    """

    def __init__(
        self,
        temperature: float,
        t_damp: float,
        pressure: float,
        p_damp: float,
        *,
        n_constraints: int = 0,
    ) -> None:
        super().__init__(temperature, t_damp, n_constraints=n_constraints)
        if p_damp <= 0:
            raise ValueError("p_damp must be positive")
        self.pressure = float(pressure)
        self.p_damp = float(p_damp)
        self.eta = 0.0  # barostat strain rate
        self._virial = 0.0

    def set_virial(self, virial: float) -> None:
        """Record the current scalar pair virial (sum r . f over pairs)."""
        self._virial = float(virial)

    def current_pressure(self, system: AtomSystem) -> float:
        """Instantaneous pressure ``(2 KE + W) / (3 V)``."""
        return (2.0 * system.kinetic_energy() + self._virial) / (
            3.0 * system.box.volume
        )

    def _barostat_half(self, system: AtomSystem, dt: float) -> None:
        p_now = self.current_pressure(system)
        # Strain-rate update (units absorbed into p_damp).
        self.eta += 0.5 * dt / (self.p_damp**2) * (p_now - self.pressure)
        # Cap the strain rate so one half-step never dilates the box by
        # more than 0.1% — keeps badly equilibrated starts recoverable.
        eta_max = 2e-3 / dt
        self.eta = min(max(self.eta, -eta_max), eta_max)
        scale = math.exp(0.5 * dt * self.eta)
        system.box.scale(scale)
        system.positions *= scale

    def initial_integrate(self, system: AtomSystem, dt: float) -> None:
        self._barostat_half(system, dt)
        super().initial_integrate(system, dt)

    def final_integrate(self, system: AtomSystem, dt: float) -> None:
        super().final_integrate(system, dt)
        self._barostat_half(system, dt)

    def state_dict(self) -> dict:
        # ``_virial`` feeds the barostat half-step that runs *before*
        # the next force evaluation, so a restart must carry it over.
        return {"zeta": self.zeta, "eta": self.eta, "virial": self._virial}

    def load_state_dict(self, state: dict) -> None:
        self.zeta = float(state["zeta"])
        self.eta = float(state["eta"])
        self._virial = float(state["virial"])
