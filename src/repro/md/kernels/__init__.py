"""Pluggable force-kernel backends for the Pair-task hot loop.

The engine's inner loop — pair geometry, cutoff masking and force
scatter — is factored behind :class:`~repro.md.kernels.base.KernelBackend`
so that the same potentials run on interchangeable implementations:

``numpy_ref``
    The original ``np.add.at`` formulation, kept as the correctness
    oracle and the baseline the benchmark harness measures against.
``numpy_fast``
    CSR-ordered pairs, ``np.bincount`` segmented accumulation and
    preallocated scratch buffers (the default).
``compiled``
    Native-code pair forces *and* neighbor-list builds, via numba
    ``@njit`` kernels when numba is importable or a ctypes-bound C
    library compiled on first use otherwise.  Optional: when neither
    provider works, requesting it falls back to ``numpy_fast`` with a
    one-time warning (see :func:`backend_diagnostics` for the reason).

Selection order: an explicit ``Simulation(backend=...)`` argument wins,
then the ``REPRO_KERNEL_BACKEND`` environment variable, then
:data:`DEFAULT_BACKEND`.  The meta-name ``auto`` (valid in both the
argument and the environment variable) resolves to ``compiled`` when a
native provider passes its smoke test and to ``numpy_fast`` otherwise —
the fastest backend the machine can actually run, without the silent
numpy default that benchmark records used to hide on compiled-capable
hosts.
"""

from __future__ import annotations

import os
import warnings

from repro.md.kernels.base import KernelBackend
from repro.md.kernels.compiled import (
    BackendUnavailableError,
    CompiledBackend,
)
from repro.md.kernels.numpy_fast import NumpyFastBackend
from repro.md.kernels.numpy_ref import NumpyRefBackend

__all__ = [
    "KernelBackend",
    "NumpyRefBackend",
    "NumpyFastBackend",
    "CompiledBackend",
    "BackendUnavailableError",
    "DEFAULT_BACKEND",
    "AUTO_BACKEND",
    "BACKEND_ENV_VAR",
    "resolve_auto_backend",
    "available_backends",
    "backend_diagnostics",
    "get_backend",
    "backend_spec",
]

#: Environment variable consulted when no explicit backend is passed.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Backend used when neither an argument nor the env var selects one.
DEFAULT_BACKEND = "numpy_fast"

#: Meta-name resolving to the fastest backend this machine supports.
AUTO_BACKEND = "auto"

_REGISTRY: dict[str, type[KernelBackend]] = {
    NumpyRefBackend.name: NumpyRefBackend,
    NumpyFastBackend.name: NumpyFastBackend,
    CompiledBackend.name: CompiledBackend,
}

#: (name, reason) combinations already warned about, once per process.
_warned_fallbacks: set[tuple[str, str]] = set()


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`get_backend`, in registry order.

    Every listed name is always *accepted*; optional backends that
    cannot run on this machine resolve to the :data:`DEFAULT_BACKEND`
    with a one-time warning.  :func:`backend_diagnostics` reports which
    names are degraded and why.
    """
    return tuple(_REGISTRY)


def backend_diagnostics() -> dict[str, str]:
    """Per-backend availability: ``"ok"`` or why it would fall back.

    Probing an optional backend may do real work on first call (import
    numba and JIT-compile, or invoke the C compiler), so this is meant
    for CLIs, benchmarks and error paths — not per-step code.
    """
    diagnostics = {}
    for name, cls in _REGISTRY.items():
        probe = getattr(cls, "diagnostic", None)
        diagnostics[name] = probe() if probe is not None else "ok"
    return diagnostics


def resolve_auto_backend() -> str:
    """The registry name ``auto`` stands for on this machine.

    ``compiled`` when a native provider (numba or a C compiler) passes
    its smoke test, else :data:`DEFAULT_BACKEND`.  The probe may do
    real work on first call (JIT or invoke ``cc``); the result is
    cached by the provider layer, so later calls are cheap.
    """
    from repro.md.kernels.compiled import compiled_available

    return "compiled" if compiled_available() else DEFAULT_BACKEND


def get_backend(spec: str | KernelBackend | None = None) -> KernelBackend:
    """Resolve ``spec`` into a live :class:`KernelBackend` instance.

    ``None`` falls back to ``$REPRO_KERNEL_BACKEND`` and then to
    :data:`DEFAULT_BACKEND`; ``"auto"`` resolves via
    :func:`resolve_auto_backend`; any other string is looked up in the
    registry; an existing backend instance passes through unchanged (so
    a Simulation can share one scratch-carrying backend across its
    potentials).

    Requesting an optional backend whose runtime support is missing
    (e.g. ``compiled`` with neither numba nor a C compiler) returns the
    default backend and warns once per process with the reason, so an
    exported ``REPRO_KERNEL_BACKEND=compiled`` can never break a run.
    """
    if isinstance(spec, KernelBackend):
        return spec
    if spec is None:
        spec = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    if spec == AUTO_BACKEND:
        spec = resolve_auto_backend()
    try:
        cls = _REGISTRY[spec]
    except KeyError:
        degraded = "; ".join(
            f"{name}: {reason}"
            for name, reason in backend_diagnostics().items()
            if not reason.startswith("ok")
        )
        detail = f" (note: {degraded})" if degraded else ""
        raise ValueError(
            f"unknown kernel backend {spec!r}; available: "
            f"{available_backends()}{detail}"
        ) from None
    try:
        return cls()
    except BackendUnavailableError as exc:
        key = (spec, str(exc))
        if key not in _warned_fallbacks:
            _warned_fallbacks.add(key)
            warnings.warn(
                f"kernel backend {spec!r} is unavailable on this machine "
                f"({exc}); falling back to {DEFAULT_BACKEND!r}",
                RuntimeWarning,
                stacklevel=2,
            )
        return _REGISTRY[DEFAULT_BACKEND]()


def backend_spec(backend: KernelBackend) -> str:
    """Registry name of a live backend, for cross-process dispatch.

    Backend instances carry scratch buffers and (when tracing) a tracer
    reference, neither of which should travel to worker processes; the
    parallel engine ships this *name* instead and each worker resolves
    its own instance.  Wrappers that proxy a real backend (for example
    the observability ``TracingBackend``) are unwrapped via their
    ``inner`` attribute.
    """
    while getattr(type(backend), "name", None) not in _REGISTRY:
        nested = getattr(backend, "inner", None)
        if nested is None or nested is backend:
            raise ValueError(
                f"cannot derive a registry spec for backend {backend!r}"
            )
        backend = nested
    return type(backend).name
