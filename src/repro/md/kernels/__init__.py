"""Pluggable force-kernel backends for the Pair-task hot loop.

The engine's inner loop — pair geometry, cutoff masking and force
scatter — is factored behind :class:`~repro.md.kernels.base.KernelBackend`
so that the same potentials run on interchangeable implementations:

``numpy_ref``
    The original ``np.add.at`` formulation, kept as the correctness
    oracle and the baseline the benchmark harness measures against.
``numpy_fast``
    CSR-ordered pairs, ``np.bincount`` segmented accumulation and
    preallocated scratch buffers (the default).

Selection order: an explicit ``Simulation(backend=...)`` argument wins,
then the ``REPRO_KERNEL_BACKEND`` environment variable, then
:data:`DEFAULT_BACKEND`.
"""

from __future__ import annotations

import os

from repro.md.kernels.base import KernelBackend
from repro.md.kernels.numpy_fast import NumpyFastBackend
from repro.md.kernels.numpy_ref import NumpyRefBackend

__all__ = [
    "KernelBackend",
    "NumpyRefBackend",
    "NumpyFastBackend",
    "DEFAULT_BACKEND",
    "BACKEND_ENV_VAR",
    "available_backends",
    "get_backend",
    "backend_spec",
]

#: Environment variable consulted when no explicit backend is passed.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Backend used when neither an argument nor the env var selects one.
DEFAULT_BACKEND = "numpy_fast"

_REGISTRY: dict[str, type[KernelBackend]] = {
    NumpyRefBackend.name: NumpyRefBackend,
    NumpyFastBackend.name: NumpyFastBackend,
}


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`get_backend`, in registry order."""
    return tuple(_REGISTRY)


def get_backend(spec: str | KernelBackend | None = None) -> KernelBackend:
    """Resolve ``spec`` into a live :class:`KernelBackend` instance.

    ``None`` falls back to ``$REPRO_KERNEL_BACKEND`` and then to
    :data:`DEFAULT_BACKEND`; a string is looked up in the registry; an
    existing backend instance passes through unchanged (so a Simulation
    can share one scratch-carrying backend across its potentials).
    """
    if isinstance(spec, KernelBackend):
        return spec
    if spec is None:
        spec = os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND
    try:
        return _REGISTRY[spec]()
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {spec!r}; available: {available_backends()}"
        ) from None


def backend_spec(backend: KernelBackend) -> str:
    """Registry name of a live backend, for cross-process dispatch.

    Backend instances carry scratch buffers and (when tracing) a tracer
    reference, neither of which should travel to worker processes; the
    parallel engine ships this *name* instead and each worker resolves
    its own instance.  Wrappers that proxy a real backend (for example
    the observability ``TracingBackend``) are unwrapped via their
    ``inner`` attribute.
    """
    while getattr(type(backend), "name", None) not in _REGISTRY:
        nested = getattr(backend, "inner", None)
        if nested is None or nested is backend:
            raise ValueError(
                f"cannot derive a registry spec for backend {backend!r}"
            )
        backend = nested
    return type(backend).name
