"""C-compiler provider for the ``compiled`` kernel backend.

When numba is not installed (or its JIT is broken), the ``compiled``
backend can still deliver native-code speed anywhere a C compiler is
on ``PATH``: this module carries a single self-contained C translation
unit implementing the Pair/Neigh hot loops, builds it once into a
cached shared object with strict IEEE flags, and binds it via the
stdlib ``ctypes`` — no third-party build dependency at all.

Numerical contract (shared with the numba provider and pinned by the
backend oracle tests):

* Minimum image uses the exact ``dr -= rint(dr / L) * L`` sequence of
  ``Box.minimum_image`` (round-half-even ``rint``), per periodic dim.
* Squared distances replicate ``np.einsum("ij,ij->i")``'s pairwise
  summation order — ``(xx + zz) + yy`` for float64 and
  ``(xx + yy) + zz`` for float32 — so the surviving pair set and the
  per-pair ``dr``/``r`` values match the numpy backends *bitwise*.
* The scatter loops accumulate in input order, which is bitwise
  identical to ``np.bincount`` when the destination rows start at
  zero; mixed-precision variants widen each float32 term to float64
  before adding, exactly as bincount's float64 accumulator does.
* Compilation uses ``-fno-fast-math -ffp-contract=off`` so the
  compiler can neither reassociate sums nor contract multiply-adds
  into FMAs — either would silently break the bitwise contract.

The build cache defaults to a ``.cc_cache`` directory next to this
file (overridable via ``$REPRO_COMPILED_CACHE``), keyed by a hash of
the source and flags, and populated through an atomic rename so
concurrent worker processes never observe a half-written library.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np
from numpy.ctypeslib import ndpointer

__all__ = ["make_provider", "CACHE_ENV_VAR"]

#: Environment override for the shared-object build cache directory.
CACHE_ENV_VAR = "REPRO_COMPILED_CACHE"

#: IEEE-strict flags: no value-changing optimizations, no FMA
#: contraction.  Reordering either sum would break bitwise parity with
#: the numpy backends.
_CFLAGS = ("-O3", "-fno-fast-math", "-ffp-contract=off", "-shared", "-fPIC")

_SOURCE = r"""
#include <math.h>
#include <stdint.h>
#include <stdlib.h>

/* ------------------------------------------------------------------ */
/* Scatter primitives: out[idx[k]] += v[k] in input order.             */
/* Input-order serial accumulation is bitwise-identical to             */
/* np.bincount whenever the destination starts at zero; the mixed      */
/* (f32 values -> f64 out) variants widen each term first, matching    */
/* bincount's always-float64 accumulator.                              */
/* ------------------------------------------------------------------ */

void scatter1_f64(double *out, const int64_t *idx, const double *v, int64_t m) {
    for (int64_t k = 0; k < m; k++) out[idx[k]] += v[k];
}

void scatter1_f32(float *out, const int64_t *idx, const float *v, int64_t m) {
    for (int64_t k = 0; k < m; k++) out[idx[k]] += v[k];
}

void scatter1_f32f64(double *out, const int64_t *idx, const float *v, int64_t m) {
    for (int64_t k = 0; k < m; k++) out[idx[k]] += (double)v[k];
}

void scatter3_f64(double *out, const int64_t *idx, const double *v, int64_t m) {
    for (int64_t k = 0; k < m; k++) {
        int64_t a = idx[k];
        out[3*a]   += v[3*k];
        out[3*a+1] += v[3*k+1];
        out[3*a+2] += v[3*k+2];
    }
}

void scatter3_f32(float *out, const int64_t *idx, const float *v, int64_t m) {
    for (int64_t k = 0; k < m; k++) {
        int64_t a = idx[k];
        out[3*a]   += v[3*k];
        out[3*a+1] += v[3*k+1];
        out[3*a+2] += v[3*k+2];
    }
}

void scatter3_f32f64(double *out, const int64_t *idx, const float *v, int64_t m) {
    for (int64_t k = 0; k < m; k++) {
        int64_t a = idx[k];
        out[3*a]   += (double)v[3*k];
        out[3*a+1] += (double)v[3*k+1];
        out[3*a+2] += (double)v[3*k+2];
    }
}

/* ------------------------------------------------------------------ */
/* Pair-force accumulation.                                            */
/* Fused half-list scatter: one pass over the CSR-ordered pair list;   */
/* the i side is segment-accumulated in registers while consecutive    */
/* rows share the same i (the list's native layout), the j side is     */
/* scattered inline.  Correct for any row order — unsorted i just      */
/* degenerates to length-1 segments.                                   */
/* ------------------------------------------------------------------ */

void acc_scaled_f64(double *forces, const int64_t *pi, const int64_t *pj,
                    int64_t m, const double *dr, const double *f_over_r) {
    int64_t k = 0;
    while (k < m) {
        int64_t a = pi[k];
        double sx = 0.0, sy = 0.0, sz = 0.0;
        do {
            double f = f_over_r[k];
            double wx = f * dr[3*k], wy = f * dr[3*k+1], wz = f * dr[3*k+2];
            sx += wx; sy += wy; sz += wz;
            int64_t b = pj[k];
            forces[3*b] -= wx; forces[3*b+1] -= wy; forces[3*b+2] -= wz;
            k++;
        } while (k < m && pi[k] == a);
        forces[3*a] += sx; forces[3*a+1] += sy; forces[3*a+2] += sz;
    }
}

void acc_scaled_f32(float *forces, const int64_t *pi, const int64_t *pj,
                    int64_t m, const float *dr, const float *f_over_r) {
    int64_t k = 0;
    while (k < m) {
        int64_t a = pi[k];
        float sx = 0.0f, sy = 0.0f, sz = 0.0f;
        do {
            float f = f_over_r[k];
            float wx = f * dr[3*k], wy = f * dr[3*k+1], wz = f * dr[3*k+2];
            sx += wx; sy += wy; sz += wz;
            int64_t b = pj[k];
            forces[3*b] -= wx; forces[3*b+1] -= wy; forces[3*b+2] -= wz;
            k++;
        } while (k < m && pi[k] == a);
        forces[3*a] += sx; forces[3*a+1] += sy; forces[3*a+2] += sz;
    }
}

/* MIXED policy: float32 per-pair products, float64 accumulation. */
void acc_scaled_f32f64(double *forces, const int64_t *pi, const int64_t *pj,
                       int64_t m, const float *dr, const float *f_over_r) {
    int64_t k = 0;
    while (k < m) {
        int64_t a = pi[k];
        double sx = 0.0, sy = 0.0, sz = 0.0;
        do {
            float f = f_over_r[k];
            float wx = f * dr[3*k], wy = f * dr[3*k+1], wz = f * dr[3*k+2];
            sx += (double)wx; sy += (double)wy; sz += (double)wz;
            int64_t b = pj[k];
            forces[3*b] -= (double)wx;
            forces[3*b+1] -= (double)wy;
            forces[3*b+2] -= (double)wz;
            k++;
        } while (k < m && pi[k] == a);
        forces[3*a] += sx; forces[3*a+1] += sy; forces[3*a+2] += sz;
    }
}

void acc_pair_f64(double *forces, const int64_t *pi, const int64_t *pj,
                  int64_t m, const double *fv) {
    int64_t k = 0;
    while (k < m) {
        int64_t a = pi[k];
        double sx = 0.0, sy = 0.0, sz = 0.0;
        do {
            double wx = fv[3*k], wy = fv[3*k+1], wz = fv[3*k+2];
            sx += wx; sy += wy; sz += wz;
            int64_t b = pj[k];
            forces[3*b] -= wx; forces[3*b+1] -= wy; forces[3*b+2] -= wz;
            k++;
        } while (k < m && pi[k] == a);
        forces[3*a] += sx; forces[3*a+1] += sy; forces[3*a+2] += sz;
    }
}

void acc_pair_f32(float *forces, const int64_t *pi, const int64_t *pj,
                  int64_t m, const float *fv) {
    int64_t k = 0;
    while (k < m) {
        int64_t a = pi[k];
        float sx = 0.0f, sy = 0.0f, sz = 0.0f;
        do {
            float wx = fv[3*k], wy = fv[3*k+1], wz = fv[3*k+2];
            sx += wx; sy += wy; sz += wz;
            int64_t b = pj[k];
            forces[3*b] -= wx; forces[3*b+1] -= wy; forces[3*b+2] -= wz;
            k++;
        } while (k < m && pi[k] == a);
        forces[3*a] += sx; forces[3*a+1] += sy; forces[3*a+2] += sz;
    }
}

void acc_pair_f32f64(double *forces, const int64_t *pi, const int64_t *pj,
                     int64_t m, const float *fv) {
    int64_t k = 0;
    while (k < m) {
        int64_t a = pi[k];
        double sx = 0.0, sy = 0.0, sz = 0.0;
        do {
            float wx = fv[3*k], wy = fv[3*k+1], wz = fv[3*k+2];
            sx += (double)wx; sy += (double)wy; sz += (double)wz;
            int64_t b = pj[k];
            forces[3*b] -= (double)wx;
            forces[3*b+1] -= (double)wy;
            forces[3*b+2] -= (double)wz;
            k++;
        } while (k < m && pi[k] == a);
        forces[3*a] += sx; forces[3*a+1] += sy; forces[3*a+2] += sz;
    }
}

/* ------------------------------------------------------------------ */
/* Pair geometry over the stored list: gather, minimum image, cutoff   */
/* filter.  Outputs are compressed in place; returns the survivor      */
/* count.  r2 replicates einsum's per-dtype summation order.           */
/* ------------------------------------------------------------------ */

int64_t pair_geom_f64(const double *pos, const int64_t *pi, const int64_t *pj,
                      int64_t m, const double *lengths, const uint8_t *periodic,
                      double rc2, int64_t *oi, int64_t *oj,
                      double *odr, double *orr) {
    double Lx = lengths[0], Ly = lengths[1], Lz = lengths[2];
    int px = periodic[0], py = periodic[1], pz = periodic[2];
    int64_t c = 0;
    for (int64_t k = 0; k < m; k++) {
        const double *a = pos + 3*pi[k];
        const double *b = pos + 3*pj[k];
        double dx = a[0] - b[0], dy = a[1] - b[1], dz = a[2] - b[2];
        if (px) dx -= rint(dx / Lx) * Lx;
        if (py) dy -= rint(dy / Ly) * Ly;
        if (pz) dz -= rint(dz / Lz) * Lz;
        double r2 = (dx*dx + dz*dz) + dy*dy;   /* einsum f64 order */
        if (r2 < rc2) {
            oi[c] = pi[k]; oj[c] = pj[k];
            odr[3*c] = dx; odr[3*c+1] = dy; odr[3*c+2] = dz;
            orr[c] = sqrt(r2);
            c++;
        }
    }
    return c;
}

int64_t pair_geom_f32(const float *pos, const int64_t *pi, const int64_t *pj,
                      int64_t m, const float *lengths, const uint8_t *periodic,
                      float rc2, int64_t *oi, int64_t *oj,
                      float *odr, float *orr) {
    float Lx = lengths[0], Ly = lengths[1], Lz = lengths[2];
    int px = periodic[0], py = periodic[1], pz = periodic[2];
    int64_t c = 0;
    for (int64_t k = 0; k < m; k++) {
        const float *a = pos + 3*pi[k];
        const float *b = pos + 3*pj[k];
        float dx = a[0] - b[0], dy = a[1] - b[1], dz = a[2] - b[2];
        if (px) dx -= rintf(dx / Lx) * Lx;
        if (py) dy -= rintf(dy / Ly) * Ly;
        if (pz) dz -= rintf(dz / Lz) * Lz;
        float r2 = (dx*dx + dy*dy) + dz*dz;    /* einsum f32 order */
        if (r2 < rc2) {
            oi[c] = pi[k]; oj[c] = pj[k];
            odr[3*c] = dx; odr[3*c+1] = dy; odr[3*c+2] = dz;
            orr[c] = sqrtf(r2);
            c++;
        }
    }
    return c;
}

/* ------------------------------------------------------------------ */
/* Link-cell half pair list.  Replicates cell_list_half_pairs in       */
/* repro.md.neighbor exactly: clamped binning, stable counting sort    */
/* (== argsort kind="stable"), triangular intra-cell pairs in sorted   */
/* slot order, the 13-offset forward stencil with Python-modulo        */
/* wrapping on periodic dims, and the same minimum-image/cutoff math   */
/* as pair_geom_f64 — so the emitted pair *set* and orientations match */
/* the numpy build and the caller's CSR lexsort yields identical       */
/* neighbor lists.  Writes at most `cap` pairs but keeps counting;     */
/* the caller grows its buffers and reruns when count > cap.           */
/* Returns -1 on allocation failure.                                   */
/* ------------------------------------------------------------------ */

static inline int64_t wrap_mod(int64_t x, int64_t n) {
    int64_t r = x % n;
    return r < 0 ? r + n : r;
}

int64_t cell_pairs_f64(const double *pos, int64_t n, const double *lengths,
                       const double *origin, const uint8_t *periodic, double rc,
                       int64_t *oi, int64_t *oj, int64_t cap) {
    int64_t n_cells[3];
    double cell_size[3];
    for (int d = 0; d < 3; d++) {
        int64_t nc = (int64_t)floor(lengths[d] / rc);
        n_cells[d] = nc < 1 ? 1 : nc;
        cell_size[d] = lengths[d] / (double)n_cells[d];
    }
    int64_t sy = n_cells[2], sx = n_cells[1] * n_cells[2];
    int64_t total_cells = n_cells[0] * n_cells[1] * n_cells[2];
    int64_t *coords = malloc((size_t)n * 3 * sizeof(int64_t));
    int64_t *flat = malloc((size_t)n * sizeof(int64_t));
    int64_t *counts = calloc((size_t)total_cells, sizeof(int64_t));
    int64_t *starts = malloc(((size_t)total_cells + 1) * sizeof(int64_t));
    int64_t *fill = malloc((size_t)total_cells * sizeof(int64_t));
    int64_t *order = malloc((size_t)n * sizeof(int64_t));
    if (!coords || !flat || !counts || !starts || !fill || !order) {
        free(coords); free(flat); free(counts);
        free(starts); free(fill); free(order);
        return -1;
    }
    for (int64_t a = 0; a < n; a++) {
        for (int d = 0; d < 3; d++) {
            int64_t c = (int64_t)floor((pos[3*a+d] - origin[d]) / cell_size[d]);
            if (c > n_cells[d] - 1) c = n_cells[d] - 1;
            if (c < 0) c = 0;
            coords[3*a+d] = c;
        }
        flat[a] = coords[3*a] * sx + coords[3*a+1] * sy + coords[3*a+2];
        counts[flat[a]]++;
    }
    starts[0] = 0;
    for (int64_t c = 0; c < total_cells; c++) starts[c+1] = starts[c] + counts[c];
    for (int64_t c = 0; c < total_cells; c++) fill[c] = starts[c];
    for (int64_t a = 0; a < n; a++) order[fill[flat[a]]++] = a;  /* stable */

    int px = periodic[0], py = periodic[1], pz = periodic[2];
    int any_periodic = px || py || pz;
    double Lx = lengths[0], Ly = lengths[1], Lz = lengths[2];
    double rc2 = rc * rc;
    int64_t count = 0;

    /* The 13 forward offsets of _HALF_STENCIL, in its order. */
    static const int off[13][3] = {
        {0,0,1}, {0,1,-1}, {0,1,0}, {0,1,1},
        {1,-1,-1}, {1,-1,0}, {1,-1,1}, {1,0,-1}, {1,0,0}, {1,0,1},
        {1,1,-1}, {1,1,0}, {1,1,1},
    };

#define EMIT(A, B)                                                         \
    do {                                                                   \
        double dx = pos[3*(A)] - pos[3*(B)];                               \
        double dy = pos[3*(A)+1] - pos[3*(B)+1];                           \
        double dz = pos[3*(A)+2] - pos[3*(B)+2];                           \
        if (any_periodic) {                                                \
            if (px) dx -= rint(dx / Lx) * Lx;                              \
            if (py) dy -= rint(dy / Ly) * Ly;                              \
            if (pz) dz -= rint(dz / Lz) * Lz;                              \
        }                                                                  \
        double r2 = (dx*dx + dz*dz) + dy*dy;                               \
        if (r2 < rc2) {                                                    \
            if (count < cap) { oi[count] = (A); oj[count] = (B); }         \
            count++;                                                       \
        }                                                                  \
    } while (0)

    /* Intra-cell triangular pairs over the stable sorted order. */
    for (int64_t c = 0; c < total_cells; c++) {
        int64_t s = starts[c], e = starts[c+1];
        for (int64_t k = s; k < e; k++) {
            int64_t a = order[k];
            for (int64_t l = k + 1; l < e; l++) EMIT(a, order[l]);
        }
    }
    /* Inter-cell pairs: each atom against the full population of its
       13 forward neighbor cells. */
    for (int64_t a = 0; a < n; a++) {
        int64_t cx = coords[3*a], cy = coords[3*a+1], cz = coords[3*a+2];
        for (int s = 0; s < 13; s++) {
            int64_t nx = cx + off[s][0];
            int64_t ny = cy + off[s][1];
            int64_t nz = cz + off[s][2];
            if (px) nx = wrap_mod(nx, n_cells[0]);
            else if (nx < 0 || nx >= n_cells[0]) continue;
            if (py) ny = wrap_mod(ny, n_cells[1]);
            else if (ny < 0 || ny >= n_cells[1]) continue;
            if (pz) nz = wrap_mod(nz, n_cells[2]);
            else if (nz < 0 || nz >= n_cells[2]) continue;
            int64_t c = nx * sx + ny * sy + nz;
            int64_t s0 = starts[c], e0 = starts[c+1];
            for (int64_t l = s0; l < e0; l++) EMIT(a, order[l]);
        }
    }
#undef EMIT
    free(coords); free(flat); free(counts);
    free(starts); free(fill); free(order);
    return count;
}
"""


def _find_compiler() -> str | None:
    for cc in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cc and shutil.which(cc):
            return cc
    return None


def _cache_dir() -> Path:
    """First writable cache location: env override, in-tree, tempdir."""
    override = os.environ.get(CACHE_ENV_VAR)
    candidates = (
        [Path(override)]
        if override
        else [
            Path(__file__).resolve().parent / ".cc_cache",
            Path(tempfile.gettempdir()) / f"repro-cc-cache-{os.getuid()}",
        ]
    )
    last_error: Exception | None = None
    for cand in candidates:
        try:
            cand.mkdir(parents=True, exist_ok=True)
            if os.access(cand, os.W_OK):
                return cand
        except OSError as exc:  # pragma: no cover - depends on fs perms
            last_error = exc
    raise RuntimeError(f"no writable compile-cache directory: {last_error}")


def _build_library() -> tuple[ctypes.CDLL, str]:
    """Compile (or reuse) the shared object; returns (lib, compiler id)."""
    cc = _find_compiler()
    if cc is None:
        raise RuntimeError("no C compiler (cc/gcc/clang) found on PATH")
    key_material = "\x00".join([_SOURCE, cc, *_CFLAGS])
    key = hashlib.sha256(key_material.encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"repro_kernels_{key}.so"
    if not so_path.exists():
        # Build under a unique name, publish with an atomic rename:
        # concurrent processes either see the finished library or none.
        with tempfile.TemporaryDirectory(dir=cache) as workdir:
            src = Path(workdir) / "kernels.c"
            src.write_text(_SOURCE)
            tmp_so = Path(workdir) / "kernels.so"
            proc = subprocess.run(
                [cc, *_CFLAGS, "-o", str(tmp_so), str(src), "-lm"],
                capture_output=True,
                text=True,
            )
            if proc.returncode != 0:
                raise RuntimeError(
                    f"{cc} failed (exit {proc.returncode}): "
                    f"{proc.stderr.strip()[:500]}"
                )
            os.replace(tmp_so, so_path)
    return ctypes.CDLL(str(so_path)), cc


def _ptr(dtype, writeable=False):
    flags = "C_CONTIGUOUS,WRITEABLE" if writeable else "C_CONTIGUOUS"
    return ndpointer(dtype=dtype, flags=flags)


class CcProvider:
    """ctypes bindings over the cached shared object.

    All entry points require C-contiguous arrays of the exact dtypes in
    their signatures; :class:`~repro.md.kernels.compiled.CompiledBackend`
    guarantees that before dispatching here.
    """

    kind = "cc"

    def __init__(self) -> None:
        lib, cc = _build_library()
        self._lib = lib
        try:
            banner = subprocess.run(
                [cc, "--version"], capture_output=True, text=True, timeout=10
            ).stdout.splitlines()
            self.version = banner[0].strip() if banner else cc
        except Exception:  # pragma: no cover - cosmetic only
            self.version = cc
        i64, f64, f32, u8 = np.int64, np.float64, np.float32, np.uint8
        c_i64, c_f64, c_f32 = ctypes.c_int64, ctypes.c_double, ctypes.c_float

        def bind(name, restype, argtypes):
            fn = getattr(lib, name)
            fn.restype = restype
            fn.argtypes = argtypes
            return fn

        self._scatter1 = {
            (f64, f64): bind(
                "scatter1_f64", None, [_ptr(f64, True), _ptr(i64), _ptr(f64), c_i64]
            ),
            (f32, f32): bind(
                "scatter1_f32", None, [_ptr(f32, True), _ptr(i64), _ptr(f32), c_i64]
            ),
            (f64, f32): bind(
                "scatter1_f32f64", None, [_ptr(f64, True), _ptr(i64), _ptr(f32), c_i64]
            ),
        }
        self._scatter3 = {
            (f64, f64): bind(
                "scatter3_f64", None, [_ptr(f64, True), _ptr(i64), _ptr(f64), c_i64]
            ),
            (f32, f32): bind(
                "scatter3_f32", None, [_ptr(f32, True), _ptr(i64), _ptr(f32), c_i64]
            ),
            (f64, f32): bind(
                "scatter3_f32f64", None, [_ptr(f64, True), _ptr(i64), _ptr(f32), c_i64]
            ),
        }
        acc_args = lambda ft, vt: [  # noqa: E731 - local signature helper
            _ptr(ft, True), _ptr(i64), _ptr(i64), c_i64, _ptr(vt), _ptr(vt)
        ]
        self._acc_scaled = {
            (f64, f64): bind("acc_scaled_f64", None, acc_args(f64, f64)),
            (f32, f32): bind("acc_scaled_f32", None, acc_args(f32, f32)),
            (f64, f32): bind("acc_scaled_f32f64", None, acc_args(f64, f32)),
        }
        pair_args = lambda ft, vt: [  # noqa: E731
            _ptr(ft, True), _ptr(i64), _ptr(i64), c_i64, _ptr(vt)
        ]
        self._acc_pair = {
            (f64, f64): bind("acc_pair_f64", None, pair_args(f64, f64)),
            (f32, f32): bind("acc_pair_f32", None, pair_args(f32, f32)),
            (f64, f32): bind("acc_pair_f32f64", None, pair_args(f64, f32)),
        }
        geom_args = lambda ft, c_f: [  # noqa: E731
            _ptr(ft), _ptr(i64), _ptr(i64), c_i64, _ptr(ft), _ptr(u8), c_f,
            _ptr(i64, True), _ptr(i64, True), _ptr(ft, True), _ptr(ft, True),
        ]
        self._pair_geom = {
            f64: bind("pair_geom_f64", c_i64, geom_args(f64, c_f64)),
            f32: bind("pair_geom_f32", c_i64, geom_args(f32, c_f32)),
        }
        self._cell_pairs = bind(
            "cell_pairs_f64",
            c_i64,
            [
                _ptr(f64), c_i64, _ptr(f64), _ptr(f64), _ptr(u8), c_f64,
                _ptr(i64, True), _ptr(i64, True), c_i64,
            ],
        )

    # -- uniform provider API (shared with the numba provider) ---------
    @staticmethod
    def _key(out, values):
        return (out.dtype.type, values.dtype.type)

    def supports(self, out, values) -> bool:
        return self._key(out, values) in self._scatter1

    def scatter1(self, out, idx, v) -> None:
        self._scatter1[self._key(out, v)](out, idx, v, len(idx))

    def scatter3(self, out, idx, v) -> None:
        self._scatter3[self._key(out, v)](out, idx, v, len(idx))

    def acc_scaled(self, forces, i, j, dr, f_over_r) -> None:
        self._acc_scaled[self._key(forces, f_over_r)](
            forces, i, j, len(i), dr, f_over_r
        )

    def acc_pair(self, forces, i, j, fv) -> None:
        self._acc_pair[self._key(forces, fv)](forces, i, j, len(i), fv)

    def pair_geom(self, pos, pi, pj, lengths, periodic, rc2, oi, oj, odr, orr):
        fn = self._pair_geom[pos.dtype.type]
        # The cutoff compare runs in the position dtype: numpy (NEP 50)
        # casts the weak python-float rc^2 down to float32 for float32
        # operands, so the C side receives it pre-cast via c_float.
        return int(fn(pos, pi, pj, len(pi), lengths, periodic, rc2, oi, oj, odr, orr))

    def cell_pairs(self, pos, lengths, origin, periodic, rc, oi, oj):
        return int(
            self._cell_pairs(
                pos, len(pos), lengths, origin, periodic, rc, oi, oj, len(oi)
            )
        )


def make_provider() -> CcProvider:
    """Build/load the shared object and return the bound provider."""
    return CcProvider()
