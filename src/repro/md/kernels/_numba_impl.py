"""Numba provider for the ``compiled`` kernel backend.

This module imports ``numba`` at the top level on purpose: the
``compiled`` backend's provider resolution imports it inside a
``try`` block, so an absent/broken numba surfaces as a diagnostic
reason, not a crash.  JIT problems (e.g. an LLVM/numpy version
mismatch) are caught the same way — every function is exercised on
tiny inputs by the backend's smoke test before the provider is
accepted, so a compile failure at that point demotes the backend to
its numpy fallback instead of failing mid-simulation.

The numerical contract is identical to the C provider in
``_cc_impl`` (see its module docstring): exact ``Box.minimum_image``
operation sequence, einsum's per-dtype r² summation order, and
input-order scatter accumulation with float32 terms widened to the
float64 accumulator under the MIXED policy.  ``cache=True`` persists
the compiled machine code next to this file so warm processes skip
recompilation; ``fastmath`` stays off — reassociation or FMA
contraction would break bitwise parity with the numpy backends.
"""

from __future__ import annotations

import numpy as np

import numba
from numba import njit

__all__ = ["make_provider"]


@njit(cache=True)
def _scatter1(out, idx, v):
    for k in range(idx.shape[0]):
        out[idx[k]] += v[k]


@njit(cache=True)
def _scatter3(out, idx, v):
    for k in range(idx.shape[0]):
        a = idx[k]
        out[a, 0] += v[k, 0]
        out[a, 1] += v[k, 1]
        out[a, 2] += v[k, 2]


@njit(cache=True)
def _acc_scaled(forces, pi, pj, dr, f_over_r):
    m = pi.shape[0]
    k = 0
    while k < m:
        a = pi[k]
        sx = 0.0
        sy = 0.0
        sz = 0.0
        while True:
            f = f_over_r[k]
            wx = f * dr[k, 0]
            wy = f * dr[k, 1]
            wz = f * dr[k, 2]
            sx += wx
            sy += wy
            sz += wz
            b = pj[k]
            forces[b, 0] -= wx
            forces[b, 1] -= wy
            forces[b, 2] -= wz
            k += 1
            if k >= m or pi[k] != a:
                break
        forces[a, 0] += sx
        forces[a, 1] += sy
        forces[a, 2] += sz


@njit(cache=True)
def _acc_pair(forces, pi, pj, fv):
    m = pi.shape[0]
    k = 0
    while k < m:
        a = pi[k]
        sx = 0.0
        sy = 0.0
        sz = 0.0
        while True:
            wx = fv[k, 0]
            wy = fv[k, 1]
            wz = fv[k, 2]
            sx += wx
            sy += wy
            sz += wz
            b = pj[k]
            forces[b, 0] -= wx
            forces[b, 1] -= wy
            forces[b, 2] -= wz
            k += 1
            if k >= m or pi[k] != a:
                break
        forces[a, 0] += sx
        forces[a, 1] += sy
        forces[a, 2] += sz


@njit(cache=True)
def _pair_geom_f64(pos, pi, pj, lengths, periodic, rc2, oi, oj, odr, orr):
    Lx, Ly, Lz = lengths[0], lengths[1], lengths[2]
    px, py, pz = periodic[0], periodic[1], periodic[2]
    c = 0
    for k in range(pi.shape[0]):
        a = pi[k]
        b = pj[k]
        dx = pos[a, 0] - pos[b, 0]
        dy = pos[a, 1] - pos[b, 1]
        dz = pos[a, 2] - pos[b, 2]
        if px:
            dx -= np.rint(dx / Lx) * Lx
        if py:
            dy -= np.rint(dy / Ly) * Ly
        if pz:
            dz -= np.rint(dz / Lz) * Lz
        r2 = (dx * dx + dz * dz) + dy * dy  # einsum f64 order
        if r2 < rc2:
            oi[c] = a
            oj[c] = b
            odr[c, 0] = dx
            odr[c, 1] = dy
            odr[c, 2] = dz
            orr[c] = np.sqrt(r2)
            c += 1
    return c


@njit(cache=True)
def _pair_geom_f32(pos, pi, pj, lengths, periodic, rc2, oi, oj, odr, orr):
    Lx, Ly, Lz = lengths[0], lengths[1], lengths[2]
    px, py, pz = periodic[0], periodic[1], periodic[2]
    c = 0
    for k in range(pi.shape[0]):
        a = pi[k]
        b = pj[k]
        dx = pos[a, 0] - pos[b, 0]
        dy = pos[a, 1] - pos[b, 1]
        dz = pos[a, 2] - pos[b, 2]
        if px:
            dx -= np.rint(dx / Lx) * Lx
        if py:
            dy -= np.rint(dy / Ly) * Ly
        if pz:
            dz -= np.rint(dz / Lz) * Lz
        r2 = (dx * dx + dy * dy) + dz * dz  # einsum f32 order
        if r2 < rc2:
            oi[c] = a
            oj[c] = b
            odr[c, 0] = dx
            odr[c, 1] = dy
            odr[c, 2] = dz
            orr[c] = np.sqrt(r2)
            c += 1
    return c


@njit(cache=True)
def _cell_pairs(pos, lengths, origin, periodic, rc, oi, oj):
    n = pos.shape[0]
    cap = oi.shape[0]
    n_cells = np.empty(3, np.int64)
    cell_size = np.empty(3, np.float64)
    for d in range(3):
        nc = np.int64(np.floor(lengths[d] / rc))
        n_cells[d] = nc if nc > 1 else 1
        cell_size[d] = lengths[d] / n_cells[d]
    sy = n_cells[2]
    sx = n_cells[1] * n_cells[2]
    total_cells = n_cells[0] * n_cells[1] * n_cells[2]

    coords = np.empty((n, 3), np.int64)
    flat = np.empty(n, np.int64)
    counts = np.zeros(total_cells, np.int64)
    for a in range(n):
        for d in range(3):
            c = np.int64(np.floor((pos[a, d] - origin[d]) / cell_size[d]))
            if c > n_cells[d] - 1:
                c = n_cells[d] - 1
            if c < 0:
                c = np.int64(0)
            coords[a, d] = c
        flat[a] = coords[a, 0] * sx + coords[a, 1] * sy + coords[a, 2]
        counts[flat[a]] += 1
    starts = np.empty(total_cells + 1, np.int64)
    starts[0] = 0
    for c in range(total_cells):
        starts[c + 1] = starts[c] + counts[c]
    fill = starts[:total_cells].copy()
    order = np.empty(n, np.int64)
    for a in range(n):  # stable counting sort == argsort kind="stable"
        order[fill[flat[a]]] = a
        fill[flat[a]] += 1

    px, py, pz = periodic[0], periodic[1], periodic[2]
    any_periodic = bool(px) or bool(py) or bool(pz)
    Lx, Ly, Lz = lengths[0], lengths[1], lengths[2]
    rc2 = rc * rc
    count = 0

    # The 13 forward offsets of _HALF_STENCIL, in its order.
    off = np.array(
        [
            (0, 0, 1), (0, 1, -1), (0, 1, 0), (0, 1, 1),
            (1, -1, -1), (1, -1, 0), (1, -1, 1),
            (1, 0, -1), (1, 0, 0), (1, 0, 1),
            (1, 1, -1), (1, 1, 0), (1, 1, 1),
        ],
        dtype=np.int64,
    )

    # Intra-cell triangular pairs over the stable sorted order.
    for c in range(total_cells):
        s = starts[c]
        e = starts[c + 1]
        for k in range(s, e):
            a = order[k]
            for idx in range(k + 1, e):
                b = order[idx]
                dx = pos[a, 0] - pos[b, 0]
                dy = pos[a, 1] - pos[b, 1]
                dz = pos[a, 2] - pos[b, 2]
                if any_periodic:
                    if px:
                        dx -= np.rint(dx / Lx) * Lx
                    if py:
                        dy -= np.rint(dy / Ly) * Ly
                    if pz:
                        dz -= np.rint(dz / Lz) * Lz
                r2 = (dx * dx + dz * dz) + dy * dy
                if r2 < rc2:
                    if count < cap:
                        oi[count] = a
                        oj[count] = b
                    count += 1

    # Inter-cell pairs: each atom against its 13 forward neighbor cells.
    for a in range(n):
        cx = coords[a, 0]
        cy = coords[a, 1]
        cz = coords[a, 2]
        for s in range(13):
            nx = cx + off[s, 0]
            ny = cy + off[s, 1]
            nz = cz + off[s, 2]
            if px:
                nx = ((nx % n_cells[0]) + n_cells[0]) % n_cells[0]
            elif nx < 0 or nx >= n_cells[0]:
                continue
            if py:
                ny = ((ny % n_cells[1]) + n_cells[1]) % n_cells[1]
            elif ny < 0 or ny >= n_cells[1]:
                continue
            if pz:
                nz = ((nz % n_cells[2]) + n_cells[2]) % n_cells[2]
            elif nz < 0 or nz >= n_cells[2]:
                continue
            cell = nx * sx + ny * sy + nz
            for idx in range(starts[cell], starts[cell + 1]):
                b = order[idx]
                dx = pos[a, 0] - pos[b, 0]
                dy = pos[a, 1] - pos[b, 1]
                dz = pos[a, 2] - pos[b, 2]
                if any_periodic:
                    if px:
                        dx -= np.rint(dx / Lx) * Lx
                    if py:
                        dy -= np.rint(dy / Ly) * Ly
                    if pz:
                        dz -= np.rint(dz / Lz) * Lz
                r2 = (dx * dx + dz * dz) + dy * dy
                if r2 < rc2:
                    if count < cap:
                        oi[count] = a
                        oj[count] = b
                    count += 1
    return count


class NumbaProvider:
    """Uniform provider API over the ``@njit`` kernels.

    Dtype dispatch is numba's: each function specializes per argument
    dtype on first call.  Segment accumulators are float64 literals, so
    float32 inputs accumulate in float64 (at least as accurate as the
    numpy backends' bincount; bounded by the per-precision oracle
    tiers).
    """

    kind = "numba"

    def __init__(self) -> None:
        self.version = numba.__version__
        self._supported = {
            (np.float64, np.float64),
            (np.float32, np.float32),
            (np.float64, np.float32),
        }

    def supports(self, out, values) -> bool:
        return (out.dtype.type, values.dtype.type) in self._supported

    def scatter1(self, out, idx, v) -> None:
        _scatter1(out, idx, v)

    def scatter3(self, out, idx, v) -> None:
        _scatter3(out, idx, v)

    def acc_scaled(self, forces, i, j, dr, f_over_r) -> None:
        _acc_scaled(forces, i, j, dr, f_over_r)

    def acc_pair(self, forces, i, j, fv) -> None:
        _acc_pair(forces, i, j, fv)

    def pair_geom(self, pos, pi, pj, lengths, periodic, rc2, oi, oj, odr, orr):
        fn = _pair_geom_f32 if pos.dtype == np.float32 else _pair_geom_f64
        # rc2 arrives pre-cast to the position dtype (NEP 50 semantics).
        return int(fn(pos, pi, pj, lengths, periodic, rc2, oi, oj, odr, orr))

    def cell_pairs(self, pos, lengths, origin, periodic, rc, oi, oj):
        return int(_cell_pairs(pos, lengths, origin, periodic, rc, oi, oj))


def make_provider() -> NumbaProvider:
    return NumbaProvider()
