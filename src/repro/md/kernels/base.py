"""Kernel-backend interface for the force-evaluation hot loop.

The paper's characterization (Table 1, Figure 3) shows the Pair and
Neigh tasks dominating MD wall-clock on every commodity platform, so
this engine isolates exactly the three primitives those tasks spend
their time in behind a small strategy interface:

* gathering fresh pair geometry from the stored neighbor list
  (:meth:`KernelBackend.current_pairs`),
* scattering per-pair vectors back onto per-atom arrays
  (:meth:`KernelBackend.accumulate_pair_forces`), and
* scattering arbitrary per-pair scalars/vectors (EAM electron
  densities, granular contact torques — :meth:`KernelBackend.scatter_add`).

Backends must be bit-compatible in *math* (same formulas, same pair
set) but are free to reorder summations and reuse scratch storage; the
backend-equivalence tests pin the reference and optimized backends
together to 1e-12 on forces, energy and virial for every pair style.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

import numpy as np

from repro.md.precision import DOUBLE_POLICY, PrecisionPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.md.atoms import AtomSystem
    from repro.md.neighbor import NeighborList

__all__ = ["KernelBackend"]


class KernelBackend(abc.ABC):
    """Strategy object providing the Pair-task inner-loop primitives."""

    #: Registry key (``numpy_ref``, ``numpy_fast``, ...).
    name: str = "abstract"

    #: Precision policy the backend evaluates under, installed through
    #: :meth:`set_policy` by the simulation (or a parallel worker).
    #: Backends are free to ignore it — ``numpy_ref`` does, staying a
    #: pure float64 oracle in every mode.
    policy: PrecisionPolicy = DOUBLE_POLICY

    def set_policy(self, policy: PrecisionPolicy) -> None:
        """Install the precision policy (may invalidate scratch)."""
        self.policy = policy

    @abc.abstractmethod
    def current_pairs(
        self,
        system: "AtomSystem",
        neighbors: "NeighborList",
        cutoff: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Pairs currently within ``cutoff`` with fresh geometry.

        Returns ``(i, j, dr, r)`` exactly like
        :meth:`repro.md.neighbor.NeighborList.current_pairs`.
        """

    @abc.abstractmethod
    def scatter_add(
        self, out: np.ndarray, index: np.ndarray, values: np.ndarray
    ) -> None:
        """``out[index[k]] += values[k]`` for 1-D or ``(M, 3)`` values."""

    def scatter_add_sorted(
        self, out: np.ndarray, index: np.ndarray, values: np.ndarray
    ) -> None:
        """:meth:`scatter_add` for a *non-decreasing* ``index``.

        The parallel engine's directed rows are stored sorted by owning
        atom, which lets a backend collapse the scatter into a segmented
        reduction over contiguous runs.  The summation order within each
        segment must stay input order (bitwise-compatible with the
        generic scatter); this default just delegates.
        """
        self.scatter_add(out, index, values)

    @abc.abstractmethod
    def accumulate_pair_forces(
        self,
        forces: np.ndarray,
        i: np.ndarray,
        j: np.ndarray,
        fvec: np.ndarray,
    ) -> None:
        """Scatter ``+fvec`` onto rows ``i`` and ``-fvec`` onto rows ``j``."""

    def accumulate_scaled_pair_forces(
        self,
        forces: np.ndarray,
        i: np.ndarray,
        j: np.ndarray,
        dr: np.ndarray,
        f_over_r: np.ndarray,
    ) -> None:
        """Scatter ``f_over_r[k] * dr[k]`` onto ``i``/``j`` rows.

        This is the analytic-potential hot path (``f_vec = f_over_r *
        dr``); keeping it a distinct primitive lets a backend fuse the
        scaling into the scatter instead of materializing the ``(M, 3)``
        force-vector array.
        """
        self.accumulate_pair_forces(forces, i, j, f_over_r[:, None] * dr)

    def neighbor_pairs(
        self, positions: np.ndarray, box, rc: float
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Optional native half-pair build for the Neigh task.

        A backend that can bin-and-filter faster than the numpy
        cell-list build returns the ``(i, j)`` half pairs here; the
        result must reproduce :func:`repro.md.neighbor.
        cell_list_half_pairs` exactly — same pair set *and* the same
        orientations, since downstream CSR packing canonicalizes order
        but not which atom is ``i``.  Returning ``None`` (the default)
        keeps the caller on the numpy path, which is also the escape
        hatch for inputs a backend does not cover (e.g. float32
        positions under the SINGLE policy).
        """
        return None

    def count_pairs_within(
        self,
        positions: np.ndarray,
        box,
        pair_i: np.ndarray,
        pair_j: np.ndarray,
        rc: float,
    ) -> int | None:
        """Optional native count of stored pairs within ``rc``.

        Used by the neighbor list's per-build statistics (the Table-2
        neighbors-per-atom figure), which otherwise re-derives the full
        minimum-image geometry in numpy just to count.  The count must
        be identical to ``r2 < rc*rc`` over the numpy geometry (the
        compiled provider reuses its bitwise ``pair_geom`` kernel).
        ``None`` (the default) keeps the caller on the numpy path.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"
