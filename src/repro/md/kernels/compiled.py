"""The ``compiled`` kernel backend: native-code Pair/Neigh hot loops.

BENCH_scaling shows the serial neighbor-list build and the pair
accumulate dominating wall-clock on the paper's LJ benchmark; both are
scatter/filter loops numpy cannot fuse.  This backend runs them as
native code through one of two interchangeable *providers*:

``numba``
    ``@njit(cache=True)`` kernels (:mod:`repro.md.kernels._numba_impl`)
    — preferred when numba is importable and its JIT passes the smoke
    test below.
``cc``
    A C translation unit compiled on first use with the system C
    compiler and bound via ``ctypes``
    (:mod:`repro.md.kernels._cc_impl`) — covers machines without numba.

Resolution is lazy (first instantiation), ordered numba → cc, and can
be forced with ``REPRO_COMPILED_PROVIDER=numba|cc|none``.  Every
candidate must pass a numerical smoke test that exercises each entry
point against the numpy backends — an import error, a JIT failure or a
miscompiled kernel all demote the backend cleanly: instantiating
:class:`CompiledBackend` raises :class:`BackendUnavailableError` with
the collected reasons, and :func:`repro.md.kernels.get_backend` turns
that into a one-time warning plus a ``numpy_fast`` fallback, so
``REPRO_KERNEL_BACKEND=compiled`` is always safe to set.

The backend subclasses :class:`NumpyFastBackend`: any call whose dtype
combination or memory layout the provider does not cover falls through
to the numpy implementation, so correctness never depends on the
native path being taken.
"""

from __future__ import annotations

import os

import numpy as np

from repro.md.kernels.numpy_fast import NumpyFastBackend
from repro.md.precision import PrecisionPolicy

__all__ = [
    "BackendUnavailableError",
    "CompiledBackend",
    "PROVIDER_ENV_VAR",
    "compiled_available",
    "compiled_diagnostic",
    "provider_info",
    "resolve_provider",
]

#: Forces provider selection: ``numba``, ``cc``, or ``none`` (disable).
PROVIDER_ENV_VAR = "REPRO_COMPILED_PROVIDER"

#: Cached resolution: (env key, provider or None, reason when None).
_resolution: tuple[tuple[str, str], object | None, str | None] | None = None


class BackendUnavailableError(RuntimeError):
    """Raised when no compiled provider works; carries the reasons why."""


def _env_key() -> tuple[str, str]:
    return (
        os.environ.get(PROVIDER_ENV_VAR, ""),
        os.environ.get("REPRO_COMPILED_CACHE", ""),
    )


def resolve_provider(refresh: bool = False):
    """Resolve (and cache) the compiled provider.

    Returns ``(provider, None)`` on success or ``(None, reason)`` when
    every candidate failed.  The cache is keyed on the controlling
    environment variables, so tests that monkeypatch them see a fresh
    resolution without an explicit reset.
    """
    global _resolution
    key = _env_key()
    if not refresh and _resolution is not None and _resolution[0] == key:
        return _resolution[1], _resolution[2]
    provider, reason = _resolve()
    _resolution = (key, provider, reason)
    return provider, reason


def _resolve():
    preference = os.environ.get(PROVIDER_ENV_VAR, "").strip().lower()
    if preference in ("none", "off", "0"):
        return None, f"disabled via {PROVIDER_ENV_VAR}={preference}"
    order = [preference] if preference in ("numba", "cc") else ["numba", "cc"]
    failures = []
    for kind in order:
        try:
            if kind == "numba":
                from repro.md.kernels import _numba_impl as impl
            else:
                from repro.md.kernels import _cc_impl as impl
            provider = impl.make_provider()
            _smoke_test(provider)
            return provider, None
        except ImportError:
            failures.append(f"{kind}: numba not installed")
        except Exception as exc:  # JIT breakage, no compiler, bad codegen
            failures.append(f"{kind}: {type(exc).__name__}: {exc}")
    return None, "; ".join(failures)


def _smoke_test(provider) -> None:
    """Run every provider entry point against the numpy backends.

    This is what turns "numba imports" into "numba *works*": a JIT or
    codegen failure on any kernel disqualifies the provider before it
    can ever touch simulation state.  The float64 scatter paths are
    checked *bitwise* (the parallel-determinism contract); float32 and
    mixed paths to their precision tiers.
    """
    from repro.md.box import Box
    from repro.md.neighbor import cell_list_half_pairs

    rng = np.random.default_rng(1234)
    n, m = 40, 300
    idx = np.sort(rng.integers(0, n, m))
    jdx = rng.integers(0, n, m)

    # Scatter: float64 bitwise vs bincount, mixed widening vs bincount.
    v64 = rng.normal(size=m)
    out = np.zeros(n)
    provider.scatter1(out, idx, v64)
    if not np.array_equal(out, np.bincount(idx, weights=v64, minlength=n)):
        raise AssertionError("scatter1 f64 deviates from bincount")
    v32 = v64.astype(np.float32)
    out = np.zeros(n)
    provider.scatter1(out, idx, v32)
    expect = np.bincount(idx, weights=v32, minlength=n)
    if not np.array_equal(out, expect):
        raise AssertionError("scatter1 mixed deviates from bincount")
    out32 = np.zeros(n, np.float32)
    provider.scatter1(out32, idx, v32)
    np.testing.assert_allclose(out32, expect, rtol=1e-5, atol=1e-6)

    w64 = rng.normal(size=(m, 3))
    out = np.zeros((n, 3))
    provider.scatter3(out, idx, w64)
    for d in range(3):
        if not np.array_equal(
            out[:, d], np.bincount(idx, weights=w64[:, d], minlength=n)
        ):
            raise AssertionError("scatter3 f64 deviates from bincount")

    # Fused pair accumulation vs the numpy_fast formulation.  The i/j
    # sides interleave differently (register segments + inline scatter),
    # so this is summation-order-tolerant, not bitwise.
    dr = rng.normal(size=(m, 3))
    f_over_r = rng.normal(size=m)
    got = np.zeros((n, 3))
    provider.acc_scaled(got, idx, jdx, dr, f_over_r)
    ref_scaled = np.zeros((n, 3))
    NumpyFastBackend().accumulate_scaled_pair_forces(
        ref_scaled, idx, jdx, dr, f_over_r
    )
    np.testing.assert_allclose(got, ref_scaled, rtol=1e-12, atol=1e-12)
    got = np.zeros((n, 3))
    provider.acc_pair(got, idx, jdx, dr)
    ref_pair = np.zeros((n, 3))
    NumpyFastBackend().accumulate_pair_forces(ref_pair, idx, jdx, dr)
    np.testing.assert_allclose(got, ref_pair, rtol=1e-12, atol=1e-12)
    got64 = np.zeros((n, 3))
    provider.acc_scaled(
        got64, idx, jdx, dr.astype(np.float32), f_over_r.astype(np.float32)
    )
    np.testing.assert_allclose(
        got64, _mixed_ref(n, idx, jdx, dr, f_over_r), rtol=1e-5, atol=1e-5
    )
    got32 = np.zeros((n, 3), np.float32)
    provider.acc_scaled(
        got32, idx, jdx, dr.astype(np.float32), f_over_r.astype(np.float32)
    )
    np.testing.assert_allclose(got32, ref_scaled, rtol=1e-4, atol=1e-4)

    # Pair geometry: bitwise vs the numpy_fast op sequence (float64).
    box = Box([7.0, 8.0, 9.0], periodic=(True, True, False))
    pos = rng.uniform(0, 1, (n, 3)) * box.lengths
    pi = np.repeat(np.arange(n, dtype=np.int64), n)[: 4 * m]
    pj = np.tile(np.arange(n, dtype=np.int64), n)[: 4 * m]
    keep = pi != pj
    pi, pj = pi[keep], pj[keep]
    rc = 2.5
    oi = np.empty(len(pi), np.int64)
    oj = np.empty(len(pi), np.int64)
    odr = np.empty((len(pi), 3))
    orr = np.empty(len(pi))
    c = provider.pair_geom(
        pos,
        pi,
        pj,
        box.lengths,
        np.ascontiguousarray(box.periodic, dtype=np.uint8),
        rc * rc,
        oi,
        oj,
        odr,
        orr,
    )
    d = box.minimum_image(pos[pi] - pos[pj])
    r2 = np.einsum("ij,ij->i", d, d)
    k = np.flatnonzero(r2 < rc * rc)
    if not (
        c == len(k)
        and np.array_equal(oi[:c], pi[k])
        and np.array_equal(oj[:c], pj[k])
        and np.array_equal(odr[:c], d[k])
        and np.array_equal(orr[:c], np.sqrt(r2[k]))
    ):
        raise AssertionError("pair_geom f64 deviates from minimum-image oracle")

    # Cell-list build: identical pair set *and* orientations vs numpy.
    box = Box([9.0, 9.5, 10.0])
    pos = np.ascontiguousarray(rng.uniform(0, 1, (120, 3)) * box.lengths)
    ref_i, ref_j = cell_list_half_pairs(pos, box, 2.2)
    cap = max(4 * len(ref_i), 64)
    oi = np.empty(cap, np.int64)
    oj = np.empty(cap, np.int64)
    count = provider.cell_pairs(
        pos,
        box.lengths,
        np.ascontiguousarray(box.origin, dtype=np.float64),
        np.ascontiguousarray(box.periodic, dtype=np.uint8),
        2.2,
        oi,
        oj,
    )
    got_order = np.lexsort((oj[:count], oi[:count]))
    ref_order = np.lexsort((ref_j, ref_i))
    if not (
        count == len(ref_i)
        and np.array_equal(oi[:count][got_order], ref_i[ref_order])
        and np.array_equal(oj[:count][got_order], ref_j[ref_order])
    ):
        raise AssertionError("cell_pairs deviates from cell_list_half_pairs")


def _mixed_ref(n, i, j, dr, f_over_r):
    """numpy_fast MIXED accumulation: f32 products, f64 bincount."""
    out = np.zeros((n, 3))
    w32 = (f_over_r.astype(np.float32)[:, None] * dr.astype(np.float32))
    for d in range(3):
        out[:, d] += np.bincount(i, weights=w32[:, d], minlength=n)
        out[:, d] -= np.bincount(j, weights=w32[:, d], minlength=n)
    return out


def compiled_available() -> bool:
    """True when some native provider resolved (numba or cc)."""
    return resolve_provider()[0] is not None


def compiled_diagnostic() -> str:
    """One-line availability status for error messages and bench JSON."""
    provider, reason = resolve_provider()
    if provider is None:
        return f"unavailable: {reason}"
    return f"ok (provider={provider.kind} {provider.version})"


def provider_info() -> dict | None:
    """``{"kind", "version"}`` of the active provider, or ``None``."""
    provider, _ = resolve_provider()
    if provider is None:
        return None
    return {"kind": provider.kind, "version": str(provider.version)}


class CompiledBackend(NumpyFastBackend):
    """Native-code backend for pair forces and neighbor-list builds.

    Subclasses :class:`NumpyFastBackend` so every primitive has a
    correct numpy fallback: the native path is taken only when the
    dtype combination and memory layout are covered by the provider
    (float64, float32, and the MIXED float32-values-into-float64-
    accumulator case; C-contiguous arrays).  In particular the SINGLE
    -policy neighbor-list build (float32 positions) stays on the numpy
    path — pair sets near the cutoff are decided in the storage dtype
    and the compiled build only replicates the float64 semantics
    bitwise.
    """

    name = "compiled"

    def __init__(self) -> None:
        provider, reason = resolve_provider()
        if provider is None:
            raise BackendUnavailableError(reason)
        super().__init__()
        self._impl = provider
        # Pair-geometry output scratch (grow-only, storage-dtype typed).
        self._pg_capacity = 0
        self._pg_i = np.empty(0, np.int64)
        self._pg_j = np.empty(0, np.int64)
        self._pg_dr = np.empty((0, 3))
        self._pg_r = np.empty(0)
        # Neighbor-build output scratch + size hint from the last build.
        self._nb_i = np.empty(0, np.int64)
        self._nb_j = np.empty(0, np.int64)
        self._nb_hint = 0

    def set_policy(self, policy: PrecisionPolicy) -> None:
        if policy.storage_dtype != self.policy.storage_dtype:
            self._pg_capacity = 0
        super().set_policy(policy)

    # ------------------------------------------------------------------
    # Pair geometry
    # ------------------------------------------------------------------
    def _geom_scratch(self, m: int):
        dtype = self.policy.storage_dtype
        if m > self._pg_capacity or self._pg_dr.dtype != dtype:
            capacity = max(m, int(1.5 * self._pg_capacity), 1024)
            self._pg_i = np.empty(capacity, np.int64)
            self._pg_j = np.empty(capacity, np.int64)
            self._pg_dr = np.empty((capacity, 3), dtype)
            self._pg_r = np.empty(capacity, dtype)
            self._pg_capacity = capacity
        return self._pg_i, self._pg_j, self._pg_dr, self._pg_r

    def current_pairs(self, system, neighbors, cutoff=None):
        if neighbors._positions_at_build is None:
            raise RuntimeError("neighbor list has never been built")
        rc = neighbors.cutoff if cutoff is None else float(cutoff)
        pair_i, pair_j = neighbors.pair_i, neighbors.pair_j
        m = len(pair_i)
        compute_dtype = self.policy.compute_dtype
        if m == 0:
            empty = np.empty(0, dtype=np.int64)
            return (
                empty,
                empty,
                np.empty((0, 3), dtype=compute_dtype),
                np.empty(0, dtype=compute_dtype),
            )
        geometry_dtype = self.policy.storage_dtype
        positions = np.ascontiguousarray(
            system.positions.astype(geometry_dtype, copy=False)
        )
        lengths = np.ascontiguousarray(
            system.box.lengths.astype(geometry_dtype, copy=False)
        )
        periodic = np.ascontiguousarray(system.box.periodic, dtype=np.uint8)
        oi, oj, odr, orr = self._geom_scratch(m)
        # NEP 50: the cutoff compare runs in the geometry dtype with the
        # python-float rc^2 cast down, so pre-cast it here.
        rc2 = geometry_dtype.type(rc * rc)
        c = self._impl.pair_geom(
            positions,
            np.ascontiguousarray(pair_i, dtype=np.int64),
            np.ascontiguousarray(pair_j, dtype=np.int64),
            lengths,
            periodic,
            rc2,
            oi,
            oj,
            odr,
            orr,
        )
        # Compressed copies: scratch is reused next call and must not
        # leak out (same contract as numpy_fast).
        return (
            oi[:c].copy(),
            oj[:c].copy(),
            odr[:c].astype(compute_dtype, copy=True),
            orr[:c].astype(compute_dtype, copy=True),
        )

    # ------------------------------------------------------------------
    # Scatter / accumulate
    # ------------------------------------------------------------------
    def _scatter_via_impl(self, out, index, values) -> bool:
        if not (
            isinstance(out, np.ndarray)
            and out.flags.c_contiguous
            and self._impl.supports(out, values)
        ):
            return False
        idx = np.ascontiguousarray(index, dtype=np.int64)
        if values.ndim == 1 and out.ndim == 1:
            self._impl.scatter1(out, idx, np.ascontiguousarray(values))
            return True
        if (
            values.ndim == 2
            and out.ndim == 2
            and values.shape[1] == 3
            and out.shape[1] == 3
        ):
            self._impl.scatter3(out, idx, np.ascontiguousarray(values))
            return True
        return False

    def scatter_add(self, out, index, values):
        values = np.asarray(values)
        if not self._scatter_via_impl(out, index, values):
            super().scatter_add(out, index, values)

    def scatter_add_sorted(self, out, index, values):
        # The serial input-order loop is valid (and bitwise-stable)
        # whether or not the index is sorted, so both entry points
        # share one implementation.
        values = np.asarray(values)
        if not self._scatter_via_impl(out, index, values):
            super().scatter_add_sorted(out, index, values)

    def accumulate_pair_forces(self, forces, i, j, fvec):
        fvec = np.asarray(fvec)
        if (
            len(i) == 0
            or not forces.flags.c_contiguous
            or fvec.ndim != 2
            or fvec.shape[1] != 3
            or not self._impl.supports(forces, fvec)
        ):
            return super().accumulate_pair_forces(forces, i, j, fvec)
        self._impl.acc_pair(
            forces,
            np.ascontiguousarray(i, dtype=np.int64),
            np.ascontiguousarray(j, dtype=np.int64),
            np.ascontiguousarray(fvec),
        )

    def accumulate_scaled_pair_forces(self, forces, i, j, dr, f_over_r):
        dr = np.asarray(dr)
        f_over_r = np.asarray(f_over_r)
        if (
            len(i) == 0
            or not forces.flags.c_contiguous
            or dr.dtype != f_over_r.dtype
            or not self._impl.supports(forces, f_over_r)
        ):
            return super().accumulate_scaled_pair_forces(forces, i, j, dr, f_over_r)
        self._impl.acc_scaled(
            forces,
            np.ascontiguousarray(i, dtype=np.int64),
            np.ascontiguousarray(j, dtype=np.int64),
            np.ascontiguousarray(dr),
            np.ascontiguousarray(f_over_r),
        )

    # ------------------------------------------------------------------
    # Neighbor-list build
    # ------------------------------------------------------------------
    def neighbor_pairs(self, positions, box, rc):
        """Compiled link-cell half-pair build (float64 positions only).

        Returns ``(i, j)`` bitwise-identical (as a set with matching
        orientations) to :func:`repro.md.neighbor.cell_list_half_pairs`,
        or ``None`` to let the caller run the numpy path.
        """
        positions = np.asarray(positions)
        if positions.dtype != np.float64 or positions.ndim != 2:
            return None
        positions = np.ascontiguousarray(positions)
        n = len(positions)
        if n == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        lengths = np.ascontiguousarray(box.lengths, dtype=np.float64)
        origin = np.ascontiguousarray(box.origin, dtype=np.float64)
        periodic = np.ascontiguousarray(box.periodic, dtype=np.uint8)
        volume = float(np.prod(lengths))
        # Half-pair estimate (4pi/6 * rc^3 * n^2 / V), padded; the build
        # reports the true count so one retry always suffices.
        estimate = 16 * n
        if volume > 0:
            estimate += int(2.6 * float(rc) ** 3 * n * n / volume)
        capacity = max(self._nb_hint, estimate, 1024)
        while True:
            if capacity > len(self._nb_i):
                self._nb_i = np.empty(capacity, np.int64)
                self._nb_j = np.empty(capacity, np.int64)
            count = self._impl.cell_pairs(
                positions, lengths, origin, periodic, float(rc),
                self._nb_i, self._nb_j,
            )
            if count < 0:  # allocation failure inside the native build
                return None
            if count <= len(self._nb_i):
                break
            capacity = count
        self._nb_hint = count + (count >> 2)
        return self._nb_i[:count].copy(), self._nb_j[:count].copy()

    def count_pairs_within(self, positions, box, pair_i, pair_j, rc):
        """Count stored pairs within ``rc`` via the bitwise pair-geom
        kernel (float64 only), sparing the stats pass its numpy gather."""
        positions = np.asarray(positions)
        if (
            positions.dtype != np.float64
            or positions.ndim != 2
            or np.dtype(self.policy.storage_dtype) != np.float64
        ):
            return None
        m = len(pair_i)
        if m == 0:
            return 0
        oi, oj, odr, orr = self._geom_scratch(m)
        count = self._impl.pair_geom(
            np.ascontiguousarray(positions),
            np.ascontiguousarray(pair_i, dtype=np.int64),
            np.ascontiguousarray(pair_j, dtype=np.int64),
            np.ascontiguousarray(box.lengths, dtype=np.float64),
            np.ascontiguousarray(box.periodic, dtype=np.uint8),
            np.float64(rc * rc),
            oi,
            oj,
            odr,
            orr,
        )
        return int(count)

    @classmethod
    def diagnostic(cls) -> str:
        return compiled_diagnostic()
