"""Optimized numpy kernel backend: bincount scatter + scratch reuse.

Three things make this backend faster than the reference on the Pair
task without changing any physics:

* **Segmented accumulation.**  ``np.add.at`` resolves index collisions
  element by element and is notoriously slow; ``np.bincount`` performs
  the same scatter-add as a single C pass over the pair list.  Because
  the neighbor list stores its pairs in CSR order (sorted by ``i``),
  the ``i``-side bincount also walks the output array monotonically.
* **Preallocated scratch.**  The per-step ``dr`` / ``r2`` intermediates
  are the largest allocations in the hot loop (``~pairs x 3`` doubles
  each step).  They are kept in grow-only scratch buffers reused across
  steps, so steady-state force evaluation allocates only the compressed
  output arrays.
* **Fused cutoff masking.**  Geometry, the squared-distance reduction
  and the cutoff test run over the stored list once, then a single
  ``flatnonzero`` compress produces the surviving pairs.

The arithmetic (minimum image, distance, cutoff compare) is expressed
with the exact same operations as the reference backend, so the pair
set and per-pair values match bitwise; only summation *order* inside
the scatter differs, which the oracle tests bound at 1e-12.
"""

from __future__ import annotations

import numpy as np

from repro.md.kernels.base import KernelBackend
from repro.md.precision import PrecisionPolicy

__all__ = ["NumpyFastBackend"]


class NumpyFastBackend(KernelBackend):
    """CSR-aware backend using ``np.bincount`` segmented reduction.

    Honors the installed :class:`~repro.md.precision.PrecisionPolicy`:
    pair geometry (minimum image, distances, cutoff compare) runs in
    the storage dtype, per-pair terms are handed out in the compute
    dtype, and accumulation follows the accumulate dtype — under MIXED
    the float32 per-pair weights land in the float64 force array
    through ``np.bincount``, whose internal accumulator is always
    float64.
    """

    name = "numpy_fast"

    def __init__(self) -> None:
        self._capacity = 0
        self._dr = np.empty((0, 3))
        self._tmp = np.empty((0, 3))
        self._r2 = np.empty(0)

    def set_policy(self, policy: PrecisionPolicy) -> None:
        if policy.storage_dtype != self.policy.storage_dtype:
            # Scratch is typed per geometry (storage) dtype; drop it.
            self._capacity = 0
        self.policy = policy

    # ------------------------------------------------------------------
    def _scratch(self, m: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Grow-only scratch views of length ``m`` (amortized O(1))."""
        if m > self._capacity:
            capacity = max(m, int(1.5 * self._capacity), 1024)
            dtype = self.policy.storage_dtype
            self._dr = np.empty((capacity, 3), dtype=dtype)
            self._tmp = np.empty((capacity, 3), dtype=dtype)
            self._r2 = np.empty(capacity, dtype=dtype)
            self._capacity = capacity
        return self._dr[:m], self._tmp[:m], self._r2[:m]

    # ------------------------------------------------------------------
    def current_pairs(self, system, neighbors, cutoff=None):
        if neighbors._positions_at_build is None:
            raise RuntimeError("neighbor list has never been built")
        rc = neighbors.cutoff if cutoff is None else float(cutoff)
        pair_i, pair_j = neighbors.pair_i, neighbors.pair_j
        m = len(pair_i)
        compute_dtype = self.policy.compute_dtype
        if m == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty((0, 3), dtype=compute_dtype), np.empty(
                0, dtype=compute_dtype
            )

        # Geometry — the minimum image, squared distance and cutoff
        # compare — runs in the *storage* dtype: under MIXED the pair
        # set is decided in float64 and therefore matches the float64
        # oracle exactly (no cutoff-boundary flips); only the surviving
        # per-pair dr/r are rounded to the compute dtype for the
        # potential math.  SINGLE stores float32, so its whole hot loop
        # (gather included) runs at half the memory traffic.
        geometry_dtype = self.policy.storage_dtype
        positions = system.positions.astype(geometry_dtype, copy=False)
        box = system.box
        lengths = box.lengths.astype(geometry_dtype, copy=False)
        dr, tmp, r2 = self._scratch(m)
        # dr = x_i - x_j, gathered without temporary index arrays.
        # mode="clip" skips np.take's bounds-check buffering; indices come
        # straight from the build and are always in range.
        np.take(positions, pair_i, axis=0, out=dr, mode="clip")
        np.take(positions, pair_j, axis=0, out=tmp, mode="clip")
        np.subtract(dr, tmp, out=dr)
        # In-place minimum image: same operation sequence as
        # Box.minimum_image (round-half-even), so results match bitwise.
        np.divide(dr, lengths, out=tmp)
        np.rint(tmp, out=tmp)
        if not box.periodic.all():
            tmp[:, ~box.periodic] = 0.0
        np.multiply(tmp, lengths, out=tmp)
        np.subtract(dr, tmp, out=dr)

        np.einsum("ij,ij->i", dr, dr, out=r2)
        keep = np.flatnonzero(r2 < rc * rc)
        # The compressed outputs are fresh arrays: the scratch above is
        # reused on the next call and must not leak out.
        dr_out = dr[keep]
        r_out = np.sqrt(r2[keep])
        if geometry_dtype != compute_dtype:
            dr_out = dr_out.astype(compute_dtype)
            r_out = r_out.astype(compute_dtype)
        return pair_i[keep], pair_j[keep], dr_out, r_out

    # ------------------------------------------------------------------
    def scatter_add(self, out, index, values):
        values = np.asarray(values)
        n = out.shape[0]
        if values.ndim == 1:
            out += np.bincount(index, weights=values, minlength=n)
        else:
            for d in range(values.shape[1]):
                out[:, d] += np.bincount(index, weights=values[:, d], minlength=n)

    def scatter_add_sorted(self, out, index, values):
        m = len(index)
        if m == 0:
            return
        values = np.asarray(values)
        if values.dtype != out.dtype:
            # reduceat accumulates in the *values* dtype; under MIXED
            # (f32 values, f64 output) that would defeat the float64
            # accumulation guarantee — bincount accumulates f64 always.
            self.scatter_add(out, index, values)
            return
        # Segment boundaries of the contiguous index runs; reduceat sums
        # each run sequentially (input order), matching bincount bitwise.
        boundaries = np.flatnonzero(index[1:] != index[:-1]) + 1
        starts = np.concatenate([[0], boundaries]).astype(np.intp)
        rows = index[starts]
        if values.ndim == 1:
            out[rows] += np.add.reduceat(values, starts)
        else:
            for d in range(values.shape[1]):
                out[rows, d] += np.add.reduceat(values[:, d], starts)

    def accumulate_pair_forces(self, forces, i, j, fvec):
        n = forces.shape[0]
        for d in range(3):
            w = fvec[:, d]
            forces[:, d] += np.bincount(i, weights=w, minlength=n)
            forces[:, d] -= np.bincount(j, weights=w, minlength=n)

    def accumulate_scaled_pair_forces(self, forces, i, j, dr, f_over_r):
        m = len(i)
        if m == 0:
            return
        n = forces.shape[0]
        w = self._scratch(m)[2]
        if w.dtype != f_over_r.dtype:
            # A caller handing f64 per-pair terms to an f32-compute
            # backend (or vice versa): do the multiply out of scratch.
            w = np.empty(m, dtype=np.result_type(f_over_r, dr))
        if w.dtype == forces.dtype and not (i[1:] < i[:-1]).any():
            # CSR order (i non-decreasing, the list's native layout): the
            # i-side scatter collapses to a segmented reduction over
            # contiguous runs, cheaper than a second bincount.
            boundaries = np.flatnonzero(i[1:] != i[:-1]) + 1
            starts = np.concatenate([[0], boundaries]).astype(np.intp)
            rows = i[starts]
            for d in range(3):
                np.multiply(f_over_r, dr[:, d], out=w)
                forces[rows, d] += np.add.reduceat(w, starts)
                forces[:, d] -= np.bincount(j, weights=w, minlength=n)
        else:
            for d in range(3):
                np.multiply(f_over_r, dr[:, d], out=w)
                forces[:, d] += np.bincount(i, weights=w, minlength=n)
                forces[:, d] -= np.bincount(j, weights=w, minlength=n)
