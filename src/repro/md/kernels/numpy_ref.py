"""Reference numpy kernel backend (the correctness oracle).

This backend reproduces the engine's original force-kernel behavior
verbatim: pair geometry through
:meth:`repro.md.neighbor.NeighborList.current_pairs` and scatter
accumulation through ``np.add.at`` / ``np.subtract.at``.  It is kept
unoptimized on purpose — the ``numpy_fast`` backend is tested against it
pair-for-pair, and the micro-benchmark harness reports speedups relative
to it.
"""

from __future__ import annotations

import numpy as np

from repro.md.kernels.base import KernelBackend

__all__ = ["NumpyRefBackend"]


class NumpyRefBackend(KernelBackend):
    """Unordered-scatter backend built on ``np.ufunc.at``."""

    name = "numpy_ref"

    def current_pairs(self, system, neighbors, cutoff=None):
        return neighbors.current_pairs(system, cutoff)

    def scatter_add(self, out, index, values):
        np.add.at(out, index, values)

    def accumulate_pair_forces(self, forces, i, j, fvec):
        np.add.at(forces, i, fvec)
        np.subtract.at(forces, j, fvec)
