"""Reference numpy kernel backend (the correctness oracle).

This backend reproduces the engine's original force-kernel behavior
verbatim: pair geometry through
:meth:`repro.md.neighbor.NeighborList.current_pairs` and scatter
accumulation through ``np.add.at`` / ``np.subtract.at``.  It is kept
unoptimized on purpose — the ``numpy_fast`` backend is tested against it
pair-for-pair, and the micro-benchmark harness reports speedups relative
to it.
"""

from __future__ import annotations

import numpy as np

from repro.md.kernels.base import KernelBackend

__all__ = ["NumpyRefBackend"]


class NumpyRefBackend(KernelBackend):
    """Unordered-scatter backend built on ``np.ufunc.at``.

    The reference backend ignores the installed precision policy and
    always evaluates in float64 — it *is* the oracle the reduced-
    precision modes are measured against.  When the simulation stores
    float32 state the geometry is upcast before any arithmetic.
    """

    name = "numpy_ref"

    def set_policy(self, policy) -> None:
        # Deliberately ignored: the oracle evaluates float64 in every
        # precision mode, so `self.policy` stays DOUBLE_POLICY.
        pass

    def current_pairs(self, system, neighbors, cutoff=None):
        i, j, dr, r = neighbors.current_pairs(system, cutoff)
        if dr.dtype != np.float64:
            dr = dr.astype(np.float64)
            r = r.astype(np.float64)
        return i, j, dr, r

    def scatter_add(self, out, index, values):
        np.add.at(out, index, values)

    def accumulate_pair_forces(self, forces, i, j, fvec):
        np.add.at(forces, i, fvec)
        np.subtract.at(forces, j, fvec)
