"""Span-tracing decorator around any kernel backend.

The Pair task dominates MD wall-clock (Table 1), so seeing *inside* it
matters: this wrapper records one ``"kernel"``-category span per
backend primitive — pair-geometry gather, force accumulation, generic
scatter — around whatever backend the simulation selected.  It is only
installed when tracing is enabled, so the disabled-tracer hot path runs
the raw backend with zero indirection.
"""

from __future__ import annotations

from repro.md.kernels.base import KernelBackend
from repro.observability.tracer import Tracer

__all__ = ["TracingBackend"]


class TracingBackend(KernelBackend):
    """Delegating backend that wraps each primitive in a tracer span."""

    def __init__(self, inner: KernelBackend, tracer: Tracer) -> None:
        if isinstance(inner, TracingBackend):
            inner = inner.inner
        #: The real backend doing the work (scratch buffers live there).
        self.inner = inner
        self.tracer = tracer
        self.name = f"{inner.name}+trace"

    @property
    def policy(self):
        return self.inner.policy

    def set_policy(self, policy) -> None:
        self.inner.set_policy(policy)

    def current_pairs(self, system, neighbors, cutoff=None):
        with self.tracer.span("kernel.current_pairs", "kernel"):
            return self.inner.current_pairs(system, neighbors, cutoff)

    def scatter_add(self, out, index, values):
        with self.tracer.span("kernel.scatter_add", "kernel"):
            self.inner.scatter_add(out, index, values)

    def scatter_add_sorted(self, out, index, values):
        with self.tracer.span("kernel.scatter_add", "kernel"):
            self.inner.scatter_add_sorted(out, index, values)

    def neighbor_pairs(self, positions, box, rc):
        # No span: the neighbor module already wraps the whole build in
        # its "neigh.cell_pairs" span; the delegation just keeps a
        # traced compiled backend on its native build path.
        return self.inner.neighbor_pairs(positions, box, rc)

    def count_pairs_within(self, positions, box, pair_i, pair_j, rc):
        # Same reasoning as neighbor_pairs: covered by the build span.
        return self.inner.count_pairs_within(positions, box, pair_i, pair_j, rc)

    def accumulate_pair_forces(self, forces, i, j, fvec):
        with self.tracer.span("kernel.accumulate", "kernel"):
            self.inner.accumulate_pair_forces(forces, i, j, fvec)

    def accumulate_scaled_pair_forces(self, forces, i, j, dr, f_over_r):
        with self.tracer.span("kernel.accumulate", "kernel"):
            self.inner.accumulate_scaled_pair_forces(forces, i, j, dr, f_over_r)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TracingBackend inner={self.inner!r}>"
