"""Long-range electrostatics solvers (Table 1's "Kspace" task).

Only the Rhodopsin benchmark computes long-range non-bonded forces; it
uses PPPM with a relative force-error threshold of ``1e-4`` (Table 2),
which Section 7 of the paper then sweeps down to ``1e-7``.

* :mod:`repro.md.kspace.ewald` — classic Ewald summation (O(N^(3/2)));
* :mod:`repro.md.kspace.pppm` — particle-particle particle-mesh with
  B-spline charge assignment and a 3-D FFT (O(N log N));
* :mod:`repro.md.kspace.error` — the LAMMPS accuracy machinery that maps
  a relative error threshold to the Ewald splitting parameter and the
  PPPM grid size (the knob behind Figures 10-14).
"""

from repro.md.kspace.error import (
    estimate_alpha,
    estimate_kspace_error,
    estimate_real_space_error,
    select_grid,
)
from repro.md.kspace.ewald import EwaldSummation
from repro.md.kspace.pppm import PPPM

__all__ = [
    "EwaldSummation",
    "PPPM",
    "estimate_alpha",
    "estimate_real_space_error",
    "estimate_kspace_error",
    "select_grid",
]
