"""Shared scaffolding for the k-space solvers.

Both Ewald and PPPM compute the same three corrections on top of their
reciprocal-space sums:

* the *self-energy* ``-C alpha/sqrt(pi) * sum(q^2)`` every split Coulomb
  sum over-counts,
* the *excluded-pair* correction: the reciprocal sum includes every pair,
  so intramolecular pairs masked out of the real-space pair potential
  must have their ``erf``-complement subtracted,
* charge-neutrality validation (a net charge makes the k=0 term diverge).
"""

from __future__ import annotations

import abc

import numpy as np
from scipy.special import erf

from repro.md.atoms import AtomSystem
from repro.md.potentials.base import ForceResult
from repro.md.precision import DOUBLE_POLICY, PrecisionPolicy
from repro.observability.tracer import NULL_TRACER

__all__ = ["KSpaceSolver"]

# Python float so float32 compute paths are not promoted under NEP 50.
_TWO_OVER_SQRT_PI = float(2.0 / np.sqrt(np.pi))


class KSpaceSolver(abc.ABC):
    """Base class for long-range Coulomb solvers.

    Parameters
    ----------
    alpha:
        Ewald splitting parameter (must match the short-range pair
        potential's ``alpha``).
    coulomb_constant:
        The ``q q / r`` prefactor (1 in reduced units).
    exclusions:
        ``(M, 2)`` intramolecular pairs excluded from the real-space pair
        potential whose k-space double counting must be corrected.
    """

    def __init__(
        self,
        alpha: float,
        coulomb_constant: float = 1.0,
        exclusions: np.ndarray | None = None,
    ) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = float(alpha)
        self.coulomb_constant = float(coulomb_constant)
        self.exclusions = (
            None
            if exclusions is None or len(exclusions) == 0
            else np.asarray(exclusions, dtype=np.int64).reshape(-1, 2)
        )
        #: Span sink for solver phases; the shared no-op unless the
        #: owning :class:`~repro.md.simulation.Simulation` attaches one.
        self.tracer = NULL_TRACER
        #: Precision policy the solver evaluates under (installed by the
        #: owning Simulation; full float64 by default).
        self.policy: PrecisionPolicy = DOUBLE_POLICY

    # ------------------------------------------------------------------
    def check_neutrality(self, system: AtomSystem, tol: float = 1e-8) -> None:
        net = float(np.sum(system.charges))
        scale = max(float(np.sum(np.abs(system.charges))), 1.0)
        if abs(net) > tol * scale:
            raise ValueError(
                f"k-space solvers need a charge-neutral system; net charge {net:g}"
            )

    def self_energy(self, system: AtomSystem) -> float:
        qsqsum = float(np.sum(system.charges**2))
        return -self.coulomb_constant * self.alpha / np.sqrt(np.pi) * qsqsum

    def excluded_pair_correction(self, system: AtomSystem) -> ForceResult:
        """Subtract the reciprocal-space contribution of excluded pairs.

        For each excluded pair the k-space sum silently added the full
        ``erf(alpha r)/r`` interaction; we subtract energy and force here.
        """
        if self.exclusions is None:
            return ForceResult()
        i = self.exclusions[:, 0]
        j = self.exclusions[:, 1]
        ct = self.policy.compute_dtype
        positions = system.positions.astype(ct, copy=False)
        charges = system.charges.astype(ct, copy=False)
        dr = system.box.minimum_image(positions[i] - positions[j])
        r2 = np.einsum("ij,ij->i", dr, dr)
        r = np.sqrt(r2)
        qq = self.coulomb_constant * charges[i] * charges[j]
        ar = self.alpha * r
        erf_ar = erf(ar)
        energy = -qq * erf_ar / r
        # E = -C qq erf(ar)/r ; f_over_r = -dE/dr / r
        f_over_r = qq * (
            _TWO_OVER_SQRT_PI * self.alpha * np.exp(-ar * ar) / r2 - erf_ar / (r2 * r)
        )
        fvec = f_over_r[:, None] * dr
        np.add.at(system.forces, i, fvec)
        np.subtract.at(system.forces, j, fvec)
        virial = float(np.sum(f_over_r * r2, dtype=np.float64))
        return ForceResult(
            float(np.sum(energy, dtype=np.float64)), virial, len(i)
        )

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def compute(self, system: AtomSystem) -> ForceResult:
        """Accumulate long-range forces into ``system.forces``."""

    def energy_only(self, system: AtomSystem) -> float:
        saved = system.forces.copy()
        system.forces[:] = 0.0
        result = self.compute(system)
        system.forces[:] = saved
        return result.energy
