"""Accuracy-driven parameter selection for Ewald/PPPM.

This is the machinery behind the paper's Section 7 sensitivity study:
LAMMPS converts the user's *relative* force-error threshold (``1e-4`` …
``1e-7`` in the paper) into (a) the Ewald splitting parameter ``alpha``
(``g_ewald``) and (b) the FFT grid dimensions, growing the grid until
the estimated k-space RMS force error drops below the threshold.  The
formulas below follow LAMMPS' ``pppm.cpp`` (Deserno & Holm error
estimates with the published ``acons`` coefficient table) so that the
grid-size growth with threshold — the driver of the k-space runtime in
Figures 10-14 — matches the real code's.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "ACONS",
    "estimate_alpha",
    "estimate_real_space_error",
    "estimate_kspace_error",
    "good_fft_size",
    "select_grid",
]

#: Deserno & Holm coefficients as tabulated in LAMMPS ``pppm.cpp``,
#: indexed ``ACONS[order][m]`` for assignment orders 1..7.
ACONS: dict[int, tuple[float, ...]] = {
    1: (2.0 / 3.0,),
    2: (1.0 / 50.0, 5.0 / 294.0),
    3: (1.0 / 588.0, 7.0 / 1440.0, 21.0 / 3872.0),
    4: (1.0 / 4320.0, 3.0 / 1936.0, 7601.0 / 2271360.0, 143.0 / 28800.0),
    5: (
        1.0 / 23232.0,
        7601.0 / 13628160.0,
        143.0 / 69120.0,
        517231.0 / 106536960.0,
        106640677.0 / 11737571328.0,
    ),
    6: (
        691.0 / 68140800.0,
        13.0 / 57600.0,
        47021.0 / 35512320.0,
        9694607.0 / 2095994880.0,
        733191589.0 / 59609088000.0,
        326190917.0 / 11700633600.0,
    ),
    7: (
        1.0 / 345600.0,
        3617.0 / 35512320.0,
        745739.0 / 838397952.0,
        56399353.0 / 12773376000.0,
        25091609.0 / 1560084480.0,
        1755948832039.0 / 36229939200000.0,
        4887769399.0 / 37838389248.0,
    ),
}


def estimate_alpha(accuracy_relative: float, cutoff: float) -> float:
    """Ewald splitting parameter from the relative accuracy.

    LAMMPS' closed-form fallback ``g_ewald = (1.35 - 0.15 log(acc)) / rc``
    — alpha grows slowly as the threshold tightens, pushing work into
    k-space (which is why lowering the threshold inflates the grid).
    """
    if not 0.0 < accuracy_relative < 1.0:
        raise ValueError("accuracy must be in (0, 1)")
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    return (1.35 - 0.15 * math.log(accuracy_relative)) / cutoff


def estimate_real_space_error(
    alpha: float, cutoff: float, n_atoms: int, qsqsum: float, volume: float
) -> float:
    """Kolafa-Perram RMS force error of the truncated real-space sum."""
    if min(alpha, cutoff, n_atoms, qsqsum, volume) <= 0:
        raise ValueError("all arguments must be positive")
    return (
        2.0
        * qsqsum
        * math.sqrt(1.0 / (n_atoms * cutoff * volume))
        * math.exp(-(alpha * cutoff) ** 2)
    )


def estimate_kspace_error(
    h: float,
    prd: float,
    alpha: float,
    n_atoms: int,
    qsqsum: float,
    order: int,
) -> float:
    """Deserno-Holm RMS force error of the mesh (ik-differentiated) sum.

    ``h`` is the grid spacing along a dimension of physical length
    ``prd``.  Follows ``PPPM::estimate_ik_error``.
    """
    if order not in ACONS:
        raise ValueError(f"unsupported assignment order {order}; have 1..7")
    acons = ACONS[order]
    ha = h * alpha
    total = sum(c * ha ** (2 * m) for m, c in enumerate(acons))
    return (
        qsqsum
        * ha**order
        * math.sqrt(alpha * prd * math.sqrt(2.0 * math.pi) * total / n_atoms)
        / (prd * prd)
    )


def good_fft_size(n: int) -> int:
    """Smallest integer >= n whose factors are all 2, 3 or 5."""
    if n < 1:
        return 1
    candidate = n
    while True:
        m = candidate
        for f in (2, 3, 5):
            while m % f == 0:
                m //= f
        if m == 1:
            return candidate
        candidate += 1


def select_grid(
    accuracy_relative: float,
    box_lengths: np.ndarray,
    cutoff: float,
    n_atoms: int,
    qsqsum: float,
    order: int = 5,
    two_charge_force: float = 1.0,
) -> tuple[float, tuple[int, int, int]]:
    """Choose ``(alpha, (nx, ny, nz))`` meeting the error threshold.

    Per-dimension grids grow until the estimated k-space error is below
    ``accuracy_relative * two_charge_force`` (LAMMPS' absolute accuracy),
    then get rounded up to FFT-friendly sizes.
    """
    box_lengths = np.asarray(box_lengths, dtype=float)
    alpha = estimate_alpha(accuracy_relative, cutoff)
    accuracy_abs = accuracy_relative * two_charge_force
    dims = []
    for prd in box_lengths:
        n = 2
        while True:
            err = estimate_kspace_error(prd / n, prd, alpha, n_atoms, qsqsum, order)
            if err <= accuracy_abs:
                break
            n += 1
            if n > 16384:  # safety net; never reached for sane inputs
                break
        dims.append(good_fft_size(n))
    return alpha, (dims[0], dims[1], dims[2])
