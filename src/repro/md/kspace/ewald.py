"""Classic Ewald summation (``kspace_style ewald``).

The reciprocal-space half of the Ewald split::

    E = (2 pi C / V) sum_{k != 0} exp(-k^2 / 4 alpha^2) / k^2 |S(k)|^2
    S(k) = sum_j q_j exp(i k . r_j)

plus the self-energy and excluded-pair corrections from the base class.
This is the exact (spectrally converged) reference the PPPM mesh solver
is validated against, and the O(N^(3/2)) alternative the paper mentions
alongside PPPM in Section 2.
"""

from __future__ import annotations

import math

import numpy as np

from repro.md.atoms import AtomSystem
from repro.md.kspace.base import KSpaceSolver
from repro.md.potentials.base import ForceResult

__all__ = ["EwaldSummation"]


class EwaldSummation(KSpaceSolver):
    """Reciprocal-space Ewald sum over an explicit k-vector shell.

    Parameters
    ----------
    alpha:
        Splitting parameter shared with the real-space pair potential.
    accuracy:
        Relative accuracy used to bound the k-shell: vectors with
        ``exp(-k^2/4 alpha^2) < accuracy^2`` are dropped.
    kmax:
        Optional hard cap of integer k-indices per dimension (mostly for
        tests); derived from ``accuracy`` when omitted.
    """

    def __init__(
        self,
        alpha: float,
        coulomb_constant: float = 1.0,
        *,
        accuracy: float = 1e-6,
        kmax: int | None = None,
        exclusions: np.ndarray | None = None,
    ) -> None:
        super().__init__(alpha, coulomb_constant, exclusions)
        if not 0 < accuracy < 1:
            raise ValueError("accuracy must be in (0, 1)")
        self.accuracy = float(accuracy)
        self.kmax = kmax
        self._kvecs: np.ndarray | None = None
        self._box_lengths: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _setup_kvectors(self, box_lengths: np.ndarray) -> None:
        """Enumerate the half-space of k-vectors inside the cutoff shell."""
        # Gaussian factor negligible beyond k_cut = 2 alpha sqrt(-ln acc).
        k_cut = 2.0 * self.alpha * math.sqrt(-math.log(self.accuracy))
        two_pi = 2.0 * math.pi
        if self.kmax is not None:
            maxes = np.array([self.kmax] * 3)
        else:
            maxes = np.ceil(k_cut * box_lengths / two_pi).astype(int)
        maxes = np.maximum(maxes, 1)
        nx = np.arange(-maxes[0], maxes[0] + 1)
        ny = np.arange(-maxes[1], maxes[1] + 1)
        nz = np.arange(-maxes[2], maxes[2] + 1)
        grid = np.array(np.meshgrid(nx, ny, nz, indexing="ij")).reshape(3, -1).T
        # Half space: keep one of each {k, -k} pair, drop k = 0.
        keep = (
            (grid[:, 0] > 0)
            | ((grid[:, 0] == 0) & (grid[:, 1] > 0))
            | ((grid[:, 0] == 0) & (grid[:, 1] == 0) & (grid[:, 2] > 0))
        )
        grid = grid[keep]
        kvecs = two_pi * grid / box_lengths
        k2 = np.einsum("ij,ij->i", kvecs, kvecs)
        if self.kmax is None:
            kvecs = kvecs[k2 <= k_cut * k_cut]
        self._kvecs = kvecs
        self._box_lengths = box_lengths.copy()

    @property
    def n_kvectors(self) -> int:
        """Number of k-vectors in the active half-space shell."""
        return 0 if self._kvecs is None else len(self._kvecs)

    # ------------------------------------------------------------------
    def compute(self, system: AtomSystem) -> ForceResult:
        self.check_neutrality(system)
        box_lengths = system.box.lengths
        if self._kvecs is None or not np.allclose(self._box_lengths, box_lengths):
            self._setup_kvectors(box_lengths)
        assert self._kvecs is not None
        if len(self._kvecs) == 0:
            return ForceResult(self.self_energy(system), 0.0, 0)

        tracer = self.tracer
        volume = system.box.volume
        # The k-shell is enumerated and cached in float64; every per-step
        # array below runs in the policy's compute dtype.
        ct = self.policy.compute_dtype
        kvecs = self._kvecs.astype(ct, copy=False)
        k2 = np.einsum("ij,ij->i", kvecs, kvecs)
        gauss = np.exp(-k2 / (4.0 * self.alpha**2)) / k2

        with tracer.span("kspace.structure_factor", "kspace"):
            phases = system.positions.astype(ct, copy=False) @ kvecs.T  # (N, K)
            cos_p = np.cos(phases)
            sin_p = np.sin(phases)
            q = system.charges.astype(ct, copy=False)
            re_s = q @ cos_p  # (K,)
            im_s = q @ sin_p

        prefactor = 4.0 * math.pi * self.coulomb_constant / volume
        # Half-space sum: each k stands for the +/- pair, hence factor 2.
        energy = (
            float(np.sum(gauss * (re_s**2 + im_s**2), dtype=np.float64))
            * prefactor / 2.0 * 2.0
        )

        # F_j = 2 * prefactor * q_j sum_k (k/k^2) e^{-k^2/4a^2}
        #       [sin(k.r_j) Re S - cos(k.r_j) Im S]
        with tracer.span("kspace.forces", "kspace"):
            weight = (sin_p * re_s[None, :] - cos_p * im_s[None, :]) * gauss[None, :]
            forces = 2.0 * prefactor * q[:, None] * (weight @ kvecs)
            system.forces += forces

        # Reciprocal-space virial for an isotropic system: the textbook
        # trace formula sum_k (3 - k^2/(2 alpha^2) - 3 k^2/k^2 ...) reduces
        # to E_k terms; we use W = sum_j r_j . f_j form instead, which is
        # correct for the periodic sum only up to a constant — the
        # isotropic Ewald virial trace:
        trace = gauss * (re_s**2 + im_s**2) * (
            3.0 - k2 * (2.0 / (4.0 * self.alpha**2) + 2.0 / k2)
        )
        # sum of diagonal
        virial = float(np.sum(trace, dtype=np.float64)) * prefactor / 3.0 * 3.0
        # (kept simple: an isotropic estimate; see tests for validation
        # against the energy-volume derivative.)

        result = ForceResult(energy + self.self_energy(system), virial, len(kvecs))
        with tracer.span("kspace.corrections", "kspace"):
            result += self.excluded_pair_correction(system)
        return result
