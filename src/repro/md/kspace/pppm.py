"""Particle-particle particle-mesh solver (``kspace_style pppm``).

The long-range method the Rhodopsin benchmark uses (Table 2).  The
implementation follows Hockney & Eastwood:

1. assign point charges to a regular grid with order-``p`` cardinal
   B-spline weights (LAMMPS default order 5),
2. 3-D FFT of the charge grid,
3. multiply by the (Gaussian-screened) Coulomb Green's function,
4. obtain fields by ik differentiation and three inverse FFTs,
5. interpolate fields back to the particles with the same weights.

Turning the O(N^2) convolution into a pointwise product in frequency
space is what reduces the long-range complexity to O(N log N) (Section 2
of the paper); the grid size is chosen from the relative error threshold
by :func:`repro.md.kspace.error.select_grid`, so tightening the
threshold from ``1e-4`` to ``1e-7`` grows the FFT work exactly as in the
paper's Section 7 study.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import fft as _scipy_fft

from repro.md.atoms import AtomSystem
from repro.md.kspace.base import KSpaceSolver
from repro.md.kspace.error import select_grid
from repro.md.potentials.base import ForceResult

__all__ = ["PPPM", "bspline_weights"]


def bspline_weights(frac: np.ndarray, order: int) -> tuple[np.ndarray, np.ndarray]:
    """Charge-assignment weights for each particle along one dimension.

    Parameters
    ----------
    frac:
        Particle positions in grid units (floats in ``[0, n_grid)``).
    order:
        Assignment order ``p`` (stencil width in grid points).

    Returns
    -------
    (nodes, weights):
        ``nodes`` is an ``(N, p)`` int array of grid indices (unwrapped)
        and ``weights`` the matching B-spline weights; each row sums to 1
        by the partition-of-unity property (tested).
    """
    frac = np.asarray(frac)
    if frac.dtype not in (np.float32, np.float64):
        frac = frac.astype(np.float64)
    p = int(order)
    # The p nearest nodes are the integers in (g - p/2, g + p/2).
    n0 = np.floor(frac - 0.5 * p).astype(np.int64) + 1
    offsets = np.arange(p)
    nodes = n0[:, None] + offsets[None, :]
    # Weight of node n is M_p evaluated at (g - n + p/2).
    x = (frac[:, None] - nodes + 0.5 * p).astype(frac.dtype)
    # Iterative evaluation of the cardinal B-spline via its recurrence:
    # M_1 = indicator([0,1)); M_k(x) = (x M_{k-1}(x) + (k-x) M_{k-1}(x-1))/(k-1).
    # We track M_{k-1} at the p stencil abscissae; evaluating at x-1 is a
    # plain re-evaluation since abscissae differ per node.
    def m_k(xv: np.ndarray, k: int) -> np.ndarray:
        if k == 1:
            # astype (not np.where with python-float branches) keeps the
            # indicator in the input dtype.
            return ((xv >= 0.0) & (xv < 1.0)).astype(xv.dtype)
        return (xv * m_k(xv, k - 1) + (k - xv) * m_k(xv - 1.0, k - 1)) / (k - 1)

    weights = m_k(x, p)
    return nodes, weights


class PPPM(KSpaceSolver):
    """Particle-mesh Ewald-split Coulomb solver.

    Parameters
    ----------
    accuracy:
        Relative RMS force-error threshold (the paper's ``Kspace error``
        row: ``1e-4`` baseline, swept to ``1e-7`` in Section 7).
    cutoff:
        Real-space Coulomb cutoff of the companion pair style; used to
        derive ``alpha``.
    order:
        B-spline assignment order (LAMMPS default 5).
    grid / alpha:
        Explicit overrides for tests; normally derived from ``accuracy``.
    """

    def __init__(
        self,
        accuracy: float = 1e-4,
        cutoff: float = 10.0,
        coulomb_constant: float = 1.0,
        *,
        order: int = 5,
        grid: tuple[int, int, int] | None = None,
        alpha: float | None = None,
        exclusions: np.ndarray | None = None,
    ) -> None:
        if not 0 < accuracy < 1:
            raise ValueError("accuracy must be in (0, 1)")
        self.accuracy = float(accuracy)
        self.cutoff = float(cutoff)
        self.order = int(order)
        self._grid_override = grid
        self._alpha_override = alpha
        self.grid: tuple[int, int, int] | None = None
        self._green: np.ndarray | None = None
        self._kcomp: list[np.ndarray] | None = None
        self._setup_for: tuple | None = None
        # alpha finalized at setup; seed the base class with a placeholder.
        super().__init__(
            alpha if alpha is not None else 1.0, coulomb_constant, exclusions
        )

    # ------------------------------------------------------------------
    def setup(self, system: AtomSystem) -> None:
        """Choose alpha and grid for this system and precompute tables."""
        qsqsum = float(np.sum(system.charges**2))
        lengths = system.box.lengths
        alpha, grid = select_grid(
            self.accuracy,
            lengths,
            self.cutoff,
            system.n_atoms,
            qsqsum if qsqsum > 0 else 1.0,
            order=self.order,
        )
        if self._alpha_override is not None:
            alpha = float(self._alpha_override)
        if self._grid_override is not None:
            grid = tuple(int(g) for g in self._grid_override)  # type: ignore[assignment]
        self.alpha = alpha
        self.grid = grid  # type: ignore[assignment]

        nx, ny, nz = self.grid  # type: ignore[misc]
        two_pi = 2.0 * math.pi
        kx = two_pi * np.fft.fftfreq(nx, d=1.0 / nx) / lengths[0]
        ky = two_pi * np.fft.fftfreq(ny, d=1.0 / ny) / lengths[1]
        kz = two_pi * np.fft.fftfreq(nz, d=1.0 / nz) / lengths[2]
        kxg, kyg, kzg = np.meshgrid(kx, ky, kz, indexing="ij")
        k2 = kxg**2 + kyg**2 + kzg**2
        with np.errstate(divide="ignore", invalid="ignore"):
            green = (
                4.0
                * math.pi
                * self.coulomb_constant
                / system.box.volume
                * np.exp(-k2 / (4.0 * alpha**2))
                / k2
            )
        green[0, 0, 0] = 0.0  # neutral system: drop k = 0
        # Deconvolve the B-spline charge-assignment smearing: both the
        # spread and the interpolation multiply the true density by the
        # assignment function's transform U(k) = prod_d sinc^p(k_d h_d/2),
        # so the influence function divides by U(k)^2 (Hockney-Eastwood).
        hx, hy, hz = lengths / np.array([nx, ny, nz])
        u = np.ones_like(green)
        for kc, h in ((kxg, hx), (kyg, hy), (kzg, hz)):
            x = 0.5 * kc * h
            s = np.where(np.abs(x) > 1e-12, np.sin(x) / np.where(x == 0, 1.0, x), 1.0)
            u = u * s**self.order
        green = green / np.maximum(u * u, 1e-10)
        self._green = green
        self._kcomp = [kxg, kyg, kzg]
        self._setup_for = (system.n_atoms, tuple(lengths), qsqsum)

    def _ensure_setup(self, system: AtomSystem) -> None:
        key = (
            system.n_atoms,
            tuple(system.box.lengths),
            float(np.sum(system.charges**2)),
        )
        if self._setup_for != key:
            self.setup(system)

    @property
    def grid_points(self) -> int:
        """Total number of mesh points (the k-space work measure)."""
        if self.grid is None:
            return 0
        return int(np.prod(self.grid))

    # ------------------------------------------------------------------
    def _assign_charges(
        self, system: AtomSystem
    ) -> tuple[np.ndarray, list[np.ndarray], list[np.ndarray]]:
        """Spread charges onto the mesh; returns grid + per-dim stencils."""
        assert self.grid is not None
        ct = self.policy.compute_dtype
        dims = np.array(self.grid)
        positions = system.positions.astype(ct, copy=False)
        origin = system.box.origin.astype(ct, copy=False)
        lengths = system.box.lengths.astype(ct, copy=False)
        frac = (positions - origin) / lengths * dims.astype(ct)
        nodes_list = []
        weights_list = []
        for d in range(3):
            nodes, weights = bspline_weights(frac[:, d], self.order)
            nodes_list.append(np.mod(nodes, dims[d]))
            weights_list.append(weights)
        # Spread into the accumulate dtype: np.add.at promotes each f32
        # addend into the f64 mesh, giving MIXED its f64 accumulation.
        rho = np.zeros(self.grid, dtype=self.policy.accumulate_dtype)
        q = system.charges.astype(ct, copy=False)
        p = self.order
        for a in range(p):
            wa = weights_list[0][:, a]
            na = nodes_list[0][:, a]
            for b in range(p):
                wb = weights_list[1][:, b]
                nb = nodes_list[1][:, b]
                for c in range(p):
                    w = q * wa * wb * weights_list[2][:, c]
                    np.add.at(rho, (na, nb, nodes_list[2][:, c]), w)
        return rho, nodes_list, weights_list

    def compute(self, system: AtomSystem) -> ForceResult:
        self.check_neutrality(system)
        self._ensure_setup(system)
        assert self._green is not None and self._kcomp is not None
        tracer = self.tracer

        # Mesh tables are cached in float64; cast to the compute dtype at
        # use.  float32 goes through scipy.fft (dtype-preserving,
        # complex64 transforms); float64 keeps np.fft so the DOUBLE path
        # stays bit-for-bit what it was.
        ct = self.policy.compute_dtype
        fftn = _scipy_fft.fftn if ct == np.float32 else np.fft.fftn
        ifftn = _scipy_fft.ifftn if ct == np.float32 else np.fft.ifftn

        with tracer.span("kspace.assign", "kspace"):
            rho, nodes_list, weights_list = self._assign_charges(system)
        with tracer.span("kspace.fft_forward", "kspace"):
            rho_hat = fftn(rho.astype(ct, copy=False))

        # Energy: (1/2) sum_k G(k) |rho_hat|^2  (G folds 4 pi C / V k^2).
        green = self._green.astype(ct, copy=False)
        kcomp = [kc.astype(ct, copy=False) for kc in self._kcomp]
        energy = 0.5 * float(
            np.sum(green * np.abs(rho_hat) ** 2, dtype=np.float64)
        )

        # Virial trace (isotropic): sum_k E_k (1 - k^2 / 2 alpha^2).
        k2 = kcomp[0] ** 2 + kcomp[1] ** 2 + kcomp[2] ** 2
        virial = 0.5 * float(
            np.sum(
                green * np.abs(rho_hat) ** 2 * (1.0 - k2 / (2.0 * self.alpha**2)),
                dtype=np.float64,
            )
        )

        # Fields by ik differentiation: E_c = -ifft(i k_c G rho_hat).
        phi_hat = green * rho_hat
        n_total = self.grid_points
        fields = []
        with tracer.span("kspace.fft_inverse", "kspace"):
            for kc in kcomp:
                field = -np.real(ifftn(1j * kc * phi_hat)) * n_total
                fields.append(field)

        # Interpolate fields back to particles with the same stencil.
        p = self.order
        n_atoms = system.n_atoms
        efield = np.zeros((n_atoms, 3), dtype=ct)
        with tracer.span("kspace.interpolate", "kspace"):
            for a in range(p):
                wa = weights_list[0][:, a]
                na = nodes_list[0][:, a]
                for b in range(p):
                    wab = wa * weights_list[1][:, b]
                    nb = nodes_list[1][:, b]
                    for c in range(p):
                        w = wab * weights_list[2][:, c]
                        idx = (na, nb, nodes_list[2][:, c])
                        for comp in range(3):
                            efield[:, comp] += w * fields[comp][idx]
            system.forces += system.charges.astype(ct, copy=False)[:, None] * efield

        result = ForceResult(
            energy + self.self_energy(system), virial, self.grid_points
        )
        with tracer.span("kspace.corrections", "kspace"):
            result += self.excluded_pair_correction(system)
        return result
