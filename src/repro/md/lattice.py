"""Initial-configuration builders for the five benchmark systems.

Each builder mirrors the corresponding LAMMPS ``bench`` input deck:

* :func:`lj_melt_system` — fcc lattice at reduced density 0.8442, melted
  by seeding velocities (the ``in.lj`` deck);
* :func:`polymer_melt_system` — random-walk 100-mer bead-spring chains
  with a soft push-off (the ``in.chain`` deck, Kremer & Grest);
* :func:`eam_solid_system` — copper fcc solid (the ``in.eam`` deck);
* :func:`chute_system` — packed granular bed on an inclined plane with a
  bottom wall (the ``in.chute`` deck);
* :func:`rhodopsin_proxy_system` — a solvated-biomolecule proxy: rigid
  three-site water (SHAKE-constrained) plus an optional charged solute
  chain, with CHARMM-style pair interactions and PPPM electrostatics
  (substituting for the all-atom rhodopsin/lipid system, see DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.md.atoms import AtomSystem, Topology
from repro.md.box import Box
from repro.md.neighbor import NeighborList
from repro.md.potentials.soft import SoftRepulsion

__all__ = [
    "fcc_positions",
    "sc_positions",
    "diamond_positions",
    "lj_melt_system",
    "polymer_melt_system",
    "eam_solid_system",
    "tersoff_silicon_system",
    "chute_system",
    "rhodopsin_proxy_system",
    "RhodopsinProxy",
    "soft_pushoff",
    "build_exclusions",
]


# ---------------------------------------------------------------------------
# Crystal lattices
# ---------------------------------------------------------------------------
def fcc_positions(n_cells: int, a: float) -> tuple[np.ndarray, Box]:
    """``n_cells^3`` fcc unit cells of lattice constant ``a``."""
    if n_cells < 1:
        raise ValueError("n_cells must be >= 1")
    basis = np.array(
        [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]]
    )
    cells = np.arange(n_cells)
    grid = np.array(np.meshgrid(cells, cells, cells, indexing="ij")).reshape(3, -1).T
    positions = (grid[:, None, :] + basis[None, :, :]).reshape(-1, 3) * a
    box = Box(np.full(3, n_cells * a))
    return positions, box


def sc_positions(n_cells: int, a: float) -> tuple[np.ndarray, Box]:
    """Simple-cubic lattice of ``n_cells^3`` sites with spacing ``a``."""
    if n_cells < 1:
        raise ValueError("n_cells must be >= 1")
    cells = np.arange(n_cells)
    grid = np.array(np.meshgrid(cells, cells, cells, indexing="ij")).reshape(3, -1).T
    box = Box(np.full(3, n_cells * a))
    return (grid + 0.5) * a, box


def diamond_positions(n_cells: int, a: float) -> tuple[np.ndarray, Box]:
    """``n_cells^3`` diamond-cubic cells (8 atoms each) of constant ``a``.

    The diamond structure is two interpenetrating fcc lattices offset by
    a quarter of the body diagonal — silicon's crystal structure, the
    geometry the Tersoff benchmark starts from.
    """
    if n_cells < 1:
        raise ValueError("n_cells must be >= 1")
    fcc = np.array(
        [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]]
    )
    basis = np.concatenate([fcc, fcc + 0.25])
    cells = np.arange(n_cells)
    grid = np.array(np.meshgrid(cells, cells, cells, indexing="ij")).reshape(3, -1).T
    positions = (grid[:, None, :] + basis[None, :, :]).reshape(-1, 3) * a
    box = Box(np.full(3, n_cells * a))
    return positions, box


def _cells_for_atoms(n_atoms: int, atoms_per_cell: int) -> int:
    """Cube-root cell count giving at least ``n_atoms`` lattice sites."""
    return max(1, math.ceil((n_atoms / atoms_per_cell) ** (1.0 / 3.0)))


# ---------------------------------------------------------------------------
# LJ melt (the "lj" benchmark)
# ---------------------------------------------------------------------------
def lj_melt_system(
    n_atoms: int = 500,
    *,
    density: float = 0.8442,
    temperature: float = 1.44,
    seed: int = 12345,
) -> AtomSystem:
    """3-D Lennard-Jones melt in reduced units (``in.lj``)."""
    n_cells = _cells_for_atoms(n_atoms, 4)
    a = (4.0 / density) ** (1.0 / 3.0)
    positions, box = fcc_positions(n_cells, a)
    system = AtomSystem(positions, box)
    system.seed_velocities(temperature, np.random.default_rng(seed))
    return system


# ---------------------------------------------------------------------------
# Bead-spring polymer melt (the "chain" benchmark)
# ---------------------------------------------------------------------------
def soft_pushoff(
    system: AtomSystem,
    *,
    steps: int = 200,
    cutoff: float = 2.0 ** (1.0 / 6.0),
    max_prefactor: float = 30.0,
    dt: float = 0.002,
    bond_length: float = 0.97,
) -> None:
    """Remove overlaps with a ramped soft potential plus stiff bond springs.

    The standard melt-preparation trick: random-walk chains overlap, and
    the LJ/FENE potentials would explode; pushing with the bounded soft
    potential while ramping its prefactor inflates the configuration
    into a usable melt.  Velocities are zeroed afterwards.
    """
    from repro.md.bonded import HarmonicBond  # local import to avoid a cycle

    neighbor = NeighborList(cutoff, 0.3)
    neighbor.build(system)
    spring = HarmonicBond(k=50.0, r0=bond_length)
    for step in range(steps):
        ramp = max_prefactor * (step + 1) / steps
        potential = SoftRepulsion(ramp, cutoff)
        system.forces[:] = 0.0
        neighbor.ensure(system)
        potential.compute(system, neighbor)
        if system.topology.n_bonds:
            spring.compute(system)
        # Overdamped relaxation: displacement capped for stability.
        move = dt * system.forces
        np.clip(move, -0.1, 0.1, out=move)
        system.positions += move
        system.wrap()
    system.velocities[:] = 0.0


def polymer_melt_system(
    n_chains: int = 8,
    chain_length: int = 25,
    *,
    density: float = 0.8442,
    temperature: float = 1.0,
    bond_length: float = 0.97,
    seed: int = 4321,
    pushoff_steps: int = 200,
) -> AtomSystem:
    """Bead-spring polymer melt of ``n_chains`` x ``chain_length`` beads.

    The paper's Chain benchmark uses 100-mer chains; tests use shorter
    chains for speed, the suite uses the full length.  Chains are grown
    as fixed-bond-length random walks and de-overlapped by
    :func:`soft_pushoff`.
    """
    if n_chains < 1 or chain_length < 2:
        raise ValueError("need at least one chain of two beads")
    rng = np.random.default_rng(seed)
    n_atoms = n_chains * chain_length
    side = (n_atoms / density) ** (1.0 / 3.0)
    box = Box(np.full(3, side))

    positions = np.empty((n_atoms, 3))
    bonds = []
    molecule_ids = np.empty(n_atoms, dtype=np.int64)
    idx = 0
    for chain in range(n_chains):
        positions[idx] = rng.uniform(0.0, side, size=3)
        molecule_ids[idx] = chain
        for bead in range(1, chain_length):
            direction = rng.normal(size=3)
            direction /= np.linalg.norm(direction)
            positions[idx + bead] = positions[idx + bead - 1] + bond_length * direction
            bonds.append((idx + bead - 1, idx + bead))
            molecule_ids[idx + bead] = chain
        idx += chain_length

    topology = Topology(bonds=np.array(bonds, dtype=np.int64))
    system = AtomSystem(
        positions, box, topology=topology, molecule_ids=molecule_ids
    )
    soft_pushoff(
        system, steps=pushoff_steps, bond_length=bond_length
    )
    system.seed_velocities(temperature, rng)
    return system


# ---------------------------------------------------------------------------
# EAM copper solid (the "eam" benchmark)
# ---------------------------------------------------------------------------
def eam_solid_system(
    n_atoms: int = 500,
    *,
    lattice_constant: float = 3.615,
    temperature: float = 0.05,
    seed: int = 777,
) -> AtomSystem:
    """Copper fcc solid (``in.eam``); lengths in Angstrom, energy in eV."""
    n_cells = _cells_for_atoms(n_atoms, 4)
    positions, box = fcc_positions(n_cells, lattice_constant)
    system = AtomSystem(positions, box, masses=63.546)
    system.seed_velocities(temperature, np.random.default_rng(seed))
    return system


# ---------------------------------------------------------------------------
# Tersoff silicon solid (the "tersoff" benchmark)
# ---------------------------------------------------------------------------
def tersoff_silicon_system(
    n_atoms: int = 512,
    *,
    lattice_constant: float = 5.431,
    temperature: float = 0.04,
    seed: int = 1988,
) -> AtomSystem:
    """Silicon diamond-cubic solid; lengths in Angstrom, energy in eV.

    ``temperature`` follows the engine's reduced convention used by
    :func:`eam_solid_system` (a small thermal jitter on a cold crystal);
    the seed defaults to the Tersoff-paper year for greppability.
    """
    n_cells = _cells_for_atoms(n_atoms, 8)
    positions, box = diamond_positions(n_cells, lattice_constant)
    system = AtomSystem(positions, box, masses=28.0855)
    system.seed_velocities(temperature, np.random.default_rng(seed))
    return system


# ---------------------------------------------------------------------------
# Granular chute flow (the "chute" benchmark)
# ---------------------------------------------------------------------------
def chute_system(
    n_x: int = 6,
    n_y: int = 6,
    n_layers: int = 4,
    *,
    diameter: float = 1.0,
    seed: int = 999,
) -> AtomSystem:
    """Packed granular bed above a bottom wall, periodic in x and y.

    The z dimension is non-periodic (the chute floor); gravity tilted by
    the chute angle is applied as a fix by the suite builder.
    """
    if min(n_x, n_y, n_layers) < 1:
        raise ValueError("all grid dimensions must be >= 1")
    rng = np.random.default_rng(seed)
    # A settled bed is slightly compressed: neighbours overlap by ~1% so
    # contacts (and their friction histories) exist from step one.
    spacing = 0.99 * diameter
    height = (n_layers + 6) * spacing  # headroom above the packed bed
    box = Box(
        np.array([n_x * spacing, n_y * spacing, height]),
        periodic=np.array([True, True, False]),
    )
    ix, iy, iz = np.meshgrid(
        np.arange(n_x), np.arange(n_y), np.arange(n_layers), indexing="ij"
    )
    grid = np.stack([ix, iy, iz], axis=-1).reshape(-1, 3).astype(float)
    positions = (grid + 0.5) * spacing
    # Small jitter so the packing is not perfectly degenerate.
    positions[:, :2] += rng.uniform(-0.01, 0.01, size=(len(positions), 2)) * diameter

    system = AtomSystem(
        positions,
        box,
        radii=np.full(len(positions), 0.5 * diameter),
        masses=1.0,
    )
    system.velocities = 0.01 * rng.normal(size=system.velocities.shape)
    return system


# ---------------------------------------------------------------------------
# Solvated-biomolecule proxy (the "rhodo" benchmark)
# ---------------------------------------------------------------------------
#: SPC/E-like geometry and charges, with the Coulomb constant folded into
#: the charges so the engine can keep ``C = 1`` (documented in DESIGN.md).
_WATER_OH = 1.0
_WATER_HH = 1.633  # 109.47 degree H-O-H as an H-H distance constraint
_COULOMB_FOLD = math.sqrt(332.0637)  # kcal mol^-1 Angstrom e^-2
_Q_OXYGEN = -0.8476 * _COULOMB_FOLD
_Q_HYDROGEN = 0.4238 * _COULOMB_FOLD


@dataclass
class RhodopsinProxy:
    """A built rhodopsin-proxy system plus its constraint/exclusion data."""

    system: AtomSystem
    shake_pairs: np.ndarray
    shake_distances: np.ndarray
    exclusions: np.ndarray
    #: Per-type LJ tables (type 0 = O-like, 1 = H-like, 2 = solute bead).
    epsilon: np.ndarray
    sigma: np.ndarray
    #: Solute torsion quadruples (empty without a >= 4-bead solute).
    dihedrals: np.ndarray = None  # type: ignore[assignment]


def build_exclusions(topology: Topology) -> np.ndarray:
    """1-2 (bond) and 1-3 (angle end) non-bonded exclusion pairs."""
    pairs = [topology.bonds]
    if topology.n_angles:
        pairs.append(topology.angles[:, [0, 2]])
    if not pairs:
        return np.empty((0, 2), dtype=np.int64)
    stacked = np.concatenate(pairs, axis=0)
    lo = np.minimum(stacked[:, 0], stacked[:, 1])
    hi = np.maximum(stacked[:, 0], stacked[:, 1])
    return np.unique(np.stack([lo, hi], axis=1), axis=0)


def rhodopsin_proxy_system(
    n_molecules: int = 64,
    *,
    n_solute_beads: int = 0,
    spacing: float = 3.2,
    temperature: float = 0.6,
    seed: int = 2022,
) -> RhodopsinProxy:
    """Rigid three-site water box with an optional charged solute chain.

    Substitutes for the all-atom solvated rhodopsin system: same force
    field ingredients (CHARMM-style switched LJ + long-range Coulomb,
    SHAKE-rigid waters, harmonic solute bonds/angles) at laptop scale.
    ``temperature`` is in kcal/mol (0.6 is roughly 300 K).
    """
    if n_molecules < 1:
        raise ValueError("need at least one water molecule")
    rng = np.random.default_rng(seed)
    n_cells = _cells_for_atoms(n_molecules + n_solute_beads, 1)
    sites, box = sc_positions(n_cells, spacing)
    rng.shuffle(sites)

    # The solute chain runs along z through the box centre; water sites
    # too close to a bead are discarded so nothing overlaps at t = 0.
    solute_positions: list[np.ndarray] = []
    if n_solute_beads > 0:
        if 1.5 * n_solute_beads > box.lengths[2] - 1.5:
            raise ValueError(
                "solute chain does not fit in the box without wrapping onto "
                "itself; reduce n_solute_beads or increase n_molecules"
            )
        start = box.lengths / 2.0 - np.array([0.0, 0.0, 0.75 * n_solute_beads])
        solute_positions = [
            box.wrap(start + np.array([0.0, 0.0, bead * 1.5]))
            for bead in range(n_solute_beads)
        ]
        solute_arr = np.array(solute_positions)
        keep = np.ones(len(sites), dtype=bool)
        for bead_pos in solute_arr:
            keep &= box.distance(sites, bead_pos[None, :]) > 0.9 * spacing
        sites = sites[keep]
    if len(sites) < n_molecules:
        raise ValueError(
            "not enough lattice sites for the requested waters after "
            "carving out the solute; increase spacing or reduce beads"
        )

    positions: list[np.ndarray] = []
    types: list[int] = []
    charges: list[float] = []
    masses: list[float] = []
    molecule_ids: list[int] = []
    bonds: list[tuple[int, int]] = []
    angles: list[tuple[int, int, int]] = []
    dihedrals: list[tuple[int, int, int, int]] = []
    shake_pairs: list[tuple[int, int]] = []
    shake_distances: list[float] = []

    half_hh = 0.5 * _WATER_HH
    h_drop = math.sqrt(max(_WATER_OH**2 - half_hh**2, 1e-12))
    for mol in range(n_molecules):
        center = sites[mol]
        # Random rigid orientation from two orthonormal vectors.
        axis = rng.normal(size=3)
        axis /= np.linalg.norm(axis)
        helper = rng.normal(size=3)
        helper -= axis * np.dot(axis, helper)
        helper /= np.linalg.norm(helper)
        o_pos = center
        h1 = center + h_drop * axis + half_hh * helper
        h2 = center + h_drop * axis - half_hh * helper
        base = len(positions)
        positions.extend([o_pos, h1, h2])
        types.extend([0, 1, 1])
        charges.extend([_Q_OXYGEN, _Q_HYDROGEN, _Q_HYDROGEN])
        masses.extend([15.9994, 1.008, 1.008])
        molecule_ids.extend([mol, mol, mol])
        bonds.extend([(base, base + 1), (base, base + 2)])
        angles.append((base + 1, base, base + 2))
        shake_pairs.extend(
            [(base, base + 1), (base, base + 2), (base + 1, base + 2)]
        )
        shake_distances.extend([_WATER_OH, _WATER_OH, _WATER_HH])

    if n_solute_beads > 0:
        prev = None
        mol_id = n_molecules
        for bead, pos in enumerate(solute_positions):
            base = len(positions)
            positions.append(pos)
            types.append(2)
            charges.append((_Q_HYDROGEN if bead % 2 == 0 else -_Q_HYDROGEN))
            masses.append(12.011)
            molecule_ids.append(mol_id)
            if prev is not None:
                bonds.append((prev, base))
                if bead >= 2:
                    angles.append((prev - 1, prev, base))
                if bead >= 3:
                    dihedrals.append((prev - 2, prev - 1, prev, base))
            prev = base
        # Neutralize any odd-length solute with a counter charge on the
        # last bead so k-space stays valid.
        total = sum(charges)
        charges[-1] -= total

    topology = Topology(
        bonds=np.array(bonds, dtype=np.int64),
        angles=np.array(angles, dtype=np.int64),
    )
    system = AtomSystem(
        np.array(positions),
        box,
        masses=np.array(masses),
        types=np.array(types, dtype=np.int64),
        charges=np.array(charges),
        topology=topology,
        molecule_ids=np.array(molecule_ids, dtype=np.int64),
    )
    system.seed_velocities(temperature, rng)

    # SPC/E-like LJ on oxygen; tiny placeholder on H so mixing is defined;
    # mid-size bead for the solute.
    epsilon = np.array([0.1553, 0.0, 0.12])
    sigma = np.array([3.166, 1.0, 3.5])
    return RhodopsinProxy(
        system=system,
        shake_pairs=np.array(shake_pairs, dtype=np.int64),
        shake_distances=np.array(shake_distances),
        exclusions=build_exclusions(topology),
        epsilon=epsilon,
        sigma=sigma,
        dihedrals=np.array(dihedrals, dtype=np.int64).reshape(-1, 4),
    )
