"""Energy minimization: steepest descent with adaptive step control.

The standard pre-equilibration tool (LAMMPS ``minimize``): relaxes a
configuration toward a local potential-energy minimum before dynamics,
removing builder artifacts that would otherwise blow up the integrator.
Backtracking on energy increases makes it robust for the steep LJ/EAM
cores.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.simulation import Simulation

__all__ = ["MinimizationResult", "minimize"]


@dataclass(frozen=True)
class MinimizationResult:
    """Outcome of a minimization run."""

    initial_energy: float
    final_energy: float
    max_force: float
    iterations: int
    converged: bool


def minimize(
    simulation: Simulation,
    *,
    force_tolerance: float = 1e-4,
    max_iterations: int = 500,
    initial_step: float = 0.01,
    max_displacement: float = 0.1,
) -> MinimizationResult:
    """Steepest-descent relaxation of ``simulation``'s configuration.

    Moves along the force direction with an adaptive step: growth on
    success, backtracking (and move rejection) when the energy rises.
    Velocities are untouched; the neighbor list is maintained through
    the simulation's own machinery.

    Parameters
    ----------
    force_tolerance:
        Converged when the largest per-atom force magnitude drops below
        this value.
    max_displacement:
        Per-coordinate trust radius of one step.
    """
    if force_tolerance <= 0 or max_iterations < 1:
        raise ValueError("force_tolerance > 0 and max_iterations >= 1 required")
    system = simulation.system
    if not simulation._setup_done:  # noqa: SLF001 - reuse the force pipeline
        simulation.setup()

    step = float(initial_step)
    energy = simulation.potential_energy
    initial_energy = energy
    iterations = 0
    converged = False

    for iterations in range(1, max_iterations + 1):
        forces = system.forces
        max_force = float(np.max(np.abs(forces))) if system.n_atoms else 0.0
        if max_force < force_tolerance:
            converged = True
            iterations -= 1
            break

        # Trust-radius-limited steepest-descent move.
        move = step * forces
        np.clip(move, -max_displacement, max_displacement, out=move)
        previous_positions = system.positions.copy()
        system.positions = system.positions + move
        system.wrap()
        simulation.neighbor.ensure(system)
        simulation._compute_forces(count=False)  # noqa: SLF001

        if simulation.potential_energy < energy:
            energy = simulation.potential_energy
            step = min(step * 1.2, 1.0)
        else:
            # Reject and backtrack.
            system.positions = previous_positions
            simulation.neighbor.ensure(system)
            simulation._compute_forces(count=False)  # noqa: SLF001
            step *= 0.5
            if step < 1e-12:
                break

    max_force = float(np.max(np.abs(system.forces)))
    return MinimizationResult(
        initial_energy=initial_energy,
        final_energy=simulation.potential_energy,
        max_force=max_force,
        iterations=iterations,
        converged=converged or max_force < force_tolerance,
    )
