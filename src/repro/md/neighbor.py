"""Neighbor lists with a skin distance, built via cell (link-cell) lists.

This implements the cutoff optimization described in Section 2 of the
paper: for each particle we keep all partners within ``cutoff + skin``
so that the (O(N)-per-rebuild) list construction only has to run when
some particle has moved more than half the skin since the last build.
A larger skin means more candidate pairs to re-check each timestep but
fewer rebuilds — exactly the trade-off the paper's Table 2 captures in
its per-benchmark "Neighbor skin" row.

Two list flavours are supported, mirroring LAMMPS' ``newton`` setting:

* *half* lists store each pair once (Newton's third law shares the
  computed force between both partners) — used by Rhodopsin, LJ, Chain
  and EAM;
* *full* lists store both ``(i, j)`` and ``(j, i)`` — used by Chute,
  which (per Section 3) does not exploit Newton's third law.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.md.atoms import AtomSystem
from repro.md.box import Box
from repro.observability.tracer import NULL_TRACER

__all__ = [
    "NeighborList",
    "NeighborStats",
    "brute_force_pairs",
    "cell_list_half_pairs",
    "subdomain_directed_pairs",
    "BRUTE_FORCE_ENV_VAR",
]

# Below this atom count a vectorized O(N^2) build is faster than cell
# binning in numpy and trivially correct; above it we bin.  Both the
# NeighborList(brute_force_max=...) argument and the environment
# variable below override this default.
_BRUTE_FORCE_MAX_ATOMS = 800

#: Environment override for the brute-force/cell-list crossover, letting
#: the benchmark harness force either build path without code changes.
BRUTE_FORCE_ENV_VAR = "REPRO_NEIGHBOR_BRUTE_MAX"


def _default_brute_force_max() -> int:
    value = os.environ.get(BRUTE_FORCE_ENV_VAR)
    return _BRUTE_FORCE_MAX_ATOMS if value is None else int(value)


#: Half stencil for the cell-list build: the 13 "forward" neighbor-cell
#: offsets (self-cell pairs are handled triangularly), so each pair is
#: generated exactly once.
_HALF_STENCIL = np.array(
    [
        (dx, dy, dz)
        for dx in (0, 1)
        for dy in (-1, 0, 1)
        for dz in (-1, 0, 1)
        if (dx, dy, dz) != (0, 0, 0)
        and not (dx == 0 and (dy < 0 or (dy == 0 and dz < 0)))
    ],
    dtype=np.int64,
)


def _encode_pairs(i: np.ndarray, j: np.ndarray, n: int) -> np.ndarray:
    """Map unordered index pairs to unique scalar keys for set algebra."""
    lo = np.minimum(i, j).astype(np.int64)
    hi = np.maximum(i, j).astype(np.int64)
    return lo * np.int64(n) + hi


def _ragged_arange(counts: np.ndarray) -> np.ndarray:
    """``concatenate([arange(c) for c in counts])`` without the loop."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


def _isin_sorted(keys: np.ndarray, sorted_keys: np.ndarray) -> np.ndarray:
    """Membership of ``keys`` in presorted ``sorted_keys``.

    ``np.searchsorted`` on an already-sorted key table is
    O(M log E) with tiny constants, replacing the ``np.isin`` set
    machinery (which re-sorts and concatenates both operands on every
    neighbor rebuild).
    """
    if len(sorted_keys) == 0:
        return np.zeros(len(keys), dtype=bool)
    pos = np.searchsorted(sorted_keys, keys)
    pos = np.minimum(pos, len(sorted_keys) - 1)
    return sorted_keys[pos] == keys


def brute_force_pairs(
    positions: np.ndarray, box: Box, cutoff: float
) -> tuple[np.ndarray, np.ndarray]:
    """All half pairs within ``cutoff`` by direct O(N^2) search.

    Reference implementation used both as the small-system fast path and
    as the oracle the cell-list build is tested against.
    """
    n = len(positions)
    iu, ju = np.triu_indices(n, k=1)
    dr = box.minimum_image(positions[iu] - positions[ju])
    r2 = np.einsum("ij,ij->i", dr, dr)
    mask = r2 < cutoff * cutoff
    return iu[mask], ju[mask]


def cell_list_half_pairs(
    positions: np.ndarray, box: Box, rc: float
) -> tuple[np.ndarray, np.ndarray]:
    """Half pair list via link-cell binning (O(N) for fixed density).

    Fully vectorized: candidate pairs come from numpy repeats and
    gathers over the cell-sorted atom order — one pass per stencil
    offset over *all* atoms at once — instead of a Python loop over
    occupied cells.  The distance filter runs *per stencil offset* on
    each candidate block before anything is concatenated, so the peak
    working set is one offset's candidates (~1/14th of the full
    candidate population) and only surviving pairs are ever copied.
    """
    # Distance checks run in the caller's storage dtype (float32 under
    # the SINGLE precision policy); integer binning below is dtype-safe.
    positions = np.asarray(positions)
    if positions.dtype != np.float32:
        positions = positions.astype(np.float64, copy=False)
    n = len(positions)
    rc2 = rc * rc
    n_cells = np.maximum(np.floor(box.lengths / rc).astype(int), 1)
    cell_size = box.lengths / n_cells

    coords = np.floor((positions - box.origin) / cell_size).astype(np.int64)
    coords = np.minimum(coords, n_cells - 1)
    coords = np.maximum(coords, 0)
    strides = np.array(
        [n_cells[1] * n_cells[2], n_cells[2], 1], dtype=np.int64
    )
    flat = coords @ strides

    order = np.argsort(flat, kind="stable")
    sorted_flat = flat[order]
    sorted_coords = coords[order]
    total_cells = int(np.prod(n_cells))
    counts = np.bincount(sorted_flat, minlength=total_cells)
    # cell_starts[c] = first slot of cell c in the sorted order.
    cell_starts = np.zeros(total_cells + 1, dtype=np.int64)
    np.cumsum(counts, out=cell_starts[1:])

    pair_i_blocks: list[np.ndarray] = []
    pair_j_blocks: list[np.ndarray] = []
    # With no periodic dimension the image shift is identically zero
    # (minimum_image returns ``dr - 0.0``); skipping it drops a divide,
    # round and multiply over every candidate.  The subdomain search
    # always takes this path — its ghost images realize periodicity.
    any_periodic = bool(box.periodic.any())

    def _keep_within_cutoff(cand_i: np.ndarray, cand_j: np.ndarray) -> None:
        dr = positions[cand_i] - positions[cand_j]
        if any_periodic:
            dr = box.minimum_image(dr)
        r2 = np.einsum("ij,ij->i", dr, dr)
        keep = np.flatnonzero(r2 < rc2)
        if len(keep):
            pair_i_blocks.append(cand_i[keep])
            pair_j_blocks.append(cand_j[keep])

    # Intra-cell pairs: sorted slot k pairs with every *later* member
    # of its own cell (the triangular half without materializing it).
    slots = np.arange(n, dtype=np.int64)
    n_after = cell_starts[sorted_flat + 1] - slots - 1
    if int(n_after.sum()) > 0:
        j_slots = np.repeat(slots + 1, n_after) + _ragged_arange(n_after)
        _keep_within_cutoff(np.repeat(order, n_after), order[j_slots])

    # Inter-cell pairs: for each of the 13 forward stencil offsets,
    # every atom pairs with the full population of its neighbor cell.
    for off in _HALF_STENCIL:
        nb = sorted_coords + off
        valid = np.ones(n, dtype=bool)
        for d in range(3):
            if box.periodic[d]:
                nb[:, d] %= n_cells[d]
            else:
                valid &= (nb[:, d] >= 0) & (nb[:, d] < n_cells[d])
        nb_flat = nb @ strides
        if not valid.all():
            nb_flat = nb_flat[valid]
            members = order[valid]
        else:
            members = order
        cnt = counts[nb_flat]
        if int(cnt.sum()) == 0:
            continue
        j_slots = np.repeat(cell_starts[nb_flat], cnt) + _ragged_arange(cnt)
        # With fewer than 3 cells in a periodic dimension the same pair
        # can appear from two offsets; _can_bin guards against that, so
        # every candidate is unique and the per-offset filter suffices.
        _keep_within_cutoff(np.repeat(members, cnt), order[j_slots])

    if not pair_i_blocks:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.concatenate(pair_i_blocks), np.concatenate(pair_j_blocks)


def subdomain_directed_pairs(
    positions: np.ndarray,
    rc: float,
    *,
    sort_key: np.ndarray | None = None,
    brute_force_max: int | None = None,
    anchor_limit: int | None = None,
    kernels=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Directed pair list over a subdomain's local atom set.

    The parallel engine hands each worker its owned atoms plus
    ghost-shifted halo copies; periodicity is realized by the ghost
    images, so the local search runs in an *open* (non-periodic)
    bounding box with plain Euclidean distances.  Every unordered pair
    within ``rc`` is returned in both directions ``(i, j)`` and
    ``(j, i)``, sorted by ``(i, sort_key[j])`` — passing the global atom
    ids as ``sort_key`` makes each atom's neighbor row canonically
    ordered regardless of how the domain was decomposed, which is what
    keeps parallel force sums bitwise reproducible across worker counts.

    ``anchor_limit`` keeps only the rows whose head is below it.  Owned
    locals come first in the worker's numbering, so passing ``n_owned``
    drops every ghost-headed row *before* the sort — the rows a
    one-sided owner-computes pass never reads (EAM is the exception:
    its density pass needs the ghost-headed rows and must not set
    this).  The surviving rows are bitwise identical to the matching
    prefix of the unrestricted list.

    ``kernels`` optionally supplies a
    :class:`~repro.md.kernels.base.KernelBackend` whose
    ``neighbor_pairs`` hook replaces the numpy cell-list search on the
    above-crossover path; backends contract to reproduce the numpy
    pairs exactly, so the directed rows (and hence parallel summation
    order) are unchanged.
    """
    positions = np.asarray(positions)
    if positions.dtype != np.float32:
        positions = positions.astype(np.float64, copy=False)
    n = len(positions)
    empty = np.empty(0, dtype=np.int64)
    if n < 2:
        return empty, empty
    limit = _default_brute_force_max() if brute_force_max is None else brute_force_max
    # Open bounding box with one-cutoff margin; degenerate extents
    # (planar or linear local sets) still need positive edge lengths.
    lo = positions.min(axis=0) - rc
    hi = positions.max(axis=0) + rc
    box = Box(np.maximum(hi - lo, rc), periodic=np.zeros(3, dtype=bool), origin=lo)
    if n <= limit:
        i, j = brute_force_pairs(positions, box, rc)
    else:
        pairs = (
            kernels.neighbor_pairs(positions, box, rc)
            if kernels is not None
            else None
        )
        i, j = pairs if pairs is not None else cell_list_half_pairs(
            positions, box, rc
        )
    if anchor_limit is None:
        di = np.concatenate([i, j])
        dj = np.concatenate([j, i])
    else:
        forward = i < anchor_limit
        reverse = j < anchor_limit
        di = np.concatenate([i[forward], j[reverse]])
        dj = np.concatenate([j[forward], i[reverse]])
    key = dj if sort_key is None else np.asarray(sort_key, dtype=np.int64)[dj]
    order = np.lexsort((key, di))
    return di[order], dj[order]


@dataclass
class NeighborStats:
    """Bookkeeping counters the performance model consumes."""

    n_builds: int = 0
    n_checks: int = 0
    last_pairs: int = 0
    last_neighbors_per_atom: float = 0.0
    steps_since_build: int = 0
    total_steps: int = 0

    @property
    def rebuild_every(self) -> float:
        """Average number of timesteps between rebuilds."""
        if self.n_builds == 0:
            return float("inf")
        return self.total_steps / self.n_builds

    def state_dict(self) -> dict:
        """All counters, for checkpoint serialization."""
        return {
            "n_builds": self.n_builds,
            "n_checks": self.n_checks,
            "last_pairs": self.last_pairs,
            "last_neighbors_per_atom": self.last_neighbors_per_atom,
            "steps_since_build": self.steps_since_build,
            "total_steps": self.total_steps,
        }

    def load_state_dict(self, state: dict) -> None:
        self.n_builds = int(state["n_builds"])
        self.n_checks = int(state["n_checks"])
        self.last_pairs = int(state["last_pairs"])
        self.last_neighbors_per_atom = float(state["last_neighbors_per_atom"])
        self.steps_since_build = int(state["steps_since_build"])
        self.total_steps = int(state["total_steps"])


class NeighborList:
    """Verlet neighbor list with skin, backed by a cell list.

    Parameters
    ----------
    cutoff:
        Interaction cutoff distance.
    skin:
        Extra shell stored beyond the cutoff (LAMMPS ``neighbor`` skin).
    full:
        Store both directions of every pair (``newton off`` semantics).
    exclusions:
        Optional ``(M, 2)`` array of atom-index pairs to exclude (bonded
        1-2 / 1-3 partners whose non-bonded interaction is masked, as
        LAMMPS ``special_bonds`` does).
    brute_force_max:
        Atom count up to which the O(N^2) brute-force build is used
        instead of cell binning.  Defaults to ``$REPRO_NEIGHBOR_BRUTE_MAX``
        or 800; set to 0 to force the cell-list path, or very large to
        force brute force (the benchmark harness uses both).

    Besides the flat ``pair_i`` / ``pair_j`` arrays, every build also
    publishes the same pairs in **CSR form**: ``csr_offsets`` (length
    ``n_atoms + 1``) and ``csr_neighbors`` such that atom ``a``'s stored
    partners are ``csr_neighbors[csr_offsets[a]:csr_offsets[a + 1]]``,
    sorted ascending.  ``pair_i``/``pair_j`` are kept in the matching
    row-major order (``pair_i`` non-decreasing), which is what lets the
    ``numpy_fast`` kernel backend use monotone segmented reductions.
    """

    def __init__(
        self,
        cutoff: float,
        skin: float,
        *,
        full: bool = False,
        exclusions: np.ndarray | None = None,
        brute_force_max: int | None = None,
    ) -> None:
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        if skin < 0:
            raise ValueError("skin must be non-negative")
        self.cutoff = float(cutoff)
        self.skin = float(skin)
        self.full = bool(full)
        self.brute_force_max = (
            _default_brute_force_max() if brute_force_max is None
            else int(brute_force_max)
        )
        if self.brute_force_max < 0:
            raise ValueError("brute_force_max must be non-negative")
        self.stats = NeighborStats()
        #: Span sink for rebuild instrumentation (no-op by default; the
        #: owning Simulation assigns its tracer).
        self.tracer = NULL_TRACER
        #: Optional kernel backend consulted for the cell-list build
        #: (the owning Simulation assigns its backend; the ``compiled``
        #: backend replaces the numpy bin/filter loop with native code
        #: that reproduces the same pairs exactly).  ``None`` — and any
        #: backend whose ``neighbor_pairs`` returns ``None`` — keeps
        #: the numpy path.
        self.kernels = None
        self._positions_at_build: np.ndarray | None = None
        self._box_lengths_at_build: np.ndarray | None = None
        self.pair_i = np.empty(0, dtype=np.int64)
        self.pair_j = np.empty(0, dtype=np.int64)
        self.csr_offsets = np.zeros(1, dtype=np.int64)
        self.csr_neighbors = np.empty(0, dtype=np.int64)
        self._excluded_keys: np.ndarray | None = None
        self._exclusions = (
            None
            if exclusions is None or len(exclusions) == 0
            else np.asarray(exclusions, dtype=np.int64).reshape(-1, 2)
        )

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    @property
    def list_cutoff(self) -> float:
        """The stored-pair cutoff, ``cutoff + skin``."""
        return self.cutoff + self.skin

    def build(self, system: AtomSystem) -> None:
        """(Re)construct the pair list for the current configuration."""
        with self.tracer.span("neigh.build", "neigh"):
            self._build(system)

    def _build(self, system: AtomSystem) -> None:
        box = system.box
        positions = box.wrap(system.positions)
        n = system.n_atoms
        rc = self.list_cutoff
        # Minimum-image pair search is only valid when the box is at
        # least two cutoffs wide in every periodic dimension.
        min_periodic = box.lengths[box.periodic]
        if len(min_periodic) and rc > 0.5 * float(np.min(min_periodic)):
            raise ValueError(
                f"cutoff+skin {rc:g} exceeds half the smallest periodic box "
                f"length {float(np.min(min_periodic)):g}; enlarge the system "
                "or shrink the cutoff"
            )

        if n <= self.brute_force_max or not self._can_bin(box, rc):
            with self.tracer.span("neigh.brute_pairs", "neigh"):
                i, j = brute_force_pairs(positions, box, rc)
        else:
            with self.tracer.span("neigh.cell_pairs", "neigh"):
                i, j = self._cell_list_pairs(positions, box, rc)

        if self._exclusions is not None:
            if self._excluded_keys is None or len(self._excluded_keys) == 0:
                # Cached across rebuilds: the exclusion topology is static.
                self._excluded_keys = np.unique(
                    _encode_pairs(self._exclusions[:, 0], self._exclusions[:, 1], n)
                )
            keys = _encode_pairs(i, j, n)
            keep = ~_isin_sorted(keys, self._excluded_keys)
            i, j = i[keep], j[keep]

        if self.full:
            pair_i = np.concatenate([i, j])
            pair_j = np.concatenate([j, i])
        else:
            pair_i, pair_j = i, j

        # CSR packing: row-major (i, then j) order, offsets per atom.
        order = np.lexsort((pair_j, pair_i))
        self.pair_i = pair_i[order]
        self.pair_j = pair_j[order]
        self.csr_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(self.pair_i, minlength=n), out=self.csr_offsets[1:]
        )
        self.csr_neighbors = self.pair_j

        self._positions_at_build = positions.copy()
        self._box_lengths_at_build = box.lengths.copy()
        self.stats.n_builds += 1
        self.stats.steps_since_build = 0
        self.stats.last_pairs = len(self.pair_i)
        # Neighbors/atom counted within the *cutoff* (Table 2 convention),
        # not within cutoff + skin.
        within = (
            self.kernels.count_pairs_within(positions, box, i, j, self.cutoff)
            if self.kernels is not None
            else None
        )
        if within is None:
            dr = box.minimum_image(positions[i] - positions[j])
            r2 = np.einsum("ij,ij->i", dr, dr)
            within = int(np.count_nonzero(r2 < self.cutoff * self.cutoff))
        self.stats.last_neighbors_per_atom = 2.0 * within / n

    @staticmethod
    def _can_bin(box: Box, rc: float) -> bool:
        """Cell binning needs at least three cells along each periodic dim."""
        n_cells = np.floor(box.lengths / rc).astype(int)
        return bool(np.all(np.where(box.periodic, n_cells >= 3, n_cells >= 1)))

    def _cell_list_pairs(
        self, positions: np.ndarray, box: Box, rc: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Binned half pairs; see :func:`cell_list_half_pairs`.

        When a kernel backend is attached, its ``neighbor_pairs`` hook
        gets first refusal — the compiled backend runs the bin/filter
        loop natively and contracts to emit the identical pair set and
        orientations, so the CSR packing downstream is byte-for-byte
        the same either way.
        """
        if self.kernels is not None:
            pairs = self.kernels.neighbor_pairs(positions, box, rc)
            if pairs is not None:
                return pairs
        return cell_list_half_pairs(positions, box, rc)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def needs_rebuild(self, system: AtomSystem) -> bool:
        """True if some atom moved more than half the skin since build."""
        self.stats.n_checks += 1
        if self._positions_at_build is None:
            return True
        if len(self._positions_at_build) != system.n_atoms:
            return True
        if not np.allclose(self._box_lengths_at_build, system.box.lengths):
            return True
        disp = system.box.minimum_image(
            system.box.wrap(system.positions) - self._positions_at_build
        )
        max_sq = float(np.max(np.einsum("ij,ij->i", disp, disp)))
        return max_sq > (0.5 * self.skin) ** 2

    def ensure(self, system: AtomSystem) -> bool:
        """Rebuild if stale; returns whether a rebuild happened."""
        self.stats.total_steps += 1
        self.stats.steps_since_build += 1
        if self.needs_rebuild(system):
            self.build(system)
            return True
        return False

    def export_build_state(self) -> tuple[np.ndarray, np.ndarray] | None:
        """The (wrapped) positions and box lengths of the last build.

        This is what a bit-exact restart needs: rebuilding the list from
        these inputs reproduces the stored pair *ordering* (hence the
        floating-point summation order of every subsequent force pass)
        and keeps the skin-displacement rebuild cadence on the original
        schedule.  Returns ``None`` before the first build.
        """
        if self._positions_at_build is None:
            return None
        return (
            self._positions_at_build.copy(),
            self._box_lengths_at_build.copy(),
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def current_pairs(
        self, system: AtomSystem, cutoff: float | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Pairs currently within ``cutoff`` with fresh geometry.

        Returns ``(i, j, dr, r)`` where ``dr = x_i - x_j`` under minimum
        image and ``r`` its norm.  ``cutoff`` defaults to the list cutoff
        (without skin), which is what force kernels want.
        """
        if self._positions_at_build is None:
            raise RuntimeError("neighbor list has never been built")
        rc = self.cutoff if cutoff is None else float(cutoff)
        dr = system.box.minimum_image(
            system.positions[self.pair_i] - system.positions[self.pair_j]
        )
        r2 = np.einsum("ij,ij->i", dr, dr)
        mask = r2 < rc * rc
        i, j, dr = self.pair_i[mask], self.pair_j[mask], dr[mask]
        return i, j, dr, np.sqrt(r2[mask])

    def neighbors_of(self, atom: int) -> np.ndarray:
        """Stored partners of ``atom`` (CSR row; sorted ascending)."""
        return self.csr_neighbors[
            self.csr_offsets[atom] : self.csr_offsets[atom + 1]
        ]
