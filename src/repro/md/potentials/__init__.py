"""Force fields / inter-atomic potentials used by the benchmark suite.

One module per family, mirroring the paper's Table 2 "Force field" row:

* :mod:`repro.md.potentials.lj` — Lennard-Jones with cutoff (LJ, Chain);
* :mod:`repro.md.potentials.eam` — embedded-atom many-body metal (EAM);
* :mod:`repro.md.potentials.charmm` — CHARMM-style LJ-switch + long-range
  Coulomb pair part (Rhodopsin);
* :mod:`repro.md.potentials.granular` — Hookean frictional contact with
  tangential history (Chute);
* :mod:`repro.md.potentials.tersoff` — three-body bond-order covalent
  solid (Tersoff silicon).
"""

from repro.md.potentials.base import ForceResult, PairPotential
from repro.md.potentials.charmm import CharmmCoulLong
from repro.md.potentials.eam import EAMAlloy, EAMParameters
from repro.md.potentials.granular import HookeHistory
from repro.md.potentials.lj import LennardJonesCut
from repro.md.potentials.mixing import mix_epsilon, mix_sigma
from repro.md.potentials.soft import SoftRepulsion
from repro.md.potentials.table import TabulatedPair
from repro.md.potentials.tersoff import Tersoff, TersoffParameters

__all__ = [
    "ForceResult",
    "PairPotential",
    "LennardJonesCut",
    "EAMAlloy",
    "EAMParameters",
    "CharmmCoulLong",
    "HookeHistory",
    "mix_epsilon",
    "mix_sigma",
    "SoftRepulsion",
    "TabulatedPair",
    "Tersoff",
    "TersoffParameters",
]
