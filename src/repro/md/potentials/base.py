"""Common interface for pairwise and many-body potentials.

A potential consumes the current :class:`~repro.md.neighbor.NeighborList`
and accumulates forces into ``system.forces``, returning the potential
energy and the pair virial (needed by the pressure compute and hence by
the NPT barostat that Rhodopsin uses).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.md.atoms import AtomSystem
from repro.md.kernels import KernelBackend, get_backend
from repro.md.neighbor import NeighborList

__all__ = ["ForceResult", "PairPotential", "accumulate_pair_forces"]


@dataclass
class ForceResult:
    """Outcome of one force evaluation.

    ``virial`` is the scalar pair virial ``sum_ij r_ij . f_ij`` with each
    pair counted once; the pressure compute divides it by ``3 V``.
    ``interactions`` counts evaluated pairs — the quantity the paper's
    complexity analysis calls ``N * npa_avg`` and that our performance
    model uses as the Pair-task work measure.
    """

    energy: float = 0.0
    virial: float = 0.0
    interactions: int = 0

    def __iadd__(self, other: "ForceResult") -> "ForceResult":
        self.energy += other.energy
        self.virial += other.virial
        self.interactions += other.interactions
        return self


def accumulate_pair_forces(
    system: AtomSystem,
    i: np.ndarray,
    j: np.ndarray,
    dr: np.ndarray,
    f_over_r: np.ndarray,
    backend: KernelBackend | str | None = None,
) -> None:
    """Scatter-add pair forces for a half list.

    ``f_over_r`` is the magnitude of the pair force divided by the
    distance (so that ``f_vec = f_over_r * dr``); positive values are
    repulsive for ``dr = x_i - x_j``.  The scatter itself is delegated
    to a :class:`~repro.md.kernels.base.KernelBackend`.
    """
    get_backend(backend).accumulate_scaled_pair_forces(
        system.forces, i, j, dr, f_over_r
    )


class PairPotential(abc.ABC):
    """Base class for potentials evaluated over a neighbor list."""

    #: Interaction cutoff; the neighbor list must be built with at least
    #: this cutoff.
    cutoff: float

    #: True when the potential needs both pair directions (``newton off``)
    #: — only the granular history potential does.
    needs_full_list: bool = False

    #: Whether :meth:`AnalyticPairPotential.pair_terms` reads the
    #: per-pair type / charge arrays.  When false the (large) gathers
    #: are skipped and ``None`` is passed instead.
    needs_types: bool = True
    needs_charges: bool = False

    _backend: KernelBackend | None = None

    @property
    def backend(self) -> KernelBackend:
        """The kernel backend force evaluation runs on.

        Unset potentials resolve lazily through
        :func:`repro.md.kernels.get_backend` (env var / default); the
        owning :class:`~repro.md.simulation.Simulation` assigns its
        shared backend to every potential at construction.
        """
        if self._backend is None:
            self._backend = get_backend()
        return self._backend

    @backend.setter
    def backend(self, value: KernelBackend | str | None) -> None:
        self._backend = None if value is None else get_backend(value)

    @abc.abstractmethod
    def compute(self, system: AtomSystem, neighbors: NeighborList) -> ForceResult:
        """Accumulate forces into ``system.forces`` and return totals."""

    def halo_width(self, list_cutoff: float) -> float:
        """Ghost-shell width a subdomain needs to evaluate owned atoms.

        For plain pairwise interactions the neighbor-list cutoff
        (``cutoff + skin``) suffices: every partner of an owned atom lies
        within it for the whole rebuild interval.  Many-body potentials
        whose per-atom terms depend on *their partners'* environments
        (EAM's embedding density) must widen this so halo atoms also see
        complete neighbor rows.
        """
        return float(list_cutoff)

    def energy_only(self, system: AtomSystem, neighbors: NeighborList) -> float:
        """Potential energy of the current configuration (forces restored)."""
        saved = system.forces.copy()
        system.forces[:] = 0.0
        result = self.compute(system, neighbors)
        system.forces[:] = saved
        return result.energy


class AnalyticPairPotential(PairPotential):
    """Convenience base for purely pairwise potentials.

    Subclasses implement :meth:`pair_terms`, returning per-pair energy
    and ``f_over_r``; accumulation, virial and bookkeeping live here.
    """

    @abc.abstractmethod
    def pair_terms(
        self,
        r: np.ndarray,
        r2: np.ndarray,
        type_i: np.ndarray,
        type_j: np.ndarray,
        q_i: np.ndarray,
        q_j: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return per-pair ``(energy, f_over_r)`` arrays.

        ``type_i``/``type_j`` and ``q_i``/``q_j`` are only gathered (and
        non-``None``) when the class opts in via :attr:`needs_types` /
        :attr:`needs_charges` — skipping those per-pair gathers is a
        measurable win at benchmark pair counts.
        """

    def compute(self, system: AtomSystem, neighbors: NeighborList) -> ForceResult:
        kernel = self.backend
        i, j, dr, r = kernel.current_pairs(system, neighbors, self.cutoff)
        if len(i) == 0:
            return ForceResult()
        r2 = r * r
        type_i = system.types[i] if self.needs_types else None
        type_j = system.types[j] if self.needs_types else None
        # Static charges stay float64 in storage; the per-pair gathers
        # are cast to the geometry's (compute) dtype so reduced-precision
        # modes never silently promote back to f64 mid-formula.
        q_i = (
            system.charges[i].astype(dr.dtype, copy=False)
            if self.needs_charges
            else None
        )
        q_j = (
            system.charges[j].astype(dr.dtype, copy=False)
            if self.needs_charges
            else None
        )
        energy, f_over_r = self.pair_terms(r, r2, type_i, type_j, q_i, q_j)
        kernel.accumulate_scaled_pair_forces(system.forces, i, j, dr, f_over_r)
        # Scalar totals always reduce in float64 (identical to the
        # historical behavior at f64; an exact O(M) upcast otherwise).
        virial = float(np.sum(f_over_r * r2, dtype=np.float64))
        return ForceResult(
            float(np.sum(energy, dtype=np.float64)), virial, len(i)
        )
