"""CHARMM-style pair potential: switched LJ plus long-range Coulomb.

This is the pair part of the Rhodopsin benchmark (``pair_style
lj/charmm/coul/long`` in LAMMPS): a 12-6 Lennard-Jones term smoothly
switched to zero between an inner and outer cutoff (Table 2's
``8.0 - 10.0 Angstrom``), and the *short-range* (real-space) part of the
Ewald/PPPM-split Coulomb interaction, ``q_i q_j erfc(alpha r) / r``.
The complementary long-range piece lives in :mod:`repro.md.kspace`.
"""

from __future__ import annotations

import numpy as np
from scipy.special import erfc

from repro.md.potentials.base import AnalyticPairPotential
from repro.md.potentials.mixing import build_mixed_tables

__all__ = ["CharmmCoulLong", "charmm_switch"]

# A python float (not a np.float64 scalar) so NEP-50 promotion keeps
# float32 pair math in float32.
_TWO_OVER_SQRT_PI = float(2.0 / np.sqrt(np.pi))


def charmm_switch(
    r2: np.ndarray, r_inner: float, r_outer: float
) -> tuple[np.ndarray, np.ndarray]:
    """CHARMM energy switching function ``S`` and ``dS/dr``.

    ``S = 1`` below ``r_inner``, 0 above ``r_outer``; in between::

        S = (ro^2 - r^2)^2 (ro^2 + 2 r^2 - 3 ri^2) / (ro^2 - ri^2)^3
        dS/dr = 12 r (ro^2 - r^2)(ri^2 - r^2) / (ro^2 - ri^2)^3
    """
    ri2 = r_inner * r_inner
    ro2 = r_outer * r_outer
    denom = (ro2 - ri2) ** 3
    r2 = np.asarray(r2)
    if r2.dtype not in (np.float32, np.float64):
        r2 = r2.astype(np.float64)
    d2 = ro2 - r2
    s = d2 * d2 * (ro2 + 2.0 * r2 - 3.0 * ri2) / denom
    r = np.sqrt(r2)
    ds = 12.0 * r * d2 * (ri2 - r2) / denom
    below = r2 <= ri2
    above = r2 >= ro2
    s = np.where(below, 1.0, np.where(above, 0.0, s))
    ds = np.where(below | above, 0.0, ds)
    return s, ds


class CharmmCoulLong(AnalyticPairPotential):
    """Switched LJ + real-space Ewald Coulomb, with arithmetic mixing.

    The Coulomb term reads per-pair charges, so this is the one pair
    style that opts into the charge gathers (``needs_charges``).

    Parameters
    ----------
    epsilon, sigma:
        Per-type LJ coefficients, mixed with ``pair_modify mix
        arithmetic`` (the Rhodopsin setting from Table 2).
    lj_inner, cutoff:
        Switching region bounds for the LJ term.
    coul_cutoff:
        Real-space Coulomb cutoff; defaults to the LJ outer cutoff.
    alpha:
        Ewald splitting parameter.  ``0`` degenerates to a plain cut
        Coulomb (no k-space complement), useful for isolated tests.
    coulomb_constant:
        ``q q / r`` prefactor; 1 in reduced units.
    """

    needs_charges = True

    def __init__(
        self,
        epsilon: float | np.ndarray = 1.0,
        sigma: float | np.ndarray = 1.0,
        *,
        lj_inner: float = 8.0,
        cutoff: float = 10.0,
        coul_cutoff: float | None = None,
        alpha: float = 0.0,
        coulomb_constant: float = 1.0,
        mix_style: str = "arithmetic",
    ) -> None:
        if lj_inner >= cutoff:
            raise ValueError("lj_inner must be smaller than the outer cutoff")
        eps = np.atleast_1d(np.asarray(epsilon, dtype=float))
        sig = np.atleast_1d(np.asarray(sigma, dtype=float))
        self.eps_table, self.sigma_table = build_mixed_tables(eps, sig, mix_style)
        self.lj_inner = float(lj_inner)
        self.cutoff = float(cutoff)
        self.coul_cutoff = float(coul_cutoff) if coul_cutoff is not None else float(cutoff)
        if self.coul_cutoff > self.cutoff:
            raise ValueError(
                "coul_cutoff beyond the LJ cutoff would need a larger neighbor list"
            )
        self.alpha = float(alpha)
        self.coulomb_constant = float(coulomb_constant)
        self.needs_types = self.eps_table.size > 1

    def pair_terms(self, r, r2, type_i, type_j, q_i, q_j):
        if self.needs_types:
            # Cast the tiny mixing tables so the gathers (and the whole
            # formula) stay in the compute dtype.
            eps = self.eps_table.astype(r2.dtype, copy=False)[type_i, type_j]
            sigma = self.sigma_table.astype(r2.dtype, copy=False)[type_i, type_j]
        else:
            eps = float(self.eps_table[0, 0])
            sigma = float(self.sigma_table[0, 0])
        inv_r2 = 1.0 / r2
        sr2 = sigma * sigma * inv_r2
        sr6 = sr2 * sr2 * sr2
        sr12 = sr6 * sr6
        e_lj = 4.0 * eps * (sr12 - sr6)
        f_lj_over_r = 24.0 * eps * (2.0 * sr12 - sr6) * inv_r2

        switch, dswitch = charmm_switch(r2, self.lj_inner, self.cutoff)
        energy = switch * e_lj
        # F = -d(S E)/dr => f_over_r = S f_lj/r - S' E / r
        f_over_r = switch * f_lj_over_r - dswitch * e_lj / r

        qq = self.coulomb_constant * q_i * q_j
        in_coul = r < self.coul_cutoff
        if self.alpha > 0.0:
            ar = self.alpha * r
            erfc_ar = erfc(ar)
            e_coul = qq * erfc_ar / r
            f_coul_over_r = qq * (
                erfc_ar / (r2 * r)
                + _TWO_OVER_SQRT_PI * self.alpha * np.exp(-ar * ar) * inv_r2
            )
        else:
            e_coul = qq / r
            f_coul_over_r = qq / (r2 * r)
        energy = energy + np.where(in_coul, e_coul, 0.0)
        f_over_r = f_over_r + np.where(in_coul, f_coul_over_r, 0.0)
        return energy, f_over_r
