"""Embedded-Atom Method (EAM) many-body potential for metals.

The paper's EAM benchmark simulates a copper fcc solid.  We implement
the classic analytic EAM decomposition (Daw & Baskes, 1984)::

    E = sum_i F(rho_i) + 1/2 sum_{i != j} phi(r_ij)
    rho_i = sum_{j != i} f(r_ij)

with exponential density ``f`` and pair-repulsion ``phi`` functions and
the Banerjea-Smith embedding functional ``F``.  Both radial functions
are truncated so that value *and* slope vanish at the cutoff, keeping
forces exactly equal to the analytic gradient (which the property-based
finite-difference tests check).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.atoms import AtomSystem
from repro.md.neighbor import NeighborList
from repro.md.potentials.base import ForceResult, PairPotential, accumulate_pair_forces

__all__ = ["EAMParameters", "EAMAlloy"]


@dataclass(frozen=True)
class EAMParameters:
    """Analytic-EAM coefficients.

    Defaults give a copper-like fcc metal: ``r_e`` is the Cu nearest
    neighbour distance (``a / sqrt(2)`` with ``a = 3.615 Angstrom``) and
    the paper's Table 2 cutoff of ``4.95 Angstrom`` spans the third
    neighbour shell.
    """

    r_e: float = 2.556
    f_e: float = 1.0
    chi: float = 3.0
    phi_e: float = 0.65
    gamma: float = 5.0
    E_c: float = 3.54
    n_exp: float = 0.5
    rho_e: float = 12.0
    cutoff: float = 4.95


def _truncated_exponential(
    r: np.ndarray, amplitude: float, decay: float, r_e: float, cutoff: float
) -> tuple[np.ndarray, np.ndarray]:
    """``g(r) = A exp(-k (r - r_e))`` truncated smoothly at ``cutoff``.

    Returns ``(g, dg/dr)`` with ``g(rc) = g'(rc) = 0`` by subtracting the
    first-order Taylor expansion of ``g`` about the cutoff.
    """
    g = amplitude * np.exp(-decay * (r - r_e))
    g_c = amplitude * np.exp(-decay * (cutoff - r_e))
    value = g - g_c + decay * g_c * (r - cutoff)
    deriv = -decay * g + decay * g_c
    return value, deriv


class EAMAlloy(PairPotential):
    """Single-species analytic EAM potential.

    The evaluation is the textbook two-pass scheme:

    1. accumulate electron densities ``rho_i`` over all neighbours and
       compute embedding energies ``F(rho_i)`` and slopes ``F'(rho_i)``;
    2. walk the pair list again, combining the pair repulsion with both
       atoms' embedding slopes into the pair force.
    """

    def __init__(self, params: EAMParameters | None = None) -> None:
        self.params = params if params is not None else EAMParameters()
        self.cutoff = self.params.cutoff

    def halo_width(self, list_cutoff: float) -> float:
        """EAM needs neighbor-of-neighbor reach in the ghost shell.

        The pair force on an owned atom ``i`` involves ``F'(rho_j)`` of
        every partner ``j``, and ``rho_j`` sums density over *j's* own
        partners — atoms up to one interaction cutoff beyond ``j``.  A
        halo of ``list_cutoff + cutoff`` guarantees each halo atom within
        ``list_cutoff`` of the subdomain has its full density row.
        """
        return float(list_cutoff) + self.cutoff

    # -- radial functions ------------------------------------------------
    def density_function(self, r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Electron density contribution ``f(r)`` and its derivative."""
        p = self.params
        return _truncated_exponential(r, p.f_e, p.chi, p.r_e, p.cutoff)

    def pair_function(self, r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Morse-like pair term ``phi(r)`` and its derivative.

        ``phi = phi_e [e^{-2 gamma (r - r_e)} - 2 e^{-gamma (r - r_e)}]``
        has its minimum at ``r_e``; combined with the embedding minimum
        at ``rho_e`` this puts the fcc equilibrium at the copper lattice
        constant (tested via the cohesive-energy curve).
        """
        p = self.params
        steep, d_steep = _truncated_exponential(
            r, p.phi_e, 2.0 * p.gamma, p.r_e, p.cutoff
        )
        soft, d_soft = _truncated_exponential(r, p.phi_e, p.gamma, p.r_e, p.cutoff)
        return steep - 2.0 * soft, d_steep - 2.0 * d_soft

    def embedding_function(self, rho: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Banerjea-Smith ``F(rho)`` and ``F'(rho)``.

        ``F(rho) = -E_c [1 - n ln(rho/rho_e)] (rho/rho_e)^n`` — negative
        (cohesive) around ``rho_e`` with a minimum exactly at ``rho_e``.
        """
        p = self.params
        rho = np.asarray(rho)
        if rho.dtype not in (np.float32, np.float64):
            rho = rho.astype(np.float64)
        # Dtype-aware underflow floor: 1e-300 flushes to 0 in float32,
        # which would let rho = 0 reach the log below.
        floor = float(np.finfo(rho.dtype).tiny) if rho.dtype == np.float32 else 1e-300
        rho = np.maximum(rho, floor)
        x = rho / p.rho_e
        log_x = np.log(x)
        xn = x**p.n_exp
        value = -p.E_c * (1.0 - p.n_exp * log_x) * xn
        deriv = p.E_c * p.n_exp**2 * log_x * xn / rho
        return value, deriv

    # -- evaluation --------------------------------------------------------
    def compute(self, system: AtomSystem, neighbors: NeighborList) -> ForceResult:
        kernel = self.backend
        i, j, dr, r = kernel.current_pairs(system, neighbors, self.cutoff)
        n = system.n_atoms
        if len(i) == 0:
            # Isolated atoms: embedding of zero density is zero by the
            # functional form, so only the (empty) pair sum remains.
            return ForceResult()

        # Pass 1: densities and embedding.  Densities accumulate in the
        # policy's accumulate dtype (float64 under MIXED).
        f_r, df_r = self.density_function(r)
        rho = np.zeros(n, dtype=kernel.policy.accumulate_dtype)
        kernel.scatter_add(rho, i, f_r)
        kernel.scatter_add(rho, j, f_r)
        F_rho, Fp_rho = self.embedding_function(rho)
        embed_energy = float(np.sum(F_rho, dtype=np.float64))

        # Pass 2: pair repulsion plus density-mediated forces; the
        # embedding slopes are cast back to the compute dtype so the
        # per-pair force stays in it.
        phi, dphi = self.pair_function(r)
        Fp = Fp_rho.astype(dr.dtype, copy=False)
        f_over_r = -(dphi + (Fp[i] + Fp[j]) * df_r) / r
        accumulate_pair_forces(system, i, j, dr, f_over_r, backend=kernel)

        pair_energy = float(np.sum(phi, dtype=np.float64))
        virial = float(np.sum(f_over_r * r * r, dtype=np.float64))
        return ForceResult(embed_energy + pair_energy, virial, len(i))

    # -- analysis helpers ----------------------------------------------------
    def cohesive_energy_curve(
        self, lattice_constants: np.ndarray, coordination: int = 12
    ) -> np.ndarray:
        """Per-atom energy of an idealized first-shell fcc environment.

        A quick analytic sanity check: for each lattice constant ``a``
        the nearest-neighbour shell sits at ``a / sqrt(2)`` with the fcc
        coordination of 12.
        """
        a = np.asarray(lattice_constants, dtype=float)
        r_nn = a / np.sqrt(2.0)
        f, _ = self.density_function(r_nn)
        phi, _ = self.pair_function(r_nn)
        F, _ = self.embedding_function(coordination * f)
        return F + 0.5 * coordination * phi
