"""Hookean granular contact with frictional history (``gran/hooke/history``).

The Chute benchmark simulates a chute flow of packed granular particles
with a Hookean-style contact law (Brilliantov et al., 1996).  The
*history* variant tracks the accumulated tangential displacement of each
contact for as long as the two particles touch; that per-contact state
is exactly what makes this pair style irregular compared to the
stateless analytic potentials, and (per Section 3 of the paper) it does
not exploit Newton's third law to halve the pair work — which is why
:attr:`HookeHistory.needs_full_list` is true and the Pair-task work
measure counts both directions.
"""

from __future__ import annotations

import numpy as np

from repro.md.atoms import AtomSystem
from repro.md.neighbor import NeighborList
from repro.md.potentials.base import ForceResult, PairPotential

__all__ = ["HookeHistory", "ContactHistory"]


class ContactHistory:
    """Tangential-displacement store keyed by unordered contact pairs.

    Histories survive neighbor-list rebuilds: :meth:`sync` re-aligns the
    stored vectors with a new pair ordering and drops contacts that have
    separated beyond the list cutoff.
    """

    def __init__(self) -> None:
        self._keys = np.empty(0, dtype=np.int64)
        self._values = np.empty((0, 3), dtype=float)

    def __len__(self) -> int:
        return len(self._keys)

    def sync(self, keys: np.ndarray) -> np.ndarray:
        """Return histories aligned with ``keys`` (new contacts start at 0)."""
        values = np.zeros((len(keys), 3), dtype=float)
        if len(self._keys):
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
            pos = np.searchsorted(sorted_keys, self._keys)
            pos = np.minimum(pos, len(keys) - 1) if len(keys) else pos
            if len(keys):
                hit = sorted_keys[pos] == self._keys
                values[order[pos[hit]]] = self._values[hit]
        self._keys = keys
        self._values = values
        return self._values

    def store(self, values: np.ndarray) -> None:
        self._values = values


class HookeHistory(PairPotential):
    """Damped Hookean normal contact + history-tracked tangential friction.

    Parameters follow LAMMPS ``pair_style gran/hooke/history``:

    * normal spring ``k_n`` and damping ``gamma_n``,
    * tangential spring ``k_t`` and damping ``gamma_t``,
    * Coulomb friction coefficient ``mu`` capping the tangential force,
    * the integrator timestep ``dt`` used to accumulate the tangential
      displacement history.
    """

    needs_full_list = True

    def __init__(
        self,
        k_n: float = 200000.0,
        k_t: float | None = None,
        gamma_n: float = 50.0,
        gamma_t: float | None = None,
        mu: float = 0.5,
        *,
        dt: float = 1e-4,
        max_radius: float = 0.5,
    ) -> None:
        self.k_n = float(k_n)
        self.k_t = float(k_t) if k_t is not None else 2.0 / 7.0 * self.k_n
        self.gamma_n = float(gamma_n)
        self.gamma_t = float(gamma_t) if gamma_t is not None else 0.5 * self.gamma_n
        self.mu = float(mu)
        self.dt = float(dt)
        # Contact happens at r < R_i + R_j; the neighbor list is built on
        # centre distance, so the "cutoff" is twice the largest radius.
        self.cutoff = 2.0 * float(max_radius)
        self.history = ContactHistory()

    def compute(self, system: AtomSystem, neighbors: NeighborList) -> ForceResult:
        if system.radii is None:
            raise ValueError("HookeHistory needs a granular system (radii set)")
        kernel = self.backend
        i_all, j_all, dr_all, r_all = kernel.current_pairs(
            system, neighbors, self.cutoff
        )
        interactions = len(i_all)
        # Physics is evaluated once per unordered pair; the full list the
        # simulation keeps (newton off) is reflected in `interactions`.
        half = i_all < j_all
        i, j, dr, r = i_all[half], j_all[half], dr_all[half], r_all[half]

        radii = system.radii
        sum_r = radii[i] + radii[j]
        touching = r < sum_r
        i, j, dr, r = i[touching], j[touching], dr[touching], r[touching]
        keys = i * np.int64(system.n_atoms) + j
        xi = self.history.sync(keys)
        if len(i) == 0:
            return ForceResult(0.0, 0.0, interactions)

        n_hat = dr / r[:, None]
        delta = (radii[i] + radii[j]) - r
        m_eff = system.masses[i] * system.masses[j] / (
            system.masses[i] + system.masses[j]
        )

        # Relative velocity at the contact point (translational + spin).
        v_rel = system.velocities[i] - system.velocities[j]
        if system.omega is not None:
            spin = radii[i][:, None] * system.omega[i] + radii[j][:, None] * system.omega[j]
            v_rel = v_rel - np.cross(spin, n_hat)
        v_n = np.einsum("ij,ij->i", v_rel, n_hat)
        v_n_vec = v_n[:, None] * n_hat
        v_t_vec = v_rel - v_n_vec

        # Normal force: Hookean spring + velocity damping.
        f_n_mag = self.k_n * delta - self.gamma_n * m_eff * v_n
        f_n_vec = f_n_mag[:, None] * n_hat

        # Tangential: integrate history, project it into the current
        # tangent plane, spring + damping, Coulomb cap.
        xi = xi + v_t_vec * self.dt
        xi = xi - np.einsum("ij,ij->i", xi, n_hat)[:, None] * n_hat
        f_t_vec = -self.k_t * xi - self.gamma_t * m_eff[:, None] * v_t_vec
        f_t_mag = np.linalg.norm(f_t_vec, axis=1)
        cap = self.mu * np.abs(f_n_mag)
        over = f_t_mag > np.maximum(cap, 1e-300)
        if np.any(over):
            scale = np.where(over, cap / np.maximum(f_t_mag, 1e-300), 1.0)
            f_t_vec = f_t_vec * scale[:, None]
            # Rescale the stored history so the spring is consistent with
            # the capped force (LAMMPS does the same truncation).
            xi = np.where(over[:, None], -f_t_vec / self.k_t, xi)
        self.history.store(xi)

        f_total = f_n_vec + f_t_vec
        kernel.accumulate_pair_forces(system.forces, i, j, f_total)

        # Contact torques from the tangential force.
        if system.torques is not None:
            torque = np.cross(n_hat, f_t_vec)
            kernel.scatter_add(system.torques, i, -radii[i][:, None] * torque)
            kernel.scatter_add(system.torques, j, -radii[j][:, None] * torque)

        # Elastic contact energy (normal spring only; damping and sliding
        # friction are dissipative, so total energy is *not* conserved —
        # the Chute tests assert dissipation instead).
        energy = float(np.sum(0.5 * self.k_n * delta * delta))
        virial = float(np.sum(np.einsum("ij,ij->i", dr, f_total)))
        return ForceResult(energy, virial, interactions)

    @property
    def active_contacts(self) -> int:
        """Number of currently touching pairs with stored history."""
        return len(self.history)
