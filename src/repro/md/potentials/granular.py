"""Hookean granular contact with frictional history (``gran/hooke/history``).

The Chute benchmark simulates a chute flow of packed granular particles
with a Hookean-style contact law (Brilliantov et al., 1996).  The
*history* variant tracks the accumulated tangential displacement of each
contact for as long as the two particles touch; that per-contact state
is exactly what makes this pair style irregular compared to the
stateless analytic potentials, and (per Section 3 of the paper) it does
not exploit Newton's third law to halve the pair work — which is why
:attr:`HookeHistory.needs_full_list` is true and the Pair-task work
measure counts both directions.
"""

from __future__ import annotations

import numpy as np

from repro.md.atoms import AtomSystem
from repro.md.neighbor import NeighborList
from repro.md.potentials.base import ForceResult, PairPotential

__all__ = ["HookeHistory", "ContactHistory"]


class ContactHistory:
    """Tangential-displacement store keyed by unordered contact pairs.

    Histories survive neighbor-list rebuilds: :meth:`sync` re-aligns the
    stored vectors with a new pair ordering and drops contacts that have
    separated beyond the list cutoff.
    """

    def __init__(self) -> None:
        self._keys = np.empty(0, dtype=np.int64)
        self._values = np.empty((0, 3), dtype=float)

    def __len__(self) -> int:
        return len(self._keys)

    def sync(self, keys: np.ndarray) -> np.ndarray:
        """Return histories aligned with ``keys`` (new contacts start at 0)."""
        values = np.zeros((len(keys), 3), dtype=float)
        if len(self._keys):
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
            pos = np.searchsorted(sorted_keys, self._keys)
            pos = np.minimum(pos, len(keys) - 1) if len(keys) else pos
            if len(keys):
                hit = sorted_keys[pos] == self._keys
                values[order[pos[hit]]] = self._values[hit]
        self._keys = keys
        self._values = values
        return self._values

    def store(self, values: np.ndarray) -> None:
        self._values = values

    def export(self) -> tuple[np.ndarray, np.ndarray]:
        """Copy out the ``(keys, values)`` store for serialization."""
        return self._keys.copy(), self._values.copy()

    def load(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Replace the store (the checkpoint/restart path).

        The next :meth:`sync` re-aligns these entries with whatever pair
        ordering the restored neighbor state produces, so the keys may
        be a superset of the currently touching contacts.
        """
        keys = np.asarray(keys, dtype=np.int64).reshape(-1)
        values = np.asarray(values, dtype=float).reshape(-1, 3)
        if len(keys) != len(values):
            raise ValueError("contact history needs one value row per key")
        self._keys = keys.copy()
        self._values = values.copy()


class HookeHistory(PairPotential):
    """Damped Hookean normal contact + history-tracked tangential friction.

    Parameters follow LAMMPS ``pair_style gran/hooke/history``:

    * normal spring ``k_n`` and damping ``gamma_n``,
    * tangential spring ``k_t`` and damping ``gamma_t``,
    * Coulomb friction coefficient ``mu`` capping the tangential force,
    * the integrator timestep ``dt`` used to accumulate the tangential
      displacement history.
    """

    needs_full_list = True

    def __init__(
        self,
        k_n: float = 200000.0,
        k_t: float | None = None,
        gamma_n: float = 50.0,
        gamma_t: float | None = None,
        mu: float = 0.5,
        *,
        dt: float = 1e-4,
        max_radius: float = 0.5,
    ) -> None:
        self.k_n = float(k_n)
        self.k_t = float(k_t) if k_t is not None else 2.0 / 7.0 * self.k_n
        self.gamma_n = float(gamma_n)
        self.gamma_t = float(gamma_t) if gamma_t is not None else 0.5 * self.gamma_n
        self.mu = float(mu)
        self.dt = float(dt)
        # Contact happens at r < R_i + R_j; the neighbor list is built on
        # centre distance, so the "cutoff" is twice the largest radius.
        self.cutoff = 2.0 * float(max_radius)
        self.history = ContactHistory()

    def contact_terms(
        self,
        dr: np.ndarray,
        r: np.ndarray,
        radius_i: np.ndarray,
        radius_j: np.ndarray,
        mass_i: np.ndarray,
        mass_j: np.ndarray,
        v_i: np.ndarray,
        v_j: np.ndarray,
        omega_i: np.ndarray | None,
        omega_j: np.ndarray | None,
        xi: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-contact physics for touching pairs with ``dr = x_i - x_j``.

        Returns ``(f_i, torque, xi_new, pair_energy, pair_virial)`` where
        ``f_i`` is the force on atom ``i`` (atom ``j`` receives ``-f_i``),
        ``torque`` is the shared tangential moment vector — each side
        scatters ``-radius * torque`` — and ``pair_energy``/``pair_virial``
        are whole-pair quantities.  Every term is odd or even under the
        direction swap ``(i, j, dr) -> (j, i, -dr)`` exactly as Newton's
        third law requires, so evaluating the *directed* pair on each
        atom's owner (the parallel engine's newton-off scheme) reproduces
        this serial two-sided evaluation bit for bit.
        """
        n_hat = dr / r[:, None]
        delta = (radius_i + radius_j) - r
        m_eff = mass_i * mass_j / (mass_i + mass_j)

        # Relative velocity at the contact point (translational + spin).
        v_rel = v_i - v_j
        if omega_i is not None:
            spin = radius_i[:, None] * omega_i + radius_j[:, None] * omega_j
            v_rel = v_rel - np.cross(spin, n_hat)
        v_n = np.einsum("ij,ij->i", v_rel, n_hat)
        v_n_vec = v_n[:, None] * n_hat
        v_t_vec = v_rel - v_n_vec

        # Normal force: Hookean spring + velocity damping.
        f_n_mag = self.k_n * delta - self.gamma_n * m_eff * v_n
        f_n_vec = f_n_mag[:, None] * n_hat

        # Tangential: integrate history, project it into the current
        # tangent plane, spring + damping, Coulomb cap.
        xi = xi + v_t_vec * self.dt
        xi = xi - np.einsum("ij,ij->i", xi, n_hat)[:, None] * n_hat
        f_t_vec = -self.k_t * xi - self.gamma_t * m_eff[:, None] * v_t_vec
        f_t_mag = np.linalg.norm(f_t_vec, axis=1)
        cap = self.mu * np.abs(f_n_mag)
        over = f_t_mag > np.maximum(cap, 1e-300)
        if np.any(over):
            scale = np.where(over, cap / np.maximum(f_t_mag, 1e-300), 1.0)
            f_t_vec = f_t_vec * scale[:, None]
            # Rescale the stored history so the spring is consistent with
            # the capped force (LAMMPS does the same truncation).
            xi = np.where(over[:, None], -f_t_vec / self.k_t, xi)

        f_total = f_n_vec + f_t_vec
        torque = np.cross(n_hat, f_t_vec)
        # Elastic contact energy (normal spring only; damping and sliding
        # friction are dissipative, so total energy is *not* conserved —
        # the Chute tests assert dissipation instead).
        pair_energy = 0.5 * self.k_n * delta * delta
        pair_virial = np.einsum("ij,ij->i", dr, f_total)
        return f_total, torque, xi, pair_energy, pair_virial

    def compute(self, system: AtomSystem, neighbors: NeighborList) -> ForceResult:
        if system.radii is None:
            raise ValueError("HookeHistory needs a granular system (radii set)")
        kernel = self.backend
        i_all, j_all, dr_all, r_all = kernel.current_pairs(
            system, neighbors, self.cutoff
        )
        interactions = len(i_all)
        # Physics is evaluated once per unordered pair; the full list the
        # simulation keeps (newton off) is reflected in `interactions`.
        half = i_all < j_all
        i, j, dr, r = i_all[half], j_all[half], dr_all[half], r_all[half]

        radii = system.radii
        sum_r = radii[i] + radii[j]
        touching = r < sum_r
        i, j, dr, r = i[touching], j[touching], dr[touching], r[touching]
        keys = i * np.int64(system.n_atoms) + j
        xi = self.history.sync(keys)
        if len(i) == 0:
            return ForceResult(0.0, 0.0, interactions)

        # Per-pair gathers follow the geometry's (compute) dtype; the
        # tangential history deliberately stays float64 — it is restart
        # state, and the f32 -> f64 promotion where it enters the math
        # keeps its round-trip exact in every mode.
        ct = dr.dtype
        f_total, torque, xi, pair_energy, pair_virial = self.contact_terms(
            dr,
            r,
            radii[i].astype(ct, copy=False),
            radii[j].astype(ct, copy=False),
            system.masses[i].astype(ct, copy=False),
            system.masses[j].astype(ct, copy=False),
            system.velocities[i].astype(ct, copy=False),
            system.velocities[j].astype(ct, copy=False),
            system.omega[i].astype(ct, copy=False)
            if system.omega is not None
            else None,
            system.omega[j].astype(ct, copy=False)
            if system.omega is not None
            else None,
            xi,
        )
        self.history.store(xi)

        kernel.accumulate_pair_forces(system.forces, i, j, f_total)

        # Contact torques from the tangential force.
        if system.torques is not None:
            kernel.scatter_add(system.torques, i, -radii[i][:, None] * torque)
            kernel.scatter_add(system.torques, j, -radii[j][:, None] * torque)

        energy = float(np.sum(pair_energy, dtype=np.float64))
        virial = float(np.sum(pair_virial, dtype=np.float64))
        return ForceResult(energy, virial, interactions)

    @property
    def active_contacts(self) -> int:
        """Number of currently touching pairs with stored history."""
        return len(self.history)
