"""Lennard-Jones pair potential with cutoff (``pair_style lj/cut``).

The paper's LJ benchmark is a 3-D Lennard-Jones melt at the standard
reduced density 0.8442 with ``cutoff = 2.5 sigma``; its Chain benchmark
reuses the same functional form at the purely repulsive WCA cutoff
``2^(1/6) sigma``.
"""

from __future__ import annotations

import numpy as np

from repro.md.potentials.base import AnalyticPairPotential
from repro.md.potentials.mixing import build_mixed_tables

__all__ = ["LennardJonesCut", "WCA_CUTOFF"]

#: The Weeks-Chandler-Andersen cutoff ``2^(1/6)`` at which the LJ force
#: vanishes — Table 2's ``1.12 sigma`` cutoff for the Chain benchmark.
WCA_CUTOFF = 2.0 ** (1.0 / 6.0)


class LennardJonesCut(AnalyticPairPotential):
    """12-6 Lennard-Jones truncated at ``cutoff``.

    Parameters
    ----------
    epsilon, sigma:
        Either scalars (single-type system) or per-type 1-D arrays that
        are combined through ``mix_style`` into cross-type tables.
    cutoff:
        Truncation distance (in units of sigma for reduced systems).
    shift:
        Shift the energy so it is zero at the cutoff (LAMMPS
        ``pair_modify shift yes``).  Keeps energies continuous, which the
        NVE conservation tests rely on.
    tail_correction:
        Add the standard analytic long-range corrections for the
        truncated LJ interaction (LAMMPS ``pair_modify tail yes``) to the
        reported energy and virial.  Assumes a homogeneous fluid and
        g(r) = 1 beyond the cutoff; see :meth:`tail_energy`.
    mix_style:
        One of ``arithmetic`` / ``geometric`` / ``sixthpower``.
    """

    def __init__(
        self,
        epsilon: float | np.ndarray = 1.0,
        sigma: float | np.ndarray = 1.0,
        cutoff: float = 2.5,
        *,
        shift: bool = True,
        tail_correction: bool = False,
        mix_style: str = "geometric",
    ) -> None:
        eps = np.atleast_1d(np.asarray(epsilon, dtype=float))
        sig = np.atleast_1d(np.asarray(sigma, dtype=float))
        if eps.shape != sig.shape:
            raise ValueError("epsilon and sigma must have the same shape")
        self.eps_table, self.sigma_table = build_mixed_tables(eps, sig, mix_style)
        self.cutoff = float(cutoff)
        self.shift = bool(shift)
        self.tail_correction = bool(tail_correction)
        # Per-type-pair energy shift values at the cutoff.
        if self.shift:
            sr6 = (self.sigma_table / self.cutoff) ** 6
            self.shift_table = 4.0 * self.eps_table * (sr6 * sr6 - sr6)
        else:
            self.shift_table = np.zeros_like(self.eps_table)
        # Single-type systems (the LJ-melt and Chain benchmarks) skip the
        # per-pair coefficient gathers entirely and use scalars.
        self.needs_types = self.eps_table.size > 1

    def pair_terms(self, r, r2, type_i, type_j, q_i, q_j):
        # Python-float scalars and compute-dtype gathers keep the whole
        # formula in r2's dtype — a bare np.float64 scalar (or an f64
        # coefficient gather) would silently promote float32 pair math
        # back to float64 under NEP 50.
        if self.needs_types:
            # Cast the tiny n_types^2 tables (not the M-pair gathers).
            eps = self.eps_table.astype(r2.dtype, copy=False)[type_i, type_j]
            sigma = self.sigma_table.astype(r2.dtype, copy=False)[type_i, type_j]
            shift = self.shift_table.astype(r2.dtype, copy=False)[type_i, type_j]
        else:
            eps = float(self.eps_table[0, 0])
            sigma = float(self.sigma_table[0, 0])
            shift = float(self.shift_table[0, 0])
        inv_r2 = 1.0 / r2
        sr2 = sigma * sigma * inv_r2
        sr6 = sr2 * sr2 * sr2
        sr12 = sr6 * sr6
        energy = 4.0 * eps * (sr12 - sr6) - shift
        f_over_r = 24.0 * eps * (2.0 * sr12 - sr6) * inv_r2
        return energy, f_over_r

    def tail_energy(self, n_atoms: int, volume: float) -> float:
        """Long-range energy correction of the truncated potential.

        ``E_tail = (8/3) pi N rho eps sigma^3 [ (1/3)(sigma/rc)^9 -
        (sigma/rc)^3 ]`` per type pair (single-type form; evaluated with
        the type-0 coefficients, matching the suite's single-type decks).
        """
        if n_atoms < 1 or volume <= 0:
            raise ValueError("n_atoms >= 1 and volume > 0 required")
        eps = float(self.eps_table[0, 0])
        sigma = float(self.sigma_table[0, 0])
        rho = n_atoms / volume
        sr3 = (sigma / self.cutoff) ** 3
        return (
            (8.0 / 3.0) * np.pi * n_atoms * rho * eps * sigma**3
            * (sr3**3 / 3.0 - sr3)
        )

    def tail_virial(self, n_atoms: int, volume: float) -> float:
        """Long-range virial correction (enters the pressure as W/3V).

        ``W_tail = 16 pi N rho eps sigma^3 [ (2/3)(sigma/rc)^9 -
        (sigma/rc)^3 ]``.
        """
        if n_atoms < 1 or volume <= 0:
            raise ValueError("n_atoms >= 1 and volume > 0 required")
        eps = float(self.eps_table[0, 0])
        sigma = float(self.sigma_table[0, 0])
        rho = n_atoms / volume
        sr3 = (sigma / self.cutoff) ** 3
        return (
            16.0 * np.pi * n_atoms * rho * eps * sigma**3
            * (2.0 * sr3**3 / 3.0 - sr3)
        )

    def compute(self, system, neighbors):
        result = super().compute(system, neighbors)
        if self.tail_correction:
            result.energy += self.tail_energy(system.n_atoms, system.box.volume)
            result.virial += self.tail_virial(system.n_atoms, system.box.volume)
        return result

    def pair_energy(self, r: np.ndarray, ti: int = 0, tj: int = 0) -> np.ndarray:
        """Scalar pair energy profile (handy for tests and plots)."""
        r = np.asarray(r, dtype=float)
        e, _ = self.pair_terms(
            r,
            r * r,
            np.full(r.shape, ti, dtype=np.int64),
            np.full(r.shape, tj, dtype=np.int64),
            np.zeros_like(r),
            np.zeros_like(r),
        )
        return np.where(r < self.cutoff, e, 0.0)
