"""LAMMPS ``pair_modify mix`` rules for cross-type LJ coefficients.

Table 2 notes that Rhodopsin uses ``mix arithmetic``; the other styles
(``geometric`` and ``sixthpower``) are provided for completeness, exactly
as the LAMMPS ``pair_modify`` documentation defines them.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MIX_STYLES", "mix_epsilon", "mix_sigma", "build_mixed_tables"]

MIX_STYLES = ("arithmetic", "geometric", "sixthpower")


def mix_sigma(sigma_i: np.ndarray, sigma_j: np.ndarray, style: str) -> np.ndarray:
    """Combine same-type sigmas into a cross-type sigma."""
    sigma_i = np.asarray(sigma_i, dtype=float)
    sigma_j = np.asarray(sigma_j, dtype=float)
    if style == "arithmetic":
        return 0.5 * (sigma_i + sigma_j)
    if style == "geometric":
        return np.sqrt(sigma_i * sigma_j)
    if style == "sixthpower":
        return (0.5 * (sigma_i**6 + sigma_j**6)) ** (1.0 / 6.0)
    raise ValueError(f"unknown mix style {style!r}; expected one of {MIX_STYLES}")


def mix_epsilon(
    eps_i: np.ndarray,
    eps_j: np.ndarray,
    sigma_i: np.ndarray | None = None,
    sigma_j: np.ndarray | None = None,
    style: str = "arithmetic",
) -> np.ndarray:
    """Combine same-type epsilons into a cross-type epsilon."""
    eps_i = np.asarray(eps_i, dtype=float)
    eps_j = np.asarray(eps_j, dtype=float)
    if style in ("arithmetic", "geometric"):
        return np.sqrt(eps_i * eps_j)
    if style == "sixthpower":
        if sigma_i is None or sigma_j is None:
            raise ValueError("sixthpower epsilon mixing needs sigmas")
        sigma_i = np.asarray(sigma_i, dtype=float)
        sigma_j = np.asarray(sigma_j, dtype=float)
        num = 2.0 * np.sqrt(eps_i * eps_j) * sigma_i**3 * sigma_j**3
        den = sigma_i**6 + sigma_j**6
        return num / den
    raise ValueError(f"unknown mix style {style!r}; expected one of {MIX_STYLES}")


def build_mixed_tables(
    epsilons: np.ndarray, sigmas: np.ndarray, style: str = "arithmetic"
) -> tuple[np.ndarray, np.ndarray]:
    """Full ``(T, T)`` epsilon/sigma matrices from per-type coefficients."""
    epsilons = np.asarray(epsilons, dtype=float)
    sigmas = np.asarray(sigmas, dtype=float)
    if epsilons.shape != sigmas.shape or epsilons.ndim != 1:
        raise ValueError("epsilons and sigmas must be 1-D arrays of equal length")
    ei, ej = np.meshgrid(epsilons, epsilons, indexing="ij")
    si, sj = np.meshgrid(sigmas, sigmas, indexing="ij")
    return (
        mix_epsilon(ei, ej, si, sj, style=style),
        mix_sigma(si, sj, style=style),
    )
