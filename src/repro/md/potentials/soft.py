"""Soft cosine push-off potential (LAMMPS ``pair_style soft``).

``E = A (1 + cos(pi r / rc))`` for ``r < rc`` — finite at ``r = 0``, so
overlapping random-walk polymer configurations can be gently inflated
into a valid melt before the real excluded-volume potential is switched
on (the standard "fast push-off" used to prepare the Chain benchmark's
initial state).
"""

from __future__ import annotations

import numpy as np

from repro.md.potentials.base import AnalyticPairPotential

__all__ = ["SoftRepulsion"]


class SoftRepulsion(AnalyticPairPotential):
    """Bounded repulsion used for overlap removal.

    Parameters
    ----------
    prefactor:
        The strength ``A``; ramped up over the push-off run.
    cutoff:
        Range ``rc`` of the repulsion.
    """

    # Typeless and chargeless: skip both per-pair gathers.
    needs_types = False

    def __init__(self, prefactor: float = 1.0, cutoff: float = 2.0 ** (1.0 / 6.0)):
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        self.prefactor = float(prefactor)
        self.cutoff = float(cutoff)

    def pair_terms(self, r, r2, type_i, type_j, q_i, q_j):
        x = np.pi * r / self.cutoff
        energy = self.prefactor * (1.0 + np.cos(x))
        f_over_r = self.prefactor * np.pi / self.cutoff * np.sin(x) / r
        return energy, f_over_r
