"""Tabulated pair potential (LAMMPS ``pair_style table``).

Real force fields often arrive as tables (EAM setfl files, coarse-
grained potentials from iterative Boltzmann inversion).  This class
interpolates a sampled ``(r, E(r))`` curve with a cubic spline whose
analytic derivative supplies the forces — so energy and force stay
exactly consistent, which the finite-difference tests verify.
"""

from __future__ import annotations

import numpy as np
from scipy.interpolate import CubicSpline

from repro.md.potentials.base import AnalyticPairPotential

__all__ = ["TabulatedPair"]


class TabulatedPair(AnalyticPairPotential):
    """Cubic-spline interpolated pair potential.

    Parameters
    ----------
    r_values, energies:
        Sampled pair separations (strictly increasing, positive) and
        energies.  The last sample defines the cutoff; the energy is
        shifted so it vanishes there (continuous truncation).
    clamp_r:
        Distances below ``r_values[0]`` are evaluated at the first
        sample's slope (linear extrapolation) — prevents spline
        oscillation from inventing attractive cores.
    """

    # A single tabulated curve applies to every pair: no type gathers.
    needs_types = False

    def __init__(
        self,
        r_values: np.ndarray,
        energies: np.ndarray,
        *,
        clamp_r: bool = True,
    ) -> None:
        r_values = np.asarray(r_values, dtype=float)
        energies = np.asarray(energies, dtype=float)
        if r_values.ndim != 1 or r_values.shape != energies.shape:
            raise ValueError("r_values and energies must be equal-length 1-D")
        if len(r_values) < 4:
            raise ValueError("need at least 4 samples for a cubic spline")
        if np.any(np.diff(r_values) <= 0) or r_values[0] <= 0:
            raise ValueError("r_values must be positive and strictly increasing")
        self.cutoff = float(r_values[-1])
        self.r_min = float(r_values[0])
        self.clamp_r = bool(clamp_r)
        # Shift so E(cutoff) = 0 (continuous truncation).
        self._spline = CubicSpline(r_values, energies - energies[-1])
        self._derivative = self._spline.derivative()
        # Linear-extrapolation coefficients below r_min.
        self._e_min = float(self._spline(self.r_min))
        self._slope_min = float(self._derivative(self.r_min))

    @classmethod
    def from_potential(
        cls, potential, r_min: float, r_max: float, n_samples: int = 500
    ) -> "TabulatedPair":
        """Tabulate another potential's ``pair_energy`` profile."""
        r = np.linspace(r_min, r_max, n_samples)
        return cls(r, np.asarray(potential.pair_energy(r), dtype=float))

    def pair_terms(self, r, r2, type_i, type_j, q_i, q_j):
        r = np.asarray(r, dtype=float)
        inside = r >= self.r_min
        r_eval = np.where(inside, r, self.r_min)
        energy = self._spline(r_eval)
        de_dr = self._derivative(r_eval)
        if self.clamp_r:
            below = ~inside
            energy = np.where(
                below, self._e_min + self._slope_min * (r - self.r_min), energy
            )
            de_dr = np.where(below, self._slope_min, de_dr)
        return energy, -de_dr / r

    def pair_energy(self, r: np.ndarray) -> np.ndarray:
        """Scalar energy profile (zero beyond the cutoff)."""
        r = np.asarray(r, dtype=float)
        e, _ = self.pair_terms(r, r * r, None, None, None, None)
        return np.where(r < self.cutoff, e, 0.0)
