"""Tersoff bond-order potential for covalent solids (silicon).

The sixth workload: a *three-body* interaction shape none of the five
paper benchmarks exercises.  The SCC17 reproduction paper (PAPERS.md)
documents its vectorization story; this implementation keeps the
textbook form (Tersoff, PRB 38, 9902 (1988) — the "T3" silicon
parametrization)::

    E     = 1/2 sum_i sum_{j != i} fc(r_ij) [ fR(r_ij) + b_ij fA(r_ij) ]
    fR    = A exp(-lambda1 r)
    fA    = -B exp(-lambda2 r)
    b_ij  = (1 + (beta zeta_ij)^n)^(-1/(2n))
    zeta  = sum_{k != i,j} fc(r_ik) g(theta_ijk)
            exp(lambda3^m (r_ij - r_ik)^m)
    g     = gamma (1 + c^2/d^2 - c^2 / (d^2 + (h - cos theta)^2))

with the standard sine cutoff ramp between ``R - D`` and ``R + D``
(value *and* slope vanish at both ends, so forces stay the exact
analytic gradient — checked by the finite-difference property tests).

Because ``b_ij != b_ji``, every *directed* pair carries its own bond
order: the potential sets :attr:`needs_full_list` and evaluates each
ordered pair once, exactly like the granular contact model.  All pair
geometry and scatter accumulation go through the kernel-backend
primitives, so every registered backend (``numpy_ref``, ``numpy_fast``,
``compiled``) produces the same triplet traversal from the same CSR
rows, and the backend-parity contract holds at the 1e-12 tier.

The triplet expansion is fully vectorized: directed pairs arrive sorted
by head atom (CSR order), so each pair's angular partners are the other
pairs of its own row — a ragged self-join built from ``bincount`` /
``cumsum`` / ``repeat``, no Python-level loop over atoms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.atoms import AtomSystem
from repro.md.neighbor import NeighborList
from repro.md.potentials.base import ForceResult, PairPotential

__all__ = ["TersoffParameters", "Tersoff"]


@dataclass(frozen=True)
class TersoffParameters:
    """Tersoff coefficients; defaults are the 1988 "T3" silicon set.

    The values match the stock LAMMPS ``Si.tersoff`` file (metal units:
    eV and Angstrom).  ``R``/``D`` give the cutoff ramp midpoint and
    half-width, so the interaction cutoff is ``R + D = 3.0 Angstrom`` —
    just past the diamond first-neighbour shell at ``a sqrt(3)/4``.
    """

    A: float = 1830.8
    B: float = 471.18
    lambda1: float = 2.4799
    lambda2: float = 1.7322
    lambda3: float = 1.7322
    n: float = 0.78734
    beta: float = 1.1e-6
    c: float = 1.0039e5
    d: float = 16.217
    h: float = -0.59825
    gamma: float = 1.0
    m: int = 3
    R: float = 2.85
    D: float = 0.15

    @property
    def cutoff(self) -> float:
        return self.R + self.D


class Tersoff(PairPotential):
    """Single-species Tersoff potential over a full (directed) list."""

    #: Each directed pair carries its own bond order ``b_ij``.
    needs_full_list = True
    needs_types = False

    def __init__(self, params: TersoffParameters | None = None) -> None:
        self.params = params if params is not None else TersoffParameters()
        self.cutoff = self.params.cutoff

    def halo_width(self, list_cutoff: float) -> float:
        """Tersoff needs neighbor-of-neighbor reach in the ghost shell.

        The bond order of a directed pair ``(i, j)`` sums over *i's* own
        neighbourhood, so — as for EAM's densities — halo atoms within
        ``list_cutoff`` of a subdomain must carry complete rows, which a
        shell of ``list_cutoff + cutoff`` guarantees.
        """
        return float(list_cutoff) + self.cutoff

    # -- scalar ingredient functions -------------------------------------
    def cutoff_function(self, r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Sine-ramp cutoff ``fc(r)`` and its derivative.

        1 below ``R - D``, 0 above ``R + D``, with zero slope at both
        ramp ends.
        """
        p = self.params
        r = np.asarray(r)
        x = (r - p.R) / p.D
        inside = 0.5 - 0.5 * np.sin(0.5 * np.pi * np.clip(x, -1.0, 1.0))
        fc = np.where(x <= -1.0, 1.0, np.where(x >= 1.0, 0.0, inside))
        ramp = (np.abs(x) < 1.0).astype(r.dtype)
        dfc = ramp * (
            -0.25 * np.pi / p.D * np.cos(0.5 * np.pi * np.clip(x, -1.0, 1.0))
        )
        return fc, dfc

    def repulsive(self, r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``fR(r) = A exp(-lambda1 r)`` and its derivative."""
        p = self.params
        fr = p.A * np.exp(-p.lambda1 * r)
        return fr, -p.lambda1 * fr

    def attractive(self, r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``fA(r) = -B exp(-lambda2 r)`` and its derivative."""
        p = self.params
        fa = -p.B * np.exp(-p.lambda2 * r)
        return fa, -p.lambda2 * fa

    def angular(self, cos_theta: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``g(cos theta)`` and ``dg/dcos``."""
        p = self.params
        u = p.h - cos_theta
        denom = p.d * p.d + u * u
        g = p.gamma * (1.0 + p.c * p.c / (p.d * p.d) - p.c * p.c / denom)
        dg = -2.0 * p.gamma * p.c * p.c * u / (denom * denom)
        return g, dg

    def bond_order(self, zeta: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``b(zeta)`` and ``db/dzeta`` (0 at ``zeta = 0``: no triplets,
        no angular force)."""
        p = self.params
        zeta = np.asarray(zeta)
        safe = np.where(zeta > 0.0, zeta, 1.0)
        bz = (p.beta * safe) ** p.n
        b = (1.0 + bz) ** (-0.5 / p.n)
        db = -0.5 * bz / safe * (1.0 + bz) ** (-0.5 / p.n - 1.0)
        one = np.ones_like(zeta)
        return np.where(zeta > 0.0, b, one), np.where(zeta > 0.0, db, 0.0)

    # -- evaluation -------------------------------------------------------
    def compute(self, system: AtomSystem, neighbors: NeighborList) -> ForceResult:
        kernel = self.backend
        # Directed pairs (the list is full), CSR order: sorted by i.
        i, j, dr, r = kernel.current_pairs(system, neighbors, self.cutoff)
        n_pairs = len(i)
        if n_pairs == 0:
            return ForceResult()
        ct = kernel.policy.compute_dtype
        if dr.dtype != ct:
            dr = dr.astype(ct)
            r = r.astype(ct)

        p = self.params
        fc, dfc = self.cutoff_function(r)
        fr, dfr = self.repulsive(r)
        fa, dfa = self.attractive(r)

        # --- ragged self-join: pair p with every other pair q of its row.
        counts = np.bincount(i, minlength=system.n_atoms)
        row_start = np.concatenate(([0], np.cumsum(counts)))[:-1]
        reps = counts[i]  # row population, per pair
        t_p = np.repeat(np.arange(n_pairs), reps)
        segment_base = np.repeat(np.cumsum(reps) - reps, reps)
        t_q = np.repeat(row_start[i], reps) + (
            np.arange(len(t_p)) - segment_base
        )
        keep = t_q != t_p  # exclude k == j (rows never repeat a partner)
        t_p, t_q = t_p[keep], t_q[keep]

        # --- zeta over triplets (i fixed per row; j from p, k from q).
        r_p, r_q = r[t_p], r[t_q]
        inv_rp, inv_rq = 1.0 / r_p, 1.0 / r_q
        # dr = x_i - x_j, so the unit bond vectors point *away from* i
        # with a sign flip; the flips cancel inside cos(theta).
        cos_theta = (
            np.einsum("ij,ij->i", dr[t_p], dr[t_q]) * inv_rp * inv_rq
        )
        g, dg = self.angular(cos_theta)
        fc_q, dfc_q = fc[t_q], dfc[t_q]
        diff = r_p - r_q
        lam3m = p.lambda3**p.m
        if p.m == 3:
            expo = np.exp(lam3m * diff * diff * diff)
            dexpo = 3.0 * lam3m * diff * diff * expo
        else:
            expo = np.exp(lam3m * diff**p.m)
            dexpo = p.m * lam3m * diff ** (p.m - 1) * expo

        zeta = np.zeros(n_pairs, dtype=kernel.policy.accumulate_dtype)
        kernel.scatter_add(zeta, t_p, fc_q * g * expo)
        b, db = self.bond_order(zeta)
        b = b.astype(ct, copy=False)
        db = db.astype(ct, copy=False)

        # --- energy and radial pair force (bond order held fixed).
        pair_energy = 0.5 * fc * (fr + b * fa)
        w = 0.5 * (dfc * (fr + b * fa) + fc * (dfr + b * dfa))
        energy = float(np.sum(pair_energy, dtype=np.float64))

        # force = -dE/dx; dE/dx_i = w * dr / r for the radial part.
        f_over_r = -w * (1.0 / r)
        kernel.accumulate_scaled_pair_forces(system.forces, i, j, dr, f_over_r)
        virial = float(np.sum(f_over_r * r * r, dtype=np.float64))

        # --- angular/zeta gradients, per triplet.
        # dE/dzeta of pair p, gathered onto its triplets.
        dE_dzeta = (0.5 * fc * fa * db)[t_p]
        g_q = fc_q * g  # shorthand for the zeta prefactor sans expo
        dz_drp = fc_q * g * dexpo
        dz_drq = dfc_q * g * expo - g_q * dexpo
        dz_dcos = fc_q * dg * expo

        ii, jj, kk = i[t_p], j[t_p], j[t_q]
        e1 = -dr[t_p] * inv_rp[:, None]  # unit i -> j
        e2 = -dr[t_q] * inv_rq[:, None]  # unit i -> k

        # Radial channels: r_p moves i and j, r_q moves i and k.
        s1 = (dE_dzeta * dz_drp)[:, None] * e1
        s2 = (dE_dzeta * dz_drq)[:, None] * e2
        # Angle channel: standard cos-theta gradients.
        s3 = dE_dzeta * dz_dcos
        dcos_dj = (e2 - cos_theta[:, None] * e1) * inv_rp[:, None]
        dcos_dk = (e1 - cos_theta[:, None] * e2) * inv_rq[:, None]
        f_j = -(s1 + s3[:, None] * dcos_dj)
        f_k = -(s2 + s3[:, None] * dcos_dk)
        kernel.scatter_add(system.forces, jj, f_j)
        kernel.scatter_add(system.forces, kk, f_k)
        kernel.scatter_add(system.forces, ii, -(f_j + f_k))

        # The cos-theta channel is virial-free (its gradients are
        # orthogonal to their bond vectors); only the radial channels
        # contribute, each ``-r dE/dr`` like the pair part above.
        virial -= float(
            np.sum(np.einsum("ij,ij->i", s1, e1) * r_p, dtype=np.float64)
        )
        virial -= float(
            np.sum(np.einsum("ij,ij->i", s2, e2) * r_q, dtype=np.float64)
        )
        return ForceResult(energy, virial, n_pairs)

    # -- analysis helpers -------------------------------------------------
    def dimer_energy(self, r: float) -> float:
        """Energy of an isolated pair (``zeta = 0``, ``b = 1``)."""
        arr = np.asarray([float(r)])
        fc, _ = self.cutoff_function(arr)
        fr, _ = self.repulsive(arr)
        fa, _ = self.attractive(arr)
        return float(fc[0] * (fr[0] + fa[0]))
