"""Precision policy for the functional engine (paper §8, Figs. 15-16).

The paper's precision sensitivity study runs each benchmark in single,
mixed and double floating-point modes.  :class:`PrecisionPolicy` carries
that choice through the real engine as three dtypes:

``storage_dtype``
    The dtype of the master per-atom state (positions, velocities,
    forces) and of the shared-memory exchange buffers in the parallel
    engine.  SINGLE stores float32 (halving shm/halo bytes); MIXED and
    DOUBLE keep float64 master state.
``compute_dtype``
    The dtype the pair/bonded/k-space kernels evaluate in.  SINGLE and
    MIXED compute in float32; DOUBLE in float64.
``accumulate_dtype``
    The dtype per-atom force/energy accumulation happens in.  MIXED
    accumulates float32 pair terms into float64 totals — the classic
    GPU-package compromise (Trott et al.) that recovers most of
    single's speed at near-double accuracy.  SINGLE accumulates in
    float32, DOUBLE in float64.

The user-facing vocabulary is the existing
:class:`repro.perfmodel.precision.Precision` enum, so the modeled and
measured layers speak the same three mode names.  ``numpy_ref`` stays a
pure float64 oracle regardless of policy; per-mode oracle tolerances
(:attr:`PrecisionPolicy.force_rtol`) say how closely a mode's
``numpy_fast`` forces must track that oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perfmodel.precision import PRECISIONS, Precision

__all__ = [
    "Precision",
    "PrecisionPolicy",
    "parse_precision",
    "policy_for",
    "DOUBLE_POLICY",
    "PARITY_TOLERANCES",
]

#: Max |Δ| allowed when comparing *trajectories* produced under
#: different execution modes (backend, provider, serial-vs-parallel) at
#: the same precision — the cross-mode tiers the checkpoint CLI and
#: ``repro certify`` both apply.  Same-mode replay needs no tolerance:
#: it is bitwise by contract.
PARITY_TOLERANCES: dict[str, float] = {
    "double": 1e-10,
    "mixed": 1e-3,
    "single": 1e-2,
}


def parse_precision(spec: "Precision | str | None") -> Precision:
    """Resolve a precision spec into a :class:`Precision` member.

    Accepts a :class:`Precision`, a case-insensitive mode name
    (``"single"`` / ``"MIXED"`` / ``"Double"``), or ``None`` for the
    float64 default.  Unknown names raise ``ValueError`` listing the
    valid modes.
    """
    if spec is None:
        return Precision.DOUBLE
    if isinstance(spec, Precision):
        return spec
    if isinstance(spec, str):
        try:
            return Precision(spec.strip().lower())
        except ValueError:
            valid = ", ".join(repr(p.value) for p in PRECISIONS)
            raise ValueError(
                f"unknown precision mode {spec!r}; valid modes are {valid} "
                "(case-insensitive)"
            ) from None
    raise TypeError(
        f"precision must be a Precision, str, or None, not {type(spec).__name__}"
    )


@dataclass(frozen=True)
class PrecisionPolicy:
    """The dtype triple (plus oracle tolerance) one mode implies."""

    mode: Precision
    storage_dtype: np.dtype
    compute_dtype: np.dtype
    accumulate_dtype: np.dtype
    #: RMS relative force error allowed vs the float64 ``numpy_ref``
    #: oracle on an identical configuration.
    force_rtol: float

    @property
    def is_double(self) -> bool:
        """True when every stage runs float64 (the historical behavior)."""
        return (
            self.storage_dtype == np.float64
            and self.compute_dtype == np.float64
            and self.accumulate_dtype == np.float64
        )

    @classmethod
    def from_spec(cls, spec: "Precision | str | PrecisionPolicy | None") -> "PrecisionPolicy":
        """Resolve any accepted precision spec into a policy."""
        if isinstance(spec, PrecisionPolicy):
            return spec
        return _POLICIES[parse_precision(spec)]


_POLICIES: dict[Precision, PrecisionPolicy] = {
    Precision.SINGLE: PrecisionPolicy(
        mode=Precision.SINGLE,
        storage_dtype=np.dtype(np.float32),
        compute_dtype=np.dtype(np.float32),
        accumulate_dtype=np.dtype(np.float32),
        force_rtol=1e-4,
    ),
    Precision.MIXED: PrecisionPolicy(
        mode=Precision.MIXED,
        storage_dtype=np.dtype(np.float64),
        compute_dtype=np.dtype(np.float32),
        accumulate_dtype=np.dtype(np.float64),
        force_rtol=1e-5,
    ),
    Precision.DOUBLE: PrecisionPolicy(
        mode=Precision.DOUBLE,
        storage_dtype=np.dtype(np.float64),
        compute_dtype=np.dtype(np.float64),
        accumulate_dtype=np.dtype(np.float64),
        force_rtol=1e-12,
    ),
}


def policy_for(spec: "Precision | str | PrecisionPolicy | None") -> PrecisionPolicy:
    """Shorthand for :meth:`PrecisionPolicy.from_spec`."""
    return PrecisionPolicy.from_spec(spec)


#: The float64-everywhere default every layer assumes when no policy is
#: given — bitwise-identical to the engine before precision modes.
DOUBLE_POLICY = _POLICIES[Precision.DOUBLE]
