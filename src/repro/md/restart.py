"""Simulation snapshot/restart serialization (format v2).

Production MD runs checkpoint their state; this module saves and loads
the *complete* dynamical state of a :class:`~repro.md.simulation.
Simulation` to a single ``.npz`` file, so a restart reproduces the
uninterrupted trajectory bit for bit on every suite benchmark — not
just plain NVE:

* particle state — positions, velocities, forces, images, box, charges,
  topology, granular radii/omega/torques — plus the step counter and
  the energy/virial the restored step already computed;
* integrator internals — Nose-Hoover thermostat friction ``zeta``,
  barostat strain rate ``eta`` and the virial feeding the next
  barostat half-step;
* fix internals — most notably the Langevin thermostat's RNG stream,
  restored bit-for-bit via the generator's bit-generator state;
* granular contact history — the tangential-displacement store of
  every ``gran/hooke/history`` potential (collected from the worker
  processes when running on the parallel engine);
* neighbor-list build state — the positions/box of the last rebuild,
  so the restored list has the *same pair ordering* (hence the same
  floating-point summation order) and the same rebuild cadence as the
  uninterrupted run, plus all bookkeeping counters.

Format v1 files (pre-reliability, particle state only) are detected
explicitly: :func:`restore_simulation` refuses them unless the caller
opts into the lossy upgrade with ``allow_v1=True``, because loading one
as if it were complete silently diverges for every thermostatted or
granular workload.  See ``docs/RELIABILITY.md`` for the layout.
"""

from __future__ import annotations

import json
import zipfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.md.atoms import AtomSystem, Topology
from repro.md.box import Box
from repro.md.precision import parse_precision
from repro.md.simulation import Simulation

__all__ = [
    "FORMAT_VERSION",
    "Snapshot",
    "SnapshotError",
    "save_snapshot",
    "load_snapshot",
    "load_system",
    "restore_simulation",
]

FORMAT_VERSION = 2

#: Exceptions np.load / zip decompression raise on damaged files.
_IO_ERRORS = (
    OSError,
    KeyError,
    EOFError,
    ValueError,
    zipfile.BadZipFile,
    zlib.error,
)


class SnapshotError(ValueError):
    """A snapshot file is missing, damaged, or incompatible."""


@dataclass
class Snapshot:
    """A fully parsed snapshot file."""

    version: int
    step_number: int
    system: AtomSystem
    potential_energy: float | None = None
    virial: float | None = None
    #: Integrator/fix/constraint/counter state (empty for v1 files).
    state: dict = field(default_factory=dict)
    #: ``(positions_at_build, box_lengths_at_build)`` of the neighbor
    #: list, or ``None`` if the simulation was never set up.
    neighbor_build: tuple[np.ndarray, np.ndarray] | None = None
    #: Per-potential-slot granular contact histories ``(keys, values)``
    #: in canonical half-list orientation (``i < j``).
    histories: dict[int, tuple[np.ndarray, np.ndarray]] = field(
        default_factory=dict
    )


def _json_default(obj):
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON-serializable: {type(obj).__name__}")


def _dynamic_state(simulation: Simulation) -> dict:
    counts = simulation.counts
    return {
        "precision": simulation.precision.mode.value,
        "integrator": {
            "type": type(simulation.integrator).__name__,
            "state": simulation.integrator.state_dict(),
        },
        "fixes": [
            {"type": type(fix).__name__, "state": fix.state_dict()}
            for fix in simulation.fixes
        ],
        "constraints": (
            None
            if simulation.constraints is None
            else simulation.constraints.state_dict()
        ),
        "counts": {
            "timesteps": counts.timesteps,
            "pair_interactions": counts.pair_interactions,
            "bond_evaluations": counts.bond_evaluations,
            "kspace_grid_points": counts.kspace_grid_points,
            "neighbor_builds": counts.neighbor_builds,
            "shake_iterations": counts.shake_iterations,
        },
        "neighbor_stats": simulation.neighbor.stats.state_dict(),
    }


def snapshot_payload(simulation: Simulation) -> dict[str, np.ndarray]:
    """Assemble the npz payload for the simulation's current state.

    Exposed separately from :func:`save_snapshot` so the checkpoint
    manager can gather state (including the worker-history round-trip
    on the parallel engine) *before* opening the output file.
    """
    system = simulation.system
    payload: dict[str, np.ndarray] = {
        "format_version": np.array([FORMAT_VERSION]),
        "step_number": np.array([simulation.step_number]),
        "potential_energy": np.array([simulation.potential_energy]),
        "virial": np.array([simulation.virial]),
        "box_lengths": system.box.lengths,
        "box_periodic": system.box.periodic,
        "box_origin": system.box.origin,
        "positions": system.positions,
        "velocities": system.velocities,
        "forces": system.forces,
        "images": system.images,
        "masses": system.masses,
        "types": system.types,
        "charges": system.charges,
        "molecule_ids": system.molecule_ids,
        "bonds": system.topology.bonds,
        "bond_types": system.topology.bond_types,
        "angles": system.topology.angles,
        "angle_types": system.topology.angle_types,
    }
    if system.radii is not None:
        payload["radii"] = system.radii
        payload["omega"] = system.omega
        payload["torques"] = system.torques

    build_state = simulation.neighbor.export_build_state()
    if build_state is not None:
        payload["neigh_positions_at_build"] = build_state[0]
        payload["neigh_box_lengths_at_build"] = build_state[1]

    state = _dynamic_state(simulation)
    histories = simulation.force_executor.export_contact_histories()
    state["history_slots"] = sorted(histories)
    for slot, (keys, values) in histories.items():
        payload[f"hist{slot}_keys"] = np.asarray(keys, dtype=np.int64)
        payload[f"hist{slot}_values"] = np.asarray(values, dtype=float)

    encoded = json.dumps(state, default=_json_default).encode("utf-8")
    payload["state_json"] = np.frombuffer(encoded, dtype=np.uint8)
    return payload


def save_snapshot(simulation: Simulation, path: str | Path) -> Path:
    """Write the simulation's complete state to ``path`` (.npz, v2).

    The write is *not* atomic by itself — the checkpoint manager in
    :mod:`repro.reliability` wraps it in a temp-file + rename dance so a
    crash mid-write can never leave a half-written "latest" checkpoint.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = snapshot_payload(simulation)
    # Write through an explicit handle so the exact filename is kept
    # (np.savez_compressed appends ".npz" to bare path names, which
    # would break the atomic temp-file protocol above us).
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **payload)
    return path


def _system_from(data) -> tuple[AtomSystem, int]:
    box = Box(
        data["box_lengths"],
        periodic=data["box_periodic"],
        origin=data["box_origin"],
    )
    topology = Topology(
        bonds=data["bonds"],
        bond_types=data["bond_types"],
        angles=data["angles"],
        angle_types=data["angle_types"],
    )
    system = AtomSystem(
        data["positions"],
        box,
        velocities=data["velocities"],
        masses=data["masses"],
        types=data["types"],
        charges=data["charges"],
        topology=topology,
        radii=data["radii"] if "radii" in data else None,
        molecule_ids=data["molecule_ids"],
    )
    # Restore exact wrap/image state (the constructor re-wraps).
    system.positions = data["positions"].copy()
    system.images = data["images"].copy()
    system.forces = data["forces"].copy()
    if "omega" in data:
        system.omega = data["omega"].copy()
        system.torques = data["torques"].copy()
    step = int(data["step_number"][0])
    return system, step


def load_snapshot(path: str | Path) -> Snapshot:
    """Parse a snapshot file into a :class:`Snapshot`.

    Raises :class:`SnapshotError` for missing/truncated/corrupted files
    and unknown format versions, so callers (the recovery path walks a
    retention chain newest-first) can distinguish "bad file" from a
    programming error.
    """
    path = Path(path)
    try:
        with np.load(path) as data:
            version = int(data["format_version"][0])
            if version not in (1, FORMAT_VERSION):
                raise SnapshotError(
                    f"snapshot format v{version} unsupported (expected "
                    f"v1 or v{FORMAT_VERSION}): {path}"
                )
            system, step = _system_from(data)
            if version == 1:
                return Snapshot(version=1, step_number=step, system=system)

            state = json.loads(bytes(data["state_json"]).decode("utf-8"))
            neighbor_build = None
            if "neigh_positions_at_build" in data:
                neighbor_build = (
                    data["neigh_positions_at_build"].copy(),
                    data["neigh_box_lengths_at_build"].copy(),
                )
            histories = {
                int(slot): (
                    data[f"hist{slot}_keys"].copy(),
                    data[f"hist{slot}_values"].copy(),
                )
                for slot in state.get("history_slots", [])
            }
            return Snapshot(
                version=version,
                step_number=step,
                system=system,
                potential_energy=float(data["potential_energy"][0]),
                virial=float(data["virial"][0]),
                state=state,
                neighbor_build=neighbor_build,
                histories=histories,
            )
    except SnapshotError:
        raise
    except _IO_ERRORS as exc:
        raise SnapshotError(f"unreadable snapshot {path}: {exc!r}") from exc


def load_system(path: str | Path) -> tuple[AtomSystem, int]:
    """Rebuild the :class:`AtomSystem` and step counter from a snapshot.

    Works for v1 and v2 files — this accessor only surfaces particle
    state; use :func:`load_snapshot` for the dynamical extras.
    """
    snapshot = load_snapshot(path)
    return snapshot.system, snapshot.step_number


def _rebuild_neighbors_as_at_build(
    simulation: Simulation,
    at_positions: np.ndarray,
    at_lengths: np.ndarray,
) -> None:
    """Rebuild neighbor state from the configuration of the *original*
    build, so pair ordering and rebuild cadence match the uninterrupted
    run exactly.  The live particle state is swapped back afterwards."""
    system = simulation.system
    live_positions = system.positions
    live_lengths = system.box.lengths
    # Build-state positions keep the run's storage dtype (float32 under
    # SINGLE), so the rebuilt pair ordering matches the original build.
    system.positions = np.array(
        at_positions, dtype=simulation.precision.storage_dtype
    )
    system.box.lengths = np.array(at_lengths, dtype=float)
    try:
        simulation.force_executor.maintain_neighbors(system, force=True)
    finally:
        system.positions = live_positions
        system.box.lengths = live_lengths


def _check_tags(simulation: Simulation, state: dict, path: Path) -> None:
    saved = state["integrator"]["type"]
    have = type(simulation.integrator).__name__
    if saved != have:
        raise SnapshotError(
            f"snapshot {path} was written with integrator {saved} but the "
            f"simulation runs {have}; rebuild the simulation to match"
        )
    saved_fixes = [entry["type"] for entry in state["fixes"]]
    have_fixes = [type(fix).__name__ for fix in simulation.fixes]
    if saved_fixes != have_fixes:
        raise SnapshotError(
            f"snapshot {path} was written with fixes {saved_fixes} but the "
            f"simulation has {have_fixes}; rebuild the simulation to match"
        )


def _restore_particle_state(simulation: Simulation, system: AtomSystem) -> None:
    target = simulation.system
    if system.n_atoms != target.n_atoms:
        raise SnapshotError(
            f"snapshot holds {system.n_atoms} atoms but the simulation has "
            f"{target.n_atoms}"
        )
    # Same-mode restores see a no-op astype (float32 state round-trips
    # bit for bit); an explicit ``cast=`` opt-in lands here with a real
    # dtype conversion into the simulation's storage dtype.
    dtype = simulation.precision.storage_dtype
    target.box.lengths = system.box.lengths.copy()
    target.positions = system.positions.astype(dtype, copy=False)
    target.velocities = system.velocities.astype(dtype, copy=False)
    target.forces = system.forces.astype(dtype, copy=False)
    target.images = system.images
    if system.omega is not None and target.omega is not None:
        target.omega = system.omega.astype(dtype, copy=False)
        target.torques = system.torques.astype(dtype, copy=False)


def restore_simulation(
    simulation: Simulation,
    path: str | Path,
    *,
    allow_v1: bool = False,
    cast: str | None = None,
) -> Snapshot:
    """Load a snapshot *into* an existing simulation in place.

    The simulation must have been constructed with the same topology,
    force field, integrator and fixes; this swaps in the saved particle
    and dynamical state and reconstructs the neighbor list from its
    original build inputs, after which continuing the run reproduces
    the uninterrupted trajectory bit for bit.

    v2 snapshots record the precision mode they were written under
    (older v2 files without the tag are float64).  Resuming under a
    *different* mode silently changes the trajectory, so a mismatch is
    refused unless ``cast=`` names the simulation's own mode as an
    explicit opt-in — e.g. ``cast="double"`` to promote a SINGLE
    checkpoint's float32 state into a float64 run.

    v1 snapshots only hold particle state.  They are rejected with a
    :class:`SnapshotError` unless ``allow_v1=True`` explicitly opts into
    the upgrade, in which case integrator/thermostat/RNG/contact state
    restarts from the freshly constructed values (documented lossy
    behavior, exact only for plain NVE).
    """
    snapshot = load_snapshot(path)
    saved_mode = parse_precision(
        snapshot.state.get("precision", "double")
        if snapshot.version != 1
        else "double"
    )
    have_mode = simulation.precision.mode
    if saved_mode != have_mode:
        if cast is None:
            raise SnapshotError(
                f"snapshot {path} was written under precision "
                f"'{saved_mode.value}' but the simulation runs "
                f"'{have_mode.value}'; resuming across modes changes the "
                f"trajectory — pass cast='{have_mode.value}' to convert "
                "the checkpointed state explicitly"
            )
        if parse_precision(cast) != have_mode:
            raise SnapshotError(
                f"cast='{cast}' does not match the simulation's precision "
                f"'{have_mode.value}'; cast names the mode the restored "
                "state is converted *to*"
            )
    if snapshot.version == 1:
        if not allow_v1:
            raise SnapshotError(
                f"snapshot {path} is format v1, which captures particle "
                "state only — integrator/thermostat/fix/RNG/contact state "
                "is missing, so a blind restore silently diverges for "
                "anything but plain NVE; pass allow_v1=True to upgrade "
                "explicitly (dynamic state restarts from fresh values)"
            )
        _restore_particle_state(simulation, snapshot.system)
        simulation.step_number = snapshot.step_number
        # Legacy semantics: fresh rebuild + force pass from the restored
        # coordinates (cadence and summation order restart here).
        simulation.neighbor.build(simulation.system)
        simulation._compute_forces(count=False)  # noqa: SLF001 - deliberate reset
        simulation._setup_done = True  # noqa: SLF001
        return snapshot

    _check_tags(simulation, snapshot.state, Path(path))
    _restore_particle_state(simulation, snapshot.system)
    simulation.step_number = snapshot.step_number
    simulation.potential_energy = float(snapshot.potential_energy)
    simulation.virial = float(snapshot.virial)
    simulation.integrator.load_state_dict(snapshot.state["integrator"]["state"])
    for fix, entry in zip(simulation.fixes, snapshot.state["fixes"]):
        fix.load_state_dict(entry["state"])
    if simulation.constraints is not None and snapshot.state["constraints"]:
        simulation.constraints.load_state_dict(snapshot.state["constraints"])
    counts = snapshot.state["counts"]
    for name, value in counts.items():
        setattr(simulation.counts, name, int(value))

    # Contact histories go in *before* the neighbor rebuild: the
    # parallel executor respawns its worker pool with these tables as
    # the workers' initial stores at the rebuild dispatch below.
    simulation.force_executor.import_contact_histories(snapshot.histories)

    if snapshot.neighbor_build is not None:
        _rebuild_neighbors_as_at_build(simulation, *snapshot.neighbor_build)
        simulation.neighbor.stats.load_state_dict(
            snapshot.state["neighbor_stats"]
        )
        # Forces/energy/virial were restored verbatim — no recompute.  A
        # recompute would not only waste a force pass, it would *advance*
        # granular contact histories a second time.
        simulation._setup_done = True  # noqa: SLF001
    else:
        # Snapshot predates the first step: let the normal setup run.
        simulation._setup_done = False  # noqa: SLF001
    simulation._initial_energy = None  # noqa: SLF001 - drift baseline resets
    return snapshot
