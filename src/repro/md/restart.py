"""Simulation snapshot/restart serialization.

Production MD runs checkpoint their state; this module saves and loads
the complete :class:`~repro.md.atoms.AtomSystem` (positions, velocities,
images, charges, topology, granular state) plus the step counter to a
single ``.npz`` file.  Restarting from a snapshot reproduces the exact
trajectory of an uninterrupted run (tested bit-for-bit for NVE).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.md.atoms import AtomSystem, Topology
from repro.md.box import Box
from repro.md.simulation import Simulation

__all__ = ["save_snapshot", "load_system", "restore_simulation"]

_FORMAT_VERSION = 1


def save_snapshot(simulation: Simulation, path: str | Path) -> Path:
    """Write the simulation's state to ``path`` (.npz)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    system = simulation.system
    payload: dict[str, np.ndarray] = {
        "format_version": np.array([_FORMAT_VERSION]),
        "step_number": np.array([simulation.step_number]),
        "box_lengths": system.box.lengths,
        "box_periodic": system.box.periodic,
        "box_origin": system.box.origin,
        "positions": system.positions,
        "velocities": system.velocities,
        "forces": system.forces,
        "images": system.images,
        "masses": system.masses,
        "types": system.types,
        "charges": system.charges,
        "molecule_ids": system.molecule_ids,
        "bonds": system.topology.bonds,
        "bond_types": system.topology.bond_types,
        "angles": system.topology.angles,
        "angle_types": system.topology.angle_types,
    }
    if system.radii is not None:
        payload["radii"] = system.radii
        payload["omega"] = system.omega
        payload["torques"] = system.torques
    np.savez_compressed(path, **payload)
    return path


def load_system(path: str | Path) -> tuple[AtomSystem, int]:
    """Rebuild the :class:`AtomSystem` and step counter from a snapshot."""
    with np.load(Path(path)) as data:
        version = int(data["format_version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"snapshot format v{version} unsupported (expected v{_FORMAT_VERSION})"
            )
        box = Box(
            data["box_lengths"],
            periodic=data["box_periodic"],
            origin=data["box_origin"],
        )
        topology = Topology(
            bonds=data["bonds"],
            bond_types=data["bond_types"],
            angles=data["angles"],
            angle_types=data["angle_types"],
        )
        system = AtomSystem(
            data["positions"],
            box,
            velocities=data["velocities"],
            masses=data["masses"],
            types=data["types"],
            charges=data["charges"],
            topology=topology,
            radii=data["radii"] if "radii" in data else None,
            molecule_ids=data["molecule_ids"],
        )
        # Restore exact wrap/image state (the constructor re-wraps).
        system.positions = data["positions"].copy()
        system.images = data["images"].copy()
        system.forces = data["forces"].copy()
        if "omega" in data:
            system.omega = data["omega"].copy()
            system.torques = data["torques"].copy()
        step = int(data["step_number"][0])
    return system, step


def restore_simulation(simulation: Simulation, path: str | Path) -> None:
    """Load a snapshot *into* an existing simulation in place.

    The simulation must have been constructed with the same topology and
    force field; this swaps in the saved particle state, step counter
    and forces, and invalidates the neighbor list so the next step
    rebuilds from the restored coordinates.
    """
    system, step = load_system(path)
    target = simulation.system
    if system.n_atoms != target.n_atoms:
        raise ValueError(
            f"snapshot holds {system.n_atoms} atoms but the simulation has "
            f"{target.n_atoms}"
        )
    target.box.lengths = system.box.lengths.copy()
    target.positions = system.positions
    target.velocities = system.velocities
    target.forces = system.forces
    target.images = system.images
    if system.omega is not None and target.omega is not None:
        target.omega = system.omega
        target.torques = system.torques
    simulation.step_number = step
    # Force a rebuild and a fresh force evaluation on the next step.
    simulation.neighbor.build(target)
    simulation._compute_forces(count=False)  # noqa: SLF001 - deliberate reset
    simulation._setup_done = True  # noqa: SLF001
