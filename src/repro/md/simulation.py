"""The MD timestep loop (Figure 1 of the paper).

:class:`Simulation` wires together the substrates — neighbor list, pair
potentials, bonded terms, k-space solver, fixes, integrator and
constraints — into the canonical timestep:

I   initial integration            (Modify — integrators are fixes)
II  fixes / constraints            (Modify)
III neighbor-list maintenance      (Neigh)
IV  boundary bookkeeping           (Comm; inter-rank exchange when
                                    decomposed, plain PBC wrap here)
V   pairwise short-range forces    (Pair)
VI  long-range forces              (Kspace)
VII bonded forces                  (Bond)
VIII property computes / output    (Output)

Each phase runs inside the matching :class:`~repro.md.timers.TaskTimers`
slot, so a run yields the same task breakdown the paper measures, plus
the operation counters (pair interactions, rebuild cadence, grid points)
that calibrate the performance model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.md.atoms import AtomSystem
from repro.md.bonded import BondedForce
from repro.md.constraints import ShakeConstraints
from repro.md.fixes import Fix
from repro.md.integrators import Integrator, NoseHooverNPT, VelocityVerletNVE
from repro.md.kernels import KernelBackend, get_backend
from repro.md.kspace.base import KSpaceSolver
from repro.md.neighbor import NeighborList
from repro.md.potentials.base import PairPotential
from repro.md.thermo import ThermoLog
from repro.md.timers import TaskTimers

__all__ = ["Simulation", "OperationCounts"]


@dataclass
class OperationCounts:
    """Work counters the performance model reads off a functional run."""

    timesteps: int = 0
    pair_interactions: int = 0
    bond_evaluations: int = 0
    kspace_grid_points: int = 0
    neighbor_builds: int = 0
    shake_iterations: int = 0

    @property
    def pair_interactions_per_step(self) -> float:
        return self.pair_interactions / max(1, self.timesteps)


class Simulation:
    """A complete MD experiment: system + force field + integrator.

    Parameters
    ----------
    system:
        The :class:`~repro.md.atoms.AtomSystem` under study.
    potentials:
        Pairwise/many-body potentials (the "Pair" task).
    bonded:
        Bonded terms (the "Bond" task).
    kspace:
        Optional long-range solver (the "Kspace" task).
    integrator:
        Defaults to plain NVE velocity Verlet.
    fixes:
        Per-step fixes (thermostats, gravity, walls — "Modify").
    constraints:
        Optional SHAKE constraint set ("Modify").
    dt:
        Timestep in the experiment's own units.  Performance is always
        reported in timesteps/s regardless of granularity (Section 2).
    skin:
        Neighbor-list skin distance (Table 2's per-benchmark values).
    exclusions:
        Non-bonded exclusion pairs (masked in the neighbor list and
        corrected in k-space).
    thermo_every:
        Output interval ("Output" task).
    backend:
        Kernel backend for the Pair-task hot loop — a
        :class:`~repro.md.kernels.base.KernelBackend` instance, a
        registry name (``"numpy_ref"`` / ``"numpy_fast"``), or ``None``
        to fall back to ``$REPRO_KERNEL_BACKEND`` and then the default.
        One backend instance (and hence one set of scratch buffers) is
        shared by every potential of the simulation.
    """

    def __init__(
        self,
        system: AtomSystem,
        potentials: Sequence[PairPotential] = (),
        *,
        bonded: Sequence[BondedForce] = (),
        kspace: KSpaceSolver | None = None,
        integrator: Integrator | None = None,
        fixes: Sequence[Fix] = (),
        constraints: ShakeConstraints | None = None,
        dt: float = 0.005,
        skin: float = 0.3,
        exclusions: np.ndarray | None = None,
        thermo_every: int = 100,
        backend: KernelBackend | str | None = None,
    ) -> None:
        self.system = system
        self.potentials = list(potentials)
        self.backend = get_backend(backend)
        for potential in self.potentials:
            potential.backend = self.backend
        self.bonded = list(bonded)
        self.kspace = kspace
        self.integrator = integrator if integrator is not None else VelocityVerletNVE()
        self.fixes = list(fixes)
        self.constraints = constraints
        self.dt = float(dt)
        self.timers = TaskTimers()
        self.counts = OperationCounts()
        self.thermo = ThermoLog(every=thermo_every)
        #: Total wall-clock spent inside :meth:`step` — by construction
        #: equal to ``timers.total`` because the untimed remainder of
        #: each step is booked under the "Other" task.
        self.step_seconds = 0.0
        self.step_number = 0
        self.potential_energy = 0.0
        self.virial = 0.0

        if self.potentials:
            cutoff = max(p.cutoff for p in self.potentials)
            full = any(p.needs_full_list for p in self.potentials)
        else:
            cutoff, full = 1.0, False
        self.neighbor = NeighborList(
            cutoff, skin, full=full, exclusions=exclusions
        )
        self._setup_done = False

    # ------------------------------------------------------------------
    @property
    def n_constraints(self) -> int:
        return 0 if self.constraints is None else self.constraints.n_constraints

    def setup(self) -> None:
        """Initial neighbor build and force evaluation (step 0 state)."""
        self.system.wrap()
        self.neighbor.build(self.system)
        self._compute_forces(count=False)
        self._setup_done = True

    def _compute_forces(self, count: bool = True) -> None:
        """Zero and recompute all forces; refresh energy and virial."""
        self.system.forces[:] = 0.0
        if self.system.torques is not None:
            self.system.torques[:] = 0.0
        energy = 0.0
        virial = 0.0
        with self.timers.time("Pair"):
            for potential in self.potentials:
                result = potential.compute(self.system, self.neighbor)
                energy += result.energy
                virial += result.virial
                if count:
                    self.counts.pair_interactions += result.interactions
        with self.timers.time("Bond"):
            for term in self.bonded:
                result = term.compute(self.system)
                energy += result.energy
                virial += result.virial
                if count:
                    self.counts.bond_evaluations += result.interactions
        with self.timers.time("Kspace"):
            if self.kspace is not None:
                result = self.kspace.compute(self.system)
                energy += result.energy
                virial += result.virial
                if count:
                    self.counts.kspace_grid_points += result.interactions
        self.potential_energy = energy
        self.virial = virial
        if (
            not np.isfinite(energy)
            or not np.all(np.isfinite(self.system.forces))
            or not np.all(np.isfinite(self.system.positions))
        ):
            raise FloatingPointError(
                f"non-finite forces/energy at step {self.step_number} — "
                "the configuration blew up (timestep too large, overlapping "
                "atoms, or an unstable thermostat setting)"
            )
        if isinstance(self.integrator, NoseHooverNPT):
            self.integrator.set_virial(virial)

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the system by one timestep (Figure 1, steps I-VIII).

        Every phase runs under its Table 1 task timer; whatever loop
        overhead falls between the timed regions is accumulated into
        the "Other" task at the end of the step, so the per-task
        breakdown sums exactly to the measured step wall-clock (the
        same bookkeeping LAMMPS' timing table uses).
        """
        step_start = time.perf_counter()
        timed_before = self.timers.total
        if not self._setup_done:
            self.setup()
        self.step_number += 1
        self.counts.timesteps += 1

        # I/II - initial integration and position constraints (Modify).
        with self.timers.time("Modify"):
            if self.constraints is not None:
                reference = self.system.positions.copy()
            self.integrator.initial_integrate(self.system, self.dt)
            if self.constraints is not None:
                self.constraints.apply_positions(self.system, reference, self.dt)
                self.counts.shake_iterations += self.constraints.last_iterations

        # IV - boundary bookkeeping (in a decomposed run: ghost exchange).
        with self.timers.time("Comm"):
            self.system.wrap()

        # III - neighbor-list maintenance.
        with self.timers.time("Neigh"):
            if self.neighbor.ensure(self.system):
                self.counts.neighbor_builds += 1

        # V/VI/VII - force computation (timed per task inside).
        self._compute_forces()

        # Post-force fixes, final integration, velocity constraints.
        with self.timers.time("Modify"):
            for fix in self.fixes:
                fix.post_force(self.system, self.dt, self.step_number)
            self.integrator.final_integrate(self.system, self.dt)
            if self.constraints is not None:
                self.constraints.apply_velocities(self.system)

        # VIII - thermodynamic output.
        with self.timers.time("Output"):
            if self.thermo.should_log(self.step_number):
                self.thermo.record(
                    self.step_number,
                    self.system,
                    self.potential_energy,
                    self.virial,
                    self.n_constraints,
                )

        # Book the untimed remainder of the step as "Other" so the task
        # breakdown accounts for 100% of the step wall-clock.
        elapsed = time.perf_counter() - step_start
        timed_delta = self.timers.total - timed_before
        self.timers.seconds["Other"] += max(0.0, elapsed - timed_delta)
        self.step_seconds += max(elapsed, timed_delta)

    def run(self, n_steps: int) -> None:
        """Run ``n_steps`` timesteps."""
        if n_steps < 0:
            raise ValueError("n_steps must be non-negative")
        for _ in range(n_steps):
            self.step()

    # ------------------------------------------------------------------
    def total_energy(self) -> float:
        return self.system.kinetic_energy() + self.potential_energy

    def task_breakdown(self) -> dict[str, float]:
        """Fraction of run time per Table 1 task."""
        return self.timers.fractions()

    def timesteps_per_second(self) -> float:
        """Measured functional-engine throughput (TS/s)."""
        total = self.timers.total
        if total <= 0:
            return float("inf")
        return self.counts.timesteps / total
