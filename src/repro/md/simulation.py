"""The MD timestep loop (Figure 1 of the paper).

:class:`Simulation` wires together the substrates — neighbor list, pair
potentials, bonded terms, k-space solver, fixes, integrator and
constraints — into the canonical timestep:

I   initial integration            (Modify — integrators are fixes)
II  fixes / constraints            (Modify)
III neighbor-list maintenance      (Neigh)
IV  boundary bookkeeping           (Comm; inter-rank exchange when
                                    decomposed, plain PBC wrap here)
V   pairwise short-range forces    (Pair)
VI  long-range forces              (Kspace)
VII bonded forces                  (Bond)
VIII property computes / output    (Output)

Each phase runs inside the matching :class:`~repro.md.timers.TaskTimers`
slot, so a run yields the same task breakdown the paper measures, plus
the operation counters (pair interactions, rebuild cadence, grid points)
that calibrate the performance model.
"""

from __future__ import annotations

import abc
import time
import warnings
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.md.atoms import AtomSystem
from repro.md.bonded import BondedForce
from repro.md.config import RunConfig
from repro.md.constraints import ShakeConstraints
from repro.md.fixes import Fix
from repro.md.integrators import Integrator, NoseHooverNPT, VelocityVerletNVE
from repro.md.kernels import KernelBackend, get_backend
from repro.md.kspace.base import KSpaceSolver
from repro.md.kernels.tracing import TracingBackend
from repro.md.neighbor import NeighborList
from repro.md.potentials.base import ForceResult, PairPotential
from repro.md.precision import Precision, PrecisionPolicy, policy_for
from repro.md.thermo import ThermoLog
from repro.md.timers import TaskTimers
from repro.observability import MetricsRegistry, resolve_tracer

__all__ = [
    "Simulation",
    "OperationCounts",
    "ForceExecutor",
    "SerialForceExecutor",
]

# The legacy-kwarg deprecation shim warns once per process, not once per
# call site, so long sweeps don't drown in repeats.
_LEGACY_RUN_KWARGS_WARNED = False


@dataclass
class OperationCounts:
    """Work counters the performance model reads off a functional run."""

    timesteps: int = 0
    pair_interactions: int = 0
    bond_evaluations: int = 0
    kspace_grid_points: int = 0
    neighbor_builds: int = 0
    shake_iterations: int = 0

    @property
    def pair_interactions_per_step(self) -> float:
        return self.pair_interactions / max(1, self.timesteps)


class ForceExecutor(abc.ABC):
    """Strategy for the Neigh + Pair tasks of the timestep.

    The Simulation owns the step loop, integrators, bonded terms and
    k-space solver; *how* the short-range pair work and its neighbor
    lists are evaluated is delegated here so the same loop can run the
    in-process serial path or the domain-decomposed worker pool of
    :class:`repro.parallel.engine.ParallelForceExecutor` unchanged.
    """

    simulation: "Simulation"

    def bind(self, simulation: "Simulation") -> None:
        """Attach to the owning simulation (called once, at the end of
        ``Simulation.__init__``, after potentials/neighbor exist)."""
        self.simulation = simulation

    @abc.abstractmethod
    def maintain_neighbors(self, system: AtomSystem, *, force: bool = False) -> bool:
        """Rebuild neighbor state if stale (or ``force``); True if rebuilt."""

    @abc.abstractmethod
    def compute(self, system: AtomSystem) -> ForceResult:
        """Evaluate all pair potentials into ``system.forces``/``torques``.

        Returns the aggregate energy/virial/interaction totals summed in
        potential order.  Forces (and torques, for granular systems)
        must already be zeroed by the caller.
        """

    def export_contact_histories(self) -> dict[int, tuple]:
        """Per-potential contact-history tables for checkpointing.

        Keys are potential slots; values are ``(keys, values)`` arrays in
        the canonical half-list orientation (``i < j``, displacement
        ``x_i - x_j``).  The serial default reads the potentials' own
        stores; the parallel executor overrides this to collect the
        worker-local stores through shared memory.
        """
        tables: dict[int, tuple] = {}
        for slot, potential in enumerate(self.simulation.potentials):
            history = getattr(potential, "history", None)
            if history is not None and hasattr(history, "export"):
                tables[slot] = history.export()
        return tables

    def import_contact_histories(self, tables: dict[int, tuple]) -> None:
        """Install checkpointed contact histories before resuming."""
        for slot, (keys, values) in tables.items():
            if slot >= len(self.simulation.potentials):
                raise ValueError(
                    f"snapshot stores contact history for potential slot "
                    f"{slot} but the simulation has "
                    f"{len(self.simulation.potentials)} potentials"
                )
            history = getattr(self.simulation.potentials[slot], "history", None)
            if history is None or not hasattr(history, "load"):
                raise ValueError(
                    f"potential slot {slot} ({type(self.simulation.potentials[slot]).__name__}) "
                    "has no contact history to restore into"
                )
            history.load(keys, values)

    def close(self) -> None:
        """Release executor resources (worker processes, shared memory)."""


class SerialForceExecutor(ForceExecutor):
    """The default in-process executor: one core, one neighbor list."""

    def maintain_neighbors(self, system: AtomSystem, *, force: bool = False) -> bool:
        neighbor = self.simulation.neighbor
        if force:
            neighbor.build(system)
            return True
        return neighbor.ensure(system)

    def compute(self, system: AtomSystem) -> ForceResult:
        total = ForceResult()
        for potential in self.simulation.potentials:
            total += potential.compute(system, self.simulation.neighbor)
        return total


class Simulation:
    """A complete MD experiment: system + force field + integrator.

    Parameters
    ----------
    system:
        The :class:`~repro.md.atoms.AtomSystem` under study.
    potentials:
        Pairwise/many-body potentials (the "Pair" task).
    bonded:
        Bonded terms (the "Bond" task).
    kspace:
        Optional long-range solver (the "Kspace" task).
    integrator:
        Defaults to plain NVE velocity Verlet.
    fixes:
        Per-step fixes (thermostats, gravity, walls — "Modify").
    constraints:
        Optional SHAKE constraint set ("Modify").
    dt:
        Timestep in the experiment's own units.  Performance is always
        reported in timesteps/s regardless of granularity (Section 2).
    skin:
        Neighbor-list skin distance (Table 2's per-benchmark values).
    exclusions:
        Non-bonded exclusion pairs (masked in the neighbor list and
        corrected in k-space).
    thermo_every:
        Output interval ("Output" task).
    backend:
        Kernel backend for the Pair- and Neigh-task hot loops — a
        :class:`~repro.md.kernels.base.KernelBackend` instance, a
        registry name (``"numpy_ref"`` / ``"numpy_fast"`` /
        ``"compiled"``), or ``None`` to fall back to
        ``$REPRO_KERNEL_BACKEND`` and then the default.  ``"compiled"``
        needs numba or a system C compiler and degrades to
        ``numpy_fast`` with a warning otherwise.  One backend instance
        (and hence one set of scratch buffers) is shared by every
        potential and the neighbor list of the simulation.
    tracer:
        Span tracer recording the step timeline — a
        :class:`~repro.observability.Tracer`, ``True`` for a fresh
        default one, or ``None`` to consult ``$REPRO_TRACE`` and fall
        back to the zero-cost disabled tracer.  When enabled, every
        timestep phase, kernel-backend call, neighbor rebuild and
        k-space stage is recorded (Chrome-trace exportable).
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry`; when
        given, each step updates step-duration histograms and work
        gauges (pair interactions, rebuild cadence, energy drift, SHAKE
        iterations, kernel scratch growth).
    force_executor:
        Strategy object evaluating the Neigh + Pair tasks each step.
        Defaults to :class:`SerialForceExecutor`; pass a
        :class:`repro.parallel.engine.ParallelForceExecutor` to run the
        pair work across domain-decomposed worker processes.  Call
        :meth:`close` (or use the simulation as a context manager) when
        the executor holds external resources.
    precision:
        Floating-point mode for the whole engine — a
        :class:`~repro.md.precision.Precision` member, a
        case-insensitive mode name (``"single"`` / ``"mixed"`` /
        ``"double"``), a full
        :class:`~repro.md.precision.PrecisionPolicy`, or ``None`` for
        the float64 default (bitwise-identical to the engine before
        precision modes existed).  When a parallel executor was built
        with its own mode, ``None`` adopts it and a conflicting explicit
        mode raises.
    """

    def __init__(
        self,
        system: AtomSystem,
        potentials: Sequence[PairPotential] = (),
        *,
        bonded: Sequence[BondedForce] = (),
        kspace: KSpaceSolver | None = None,
        integrator: Integrator | None = None,
        fixes: Sequence[Fix] = (),
        constraints: ShakeConstraints | None = None,
        dt: float = 0.005,
        skin: float = 0.3,
        exclusions: np.ndarray | None = None,
        thermo_every: int = 100,
        backend: KernelBackend | str | None = None,
        tracer=None,
        metrics: MetricsRegistry | None = None,
        force_executor: ForceExecutor | None = None,
        precision: "Precision | str | PrecisionPolicy | None" = None,
    ) -> None:
        self.system = system
        self.potentials = list(potentials)
        self.tracer = resolve_tracer(tracer)
        self.metrics = metrics
        self.force_executor = (
            force_executor if force_executor is not None else SerialForceExecutor()
        )
        #: Active :class:`~repro.md.precision.PrecisionPolicy` — float64
        #: everywhere unless a mode was requested.  An executor that was
        #: constructed with its own mode (the parallel engine types its
        #: shared-memory buffers at start-up) is the source of truth: the
        #: simulation adopts it when no mode was asked for here, and a
        #: conflicting explicit mode is an error rather than a silent
        #: mismatch between master state and worker buffers.
        executor_policy = getattr(self.force_executor, "precision", None)
        if precision is None and isinstance(executor_policy, PrecisionPolicy):
            self.precision = executor_policy
        else:
            self.precision = policy_for(precision)
            if (
                isinstance(executor_policy, PrecisionPolicy)
                and executor_policy != self.precision
            ):
                raise ValueError(
                    f"force executor was built for precision "
                    f"'{executor_policy.mode.value}' but the simulation asked "
                    f"for '{self.precision.mode.value}'; construct both with "
                    "the same mode"
                )
        self.system.cast_storage(self.precision.storage_dtype)
        self.backend = get_backend(backend)
        self.backend.set_policy(self.precision)
        if self.tracer.enabled:
            self.backend = TracingBackend(self.backend, self.tracer)
        for potential in self.potentials:
            potential.backend = self.backend
        self.bonded = list(bonded)
        for term in self.bonded:
            term.policy = self.precision
        self.kspace = kspace
        if kspace is not None:
            kspace.tracer = self.tracer
            kspace.policy = self.precision
        self.integrator = integrator if integrator is not None else VelocityVerletNVE()
        self.fixes = list(fixes)
        self.constraints = constraints
        self.dt = float(dt)
        self.timers = TaskTimers(tracer=self.tracer)
        self.counts = OperationCounts()
        self.thermo = ThermoLog(every=thermo_every)
        #: Total wall-clock spent inside :meth:`step` — by construction
        #: equal to ``timers.total`` because the untimed remainder of
        #: each step is booked under the "Other" task.
        self.step_seconds = 0.0
        self.step_number = 0
        self.potential_energy = 0.0
        self.virial = 0.0

        if self.potentials:
            cutoff = max(p.cutoff for p in self.potentials)
            full = any(p.needs_full_list for p in self.potentials)
        else:
            cutoff, full = 1.0, False
        self.neighbor = NeighborList(
            cutoff, skin, full=full, exclusions=exclusions
        )
        self.neighbor.tracer = self.tracer
        # The neighbor build consults the same backend instance (the
        # compiled backend's native cell-list path; numpy backends
        # decline the hook and keep the vectorized build).
        self.neighbor.kernels = self.backend
        self._setup_done = False
        self._initial_energy: float | None = None
        self.force_executor.bind(self)

    # ------------------------------------------------------------------
    @property
    def n_constraints(self) -> int:
        return 0 if self.constraints is None else self.constraints.n_constraints

    def setup(self) -> None:
        """Initial neighbor build and force evaluation (step 0 state)."""
        self.system.wrap()
        self.force_executor.maintain_neighbors(self.system, force=True)
        self._compute_forces(count=False)
        self._setup_done = True

    def _compute_forces(self, count: bool = True) -> None:
        """Zero and recompute all forces; refresh energy and virial."""
        self.system.forces[:] = 0.0
        if self.system.torques is not None:
            self.system.torques[:] = 0.0
        energy = 0.0
        virial = 0.0
        with self.timers.time("Pair"):
            result = self.force_executor.compute(self.system)
            energy += result.energy
            virial += result.virial
            if count:
                self.counts.pair_interactions += result.interactions
        with self.timers.time("Bond"):
            for term in self.bonded:
                result = term.compute(self.system)
                energy += result.energy
                virial += result.virial
                if count:
                    self.counts.bond_evaluations += result.interactions
        with self.timers.time("Kspace"):
            if self.kspace is not None:
                result = self.kspace.compute(self.system)
                energy += result.energy
                virial += result.virial
                if count:
                    self.counts.kspace_grid_points += result.interactions
        self.potential_energy = energy
        self.virial = virial
        if (
            not np.isfinite(energy)
            or not np.all(np.isfinite(self.system.forces))
            or not np.all(np.isfinite(self.system.positions))
        ):
            raise FloatingPointError(
                f"non-finite forces/energy at step {self.step_number} — "
                "the configuration blew up (timestep too large, overlapping "
                "atoms, or an unstable thermostat setting)"
            )
        if isinstance(self.integrator, NoseHooverNPT):
            self.integrator.set_virial(virial)

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the system by one timestep (Figure 1, steps I-VIII).

        Every phase runs under its Table 1 task timer; whatever loop
        overhead falls between the timed regions is accumulated into
        the "Other" task at the end of the step, so the per-task
        breakdown sums exactly to the measured step wall-clock (the
        same bookkeeping LAMMPS' timing table uses).
        """
        tracer = self.tracer
        step_start = time.perf_counter()
        if tracer.enabled:
            tracer.begin("step", "step", ts=step_start)
        timed_before = self.timers.total
        if not self._setup_done:
            self.setup()
        self.step_number += 1
        self.counts.timesteps += 1

        # I/II - initial integration and position constraints (Modify).
        with self.timers.time("Modify"):
            if self.constraints is not None:
                reference = self.system.positions.copy()
            self.integrator.initial_integrate(self.system, self.dt)
            if self.constraints is not None:
                self.constraints.apply_positions(self.system, reference, self.dt)
                self.counts.shake_iterations += self.constraints.last_iterations

        # IV - boundary bookkeeping (in a decomposed run: ghost exchange).
        with self.timers.time("Comm"):
            self.system.wrap()

        # III - neighbor-list maintenance.
        with self.timers.time("Neigh"):
            if self.force_executor.maintain_neighbors(self.system):
                self.counts.neighbor_builds += 1

        # V/VI/VII - force computation (timed per task inside).
        self._compute_forces()

        # Post-force fixes, final integration, velocity constraints.
        with self.timers.time("Modify"):
            for fix in self.fixes:
                fix.post_force(self.system, self.dt, self.step_number)
            self.integrator.final_integrate(self.system, self.dt)
            if self.constraints is not None:
                self.constraints.apply_velocities(self.system)

        # VIII - thermodynamic output.
        with self.timers.time("Output"):
            if self.thermo.should_log(self.step_number):
                self.thermo.record(
                    self.step_number,
                    self.system,
                    self.potential_energy,
                    self.virial,
                    self.n_constraints,
                )

        # Book the untimed remainder of the step as "Other" so the task
        # breakdown accounts for 100% of the step wall-clock.
        step_end = time.perf_counter()
        elapsed = step_end - step_start
        timed_delta = self.timers.total - timed_before
        self.timers.seconds["Other"] += max(0.0, elapsed - timed_delta)
        self.step_seconds += max(elapsed, timed_delta)
        if tracer.enabled:
            tracer.end(ts=step_end)
        if self.metrics is not None:
            self._record_step_metrics(elapsed)

    def run(
        self,
        n_steps: "int | RunConfig",
        *,
        reset_timers: bool = False,
        checkpoint=None,
    ) -> None:
        """Run the timesteps a :class:`~repro.md.config.RunConfig` asks for.

        The preferred spelling passes one config object::

            sim.run(RunConfig(steps=1000, reset_timers=True))

        which can also switch precision mode, kernel backend and tracer
        for the run (see :class:`~repro.md.config.RunConfig`).  A bare
        integer step count — ``sim.run(1000)`` — remains first-class.

        The legacy keyword arguments ``reset_timers=`` / ``checkpoint=``
        still work but are deprecated: they forward into a
        :class:`RunConfig` and emit one ``DeprecationWarning`` per
        process.  For crash *recovery* on top of periodic checkpoints,
        drive the loop through
        :class:`repro.reliability.ResilientRunner` instead.
        """
        if isinstance(n_steps, RunConfig):
            if reset_timers or checkpoint is not None:
                raise TypeError(
                    "pass reset_timers/checkpoint inside the RunConfig, not "
                    "as keyword arguments alongside it"
                )
            config = n_steps
        else:
            if reset_timers or checkpoint is not None:
                global _LEGACY_RUN_KWARGS_WARNED
                if not _LEGACY_RUN_KWARGS_WARNED:
                    _LEGACY_RUN_KWARGS_WARNED = True
                    warnings.warn(
                        "Simulation.run(n, reset_timers=..., checkpoint=...) "
                        "keyword arguments are deprecated; pass a "
                        "repro.md.RunConfig instead: "
                        "run(RunConfig(n, reset_timers=..., checkpoint=...))",
                        DeprecationWarning,
                        stacklevel=2,
                    )
            if n_steps < 0:
                raise ValueError("n_steps must be non-negative")
            config = RunConfig(
                n_steps, reset_timers=reset_timers, checkpoint=checkpoint
            )

        if config.tracer is not None:
            self.attach_tracer(config.tracer)
        if config.backend is not None:
            self.set_backend(config.backend)
        if config.precision is not None:
            self.set_precision(config.precision)
        if config.reset_timers:
            self.reset_timers()
        for _ in range(config.steps):
            self.step()
            if config.checkpoint is not None:
                config.checkpoint.maybe_checkpoint(self)
            if config.digest is not None:
                config.digest.maybe_record(self)

    def reset_timers(self) -> None:
        """Zero the per-task timers and the step wall-clock accumulator."""
        self.timers.reset()
        self.step_seconds = 0.0

    def close(self) -> None:
        """Release force-executor resources (workers, shared memory)."""
        self.force_executor.close()

    def __enter__(self) -> "Simulation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def set_precision(
        self, precision: "Precision | str | PrecisionPolicy"
    ) -> None:
        """Switch the active precision policy in place (serial engine).

        Casts the master per-atom state to the new storage dtype,
        re-points every kernel/bonded/k-space layer at the new compute
        dtype, and schedules a fresh neighbor build + force evaluation
        so the next step runs entirely under the new mode.  Parallel
        executors type their shared-memory buffers at start-up, so a
        mode change there requires constructing a new executor.
        """
        policy = policy_for(precision)
        if policy == self.precision:
            return
        if not isinstance(self.force_executor, SerialForceExecutor):
            raise ValueError(
                "cannot change precision on a non-serial force executor — "
                "its buffers are typed at start-up; construct a new executor "
                f"with precision='{policy.mode.value}' instead"
            )
        self.precision = policy
        self.system.cast_storage(policy.storage_dtype)
        self.backend.set_policy(policy)
        for term in self.bonded:
            term.policy = policy
        if self.kspace is not None:
            self.kspace.policy = policy
        # Neighbor state and step-0 forces were built under the old
        # dtype; redo both before the next step.
        self._setup_done = False

    def set_backend(self, backend: "KernelBackend | str") -> None:
        """Swap the kernel backend, preserving tracing and precision."""
        new = get_backend(backend)
        new.set_policy(self.precision)
        self.backend = (
            TracingBackend(new, self.tracer) if self.tracer.enabled else new
        )
        for potential in self.potentials:
            potential.backend = self.backend
        self.neighbor.kernels = self.backend

    # ------------------------------------------------------------------
    def attach_tracer(self, tracer) -> None:
        """(Re)wire a span tracer through every instrumented layer.

        Accepts the same specs as the constructor's ``tracer`` argument;
        useful for instrumenting a simulation a suite builder already
        assembled.  Passing ``None`` (with ``$REPRO_TRACE`` unset)
        detaches tracing and unwraps the kernel backend.
        """
        tracer = resolve_tracer(tracer)
        self.tracer = tracer
        self.timers.tracer = tracer
        self.neighbor.tracer = tracer
        if self.kspace is not None:
            self.kspace.tracer = tracer
        inner = getattr(self.backend, "inner", self.backend)
        self.backend = TracingBackend(inner, tracer) if tracer.enabled else inner
        for potential in self.potentials:
            potential.backend = self.backend
        self.neighbor.kernels = self.backend

    def attach_metrics(self, metrics: MetricsRegistry | None) -> None:
        """Attach (or detach, with ``None``) a metrics registry."""
        self.metrics = metrics

    def _record_step_metrics(self, elapsed: float) -> None:
        """Per-step registry update (only runs with metrics attached)."""
        metrics = self.metrics
        metrics.counter("md_steps_total").inc()
        metrics.histogram("md_step_seconds").observe(elapsed)
        metrics.counter("md_pair_interactions_total").sync_total(
            self.counts.pair_interactions
        )
        metrics.counter("md_neighbor_builds_total").sync_total(
            self.counts.neighbor_builds
        )
        stats = self.neighbor.stats
        metrics.gauge("md_neighbor_pairs").set(stats.last_pairs)
        metrics.gauge("md_neighbor_rebuild_every").set(
            0.0 if stats.n_builds == 0 else stats.total_steps / stats.n_builds
        )
        total_energy = self.total_energy()
        if self._initial_energy is None:
            self._initial_energy = total_energy
        denom = abs(self._initial_energy)
        metrics.gauge("md_energy_drift_rel").set(
            (total_energy - self._initial_energy) / denom if denom > 0 else 0.0
        )
        if self.constraints is not None:
            metrics.counter("md_shake_iterations_total").sync_total(
                self.counts.shake_iterations
            )
            metrics.gauge("md_shake_iterations_last").set(
                self.constraints.last_iterations
            )
        inner = getattr(self.backend, "inner", self.backend)
        metrics.gauge("md_kernel_scratch_capacity_pairs").set(
            getattr(inner, "_capacity", 0)
        )

    # ------------------------------------------------------------------
    def total_energy(self) -> float:
        return self.system.kinetic_energy() + self.potential_energy

    def task_breakdown(self) -> dict[str, float]:
        """Fraction of run time per Table 1 task."""
        return self.timers.fractions()

    def timesteps_per_second(self) -> float:
        """Measured functional-engine throughput (TS/s)."""
        total = self.timers.total
        if total <= 0:
            return float("inf")
        return self.counts.timesteps / total
