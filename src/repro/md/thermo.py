"""Thermodynamic computes and output logging (Fig. 1 step VIII).

LAMMPS' "Output" task covers "thermodynamic info and dump files"
(Table 1); here a :class:`ThermoLog` accumulates per-interval rows of
temperature, energies and pressure that tests and examples inspect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.md.atoms import AtomSystem

__all__ = ["ThermoSnapshot", "ThermoLog", "pressure"]


def pressure(system: AtomSystem, virial: float) -> float:
    """Instantaneous isotropic pressure ``(2 KE + W) / (3 V)``.

    ``W`` is the scalar virial ``sum_pairs r . f`` with each pair counted
    once (what every :class:`~repro.md.potentials.base.ForceResult`
    reports).
    """
    return (2.0 * system.kinetic_energy() + virial) / (3.0 * system.box.volume)


@dataclass
class ThermoSnapshot:
    """One thermo output row."""

    step: int
    temperature: float
    kinetic_energy: float
    potential_energy: float
    total_energy: float
    pressure: float
    volume: float

    def as_tuple(self) -> tuple:
        return (
            self.step,
            self.temperature,
            self.kinetic_energy,
            self.potential_energy,
            self.total_energy,
            self.pressure,
            self.volume,
        )


@dataclass
class ThermoLog:
    """Accumulates thermo rows at a fixed interval."""

    every: int = 100
    rows: list[ThermoSnapshot] = field(default_factory=list)

    def should_log(self, step: int) -> bool:
        return self.every > 0 and step % self.every == 0

    def record(
        self,
        step: int,
        system: AtomSystem,
        potential_energy: float,
        virial: float,
        n_constraints: int = 0,
    ) -> ThermoSnapshot:
        ke = system.kinetic_energy()
        snap = ThermoSnapshot(
            step=step,
            temperature=system.temperature(n_constraints),
            kinetic_energy=ke,
            potential_energy=potential_energy,
            total_energy=ke + potential_energy,
            pressure=pressure(system, virial),
            volume=system.box.volume,
        )
        self.rows.append(snap)
        return snap

    # Convenience extractors -------------------------------------------------
    def series(self, name: str) -> np.ndarray:
        """Column as a numpy array, e.g. ``log.series('temperature')``."""
        if not self.rows:
            return np.empty(0)
        return np.array([getattr(row, name) for row in self.rows], dtype=float)

    def __len__(self) -> int:
        return len(self.rows)
