"""Per-task wall-clock timers matching LAMMPS' timing breakdown.

Table 1 of the paper maps a LAMMPS run onto eight computational tasks
(Bond, Comm, Kspace, Modify, Neigh, Output, Pair, Other); the simulation
loop wraps each phase of the timestep in one of these timers so that a
*functional* run produces the same kind of breakdown the paper's
Figure 3 plots for the real code.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["TASKS", "TaskTimers"]

#: The LAMMPS timing categories of Table 1, in the paper's plot order.
TASKS = ("Bond", "Comm", "Kspace", "Modify", "Neigh", "Other", "Output", "Pair")


@dataclass
class TaskTimers:
    """Accumulated wall-clock seconds per task."""

    seconds: dict[str, float] = field(
        default_factory=lambda: {task: 0.0 for task in TASKS}
    )

    @contextmanager
    def time(self, task: str) -> Iterator[None]:
        """Context manager accumulating elapsed time into ``task``."""
        if task not in self.seconds:
            raise KeyError(f"unknown task {task!r}; expected one of {TASKS}")
        start = time.perf_counter()
        try:
            yield
        finally:
            self.seconds[task] += time.perf_counter() - start

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def fractions(self) -> dict[str, float]:
        """Per-task share of the total run time (sums to 1)."""
        total = self.total
        if total <= 0:
            return {task: 0.0 for task in TASKS}
        return {task: t / total for task, t in self.seconds.items()}

    def reset(self) -> None:
        for task in self.seconds:
            self.seconds[task] = 0.0
