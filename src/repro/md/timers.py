"""Per-task wall-clock timers matching LAMMPS' timing breakdown.

Table 1 of the paper maps a LAMMPS run onto eight computational tasks
(Bond, Comm, Kspace, Modify, Neigh, Output, Pair, Other); the simulation
loop wraps each phase of the timestep in one of these timers so that a
*functional* run produces the same kind of breakdown the paper's
Figure 3 plots for the real code.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.observability.tracer import NULL_TRACER

__all__ = ["TASKS", "TaskTimers"]

#: The LAMMPS timing categories of Table 1, in the paper's plot order.
TASKS = ("Bond", "Comm", "Kspace", "Modify", "Neigh", "Other", "Output", "Pair")


@dataclass
class TaskTimers:
    """Accumulated wall-clock seconds per task.

    When :attr:`tracer` is an enabled span tracer, every timed region is
    also recorded as a ``"task"``-category span — reusing the timestamps
    the timer already takes, so tracing adds no extra clock reads and
    the span totals match the accumulated seconds by construction.
    """

    seconds: dict[str, float] = field(
        default_factory=lambda: {task: 0.0 for task in TASKS}
    )
    #: Span sink for the timed regions; the shared no-op by default.
    tracer: object = field(default=NULL_TRACER, repr=False, compare=False)

    @contextmanager
    def time(self, task: str) -> Iterator[None]:
        """Context manager accumulating elapsed time into ``task``."""
        if task not in self.seconds:
            raise KeyError(f"unknown task {task!r}; expected one of {TASKS}")
        tracer = self.tracer
        start = time.perf_counter()
        if tracer.enabled:
            tracer.begin(task, "task", ts=start)
        try:
            yield
        finally:
            end = time.perf_counter()
            self.seconds[task] += end - start
            if tracer.enabled:
                tracer.end(ts=end)

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def fractions(self) -> dict[str, float]:
        """Per-task share of the total run time (sums to 1)."""
        total = self.total
        if total <= 0:
            return {task: 0.0 for task in TASKS}
        return {task: t / total for task, t in self.seconds.items()}

    def reset(self) -> None:
        for task in self.seconds:
            self.seconds[task] = 0.0
