"""Unit systems of the benchmark decks and conversions between them.

The suite mixes LAMMPS unit systems, exactly like the paper's decks:

* **lj** (LJ, Chain, Chute): everything reduced — lengths in sigma,
  energies in epsilon, kB = 1; one LJ time unit for argon parameters
  (sigma = 3.405 A, eps/kB = 119.8 K, m = 39.948 amu) is ~2.156 ps.
* **metal** (EAM): Angstrom, eV, picoseconds; kB = 8.617e-5 eV/K.
* **real-like** (Rhodopsin proxy): Angstrom, kcal/mol, g/mol, with the
  Coulomb constant folded into the charges; one time unit is 48.89 fs
  and kB = 1.987e-3 kcal/mol/K.

The conversions here back the ``timestep_fs`` values the ns/day
headline numbers rely on, and are tested against the paper's own
2 fs -> 2 ns/day arithmetic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "UnitSystem",
    "LJ_ARGON",
    "METAL",
    "REAL_LIKE",
    "unit_system_for",
    "timesteps_to_ns",
]

#: Boltzmann constant in various energy units.
KB_EV_PER_K = 8.617333262e-5
KB_KCALMOL_PER_K = 1.987204259e-3


@dataclass(frozen=True)
class UnitSystem:
    """One deck's unit system.

    ``time_unit_fs`` is the physical duration of one internal time unit
    (``sqrt(m L^2 / E)`` in the system's mass/length/energy units);
    ``kb`` is Boltzmann's constant in the system's energy unit so
    temperatures convert via ``T_internal = kb * T_kelvin``.
    """

    name: str
    length_unit: str
    energy_unit: str
    time_unit_fs: float
    kb: float

    def dt_to_fs(self, dt_internal: float) -> float:
        """Physical femtoseconds of one timestep of ``dt_internal``."""
        if dt_internal <= 0:
            raise ValueError("dt must be positive")
        return dt_internal * self.time_unit_fs

    def kelvin_to_internal(self, kelvin: float) -> float:
        return self.kb * kelvin

    def internal_to_kelvin(self, temperature: float) -> float:
        return temperature / self.kb


def _lj_time_unit_fs(
    sigma_angstrom: float, eps_over_kb_kelvin: float, mass_amu: float
) -> float:
    """tau = sigma sqrt(m / eps) for LJ parameters, in femtoseconds."""
    # Work in SI: sigma [m], eps [J], m [kg].
    sigma_m = sigma_angstrom * 1e-10
    eps_j = eps_over_kb_kelvin * 1.380649e-23
    mass_kg = mass_amu * 1.66053906660e-27
    tau_s = sigma_m * math.sqrt(mass_kg / eps_j)
    return tau_s * 1e15


#: Reduced LJ units with argon parameters (the conventional mapping).
LJ_ARGON = UnitSystem(
    name="lj",
    length_unit="sigma",
    energy_unit="epsilon",
    time_unit_fs=_lj_time_unit_fs(3.405, 119.8, 39.948),
    kb=1.0,
)

#: LAMMPS metal units (EAM): ps time base -> 1000 fs per time unit.
METAL = UnitSystem(
    name="metal",
    length_unit="Angstrom",
    energy_unit="eV",
    time_unit_fs=1000.0,
    kb=KB_EV_PER_K,
)

#: The rhodopsin proxy's (g/mol, Angstrom, kcal/mol) system:
#: sqrt(g/mol * A^2 / (kcal/mol)) = 48.888 fs.
REAL_LIKE = UnitSystem(
    name="real-like",
    length_unit="Angstrom",
    energy_unit="kcal/mol",
    time_unit_fs=48.88821,
    kb=KB_KCALMOL_PER_K,
)

_BY_BENCHMARK = {
    "lj": LJ_ARGON,
    "chain": LJ_ARGON,
    "chute": LJ_ARGON,
    "eam": METAL,
    "rhodo": REAL_LIKE,
}


def unit_system_for(benchmark: str) -> UnitSystem:
    """The unit system a suite benchmark's deck uses."""
    try:
        return _BY_BENCHMARK[benchmark]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {benchmark!r}; expected one of {tuple(_BY_BENCHMARK)}"
        ) from None


def timesteps_to_ns(n_steps: float, timestep_fs: float) -> float:
    """Simulated nanoseconds covered by ``n_steps`` timesteps."""
    if timestep_fs <= 0:
        raise ValueError("timestep_fs must be positive")
    return n_steps * timestep_fs * 1e-6
