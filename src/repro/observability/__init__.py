"""Observability layer: structured tracing, metrics, rank timelines.

The paper's whole contribution is measurement; this package gives the
reproduction the same power over itself:

* :mod:`repro.observability.tracer` — a low-overhead span tracer with a
  preallocated ring buffer.  The engine instruments every timestep
  phase, kernel-backend call, neighbor rebuild and k-space stage;
  export is Chrome trace-event JSON (``chrome://tracing`` / Perfetto)
  or a flamegraph-style text report.  Disabled by default and free when
  disabled (the :data:`NULL_TRACER` singleton); enable per run with
  ``Simulation(tracer=...)`` or globally with ``REPRO_TRACE=1``.
* :mod:`repro.observability.metrics` — a counters/gauges/histograms
  registry fed by the engine's operation counts, neighbor cadence,
  energy drift, SHAKE iterations and kernel scratch growth, with JSONL
  snapshot export.
* :mod:`repro.observability.timeline` — per-rank timelines for the
  simulated MPI layer, so Figure 4's imbalance is computed from
  recorded spans rather than only the analytic model.
* :mod:`repro.observability.report` — LAMMPS-style timing tables and
  the trace-vs-timer agreement check.
* :mod:`repro.observability.telemetry` — measured hardware power
  sampling (RAPL / procfs / calibrated-model provider ladder) at the
  paper's 0.5 s cadence, with per-phase joule attribution through the
  span tracer and machine provenance for the benchmark records.

Entry points: ``python -m repro trace lj --steps 50`` records one short
experiment and writes the trace, metrics snapshot and timing table;
``python -m repro power lj`` adds the measured per-phase energy
breakdown and TS/s/W.
"""

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.report import (
    render_agreement,
    render_span_table,
    render_task_table,
    trace_timer_agreement,
)
from repro.observability.telemetry import (
    EnergyAttribution,
    IntervalSample,
    TelemetrySampler,
    attribute_energy,
    detect_provider,
    platform_provenance,
    render_energy_table,
)
from repro.observability.timeline import RankSpan, RankTimeline
from repro.observability.tracer import (
    NULL_TRACER,
    TRACE_ENV_VAR,
    NullTracer,
    SpanRecord,
    Tracer,
    resolve_tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TRACE_ENV_VAR",
    "SpanRecord",
    "resolve_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RankSpan",
    "RankTimeline",
    "render_task_table",
    "render_span_table",
    "render_agreement",
    "trace_timer_agreement",
    "TelemetrySampler",
    "IntervalSample",
    "EnergyAttribution",
    "attribute_energy",
    "render_energy_table",
    "detect_provider",
    "platform_provenance",
]
