"""Metrics registry: counters, gauges and histograms with JSONL export.

The tracer (:mod:`repro.observability.tracer`) answers *when* time was
spent; this registry answers *how much work* was done — pair
interactions, neighbor rebuild cadence, energy drift, SHAKE iterations,
kernel scratch growth.  The shapes follow the Prometheus conventions
(monotonic counters, point-in-time gauges, bucketed histograms) without
any client dependency: a snapshot is a plain JSON-safe dict, and
:meth:`MetricsRegistry.write_snapshot` appends snapshots to a JSONL
file so a run leaves a replayable metrics timeline next to its trace.

Instruments and the registry are thread-safe: engine workers and the
telemetry sampler update the same registry concurrently, and each
``write_snapshot`` line is appended whole under a lock so concurrent
writers never tear or interleave JSONL records.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from pathlib import Path
from typing import Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Default histogram buckets: log-spaced seconds from 1 us to 100 s,
#: wide enough for anything from a null-span to a 32k-atom neighbor
#: rebuild.
DEFAULT_BUCKETS = tuple(
    float(f"{mantissa}e{exponent}")
    for exponent in range(-6, 3)
    for mantissa in (1, 2, 5)
)


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge")
        with self._lock:
            self.value += amount

    def sync_total(self, total: float) -> None:
        """Adopt a cumulative total kept elsewhere (must not decrease).

        The engine's :class:`~repro.md.simulation.OperationCounts` are
        already cumulative; this lets the registry mirror them without
        double bookkeeping.
        """
        with self._lock:
            if total < self.value:
                raise ValueError(
                    f"counter {self.name!r} cannot decrease "
                    f"({self.value} -> {total})"
                )
            self.value = float(total)

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """Point-in-time value (may go up or down)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Bucketed distribution with sum/count/min/max.

    ``buckets`` are upper bounds (ascending); an implicit +inf bucket
    catches the overflow, mirroring Prometheus ``le`` semantics with
    non-cumulative per-bucket counts.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] | None = None,
    ) -> None:
        self.name = name
        self.help = help
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be strictly ascending")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.counts[bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": [
                {"le": bound, "count": count}
                for bound, count in zip((*self.bounds, None), self.counts)
            ],
        }


class MetricsRegistry:
    """Named metric instruments with get-or-create semantics.

    ``registry.counter("md_steps_total").inc()`` is the whole API: the
    first call creates the instrument, later calls return it, and a
    name collision across *kinds* is an error (the usual silent-footgun
    in ad-hoc metric dicts).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"not {cls.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help=help)

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] | None = None
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help=help, buckets=buckets)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._metrics))

    def snapshot(self) -> dict:
        """All instruments as one JSON-safe dict (sorted by name)."""
        return {name: self._metrics[name].snapshot() for name in self.names()}

    def write_snapshot(
        self, path: str | Path, *, step: int | None = None, **extra
    ) -> Path:
        """Append one snapshot line to a JSONL file; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        record: dict = {}
        if step is not None:
            record["step"] = step
        record.update(extra)
        record["metrics"] = self.snapshot()
        line = json.dumps(record) + "\n"
        # One buffered write flushed on close: lands as a single
        # O_APPEND write, so concurrent writers never interleave lines.
        with path.open("a") as handle:
            handle.write(line)
        return path
