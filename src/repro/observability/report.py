"""Text reports over timers and traces: the LAMMPS-style timing table.

LAMMPS prints an "MPI task timing breakdown" at the end of every run —
the table the paper's Table 1 categories come from.  These renderers
produce the same shape from a :class:`~repro.md.timers.TaskTimers`, a
per-span summary table from a :class:`~repro.observability.tracer.Tracer`,
and the trace-vs-timer agreement check the acceptance criterion pins.
"""

from __future__ import annotations

from repro.observability.tracer import Tracer

__all__ = [
    "render_task_table",
    "render_span_table",
    "trace_timer_agreement",
    "render_agreement",
]


def render_task_table(timers, n_steps: int) -> str:
    """LAMMPS-style per-task timing table for one run.

    ``timers`` is any object with a ``seconds`` task->seconds dict (a
    :class:`~repro.md.timers.TaskTimers`).
    """
    total = sum(timers.seconds.values())
    steps = max(1, int(n_steps))
    lines = [
        f"Task timing breakdown ({n_steps} steps, {total:.4f} s total):",
        f"{'Section':<10s}| {'time (s)':>10s} | {'ms/step':>9s} | {'%total':>6s}",
        "-" * 44,
    ]
    for task in sorted(timers.seconds, key=lambda t: -timers.seconds[t]):
        seconds = timers.seconds[task]
        share = 100.0 * seconds / total if total > 0 else 0.0
        lines.append(
            f"{task:<10s}| {seconds:>10.4f} | {1e3 * seconds / steps:>9.4f} "
            f"| {share:>6.2f}"
        )
    return "\n".join(lines)


def render_span_table(tracer: Tracer, *, limit: int = 20) -> str:
    """Aggregate span table: name, category, count, total/mean time."""
    rows = tracer.span_summary()
    total = sum(row["total_s"] for row in rows if row["cat"] == "step")
    lines = [
        "Span summary:",
        f"{'span':<26s}{'cat':<9s}{'count':>7s} {'total (s)':>10s} "
        f"{'mean (us)':>10s} {'%step':>6s}",
        "-" * 72,
    ]
    for row in rows[:limit]:
        share = 100.0 * row["total_s"] / total if total > 0 else 0.0
        lines.append(
            f"{row['name']:<26s}{row['cat']:<9s}{row['count']:>7d} "
            f"{row['total_s']:>10.4f} {row['mean_s'] * 1e6:>10.1f} {share:>6.1f}"
        )
    if len(rows) > limit:
        lines.append(f"... {len(rows) - limit} more span names")
    return "\n".join(lines)


def trace_timer_agreement(timers, tracer: Tracer) -> dict[str, float]:
    """Absolute per-task share difference between trace and timers.

    Both sides are normalized to fractions of their own totals (the
    trace's "Other" is derived as step-span time not covered by task
    spans, mirroring the engine's bookkeeping), so the dict reports the
    quantity the acceptance criterion bounds at 0.02.
    """
    span_totals = dict(tracer.task_totals())
    step_total = tracer.totals_by_name(cat="step").get("step", 0.0)
    covered = sum(span_totals.values()) - span_totals.get("Other", 0.0)
    if step_total > 0.0:
        span_totals["Other"] = span_totals.get("Other", 0.0) + max(
            0.0, step_total - covered
        )
    trace_total = sum(span_totals.values())
    timer_total = sum(timers.seconds.values())
    deltas: dict[str, float] = {}
    for task in timers.seconds:
        trace_frac = span_totals.get(task, 0.0) / trace_total if trace_total else 0.0
        timer_frac = timers.seconds[task] / timer_total if timer_total else 0.0
        deltas[task] = abs(trace_frac - timer_frac)
    return deltas


def render_agreement(timers, tracer: Tracer) -> str:
    """Human-readable trace-vs-timer agreement line."""
    deltas = trace_timer_agreement(timers, tracer)
    worst = max(deltas, key=deltas.get)
    return (
        f"trace/timer agreement: max per-task share delta "
        f"{100.0 * deltas[worst]:.2f}% ({worst})"
    )
