"""Hardware telemetry: measured power sampling with phase attribution.

The paper reports energy efficiency (timesteps/s/W, sampled at 0.5 s);
``repro.platforms.power`` only *models* draw from utilization.  This
package replaces the model with measurement wherever the machine allows
and falls back to the calibrated model — loudly labelled — where it
does not:

* :mod:`providers <repro.observability.telemetry.providers>` — the
  provider ladder: RAPL ``energy_uj`` counters (measured), /proc/stat
  utilization through :class:`~repro.platforms.power.CpuPowerModel`
  (estimated), process-CPU-slope model (modeled).  Auto-detected in
  that order; ``$REPRO_POWER_PROVIDER`` forces one.
* :mod:`sampler <repro.observability.telemetry.sampler>` — the 0.5 s
  background sampling loop with MIN_RUN_SECONDS enforcement (loud
  warning, never a silent under-sampled series).
* :mod:`attribution <repro.observability.telemetry.attribution>` —
  joins sample intervals with the PR-2 span tracer's timeline to
  attribute joules per phase (Pair, Neigh, Comm, Kspace, checkpoint...).
* :mod:`provenance <repro.observability.telemetry.provenance>` —
  kernel version, cgroup CPU quota and RAPL availability for the
  benchmark platform records.

Entry point: ``python -m repro power lj --steps 40 --atoms 32768``
prints a live per-phase energy breakdown and TS/s/W; ``--json`` exports
the full report.
"""

from repro.observability.telemetry.attribution import (
    UNTRACKED,
    EnergyAttribution,
    PhaseEnergy,
    attribute_energy,
    render_energy_table,
)
from repro.observability.telemetry.providers import (
    EXPLICIT_PROVIDERS,
    PROVIDER_ENV_VAR,
    PROVIDER_ORDER,
    DramRaplProvider,
    IntervalSample,
    ModelProvider,
    PowerProvider,
    ProcStatProvider,
    RaplProvider,
    detect_provider,
    local_instance_spec,
    provider_diagnostics,
)
from repro.observability.telemetry.provenance import (
    cgroup_cpu_quota,
    kernel_version,
    platform_provenance,
)
from repro.observability.telemetry.sampler import TelemetrySampler

__all__ = [
    "IntervalSample",
    "PowerProvider",
    "RaplProvider",
    "DramRaplProvider",
    "ProcStatProvider",
    "ModelProvider",
    "PROVIDER_ENV_VAR",
    "PROVIDER_ORDER",
    "EXPLICIT_PROVIDERS",
    "detect_provider",
    "provider_diagnostics",
    "local_instance_spec",
    "TelemetrySampler",
    "EnergyAttribution",
    "PhaseEnergy",
    "attribute_energy",
    "render_energy_table",
    "UNTRACKED",
    "platform_provenance",
    "kernel_version",
    "cgroup_cpu_quota",
]
