"""Per-phase energy attribution: joules against the span timeline.

A power sample says "the node drew E joules between t0 and t1"; the
PR-2 span tracer says "Pair ran from a to b, Neigh from c to d, ...".
Intersecting the two attributes each sample's energy to the phases that
were executing while it was taken: every sample's energy is spread
uniformly over its interval (the best a 0.5 s cadence can justify — the
LAMMPS time-measurement note is the reference for not pretending finer
resolution than the instrument has) and each phase receives the share
of the interval it overlapped.  Wall time inside a sample that no
selected span covers lands in ``"(untracked)"`` so the attribution
always sums to the measured total.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.observability.telemetry.providers import IntervalSample

__all__ = [
    "PhaseEnergy",
    "EnergyAttribution",
    "attribute_energy",
    "render_energy_table",
    "UNTRACKED",
]

#: Phase key for sampled wall time not covered by any selected span.
UNTRACKED = "(untracked)"

#: Span categories that count as attributable phases by default: the
#: Table 1 task spans (Pair, Neigh, Comm, Kspace, Modify, Output, Bond,
#: Other) plus the PR-4 checkpoint-write spans.
DEFAULT_CATEGORIES = ("task", "checkpoint")


@dataclass
class PhaseEnergy:
    """Energy and busy time attributed to one phase."""

    name: str
    joules: float = 0.0
    busy_s: float = 0.0

    @property
    def watts(self) -> float:
        """Mean draw while the phase was executing."""
        return self.joules / self.busy_s if self.busy_s > 0 else 0.0


@dataclass
class EnergyAttribution:
    """The full attribution result over one run."""

    phases: dict[str, PhaseEnergy] = field(default_factory=dict)
    total_joules: float = 0.0
    sampled_s: float = 0.0

    @property
    def coverage(self) -> float:
        """Fraction of sampled energy attributed to named phases."""
        tracked = self.total_joules - self.phases.get(
            UNTRACKED, PhaseEnergy(UNTRACKED)
        ).joules
        return tracked / self.total_joules if self.total_joules > 0 else 0.0

    def joules_by_phase(self) -> dict[str, float]:
        return {name: phase.joules for name, phase in self.phases.items()}

    def to_json(self) -> dict:
        return {
            "total_joules": self.total_joules,
            "sampled_s": self.sampled_s,
            "coverage": self.coverage,
            "phases": {
                name: {
                    "joules": phase.joules,
                    "busy_s": phase.busy_s,
                    "watts": phase.watts,
                }
                for name, phase in sorted(
                    self.phases.items(), key=lambda kv: -kv[1].joules
                )
            },
        }


def attribute_energy(
    samples: list[IntervalSample],
    spans,
    *,
    categories: tuple[str, ...] = DEFAULT_CATEGORIES,
) -> EnergyAttribution:
    """Intersect sample intervals with span timelines.

    ``spans`` is an iterable of objects with ``name``/``cat``/``start``/
    ``end`` attributes (:class:`~repro.observability.tracer.SpanRecord`
    rows, or anything shaped like them).  Only spans in ``categories``
    participate; they are assumed non-overlapping among themselves
    within one timeline (true of the engine's task and checkpoint
    spans), so each instant of a sample belongs to at most one phase.
    """
    selected = [s for s in spans if s.cat in categories and s.end > s.start]
    selected.sort(key=lambda s: s.start)
    result = EnergyAttribution()
    phases = result.phases

    for sample in samples:
        duration = sample.duration_s
        if duration <= 0:
            continue
        result.total_joules += sample.joules
        result.sampled_s += duration
        power = sample.joules / duration
        covered = 0.0
        for span in selected:
            if span.end <= sample.t_start:
                continue
            if span.start >= sample.t_end:
                break  # spans sorted by start: nothing later overlaps
            overlap = min(span.end, sample.t_end) - max(span.start, sample.t_start)
            if overlap <= 0:
                continue
            phase = phases.get(span.name)
            if phase is None:
                phase = phases[span.name] = PhaseEnergy(span.name)
            phase.joules += power * overlap
            phase.busy_s += overlap
            covered += overlap
        leftover = duration - covered
        if leftover > 1e-12:
            untracked = phases.get(UNTRACKED)
            if untracked is None:
                untracked = phases[UNTRACKED] = PhaseEnergy(UNTRACKED)
            untracked.joules += power * leftover
            untracked.busy_s += leftover
    return result


def render_energy_table(
    attribution: EnergyAttribution,
    *,
    steps: int | None = None,
    title: str = "Per-phase energy breakdown:",
) -> str:
    """Aligned text table: joules, watts-while-busy, share per phase."""
    lines = [
        title,
        f"{'phase':<16s}| {'joules':>10s} | {'watts':>8s} | "
        f"{'J/step':>10s} | {'%total':>6s}",
        "-" * 62,
    ]
    total = attribution.total_joules
    ranked = sorted(attribution.phases.values(), key=lambda p: -p.joules)
    for phase in ranked:
        share = 100.0 * phase.joules / total if total > 0 else 0.0
        per_step = f"{phase.joules / steps:>10.4f}" if steps else f"{'-':>10s}"
        lines.append(
            f"{phase.name:<16s}| {phase.joules:>10.3f} | {phase.watts:>8.2f} "
            f"| {per_step} | {share:>6.2f}"
        )
    lines.append(
        f"total: {total:.3f} J over {attribution.sampled_s:.2f} s sampled "
        f"({100.0 * attribution.coverage:.1f}% attributed to phases)"
    )
    return "\n".join(lines)
