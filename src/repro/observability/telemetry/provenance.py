"""Machine provenance for benchmark records.

Energy-efficiency numbers are only comparable across machines when the
record says what the machine *was*: the kernel it ran (scheduler and
powercap behavior change across versions), whether a cgroup CPU quota
was throttling the run (ubiquitous in CI containers, invisible to
``os.cpu_count``), and whether the joules came from a hardware counter
or a model.  :func:`platform_provenance` bundles those for the three
BENCH_*.json harnesses.
"""

from __future__ import annotations

import os
import platform
from pathlib import Path

from repro.observability.telemetry.providers import (
    PROVIDER_ENV_VAR,
    PROVIDER_ORDER,
    RaplProvider,
    detect_provider,
    provider_diagnostics,
)

__all__ = [
    "kernel_version",
    "cgroup_cpu_quota",
    "platform_provenance",
]

#: cgroup v2 unified quota file: "<quota_us> <period_us>" or "max ...".
CGROUP_V2_CPU_MAX = "/sys/fs/cgroup/cpu.max"

#: cgroup v1 CFS quota/period pair (-1 quota means unlimited).
CGROUP_V1_QUOTA = "/sys/fs/cgroup/cpu/cpu.cfs_quota_us"
CGROUP_V1_PERIOD = "/sys/fs/cgroup/cpu/cpu.cfs_period_us"


def kernel_version() -> str:
    """The running kernel release (e.g. ``6.8.0-45-generic``)."""
    return platform.release()


def cgroup_cpu_quota(
    *,
    v2_path: str | Path = CGROUP_V2_CPU_MAX,
    v1_quota_path: str | Path = CGROUP_V1_QUOTA,
    v1_period_path: str | Path = CGROUP_V1_PERIOD,
) -> float | None:
    """Effective CPU quota in cores, or ``None`` when unlimited/unknown.

    Reads the cgroup v2 ``cpu.max`` file first, then the v1
    ``cpu.cfs_quota_us``/``cpu.cfs_period_us`` pair.  A container
    pinned to "200000 100000" reports 2.0 — the number that explains
    why its TS/s/W differs from bare metal with the same core count.
    """
    v2 = Path(v2_path)
    try:
        fields = v2.read_text().split()
        if fields and fields[0] != "max":
            quota = int(fields[0])
            period = int(fields[1]) if len(fields) > 1 else 100_000
            if quota > 0 and period > 0:
                return quota / period
        if fields:
            return None  # explicit "max": unlimited
    except (OSError, ValueError, IndexError):
        pass
    try:
        quota = int(Path(v1_quota_path).read_text().strip())
        period = int(Path(v1_period_path).read_text().strip())
        if quota > 0 and period > 0:
            return quota / period
    except (OSError, ValueError):
        pass
    return None


def platform_provenance() -> dict:
    """The telemetry block every BENCH_*.json platform record carries."""
    provider = detect_provider()
    return {
        "kernel_version": kernel_version(),
        "cpu_count": os.cpu_count(),
        "cgroup_cpu_quota_cores": cgroup_cpu_quota(),
        "rapl_available": RaplProvider.available(),
        "power_provider": provider.provenance(),
        "power_provider_order": list(PROVIDER_ORDER),
        "power_provider_forced": os.environ.get(PROVIDER_ENV_VAR) or None,
        "power_provider_diagnostics": provider_diagnostics(),
    }
