"""Power providers: where the watts actually come from.

The paper samples node power with ``powerstat`` (RAPL underneath) and
``nvidia-smi``; the Gromacs energy-efficiency paper in PAPERS.md warns
how misleading *modeled* power numbers are.  This module therefore
offers a small provider ladder, best evidence first:

1. :class:`RaplProvider` — reads the Intel RAPL energy counters under
   ``/sys/class/powercap/intel-rapl*`` directly.  These are cumulative
   microjoule counters that wrap at ``max_energy_range_uj``; the
   provider sums the top-level package domains (subdomains like
   ``intel-rapl:0:0`` are *parts of* their package and would double
   count) and handles wraparound.  Kind: ``"measured"``.
2. :class:`ProcStatProvider` — derives per-core utilization from
   ``/proc/stat`` jiffy deltas and feeds it through the existing
   :class:`~repro.platforms.power.CpuPowerModel` over a locally
   calibrated instance spec.  Kind: ``"estimated"`` (real utilization,
   modeled watts).
3. :class:`ModelProvider` — the pure fallback: estimates busy
   core-equivalents of *this process* from ``time.process_time()``
   deltas and runs the same calibrated model.  Always available.
   Kind: ``"modeled"``.

:func:`detect_provider` walks the ladder (or honors
``$REPRO_POWER_PROVIDER``) and every sample carries its provider's
provenance, so a BENCH_*.json row always says which rung produced its
joules.
"""

from __future__ import annotations

import os
import platform
import time
from dataclasses import dataclass
from pathlib import Path

from repro.platforms.instances import CpuSpec, InstanceSpec
from repro.platforms.power import CpuPowerModel

__all__ = [
    "IntervalSample",
    "PowerProvider",
    "RaplProvider",
    "DramRaplProvider",
    "ProcStatProvider",
    "ModelProvider",
    "PROVIDER_ENV_VAR",
    "PROVIDER_ORDER",
    "EXPLICIT_PROVIDERS",
    "detect_provider",
    "provider_diagnostics",
    "local_instance_spec",
]

#: Environment override: ``rapl``, ``dram``, ``procfs`` or ``model``
#: forces one provider (the CI telemetry smoke forces ``model`` so the
#: job runs identically on bare metal and in containers without
#: powercap).
PROVIDER_ENV_VAR = "REPRO_POWER_PROVIDER"

#: Auto-detection order, best evidence first.
PROVIDER_ORDER = ("rapl", "procfs", "model")

#: Providers that are valid only when explicitly requested.  ``dram``
#: measures the memory controller alone — a *component* of package
#: power — so auto-detection must never silently substitute it for a
#: node-power reading.
EXPLICIT_PROVIDERS = ("dram",)

#: Default sysfs root for the RAPL powercap hierarchy.
RAPL_SYSFS_ROOT = "/sys/class/powercap"

#: Default procfs stat file.
PROC_STAT_PATH = "/proc/stat"

#: Calibration overrides for the utilization->watts model on machines
#: whose idle floor / per-core draw is known.
IDLE_WATTS_ENV_VAR = "REPRO_POWER_IDLE_WATTS"
TDP_WATTS_ENV_VAR = "REPRO_POWER_TDP_WATTS"


@dataclass(frozen=True)
class IntervalSample:
    """Energy drawn over one sampling interval ``[t_start, t_end]``."""

    t_start: float
    t_end: float
    joules: float

    @property
    def duration_s(self) -> float:
        return self.t_end - self.t_start

    @property
    def watts(self) -> float:
        dt = self.duration_s
        return self.joules / dt if dt > 0 else 0.0


class PowerProvider:
    """Interface: ``reset()`` takes a baseline, ``sample()`` an interval.

    ``sample()`` returns the energy drawn since the previous call (or
    since ``reset()``), stamped with the provider's clock.  Providers
    must share the tracer's clock (``time.perf_counter`` by default) so
    that sample intervals and span timelines live on one timebase —
    that alignment is what makes per-phase attribution possible.
    """

    name: str = "abstract"
    #: ``"measured"`` (hardware counter), ``"estimated"`` (measured
    #: utilization through the model) or ``"modeled"`` (pure model).
    kind: str = "abstract"

    def reset(self) -> None:
        raise NotImplementedError

    def sample(self) -> IntervalSample:
        raise NotImplementedError

    def provenance(self) -> dict:
        """JSON-safe description for benchmark/platform records."""
        return {"provider": self.name, "kind": self.kind}


# ---------------------------------------------------------------------------
# RAPL
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RaplDomain:
    """One top-level RAPL package domain (``intel-rapl:<n>``)."""

    path: Path
    label: str
    max_energy_range_uj: int

    def read_energy_uj(self) -> int:
        return int((self.path / "energy_uj").read_text().strip())


def _discover_rapl_domains(root: str | Path) -> list[RaplDomain]:
    """Readable top-level package domains under ``root``.

    Only ``intel-rapl:<n>`` (no second colon) qualifies: subdomains
    (``intel-rapl:<n>:<m>``, e.g. core/uncore/dram) are constituents of
    their package counter and summing them would double count.
    """
    root = Path(root)
    domains: list[RaplDomain] = []
    if not root.is_dir():
        return domains
    for entry in sorted(root.iterdir()):
        name = entry.name
        if not name.startswith("intel-rapl:") or name.count(":") != 1:
            continue
        try:
            energy = entry / "energy_uj"
            int(energy.read_text().strip())  # readability probe
            max_range = int((entry / "max_energy_range_uj").read_text().strip())
            label = (entry / "name").read_text().strip() if (entry / "name").exists() else name
        except (OSError, ValueError):
            continue
        domains.append(RaplDomain(entry, label, max_range))
    return domains


class RaplProvider(PowerProvider):
    """Measured package energy from the powercap ``energy_uj`` counters."""

    name = "rapl"
    kind = "measured"
    #: What the discovery hook should report when it finds nothing.
    _missing = "no readable intel-rapl package domain under"

    def __init__(
        self,
        root: str | Path = RAPL_SYSFS_ROOT,
        *,
        clock=time.perf_counter,
    ) -> None:
        self.root = Path(root)
        self._clock = clock
        self.domains = self._discover(self.root)
        if not self.domains:
            raise RuntimeError(self.diagnostic(self.root))
        self._last_uj: list[int] = []
        self._last_t = 0.0
        self.reset()

    @staticmethod
    def _discover(root: str | Path) -> list[RaplDomain]:
        return _discover_rapl_domains(root)

    @classmethod
    def available(cls, root: str | Path = RAPL_SYSFS_ROOT) -> bool:
        return bool(cls._discover(root))

    @classmethod
    def diagnostic(cls, root: str | Path = RAPL_SYSFS_ROOT) -> str:
        root = Path(root)
        if not root.is_dir():
            return f"no powercap sysfs at {root}"
        if not cls._discover(root):
            return f"{cls._missing} {root}"
        return "available"

    def reset(self) -> None:
        self._last_uj = [d.read_energy_uj() for d in self.domains]
        self._last_t = self._clock()

    def sample(self) -> IntervalSample:
        now = self._clock()
        current = [d.read_energy_uj() for d in self.domains]
        delta_uj = 0
        for domain, prev, cur in zip(self.domains, self._last_uj, current):
            step = cur - prev
            if step < 0:  # counter wrapped at max_energy_range_uj
                step += domain.max_energy_range_uj
            delta_uj += step
        sample = IntervalSample(self._last_t, now, delta_uj / 1e6)
        self._last_uj = current
        self._last_t = now
        return sample

    def provenance(self) -> dict:
        return {
            "provider": self.name,
            "kind": self.kind,
            "domains": [d.label for d in self.domains],
        }


def _discover_dram_domains(root: str | Path) -> list[RaplDomain]:
    """Readable DRAM subdomains (``intel-rapl:<n>:<m>`` named ``dram``).

    Powercap lists subdomains flat next to their packages; the ``name``
    attribute (not the position) says which component a subdomain
    meters, so every two-colon entry is probed and only the memory
    controllers kept.  One per package on multi-socket nodes — they sum
    the same way package domains do, and each carries its own
    ``max_energy_range_uj`` (typically far smaller than the package's,
    so wraps are *more* frequent, not less).
    """
    root = Path(root)
    domains: list[RaplDomain] = []
    if not root.is_dir():
        return domains
    for entry in sorted(root.iterdir()):
        name = entry.name
        if not name.startswith("intel-rapl:") or name.count(":") != 2:
            continue
        try:
            if (entry / "name").read_text().strip() != "dram":
                continue
            int((entry / "energy_uj").read_text().strip())  # readability probe
            max_range = int((entry / "max_energy_range_uj").read_text().strip())
        except (OSError, ValueError):
            continue
        package = name.rsplit(":", 1)[0]
        domains.append(RaplDomain(entry, f"{package}/dram", max_range))
    return domains


class DramRaplProvider(RaplProvider):
    """Measured memory-controller energy from the RAPL DRAM subdomains.

    Same counter semantics as :class:`RaplProvider` (cumulative
    microjoules, wrap at ``max_energy_range_uj``) but scoped to the
    DRAM plane — the quantity the paper's memory-bound workloads
    (``eam``, ``rhodo``) move.  Explicit-request-only: DRAM power is a
    component of package power, so auto-detection never substitutes it
    for a node reading (see :data:`EXPLICIT_PROVIDERS`).
    """

    name = "dram"
    kind = "measured"
    _missing = "no readable intel-rapl dram subdomain under"

    @staticmethod
    def _discover(root: str | Path) -> list[RaplDomain]:
        return _discover_dram_domains(root)


# ---------------------------------------------------------------------------
# /proc/stat utilization -> calibrated CpuPowerModel
# ---------------------------------------------------------------------------
def local_instance_spec(n_cores: int | None = None) -> InstanceSpec:
    """A calibrated :class:`InstanceSpec` describing *this* machine.

    The paper's Table 3 nodes have known TDPs; a commodity dev box or CI
    container does not, so we assume a mid-range desktop profile —
    ~12.5 W active draw per core (0.8 x TDP / cores with TDP sized to
    match) over a 10 W idle floor — and let ``$REPRO_POWER_IDLE_WATTS``
    / ``$REPRO_POWER_TDP_WATTS`` recalibrate when the numbers are known.
    The point of this spec is honest *relative* attribution, with the
    provenance field flagging that the watts are model-derived.
    """
    cores = int(n_cores or os.cpu_count() or 1)
    idle = float(os.environ.get(IDLE_WATTS_ENV_VAR, 10.0))
    # 0.8 * tdp / cores == 12.5 W/core unless overridden.
    tdp = float(os.environ.get(TDP_WATTS_ENV_VAR, cores * 12.5 / 0.8))
    cpu = CpuSpec(
        model=platform.processor() or platform.machine() or "local-cpu",
        cores=cores,
        threads=cores,
        frequency_ghz=2.5,
        turbo_ghz=3.5,
        l1_kb_per_core=64,
        l2_mb_per_core=1.0,
        l3_mb_shared=16.0,
        tech_node_nm=10,
        tdp_watts=tdp,
    )
    return InstanceSpec(
        name="local-node",
        cpu=cpu,
        sockets=1,
        memory_gb=16,
        os=platform.system(),
        kernel=platform.release(),
        idle_watts=idle,
    )


def _parse_cpu_times(text: str) -> dict[str, tuple[int, int]]:
    """``cpuN -> (busy_jiffies, total_jiffies)`` from /proc/stat text."""
    out: dict[str, tuple[int, int]] = {}
    for line in text.splitlines():
        fields = line.split()
        if not fields or not fields[0].startswith("cpu"):
            continue
        if fields[0] == "cpu":  # aggregate line; per-core rows follow
            continue
        values = [int(v) for v in fields[1:]]
        # user nice system idle iowait irq softirq steal [guest guest_nice]
        idle = sum(values[3:5]) if len(values) >= 5 else values[3]
        total = sum(values[:8]) if len(values) >= 8 else sum(values)
        out[fields[0]] = (total - idle, total)
    return out


class ProcStatProvider(PowerProvider):
    """Per-core utilization from /proc/stat through the power model."""

    name = "procfs"
    kind = "estimated"

    def __init__(
        self,
        stat_path: str | Path = PROC_STAT_PATH,
        *,
        instance: InstanceSpec | None = None,
        clock=time.perf_counter,
    ) -> None:
        self.stat_path = Path(stat_path)
        self._clock = clock
        try:
            baseline = _parse_cpu_times(self.stat_path.read_text())
        except OSError as exc:
            raise RuntimeError(f"cannot read {self.stat_path}: {exc}") from exc
        if not baseline:
            raise RuntimeError(f"no per-core cpu lines in {self.stat_path}")
        self.instance = instance or local_instance_spec(len(baseline))
        self.model = CpuPowerModel(self.instance)
        self._last = baseline
        self._last_t = self._clock()

    @staticmethod
    def available(stat_path: str | Path = PROC_STAT_PATH) -> bool:
        try:
            return bool(_parse_cpu_times(Path(stat_path).read_text()))
        except OSError:
            return False

    @staticmethod
    def diagnostic(stat_path: str | Path = PROC_STAT_PATH) -> str:
        path = Path(stat_path)
        try:
            text = path.read_text()
        except OSError as exc:
            return f"cannot read {path}: {exc}"
        if not _parse_cpu_times(text):
            return f"no per-core cpu lines in {path}"
        return "available"

    def reset(self) -> None:
        self._last = _parse_cpu_times(self.stat_path.read_text())
        self._last_t = self._clock()

    def utilization(self) -> float:
        """Mean per-core busy fraction since the previous sample.

        Side-effect free with respect to the wall clock only; advances
        the jiffy baseline like :meth:`sample` does.
        """
        current = _parse_cpu_times(self.stat_path.read_text())
        fractions = []
        for cpu, (busy, total) in current.items():
            busy0, total0 = self._last.get(cpu, (busy, total))
            dt = total - total0
            fractions.append((busy - busy0) / dt if dt > 0 else 0.0)
        self._last = current
        return min(1.0, max(0.0, sum(fractions) / len(fractions))) if fractions else 0.0

    def sample(self) -> IntervalSample:
        now = self._clock()
        utilization = self.utilization()
        watts = self.model.watts(self.instance.total_cores, utilization)
        sample = IntervalSample(self._last_t, now, watts * (now - self._last_t))
        self._last_t = now
        return sample

    def provenance(self) -> dict:
        return {
            "provider": self.name,
            "kind": self.kind,
            "cores": self.instance.total_cores,
            "idle_watts": self.instance.idle_watts,
            "tdp_watts": self.instance.cpu.tdp_watts,
        }


# ---------------------------------------------------------------------------
# Pure-model fallback
# ---------------------------------------------------------------------------
class ModelProvider(PowerProvider):
    """Calibrated model fed by this process's own CPU-time slope.

    ``process_time()`` delta over wall delta is the busy-core-equivalent
    count of the Python process (workers included once they report via
    shared memory are *not* visible here — the estimate is a floor).
    Always available; the last rung of the ladder.
    """

    name = "model"
    kind = "modeled"

    def __init__(
        self,
        *,
        instance: InstanceSpec | None = None,
        clock=time.perf_counter,
        cpu_clock=time.process_time,
    ) -> None:
        self.instance = instance or local_instance_spec()
        self.model = CpuPowerModel(self.instance)
        self._clock = clock
        self._cpu_clock = cpu_clock
        self._last_t = self._clock()
        self._last_cpu = self._cpu_clock()

    @staticmethod
    def available() -> bool:
        return True

    @staticmethod
    def diagnostic() -> str:
        return "available (always)"

    def reset(self) -> None:
        self._last_t = self._clock()
        self._last_cpu = self._cpu_clock()

    def sample(self) -> IntervalSample:
        now = self._clock()
        cpu = self._cpu_clock()
        dt = now - self._last_t
        busy_cores = (cpu - self._last_cpu) / dt if dt > 0 else 0.0
        cores = self.instance.total_cores
        utilization = min(1.0, busy_cores / cores) if cores else 0.0
        watts = self.model.watts(cores, utilization)
        sample = IntervalSample(self._last_t, now, watts * dt)
        self._last_t = now
        self._last_cpu = cpu
        return sample

    def provenance(self) -> dict:
        return {
            "provider": self.name,
            "kind": self.kind,
            "cores": self.instance.total_cores,
            "idle_watts": self.instance.idle_watts,
            "tdp_watts": self.instance.cpu.tdp_watts,
        }


# ---------------------------------------------------------------------------
# Detection
# ---------------------------------------------------------------------------
def provider_diagnostics(
    *,
    rapl_root: str | Path = RAPL_SYSFS_ROOT,
    stat_path: str | Path = PROC_STAT_PATH,
) -> dict[str, str]:
    """Availability (or the reason for unavailability) per provider."""
    return {
        "rapl": RaplProvider.diagnostic(rapl_root),
        "dram": DramRaplProvider.diagnostic(rapl_root),
        "procfs": ProcStatProvider.diagnostic(stat_path),
        "model": ModelProvider.diagnostic(),
    }


def detect_provider(
    requested: str | None = None,
    *,
    rapl_root: str | Path = RAPL_SYSFS_ROOT,
    stat_path: str | Path = PROC_STAT_PATH,
    clock=time.perf_counter,
) -> PowerProvider:
    """Best available provider: request > ``$REPRO_POWER_PROVIDER`` > ladder.

    An explicitly requested provider that cannot be constructed raises
    (silently degrading an explicit request is exactly the synthetic-
    numbers trap the Gromacs paper warns about); auto-detection walks
    rapl -> procfs -> model and always succeeds because the model rung
    has no preconditions.  ``dram`` is valid only as an explicit
    request — it meters one component, never the node.
    """
    requested = requested or os.environ.get(PROVIDER_ENV_VAR) or None
    if requested is not None:
        known = PROVIDER_ORDER + EXPLICIT_PROVIDERS
        if requested not in known:
            raise ValueError(
                f"unknown power provider {requested!r}; "
                f"expected one of {known}"
            )
        if requested == "rapl":
            return RaplProvider(rapl_root, clock=clock)
        if requested == "dram":
            return DramRaplProvider(rapl_root, clock=clock)
        if requested == "procfs":
            return ProcStatProvider(stat_path, clock=clock)
        return ModelProvider(clock=clock)
    if RaplProvider.available(rapl_root):
        return RaplProvider(rapl_root, clock=clock)
    if ProcStatProvider.available(stat_path):
        return ProcStatProvider(stat_path, clock=clock)
    return ModelProvider(clock=clock)
