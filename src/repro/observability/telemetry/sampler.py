"""Background power-sampling loop at the paper's 0.5 s cadence.

:class:`TelemetrySampler` owns one :class:`~repro.observability.
telemetry.providers.PowerProvider` and polls it from a daemon thread
every :data:`~repro.platforms.power.SAMPLING_PERIOD_S` seconds — the
cadence the paper's ``powerstat``/``nvidia-smi`` loop used.  Samples
are energy *intervals* on the tracer's clock, so they can later be
intersected with span timelines for per-phase attribution.

Methodology guards (the LAMMPS time-measurement note in PAPERS.md is
the reference for why these matter):

* runs shorter than :data:`~repro.platforms.power.MIN_RUN_SECONDS`
  still return their series but raise a loud, once-per-process
  :class:`~repro.platforms.power.UnderSampledRunWarning`, and the
  report carries ``under_sampled: true`` so downstream consumers can
  gate on it;
* ``stop()`` flushes a final partial interval, so total joules cover
  the whole run even when it ends mid-period;
* the provider's clock and the tracer's clock default to the same
  ``time.perf_counter`` timebase.
"""

from __future__ import annotations

import threading
import time

from repro.observability.telemetry.providers import (
    IntervalSample,
    PowerProvider,
    detect_provider,
)
from repro.platforms.power import (
    MIN_RUN_SECONDS,
    SAMPLING_PERIOD_S,
    warn_under_sampled,
)

__all__ = ["TelemetrySampler"]


class TelemetrySampler:
    """Samples a power provider on a fixed period in the background.

    Parameters
    ----------
    provider:
        A constructed :class:`PowerProvider`, or ``None`` to
        auto-detect (rapl -> procfs -> model).
    period_s:
        Sampling period; defaults to the paper's 0.5 s.
    metrics:
        Optional :class:`~repro.observability.metrics.MetricsRegistry`;
        when given, every sample updates the ``watts`` and
        ``energy_joules`` gauges.
    min_run_seconds:
        Floor below which :meth:`stop` flags the run as under-sampled.
    clock:
        Injectable time source for tests (must match the provider's).
    """

    def __init__(
        self,
        provider: PowerProvider | None = None,
        *,
        period_s: float = SAMPLING_PERIOD_S,
        metrics=None,
        min_run_seconds: float = MIN_RUN_SECONDS,
        clock=time.perf_counter,
    ) -> None:
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.provider = provider if provider is not None else detect_provider(clock=clock)
        self.period_s = float(period_s)
        self.metrics = metrics
        self.min_run_seconds = float(min_run_seconds)
        self._clock = clock
        self._samples: list[IntervalSample] = []
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._t_start: float | None = None
        self._t_stop: float | None = None
        self.under_sampled = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "TelemetrySampler":
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._samples.clear()
        self.under_sampled = False
        self._t_stop = None
        self.provider.reset()
        self._t_start = self._clock()
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-telemetry", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop_event.wait(self.period_s):
            self.sample_now()

    def sample_now(self) -> IntervalSample:
        """Take one sample synchronously (also used by the loop)."""
        sample = self.provider.sample()
        return self._ingest(sample)

    def _ingest(self, sample: IntervalSample) -> IntervalSample:
        with self._lock:
            self._samples.append(sample)
        if self.metrics is not None:
            self.metrics.gauge(
                "watts", help="node power draw over the last sampling interval"
            ).set(sample.watts)
            self.metrics.gauge(
                "energy_joules", help="cumulative joules drawn this run"
            ).set(self.total_joules)
        return sample

    def stop(self) -> list[IntervalSample]:
        """Stop the loop, flush the final partial interval, validate.

        Returns the full sample series.  Short runs warn (once per
        process) instead of silently handing back an under-sampled
        series — the fix ISSUE 7 pins.
        """
        if self._thread is None:
            raise RuntimeError("sampler not started")
        self._stop_event.set()
        self._thread.join()
        self._thread = None
        # Flush whatever the last full period did not cover (through
        # the same path as the loop so the gauges see it too).
        final = self.provider.sample()
        if final.duration_s > 0:
            self._ingest(final)
        self._t_stop = self._clock()
        duration = self.duration_s
        if duration < self.min_run_seconds:
            self.under_sampled = True
            warn_under_sampled("TelemetrySampler", duration, self.min_run_seconds)
        return self.samples

    def __enter__(self) -> "TelemetrySampler":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def samples(self) -> list[IntervalSample]:
        with self._lock:
            return list(self._samples)

    @property
    def total_joules(self) -> float:
        with self._lock:
            return sum(s.joules for s in self._samples)

    @property
    def duration_s(self) -> float:
        if self._t_start is None:
            return 0.0
        end = self._t_stop if self._t_stop is not None else self._clock()
        return end - self._t_start

    @property
    def mean_watts(self) -> float:
        duration = self.duration_s
        return self.total_joules / duration if duration > 0 else 0.0

    def provenance(self) -> dict:
        """JSON-safe record of how these numbers were produced."""
        record = dict(self.provider.provenance())
        record.update(
            period_s=self.period_s,
            n_samples=len(self.samples),
            duration_s=self.duration_s,
            min_run_seconds=self.min_run_seconds,
            under_sampled=self.under_sampled,
        )
        return record

    def summary(self, *, steps: int | None = None) -> dict:
        """Totals plus (optionally) per-step efficiency figures."""
        duration = self.duration_s
        out = {
            "joules": self.total_joules,
            "duration_s": duration,
            "mean_watts": self.mean_watts,
            **self.provenance(),
        }
        if steps:
            out["joules_per_step"] = self.total_joules / steps
            ts_per_s = steps / duration if duration > 0 else 0.0
            out["ts_per_s"] = ts_per_s
            watts = self.mean_watts
            out["ts_per_s_per_watt"] = ts_per_s / watts if watts > 0 else 0.0
        return out
