"""Per-rank timeline profiling for the (simulated) parallel layer.

The paper's Figure 4 derives MPI imbalance from per-rank profiles: each
rank's timestep is compute followed by waiting at the force barrier,
and the waits are what the bottom plot reports.  Before this module the
executor computed that number purely analytically (a mean over the
modelled ``wait_per_rank`` array); now every simulated run materializes
an actual *timeline* — one compute/wait/comm span per rank per step —
and the imbalance is read off the recorded spans, so the plotted
quantity and the inspectable timeline can never diverge.

The timeline exports to the same Chrome trace-event JSON as the engine
tracer (one ``tid`` per rank), renders as an ASCII Gantt chart, and can
be replayed into an existing :class:`~repro.observability.tracer.Tracer`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["RankSpan", "RankTimeline"]


@dataclass(frozen=True)
class RankSpan:
    """One task occupying ``[start, start + duration)`` on one rank."""

    rank: int
    name: str
    cat: str
    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class RankTimeline:
    """Recorded per-rank spans of one representative timestep."""

    n_ranks: int
    spans: list[RankSpan] = field(default_factory=list)

    @classmethod
    def from_model(
        cls,
        compute_seconds: np.ndarray,
        wait_seconds: np.ndarray,
        *,
        comm_seconds: float = 0.0,
    ) -> "RankTimeline":
        """Build the step timeline the analytic executor implies.

        Each rank computes for ``compute_seconds[r]``, waits at the
        barrier for ``wait_seconds[r]`` (the imbalance component), then
        all ranks run the uniform communication tail together.  Span
        *durations* are stored verbatim, so aggregates over the timeline
        reproduce the model's numbers exactly (no start/end round-trip).
        """
        compute_seconds = np.asarray(compute_seconds, dtype=float)
        wait_seconds = np.asarray(wait_seconds, dtype=float)
        if compute_seconds.shape != wait_seconds.shape:
            raise ValueError("one compute and one wait entry per rank required")
        spans: list[RankSpan] = []
        for rank, (compute, wait) in enumerate(zip(compute_seconds, wait_seconds)):
            spans.append(RankSpan(rank, "compute", "compute", 0.0, float(compute)))
            if wait > 0.0:
                spans.append(
                    RankSpan(rank, "mpi_wait", "mpi", float(compute), float(wait))
                )
            if comm_seconds > 0.0:
                spans.append(
                    RankSpan(
                        rank,
                        "comm",
                        "mpi",
                        float(compute) + float(wait),
                        float(comm_seconds),
                    )
                )
        return cls(n_ranks=len(compute_seconds), spans=spans)

    @classmethod
    def from_measured(
        cls,
        compute_seconds: np.ndarray,
        *,
        comm_seconds: float = 0.0,
    ) -> "RankTimeline":
        """Build a timeline from *measured* per-worker compute times.

        The shared-memory engine records only how long each worker's
        force pass took; at a barrier-synchronized step the implied wait
        is ``max(compute) - compute[r]`` per rank — the same quantity the
        analytic model feeds :meth:`from_model`, so measured and modelled
        timelines aggregate (and render) identically.
        """
        compute_seconds = np.asarray(compute_seconds, dtype=float)
        wait_seconds = float(compute_seconds.max()) - compute_seconds
        return cls.from_model(
            compute_seconds, wait_seconds, comm_seconds=comm_seconds
        )

    # ------------------------------------------------------------------
    # Aggregates (what Figure 4 plots, read off the recorded spans)
    # ------------------------------------------------------------------
    def seconds_per_rank(self, name: str) -> np.ndarray:
        """Total seconds each rank spent in spans called ``name``."""
        out = np.zeros(self.n_ranks)
        for span in self.spans:
            if span.name == name:
                out[span.rank] += span.duration
        return out

    def wait_seconds_per_rank(self) -> np.ndarray:
        return self.seconds_per_rank("mpi_wait")

    def imbalance_seconds(self) -> float:
        """Mean per-rank barrier wait — Figure 4 bottom's numerator."""
        return float(np.mean(self.wait_seconds_per_rank()))

    def step_seconds(self) -> float:
        """Wall-clock of the step: the latest span end over all ranks."""
        return max((span.end for span in self.spans), default=0.0)

    def critical_rank(self) -> int:
        """The slowest (bottleneck) rank by compute time."""
        return int(np.argmax(self.seconds_per_rank("compute")))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export(self, tracer) -> None:
        """Replay the timeline into a span tracer (one tid per rank)."""
        for span in self.spans:
            tracer.add_span(
                span.name, span.cat, span.start, span.end, tid=span.rank
            )

    def to_chrome_trace(self, *, pid: int = 1, process_name: str = "ranks") -> dict:
        """Chrome trace-event JSON with each rank on its own thread row."""
        events: list[dict] = [
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": process_name},
            }
        ]
        for rank in range(self.n_ranks):
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": rank,
                    "name": "thread_name",
                    "args": {"name": f"rank {rank}"},
                }
            )
        for span in self.spans:
            events.append(
                {
                    "name": span.name,
                    "cat": span.cat,
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": pid,
                    "tid": span.rank,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str | Path, **kwargs) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome_trace(**kwargs)) + "\n")
        return path

    def render(self, *, width: int = 60) -> str:
        """ASCII Gantt chart: one row per rank, ``#`` compute, ``.`` wait."""
        total = self.step_seconds()
        if total <= 0:
            return "timeline: empty"
        lines = [f"per-rank timeline ({total * 1e3:.3f} ms/step):"]
        glyphs = {"compute": "#", "mpi_wait": ".", "comm": "~"}
        for rank in range(self.n_ranks):
            row = [" "] * width
            for span in self.spans:
                if span.rank != rank:
                    continue
                lo = int(round(width * span.start / total))
                hi = int(round(width * span.end / total))
                glyph = glyphs.get(span.name, "?")
                for k in range(lo, max(lo + 1, hi)):
                    if k < width:
                        row[k] = glyph
            lines.append(f"  rank {rank:>3d} |{''.join(row)}|")
        lines.append("  legend: # compute  . mpi wait  ~ comm")
        return "\n".join(lines)
