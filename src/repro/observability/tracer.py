"""Low-overhead span tracer with a preallocated ring buffer.

The paper's contribution is *measurement*: per-task breakdowns
(Table 1), MPI imbalance (Figure 4) and scaling curves all come from
knowing where time went.  :class:`~repro.md.timers.TaskTimers` gives
the aggregate view; this module records the *timeline* — every phase of
every timestep as a begin/end span — so a run can be inspected in
`chrome://tracing` / Perfetto or summarized as a flamegraph-style text
report.

Design constraints:

* **Zero cost when disabled.**  The engine holds a tracer object
  unconditionally; the default is the shared :data:`NULL_TRACER`
  singleton whose ``enabled`` flag lets hot paths skip instrumentation
  with a single attribute check (and whose ``span()`` returns a reusable
  no-op context manager for cold paths).
* **Bounded memory.**  Spans land in preallocated numpy column arrays
  used as a ring buffer: once ``capacity`` spans have been recorded the
  oldest are overwritten and counted in :attr:`Tracer.n_dropped` —
  a week-long run can keep a tracer attached without growing.
* **No serialization on the hot path.**  Span names are interned to
  integer ids at record time; strings are only materialized on export.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = [
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TRACE_ENV_VAR",
    "resolve_tracer",
]

#: Environment switch: a non-empty value other than ``0`` makes
#: :func:`resolve_tracer` hand out a live :class:`Tracer` by default.
TRACE_ENV_VAR = "REPRO_TRACE"

#: Default ring capacity — ~64k spans is hours of engine stepping at the
#: ~12 spans/step the instrumented timestep emits.
DEFAULT_CAPACITY = 65_536


@dataclass(frozen=True)
class SpanRecord:
    """One completed span, materialized out of the ring buffer."""

    name: str
    cat: str
    start: float
    end: float
    depth: int
    tid: int

    @property
    def duration(self) -> float:
        return self.end - self.start


class _NullSpan:
    """Reusable no-op context manager returned by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    Hot paths should guard with ``if tracer.enabled:``; cold paths can
    simply ``with tracer.span(...):`` — both cost a single attribute
    access here.
    """

    __slots__ = ()
    enabled = False

    def begin(self, name: str, cat: str = "", ts: float | None = None) -> None:
        pass

    def end(self, ts: float | None = None) -> None:
        pass

    def add_span(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        *,
        tid: int = 0,
        depth: int = 0,
    ) -> None:
        pass

    def span(self, name: str, cat: str = "") -> _NullSpan:
        return _NULL_SPAN

    def reset(self) -> None:
        pass


#: The shared disabled tracer every instrumented object defaults to.
NULL_TRACER = NullTracer()


class _Span:
    """Class-based context manager (cheaper than a generator) for spans."""

    __slots__ = ("_tracer", "_name", "_cat")

    def __init__(self, tracer: "Tracer", name: str, cat: str) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat

    def __enter__(self) -> None:
        self._tracer.begin(self._name, self._cat)
        return None

    def __exit__(self, *exc) -> bool:
        self._tracer.end()
        return False


class Tracer:
    """Recording tracer: begin/end spans into a fixed-size ring buffer.

    Parameters
    ----------
    capacity:
        Maximum retained spans; older spans are overwritten (and counted
        in :attr:`n_dropped`) once the ring wraps.
    clock:
        Monotonic time source (seconds).  Injectable for tests.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        clock=time.perf_counter,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._clock = clock
        # Interned names: strings touch the hot path only on first use.
        self._names: list[str] = []
        self._name_ids: dict[str, int] = {}
        # Ring columns (preallocated once).
        self._name_id = np.zeros(self.capacity, dtype=np.int32)
        self._cat_id = np.zeros(self.capacity, dtype=np.int32)
        self._start = np.zeros(self.capacity, dtype=np.float64)
        self._end = np.zeros(self.capacity, dtype=np.float64)
        self._depth = np.zeros(self.capacity, dtype=np.int16)
        self._tid = np.zeros(self.capacity, dtype=np.int32)
        self._n = 0  # spans ever recorded (monotonic)
        self._stack: list[tuple[int, int, float]] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _intern(self, name: str) -> int:
        ident = self._name_ids.get(name)
        if ident is None:
            ident = len(self._names)
            self._names.append(name)
            self._name_ids[name] = ident
        return ident

    def begin(self, name: str, cat: str = "", ts: float | None = None) -> None:
        """Open a span; pass ``ts`` to reuse an already-taken timestamp."""
        if ts is None:
            ts = self._clock()
        self._stack.append((self._intern(name), self._intern(cat), ts))

    def end(self, ts: float | None = None) -> None:
        """Close the innermost open span."""
        if not self._stack:
            raise RuntimeError("Tracer.end() without a matching begin()")
        if ts is None:
            ts = self._clock()
        name_id, cat_id, start = self._stack.pop()
        self._record(name_id, cat_id, start, ts, len(self._stack), 0)

    def add_span(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        *,
        tid: int = 0,
        depth: int = 0,
    ) -> None:
        """Record an externally-timed span (e.g. a modelled rank task)."""
        self._record(self._intern(name), self._intern(cat), start, end, depth, tid)

    def _record(
        self,
        name_id: int,
        cat_id: int,
        start: float,
        end: float,
        depth: int,
        tid: int,
    ) -> None:
        k = self._n % self.capacity
        self._name_id[k] = name_id
        self._cat_id[k] = cat_id
        self._start[k] = start
        self._end[k] = end
        self._depth[k] = depth
        self._tid[k] = tid
        self._n += 1

    def span(self, name: str, cat: str = "") -> _Span:
        """Context manager recording one span around its body."""
        return _Span(self, name, cat)

    def reset(self) -> None:
        """Drop all recorded spans (e.g. after warmup steps).

        Must not be called with spans still open; the open-span stack is
        cleared too, so a mid-span reset would orphan the pending
        ``end()``.
        """
        self._n = 0
        self._stack.clear()

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def n_recorded(self) -> int:
        """Spans currently held in the ring."""
        return min(self._n, self.capacity)

    @property
    def n_dropped(self) -> int:
        """Spans overwritten after the ring wrapped."""
        return max(0, self._n - self.capacity)

    def records(self) -> list[SpanRecord]:
        """Retained spans in insertion (= end-time) order, oldest first."""
        if self._n <= self.capacity:
            indices = range(self._n)
        else:
            head = self._n % self.capacity
            indices = [*range(head, self.capacity), *range(head)]
        return [
            SpanRecord(
                name=self._names[self._name_id[k]],
                cat=self._names[self._cat_id[k]],
                start=float(self._start[k]),
                end=float(self._end[k]),
                depth=int(self._depth[k]),
                tid=int(self._tid[k]),
            )
            for k in indices
        ]

    def totals_by_name(self, cat: str | None = None) -> dict[str, float]:
        """Total seconds per span name, optionally filtered by category."""
        totals: dict[str, float] = {}
        for record in self.records():
            if cat is not None and record.cat != cat:
                continue
            totals[record.name] = totals.get(record.name, 0.0) + record.duration
        return totals

    def task_totals(self) -> dict[str, float]:
        """Seconds per Table-1 task, summed over the recorded spans.

        Spans emitted by :class:`~repro.md.timers.TaskTimers` carry the
        ``"task"`` category; their per-name totals are directly
        comparable to ``TaskTimers.seconds`` (the trace-vs-timer
        agreement the acceptance test checks).
        """
        return self.totals_by_name(cat="task")

    def span_summary(self) -> list[dict]:
        """Per-name aggregate rows: count, total and mean seconds."""
        counts: dict[tuple[str, str], int] = {}
        totals: dict[tuple[str, str], float] = {}
        for record in self.records():
            key = (record.name, record.cat)
            counts[key] = counts.get(key, 0) + 1
            totals[key] = totals.get(key, 0.0) + record.duration
        rows = [
            {
                "name": name,
                "cat": cat,
                "count": counts[name, cat],
                "total_s": totals[name, cat],
                "mean_s": totals[name, cat] / counts[name, cat],
            }
            for (name, cat) in counts
        ]
        rows.sort(key=lambda row: -row["total_s"])
        return rows

    # ------------------------------------------------------------------
    # Stack reconstruction / flame report
    # ------------------------------------------------------------------
    def collapsed_stacks(self) -> dict[str, float]:
        """Total seconds per semicolon-joined span stack.

        Stacks are reconstructed per thread/rank from start/end nesting
        (the classic flamegraph "collapsed" keying).  After a ring
        wraparound dropped parents make their orphaned children appear
        as roots — a best-effort view, flagged by :attr:`n_dropped`.
        """
        out: dict[str, float] = {}
        per_tid: dict[int, list[SpanRecord]] = {}
        for record in self.records():
            per_tid.setdefault(record.tid, []).append(record)
        for spans in per_tid.values():
            spans.sort(key=lambda r: (r.start, -r.end))
            stack: list[SpanRecord] = []
            for record in spans:
                while stack and stack[-1].end <= record.start:
                    stack.pop()
                path = ";".join([s.name for s in stack] + [record.name])
                out[path] = out.get(path, 0.0) + record.duration
                stack.append(record)
        return out

    def flame_report(self, *, limit: int = 30) -> str:
        """Flamegraph-style text rendering of the collapsed stacks."""
        stacks = self.collapsed_stacks()
        if not stacks:
            return "flame: no spans recorded"
        total = max(
            (t for path, t in stacks.items() if ";" not in path),
            default=max(stacks.values()),
        )
        lines = ["flame (span-stack totals):"]
        ranked = sorted(stacks.items(), key=lambda kv: (kv[0].count(";"), -kv[1]))
        for path, seconds in ranked[:limit]:
            share = 100.0 * seconds / total if total > 0 else 0.0
            indent = "  " * path.count(";")
            leaf = path.rsplit(";", 1)[-1]
            lines.append(f"  {indent}{leaf:<28s} {seconds * 1e3:10.3f} ms {share:5.1f}%")
        if len(ranked) > limit:
            lines.append(f"  ... {len(ranked) - limit} more stacks")
        if self.n_dropped:
            lines.append(f"  (ring dropped {self.n_dropped} oldest spans)")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Chrome trace-event export
    # ------------------------------------------------------------------
    def to_chrome_trace(
        self,
        *,
        pid: int = 0,
        process_name: str = "repro",
        tid_names: dict[int, str] | None = None,
    ) -> dict:
        """The recorded spans as a Chrome trace-event JSON object.

        Complete ("X") events with microsecond timestamps relative to the
        earliest retained span; load the file in ``chrome://tracing`` or
        https://ui.perfetto.dev.
        """
        records = self.records()
        epoch = min((r.start for r in records), default=0.0)
        events: list[dict] = [
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": process_name},
            }
        ]
        for tid, label in sorted((tid_names or {}).items()):
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": label},
                }
            )
        for record in records:
            events.append(
                {
                    "name": record.name,
                    "cat": record.cat or "span",
                    "ph": "X",
                    "ts": (record.start - epoch) * 1e6,
                    "dur": record.duration * 1e6,
                    "pid": pid,
                    "tid": record.tid,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str | Path, **kwargs) -> Path:
        """Serialize :meth:`to_chrome_trace` to ``path``; returns it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome_trace(**kwargs)) + "\n")
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Tracer capacity={self.capacity} recorded={self.n_recorded}"
            f" dropped={self.n_dropped}>"
        )


def resolve_tracer(spec: "Tracer | NullTracer | bool | None" = None):
    """Resolve a tracer argument the way the engine's constructors do.

    * a tracer instance passes through unchanged;
    * ``True`` builds a fresh default-capacity :class:`Tracer`;
    * ``None``/``False`` consult ``$REPRO_TRACE`` — any non-empty value
      other than ``0`` enables tracing — and otherwise hand back the
      shared :data:`NULL_TRACER`.
    """
    if isinstance(spec, (Tracer, NullTracer)):
        return spec
    if spec is True:
        return Tracer()
    env = os.environ.get(TRACE_ENV_VAR, "")
    if env and env != "0":
        return Tracer()
    return NULL_TRACER
