"""Simulated single-node MPI parallelization (the Intel-MPI substitute).

LAMMPS parallelizes by spatial decomposition (Section 2.2): the box is
split into one subdomain per MPI rank, each rank computes its timestep
and exchanges ghost-atom positions/forces with its neighbours.  This
package reproduces that structure analytically:

* :mod:`repro.parallel.decomposition` — LAMMPS-style processor grids and
  subdomain/ghost geometry;
* :mod:`repro.parallel.mpi_model` — per-function MPI time accounting
  (Init/Send/Sendrecv/Wait/Waitany/Allreduce/others) and the per-rank
  imbalance model;
* :mod:`repro.parallel.executor` — the simulated CPU-instance run that
  Figures 3-6 and 10-12/14-15 are generated from.
"""

from repro.parallel.decomposition import SubdomainGeometry, proc_grid
from repro.parallel.executor import CpuRunResult, simulate_cpu_run
from repro.parallel.mpi_model import MPI_FUNCTIONS, MpiModel, MpiTimes

__all__ = [
    "proc_grid",
    "SubdomainGeometry",
    "MpiModel",
    "MpiTimes",
    "MPI_FUNCTIONS",
    "simulate_cpu_run",
    "CpuRunResult",
]
