"""Single-node parallelization: the analytic model and the real engine.

LAMMPS parallelizes by spatial decomposition (Section 2.2): the box is
split into one subdomain per MPI rank, each rank computes its timestep
and exchanges ghost-atom positions/forces with its neighbours.  This
package reproduces that structure twice — analytically and for real:

* :mod:`repro.parallel.decomposition` — LAMMPS-style processor grids and
  subdomain/ghost geometry;
* :mod:`repro.parallel.mpi_model` — per-function MPI time accounting
  (Init/Send/Sendrecv/Wait/Waitany/Allreduce/others) and the per-rank
  imbalance model;
* :mod:`repro.parallel.executor` — the simulated CPU-instance run that
  Figures 3-6 and 10-12/14-15 are generated from;
* :mod:`repro.parallel.engine` (with :mod:`~repro.parallel.shm`,
  :mod:`~repro.parallel.halo`, :mod:`~repro.parallel.forces`) — the
  *measured* counterpart: a shared-memory multiprocessing executor that
  runs the real numpy engine over the same decomposition and records
  per-worker timelines (see ``docs/SCALING.md``).
"""

from repro.parallel.decomposition import SubdomainGeometry, proc_grid
from repro.parallel.engine import ParallelEngineError, ParallelForceExecutor
from repro.parallel.executor import CpuRunResult, simulate_cpu_run
from repro.parallel.forces import DomainLists, evaluate_domain_forces
from repro.parallel.halo import LocalIndex, assign_owners
from repro.parallel.mpi_model import MPI_FUNCTIONS, MpiModel, MpiTimes
from repro.parallel.shm import SharedArray, ShmArena

__all__ = [
    "proc_grid",
    "SubdomainGeometry",
    "MpiModel",
    "MpiTimes",
    "MPI_FUNCTIONS",
    "simulate_cpu_run",
    "CpuRunResult",
    "ParallelForceExecutor",
    "ParallelEngineError",
    "ShmArena",
    "SharedArray",
    "LocalIndex",
    "assign_owners",
    "DomainLists",
    "evaluate_domain_forces",
]
