"""Spatial domain decomposition: processor grids and ghost geometry.

LAMMPS factorizes the rank count into a 3-D processor grid that
minimizes subdomain surface area (communication volume scales with the
surface times the ghost-shell depth — the paper's own estimate in
Section 5.1 is ``O(6 L^2 * cutoff_range * d)`` transferred vs
``O(L^3 * npa_avg * d)`` computed per subdomain).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = ["proc_grid", "SubdomainGeometry"]


@lru_cache(maxsize=None)
def _factor_triples(n: int) -> tuple[tuple[int, int, int], ...]:
    """All ordered triples ``(px, py, pz)`` with ``px py pz == n``."""
    triples = []
    for px in range(1, n + 1):
        if n % px:
            continue
        rem = n // px
        for py in range(1, rem + 1):
            if rem % py:
                continue
            triples.append((px, py, rem // py))
    return tuple(triples)


def proc_grid(
    n_ranks: int, box_lengths: np.ndarray, *, quasi_2d: bool = False
) -> tuple[int, int, int]:
    """Choose the processor grid minimizing total subdomain surface.

    ``quasi_2d`` restricts the grid to the x/y plane (``pz = 1``) — the
    Chute bed is a thin slab, so LAMMPS never splits its z dimension.
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    box_lengths = np.asarray(box_lengths, dtype=float)
    best: tuple[int, int, int] | None = None
    best_surface = float("inf")
    for px, py, pz in _factor_triples(n_ranks):
        if quasi_2d and pz != 1:
            continue
        sub = box_lengths / np.array([px, py, pz])
        surface = 2.0 * (sub[0] * sub[1] + sub[1] * sub[2] + sub[0] * sub[2])
        if surface < best_surface:
            best_surface = surface
            best = (px, py, pz)
    assert best is not None  # n_ranks >= 1 always yields (n, 1, 1) at worst
    return best


@dataclass(frozen=True)
class SubdomainGeometry:
    """One rank's subdomain and its ghost shell."""

    sub_lengths: np.ndarray
    ghost_cutoff: float
    number_density: float
    grid: tuple[int, int, int]

    @classmethod
    def build(
        cls,
        n_ranks: int,
        box_lengths: np.ndarray,
        ghost_cutoff: float,
        number_density: float,
        *,
        quasi_2d: bool = False,
    ) -> "SubdomainGeometry":
        grid = proc_grid(n_ranks, box_lengths, quasi_2d=quasi_2d)
        sub = np.asarray(box_lengths, dtype=float) / np.array(grid, dtype=float)
        return cls(
            sub_lengths=sub,
            ghost_cutoff=float(ghost_cutoff),
            number_density=float(number_density),
            grid=grid,
        )

    @property
    def n_ranks(self) -> int:
        return int(np.prod(self.grid))

    @property
    def local_atoms(self) -> float:
        """Average atoms owned by one rank."""
        return float(np.prod(self.sub_lengths)) * self.number_density

    @property
    def split_dimensions(self) -> int:
        """How many dimensions the decomposition actually splits."""
        return int(sum(1 for p in self.grid if p > 1))

    @property
    def ghost_atoms(self) -> float:
        """Atoms in the ghost shell received from neighbouring ranks.

        The shell only exists along split dimensions (an unsplit
        periodic dimension wraps onto the same rank at no MPI cost).
        """
        inner = self.sub_lengths.copy()
        outer = inner + np.where(
            np.array(self.grid) > 1, 2.0 * self.ghost_cutoff, 0.0
        )
        shell_volume = float(np.prod(outer) - np.prod(inner))
        return shell_volume * self.number_density

    @property
    def exchange_messages(self) -> int:
        """Point-to-point messages per exchange sweep (2 per split dim)."""
        return 2 * self.split_dimensions

    def exchange_bytes(self, bytes_per_atom: float) -> float:
        """Bytes a rank sends per ghost exchange."""
        return self.ghost_atoms * bytes_per_atom
