"""Shared-memory parallel force executor: real multi-process execution.

This is the engine the paper's strong-scaling figures describe, scaled
down to one node: the box is split into a 3-D grid of subdomains
(:func:`repro.parallel.decomposition.proc_grid`), one persistent worker
process owns each subdomain, and all cross-process state — positions,
velocities, forces, per-atom energy/virial accumulators, control words
and per-worker timing slots — lives in POSIX shared memory.  A step is
two barrier crossings: the master publishes fresh coordinates and a
command, the workers evaluate their owned atoms' directed neighbor rows
through the kernel-backend interface, write disjoint owned slices of
the shared output arrays, and meet the master at the done barrier.  The
barrier pair is this engine's stand-in for MPI halo exchange; the
per-worker wall-clock recorded at each step is what
:meth:`ParallelForceExecutor.timeline` turns into a *measured*
:class:`~repro.observability.timeline.RankTimeline` to hold against the
modelled one.

Design properties (see ``docs/SCALING.md`` for the full derivations):

* owner-computes with full directed rows (``newton off``): 2x the pair
  arithmetic of the serial half list, but disjoint writes and bitwise
  identical results for any worker count;
* the rebuild cadence mirrors the serial engine exactly — the master
  applies :meth:`NeighborList.needs_rebuild` to the same positions the
  serial engine would check, and broadcasts one REBUILD command;
* worker failure is detected, not hung on: barrier waits carry
  timeouts, worker exceptions land in a shared error record, and a
  vanished worker breaks the barrier — all three surface as
  :class:`ParallelEngineError` on the master.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
import traceback
from dataclasses import dataclass, field
from threading import BrokenBarrierError
from types import SimpleNamespace
from typing import TYPE_CHECKING

import numpy as np

from repro.md.atoms import AtomSystem
from repro.md.box import Box
from repro.md.kernels import backend_spec, get_backend
from repro.md.neighbor import _encode_pairs
from repro.md.precision import Precision, PrecisionPolicy, policy_for
from repro.md.potentials.base import ForceResult
from repro.md.potentials.eam import EAMAlloy
from repro.md.potentials.granular import ContactHistory
from repro.md.simulation import ForceExecutor
from repro.observability.timeline import RankTimeline
from repro.parallel.decomposition import proc_grid
from repro.parallel.forces import (
    DomainLists,
    evaluate_domain_forces,
    max_halo_width,
)
from repro.parallel.halo import LocalIndex
from repro.parallel.shm import ShmArena

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.md.simulation import Simulation

__all__ = ["ParallelForceExecutor", "ParallelEngineError"]

# Command words (slot 0 of the control array).
CMD_STOP = 0.0
CMD_STEP = 1.0
CMD_REBUILD = 2.0
CMD_DUMP_HISTORY = 3.0
CMD_CRASH = 9.0

# Fault-injection words (slot 5; slot 1 holds the target worker).  Set
# by the master when a fault plan names the current step/phase; the
# victim acts on them *after* the start barrier, so the failure always
# lands mid-protocol the way a real crash would.
FAULT_NONE = 0.0
FAULT_KILL = 1.0
FAULT_HANG = 2.0

#: Exit code of a fault-injected kill (distinct from CMD_CRASH's 23).
_FAULT_EXIT_CODE = 21

_ERROR_BYTES = 2048

#: Liveness-poll interval of the master's watchdog thread.
_WATCHDOG_POLL_SECONDS = 0.05


class ParallelEngineError(RuntimeError):
    """A worker failed (exception, crash, or barrier timeout)."""


@dataclass
class _WorkerPayload:
    """Everything a worker needs besides the shared arrays (picklable)."""

    worker_id: int
    n_workers: int
    specs: dict
    potentials: list
    backend: str
    list_cutoff: float
    halo_width: float
    origin: np.ndarray
    periodic: np.ndarray
    quasi_2d: bool
    n_atoms: int
    excluded_keys: np.ndarray | None
    statics: dict
    has_omega: bool
    needs_velocities: bool
    barrier_timeout: float
    #: Precision mode name; each worker installs the matching policy on
    #: its own backend instance.
    precision: str = "double"
    #: Potential slots carrying a contact-history store, and the row
    #: capacity of their per-worker dump arrays.
    history_slots: tuple = ()
    history_cap: int = 0
    #: Directed ``{slot: (keys, values)}`` tables each worker seeds its
    #: local contact store from (the checkpoint-restore path).
    initial_histories: dict = field(default_factory=dict)


def _write_error(arena: ShmArena, worker_id: int, exc: BaseException) -> None:
    arena["error_flag"][worker_id] = 1
    message = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    ).encode("utf-8", errors="replace")[-_ERROR_BYTES:]
    row = arena["error_text"][worker_id]
    row[:] = 0
    row[: len(message)] = np.frombuffer(message, dtype=np.uint8)


def _read_error(arena: ShmArena, worker_id: int) -> str:
    row = bytes(arena["error_text"][worker_id])
    return row.rstrip(b"\x00").decode("utf-8", errors="replace")


def _worker_main(payload: _WorkerPayload, start_barrier, done_barrier) -> None:
    """Persistent worker loop: wait at the start barrier, act, report."""
    worker = payload.worker_id
    arena = ShmArena.attach(payload.specs)
    backend = get_backend(payload.backend)
    backend.set_policy(policy_for(payload.precision))
    control = arena["control"]
    timing = arena["timing"]
    lists: DomainLists | None = None
    statics_local: dict | None = None
    histories: dict = {}
    for slot, (keys, values) in payload.initial_histories.items():
        store = ContactHistory()
        store.load(keys, values)
        histories[slot] = store
    # EAM's density pass is the only consumer of ghost-headed rows;
    # everyone else builds the owned-head-only directed list.
    owned_only = not any(isinstance(p, EAMAlloy) for p in payload.potentials)
    # Hang/kill detection is the *master's* job (watchdog + its own
    # timeout); the worker-side timeout only guards against a vanished
    # master, so it gets a generous floor — a short master-side timeout
    # (tuned for fast hang detection) must not make workers bail while
    # the master is legitimately busy between dispatches, e.g. writing
    # a checkpoint or restoring one.
    wait_timeout = max(60.0, payload.barrier_timeout)
    try:
        while True:
            start_barrier.wait(timeout=wait_timeout)
            command = control[0]
            if command == CMD_STOP:
                break
            try:
                if command == CMD_CRASH and int(control[1]) == worker:
                    os._exit(23)
                if control[5] != FAULT_NONE and int(control[1]) == worker:
                    if control[5] == FAULT_KILL:
                        os._exit(_FAULT_EXIT_CODE)
                    # Injected hang: block without ever reaching the
                    # done barrier, so only the master's barrier
                    # timeout can detect it (the process stays alive
                    # and the watchdog never fires).
                    time.sleep(3600.0)
                lengths = control[2:5].copy()
                if command == CMD_REBUILD:
                    tick = time.perf_counter()
                    cpu_tick = time.process_time()
                    # Pair search runs on wrapped coordinates (+ ghost
                    # images); force evaluation below never does — it
                    # recomputes minimum-image displacements from the
                    # raw shared positions.
                    box = Box(lengths, payload.periodic, payload.origin)
                    wrapped = box.wrap(arena["positions"])
                    grid = proc_grid(
                        payload.n_workers, lengths, quasi_2d=payload.quasi_2d
                    )
                    index = LocalIndex.build(
                        wrapped,
                        payload.origin,
                        lengths,
                        payload.periodic,
                        grid,
                        worker,
                        payload.halo_width,
                    )
                    lists = DomainLists.build(
                        index,
                        index.local_positions(wrapped, lengths),
                        payload.list_cutoff,
                        excluded_keys=payload.excluded_keys,
                        n_atoms_total=payload.n_atoms,
                        owned_only=owned_only,
                        kernels=backend,
                    )
                    statics_local = {
                        key: (None if value is None else value[index.gids])
                        for key, value in payload.statics.items()
                    }
                    timing[worker, 2] = time.perf_counter() - tick
                    timing[worker, 3] = time.process_time() - cpu_tick
                    timing[worker, 4] = lists.owned_directed_pairs
                elif command == CMD_STEP:
                    if lists is None:
                        raise RuntimeError("STEP before the first REBUILD")
                    tick = time.perf_counter()
                    cpu_tick = time.process_time()
                    index = lists.index
                    velocities = (
                        arena["velocities"][index.gids]
                        if payload.needs_velocities
                        else None
                    )
                    omega = (
                        arena["omega"][index.gids] if payload.has_omega else None
                    )
                    result = evaluate_domain_forces(
                        payload.potentials,
                        lists,
                        arena["positions"],
                        lengths=lengths,
                        periodic=payload.periodic,
                        backend=backend,
                        statics=statics_local,
                        velocities=velocities,
                        omega=omega,
                        histories=histories,
                        n_atoms_total=payload.n_atoms,
                    )
                    owned = index.gids[: index.n_owned]
                    arena["forces"][owned] = result.forces
                    arena["energy"][owned] = result.energy
                    arena["virial"][owned] = result.virial
                    if "torques" in arena and result.torques is not None:
                        arena["torques"][owned] = result.torques
                    arena["interactions"][worker, : len(result.interactions)] = (
                        result.interactions
                    )
                    timing[worker, 0] = time.perf_counter() - tick
                    timing[worker, 1] = time.process_time() - cpu_tick
                elif command == CMD_DUMP_HISTORY:
                    for slot in payload.history_slots:
                        store = histories.get(slot)
                        keys, values = (
                            store.export()
                            if store is not None
                            else (
                                np.empty(0, dtype=np.int64),
                                np.empty((0, 3), dtype=float),
                            )
                        )
                        if len(keys) > payload.history_cap:
                            raise RuntimeError(
                                f"contact-history dump overflow: {len(keys)} "
                                f"rows exceed capacity {payload.history_cap}"
                            )
                        arena[f"hist{slot}_count"][worker] = len(keys)
                        arena[f"hist{slot}_keys"][worker, : len(keys)] = keys
                        arena[f"hist{slot}_values"][worker, : len(keys)] = values
            except Exception as exc:  # report, then meet the done barrier
                _write_error(arena, worker, exc)
            done_barrier.wait(timeout=wait_timeout)
    except BrokenBarrierError:
        # Master died or aborted; nothing to report to.
        pass
    finally:
        arena.close()


def _watch_workers(workers, barriers, stop: threading.Event) -> None:
    """Master-side liveness watchdog.

    A killed worker never reaches its next barrier, so without help the
    master would block for the full ``barrier_timeout``.  This thread
    polls worker liveness and *aborts* both barriers the moment any
    worker dies, converting the master's pending ``wait`` into an
    immediate :class:`~threading.BrokenBarrierError` — detection in
    ~`_WATCHDOG_POLL_SECONDS` instead of the timeout.  (An injected
    *hang* keeps its process alive, so that path is still covered by
    the barrier timeout, by design.)
    """
    while not stop.wait(_WATCHDOG_POLL_SECONDS):
        if any(not process.is_alive() for process in workers):
            for barrier in barriers:
                try:
                    barrier.abort()
                except Exception:  # pragma: no cover - already broken
                    pass
            return


class ParallelForceExecutor(ForceExecutor):
    """Domain-decomposed Neigh+Pair execution on worker processes.

    Parameters
    ----------
    n_workers:
        Worker process count; also the subdomain count (``proc_grid``
        factorizes it into the 3-D grid of minimum surface area).
    barrier_timeout:
        Seconds either side waits at a step barrier before declaring
        the counterpart dead (:class:`ParallelEngineError`).
    quasi_2d:
        Restrict the grid to the x/y plane (the Chute slab geometry).
    start_method:
        ``multiprocessing`` start method; default ``fork`` where
        available (workers inherit the parent cleanly), else ``spawn``
        (payloads are picklable either way).
    fault_plan:
        Optional deterministic fault injector (anything with a
        ``take(step, phase) -> spec | None`` method returning specs with
        ``kind`` (``"kill"``/``"hang"``) and ``worker`` attributes —
        normally a :class:`repro.reliability.FaultPlan`).  When ``None``,
        ``$REPRO_FAULT_PLAN`` is consulted lazily on first dispatch.
    precision:
        Precision mode for the pool — a
        :class:`~repro.md.precision.Precision`, a case-insensitive mode
        name, or ``None`` for float64.  The shared position/velocity/
        force buffers are allocated in the mode's storage dtype (SINGLE
        halves every publish/collect byte), and each worker installs
        the matching policy on its kernel backend.  Typed at start-up:
        changing modes needs a new executor.
    """

    def __init__(
        self,
        n_workers: int,
        *,
        barrier_timeout: float = 120.0,
        quasi_2d: bool = False,
        start_method: str | None = None,
        fault_plan=None,
        precision: "Precision | str | PrecisionPolicy | None" = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)
        self.precision = policy_for(precision)
        self.barrier_timeout = float(barrier_timeout)
        self.quasi_2d = bool(quasi_2d)
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(start_method)
        self._arena: ShmArena | None = None
        self._workers: list = []
        self._start_barrier = None
        self._done_barrier = None
        self._started = False
        self._closed = False
        self.fault_plan = fault_plan
        self._fault_env_checked = False
        self._pending_kill: int | None = None
        self._history_slots: tuple = ()
        self._history_cap = 0
        self._initial_histories: dict = {}
        self._watchdog: threading.Thread | None = None
        self._watchdog_stop: threading.Event | None = None
        #: Pool generation counter: bumped by every (re)spawn, so
        #: recovery code and tests can assert a respawn happened.
        self.spawn_generation = 0
        #: Accumulated per-worker seconds (wall Pair, CPU Pair, wall Neigh).
        self.worker_pair_seconds = np.zeros(self.n_workers)
        self.worker_pair_cpu_seconds = np.zeros(self.n_workers)
        self.worker_neigh_seconds = np.zeros(self.n_workers)
        self.worker_neigh_cpu_seconds = np.zeros(self.n_workers)
        self.last_step_seconds = np.zeros(self.n_workers)
        self.steps_measured = 0
        self.builds_measured = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _start(self) -> None:
        sim = self.simulation
        system = sim.system
        n = system.n_atoms
        potentials = sim.potentials
        needs_velocities = any(
            getattr(p, "needs_full_list", False) for p in potentials
        )
        has_omega = system.omega is not None

        # Per-atom exchange state is typed by the precision policy:
        # SINGLE halves every publish/collect byte through the arena,
        # while the per-atom energy/virial accumulator slots follow the
        # accumulate dtype.  Control/timing words stay float64.
        sd = self.precision.storage_dtype
        ad = self.precision.accumulate_dtype
        layout = {
            "control": ((8,), np.float64),
            "positions": ((n, 3), sd),
            "velocities": ((n, 3), sd),
            "forces": ((n, 3), sd),
            "energy": ((n,), ad),
            "virial": ((n,), ad),
            "timing": ((self.n_workers, 5), np.float64),
            "interactions": ((self.n_workers, max(1, len(potentials))), np.int64),
            "error_flag": ((self.n_workers,), np.int64),
            "error_text": ((self.n_workers, _ERROR_BYTES), np.uint8),
        }
        if has_omega:
            layout["omega"] = ((n, 3), sd)
        if system.torques is not None:
            layout["torques"] = ((n, 3), sd)
        self._history_slots = tuple(
            slot
            for slot, potential in enumerate(potentials)
            if getattr(potential, "history", None) is not None
        )
        self._history_cap = max(256, 8 * n)
        for slot in self._history_slots:
            layout[f"hist{slot}_count"] = ((self.n_workers,), np.int64)
            layout[f"hist{slot}_keys"] = (
                (self.n_workers, self._history_cap),
                np.int64,
            )
            layout[f"hist{slot}_values"] = (
                (self.n_workers, self._history_cap, 3),
                np.float64,
            )
        self._arena = ShmArena.create(layout)

        list_cutoff = sim.neighbor.list_cutoff
        exclusions = sim.neighbor._exclusions
        excluded_keys = (
            None
            if exclusions is None
            else np.unique(_encode_pairs(exclusions[:, 0], exclusions[:, 1], n))
        )
        statics = {
            "types": system.types.copy(),
            "charges": system.charges.copy(),
            "masses": system.masses.copy(),
            "radii": None if system.radii is None else system.radii.copy(),
        }
        spec = backend_spec(sim.backend)
        # Workers get potential clones with the backend reference severed
        # (backends carry scratch buffers, possibly tracer handles, and —
        # for the compiled backend — ctypes bindings that cannot be
        # pickled or deep-copied); each worker resolves its own instance
        # from the registry name.  Sever *before* the deepcopy so the
        # backend never enters the copy graph, then restore.
        import copy

        saved_backends = [pot._backend for pot in potentials]
        for pot in potentials:
            pot._backend = None
        try:
            worker_potentials = copy.deepcopy(potentials)
        finally:
            for pot, saved in zip(potentials, saved_backends):
                pot._backend = saved

        self._start_barrier = self._ctx.Barrier(self.n_workers + 1)
        self._done_barrier = self._ctx.Barrier(self.n_workers + 1)
        for worker_id in range(self.n_workers):
            payload = _WorkerPayload(
                worker_id=worker_id,
                n_workers=self.n_workers,
                specs=self._arena.specs,
                potentials=worker_potentials,
                backend=spec,
                list_cutoff=list_cutoff,
                halo_width=max_halo_width(potentials, list_cutoff),
                origin=system.box.origin.copy(),
                periodic=system.box.periodic.copy(),
                quasi_2d=self.quasi_2d,
                n_atoms=n,
                excluded_keys=excluded_keys,
                statics=statics,
                has_omega=has_omega,
                needs_velocities=needs_velocities or has_omega,
                barrier_timeout=self.barrier_timeout,
                precision=self.precision.mode.value,
                history_slots=self._history_slots,
                history_cap=self._history_cap,
                initial_histories=self._initial_histories,
            )
            process = self._ctx.Process(
                target=_worker_main,
                args=(payload, self._start_barrier, self._done_barrier),
                daemon=True,
                name=f"repro-worker-{worker_id}",
            )
            process.start()
            self._workers.append(process)
        self._started = True
        self.spawn_generation += 1
        self._watchdog_stop = threading.Event()
        self._watchdog = threading.Thread(
            target=_watch_workers,
            args=(
                list(self._workers),
                (self._start_barrier, self._done_barrier),
                self._watchdog_stop,
            ),
            daemon=True,
            name="repro-worker-watchdog",
        )
        self._watchdog.start()

    def _teardown(self) -> None:
        """Stop the pool and release shared state, staying respawnable.

        Unlike :meth:`close`, a torn-down executor is still usable: the
        next ``maintain_neighbors``/``compute`` call runs :meth:`_start`
        again, spawning a fresh pool (seeded with whatever
        ``import_contact_histories`` installed last).  This is the
        recovery path's respawn primitive.
        """
        if self._watchdog_stop is not None:
            self._watchdog_stop.set()
        if self._watchdog is not None:
            self._watchdog.join(timeout=2.0)
        self._watchdog = None
        self._watchdog_stop = None
        if self._started and self._arena is not None:
            alive = [p for p in self._workers if p.is_alive()]
            if alive:
                try:
                    self._arena["control"][0] = CMD_STOP
                    self._arena["control"][5] = FAULT_NONE
                    self._start_barrier.wait(timeout=5.0)
                except (BrokenBarrierError, ValueError):
                    pass
            for process in self._workers:
                process.join(timeout=5.0)
                if process.is_alive():  # pragma: no cover - stuck worker
                    process.terminate()
                    process.join(timeout=5.0)
        self._workers = []
        self._start_barrier = None
        self._done_barrier = None
        self._started = False
        if self._arena is not None:
            self._arena.close()
            self._arena = None

    def close(self) -> None:
        """Stop the workers and release every shared segment (final)."""
        if self._closed:
            return
        self._closed = True
        self._teardown()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    @property
    def arena_nbytes(self) -> int:
        """Bytes mapped in the shared-memory arena (0 before start).

        Sized by the precision policy: the per-atom position/velocity/
        force segments use the storage dtype, so SINGLE reports half the
        exchange footprint of DOUBLE for the same atom count.
        """
        return 0 if self._arena is None else int(self._arena.nbytes)

    # ------------------------------------------------------------------
    # Dispatch machinery
    # ------------------------------------------------------------------
    def _publish_state(self, system: AtomSystem) -> None:
        arena = self._arena
        np.copyto(arena["positions"], system.positions)
        np.copyto(arena["velocities"], system.velocities)
        if "omega" in arena and system.omega is not None:
            np.copyto(arena["omega"], system.omega)
        arena["control"][2:5] = system.box.lengths

    def _dispatch(
        self, command: float, *, crash_target: int = -1, fault=None
    ) -> None:
        """One command round-trip: start barrier, worker action, done."""
        arena = self._arena
        arena["control"][0] = command
        arena["control"][1] = float(crash_target)
        arena["control"][5] = FAULT_NONE
        if fault is not None:
            arena["control"][1] = float(fault.worker)
            arena["control"][5] = (
                FAULT_KILL if fault.kind == "kill" else FAULT_HANG
            )
        try:
            self._start_barrier.wait(timeout=self.barrier_timeout)
            self._done_barrier.wait(timeout=self.barrier_timeout)
        except (BrokenBarrierError, ValueError) as exc:
            self._fail(f"barrier failed during command {command:g}: {exc!r}")
        flags = arena["error_flag"]
        if flags.any():
            failed = int(np.flatnonzero(flags)[0])
            message = _read_error(arena, failed)
            self._fail(f"worker {failed} raised:\n{message}")

    def _fail(self, reason: str) -> None:
        """Collect worker status, tear the pool down, and raise.

        The executor is left *respawnable* (see :meth:`_teardown`), so a
        supervisor catching the :class:`ParallelEngineError` can restore
        a checkpoint and keep using this same executor instance.
        """
        status = []
        for worker_id, process in enumerate(self._workers):
            if not process.is_alive() and process.exitcode not in (0, None):
                status.append(f"worker {worker_id} exitcode {process.exitcode}")
            flags = self._arena["error_flag"] if self._arena is not None else None
            if flags is not None and flags[worker_id]:
                text = _read_error(self._arena, worker_id).strip().splitlines()
                if text:
                    status.append(f"worker {worker_id}: {text[-1]}")
        for barrier in (self._start_barrier, self._done_barrier):
            if barrier is not None:
                try:
                    barrier.abort()
                except Exception:  # pragma: no cover - already broken
                    pass
        detail = ("; ".join(status)) or "no worker diagnostics recorded"
        self._teardown()
        raise ParallelEngineError(f"{reason} [{detail}]")

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def _active_fault_plan(self):
        """The configured fault plan, resolving ``$REPRO_FAULT_PLAN``
        lazily (a function-level import keeps :mod:`repro.reliability`
        out of this module's import graph)."""
        if self.fault_plan is None and not self._fault_env_checked:
            self._fault_env_checked = True
            if os.environ.get("REPRO_FAULT_PLAN"):
                from repro.reliability.faultplan import FaultPlan

                self.fault_plan = FaultPlan.from_env()
        return self.fault_plan

    def _take_fault(self, phase: str):
        if self._pending_kill is not None:
            worker = self._pending_kill
            self._pending_kill = None
            return SimpleNamespace(kind="kill", worker=worker)
        plan = self._active_fault_plan()
        if plan is None:
            return None
        spec = plan.take(self.simulation.step_number, phase)
        if spec is not None and not 0 <= spec.worker < self.n_workers:
            raise ValueError(
                f"fault plan targets worker {spec.worker} but the engine "
                f"has {self.n_workers} workers"
            )
        return spec

    def kill_worker(self, worker_id: int) -> None:
        """Schedule one worker's death at its next command dispatch.

        This is the checkpoint-phase fault: from the supervisor's view
        the process dies right after the failed write, and the watchdog
        breaks the pending dispatch into a :class:`ParallelEngineError`.
        The kill is delivered *in-band* (the worker ``os._exit``s just
        after passing the start barrier) rather than as an asynchronous
        SIGKILL: a signal landing while the victim holds a barrier's
        internal semaphore would leave that lock held forever, and the
        master, watchdog and surviving workers would all deadlock
        trying to acquire it.
        """
        if not self._started:
            raise RuntimeError("engine not started")
        if not 0 <= worker_id < self.n_workers:
            raise ValueError(f"no worker {worker_id}")
        self._pending_kill = int(worker_id)

    # ------------------------------------------------------------------
    # ForceExecutor interface
    # ------------------------------------------------------------------
    def maintain_neighbors(self, system: AtomSystem, *, force: bool = False) -> bool:
        neighbor = self.simulation.neighbor
        if not force:
            neighbor.stats.total_steps += 1
            neighbor.stats.steps_since_build += 1
            if not neighbor.needs_rebuild(system):
                return False
        if not self._started:
            self._start()
        # Mirror the serial build's validity check: ghost-image pair
        # search needs the box at least two list-cutoffs wide.
        rc = neighbor.list_cutoff
        periodic_lengths = system.box.lengths[system.box.periodic]
        if len(periodic_lengths) and rc > 0.5 * float(np.min(periodic_lengths)):
            raise ValueError(
                f"cutoff+skin {rc:g} exceeds half the smallest periodic box "
                f"length {float(np.min(periodic_lengths)):g}; enlarge the "
                "system or shrink the cutoff"
            )
        self._publish_state(system)
        self._dispatch(CMD_REBUILD, fault=self._take_fault("rebuild"))
        neighbor._positions_at_build = system.box.wrap(system.positions)
        neighbor._box_lengths_at_build = system.box.lengths.copy()
        stats = neighbor.stats
        stats.n_builds += 1
        stats.steps_since_build = 0
        directed = int(self._arena["timing"][:, 4].sum())
        stats.last_pairs = directed if neighbor.full else directed // 2
        self.worker_neigh_seconds += self._arena["timing"][:, 2]
        self.worker_neigh_cpu_seconds += self._arena["timing"][:, 3]
        self.builds_measured += 1
        return True

    def compute(self, system: AtomSystem) -> ForceResult:
        if not self._started:
            self._start()
            self.maintain_neighbors(system, force=True)
        arena = self._arena
        self._publish_state(system)
        self._dispatch(CMD_STEP, fault=self._take_fault("step"))

        np.copyto(system.forces, arena["forces"])
        if system.torques is not None and "torques" in arena:
            np.copyto(system.torques, arena["torques"])
        # Canonical-order reductions: summing the per-atom shared slots
        # by global id makes totals independent of the decomposition.
        # The scalar totals always reduce in float64.
        energy = float(np.sum(arena["energy"], dtype=np.float64))
        virial = float(np.sum(arena["virial"], dtype=np.float64))
        interactions = 0
        per_potential = arena["interactions"].sum(axis=0)
        for slot, potential in enumerate(self.simulation.potentials):
            directed = int(per_potential[slot])
            interactions += directed if potential.needs_full_list else directed // 2

        step_times = arena["timing"][:, 0].copy()
        self.last_step_seconds = step_times
        self.worker_pair_seconds += step_times
        self.worker_pair_cpu_seconds += arena["timing"][:, 1]
        self.steps_measured += 1
        return ForceResult(energy, virial, interactions)

    # ------------------------------------------------------------------
    # Contact-history round-trip (checkpoint/restart)
    # ------------------------------------------------------------------
    def export_contact_histories(self) -> dict[int, tuple]:
        """Collect worker-local contact stores into canonical tables.

        Each touching pair is stored twice across the pool (once per
        directed row, by its head's owner); keeping only the ``gi < gj``
        orientation — whose tangential displacement matches the serial
        half-list convention by the contact law's direction-swap
        symmetry — reduces the pool state to exactly the serial store,
        sorted by key for decomposition-independent output.
        """
        if not self._started:
            return super().export_contact_histories()
        if not self._history_slots:
            return {}
        self._dispatch(CMD_DUMP_HISTORY)
        n = self.simulation.system.n_atoms
        tables: dict[int, tuple] = {}
        for slot in self._history_slots:
            counts = self._arena[f"hist{slot}_count"]
            key_blocks = []
            value_blocks = []
            for worker in range(self.n_workers):
                rows = int(counts[worker])
                key_blocks.append(
                    self._arena[f"hist{slot}_keys"][worker, :rows].copy()
                )
                value_blocks.append(
                    self._arena[f"hist{slot}_values"][worker, :rows].copy()
                )
            keys = np.concatenate(key_blocks)
            values = np.concatenate(value_blocks)
            canonical = (keys // n) < (keys % n)
            keys = keys[canonical]
            values = values[canonical]
            order = np.argsort(keys, kind="stable")
            tables[slot] = (keys[order], values[order])
        return tables

    def import_contact_histories(self, tables: dict[int, tuple]) -> None:
        """Install checkpointed contact tables as the pool's seed state.

        The canonical ``i < j`` rows are kept in the master-side
        potentials (via the base implementation — that copy is what a
        later degradation to the serial executor runs on) and expanded
        to both directed orientations (mirror keys, negated values) for
        the workers.  A running pool is torn down: its workers hold
        stale stores, and the next dispatch respawns them with these
        tables.
        """
        super().import_contact_histories(tables)
        n = self.simulation.system.n_atoms
        directed: dict = {}
        for slot, (keys, values) in tables.items():
            keys = np.asarray(keys, dtype=np.int64).reshape(-1)
            values = np.asarray(values, dtype=float).reshape(-1, 3)
            mirror = (keys % n) * np.int64(n) + keys // n
            directed[slot] = (
                np.concatenate([keys, mirror]),
                np.concatenate([values, -values]),
            )
        self._initial_histories = directed
        if self._started:
            self._teardown()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def reset_timings(self) -> None:
        """Zero the accumulated timing counters.

        Benchmarks call this after a warm-up phase so steady-state rates
        exclude the one-off initial neighbor build and scratch growth.
        """
        self.worker_pair_seconds[:] = 0.0
        self.worker_pair_cpu_seconds[:] = 0.0
        self.worker_neigh_seconds[:] = 0.0
        self.worker_neigh_cpu_seconds[:] = 0.0
        self.last_step_seconds[:] = 0.0
        self.steps_measured = 0
        self.builds_measured = 0

    def timeline(self) -> RankTimeline:
        """Measured per-worker timeline (mean seconds per force pass)."""
        steps = max(1, self.steps_measured)
        return RankTimeline.from_measured(self.worker_pair_seconds / steps)

    def inject_crash(self, worker_id: int) -> None:
        """Kill one worker mid-protocol (test hook for the failure path).

        The victim exits before reaching the done barrier, so the
        dispatch below surfaces the broken barrier as
        :class:`ParallelEngineError` instead of hanging.
        """
        if not self._started:
            raise RuntimeError("engine not started")
        if not 0 <= worker_id < self.n_workers:
            raise ValueError(f"no worker {worker_id}")
        self._dispatch(CMD_CRASH, crash_target=worker_id)
