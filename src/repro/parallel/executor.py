"""Simulated CPU-instance experiment runs (Section 5's campaign).

:func:`simulate_cpu_run` evaluates one configuration — benchmark, atom
count, MPI ranks, precision, k-space threshold — on the modelled
dual-socket Xeon 8358 node and returns everything the paper's CPU
figures plot: the Table 1 task breakdown (Figure 3), total MPI time and
imbalance (Figure 4), the MPI function breakdown (Figure 5), and the
performance / energy-efficiency / parallel-efficiency triple (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.observability.timeline import RankTimeline
from repro.observability.tracer import NULL_TRACER, resolve_tracer
from repro.parallel.decomposition import SubdomainGeometry
from repro.parallel.mpi_model import MpiModel, MpiTimes
from repro.perfmodel.costs import CpuCostModel, kspace_grid
from repro.md.precision import parse_precision
from repro.perfmodel.precision import Precision
from repro.perfmodel.workloads import WorkloadParams, get_workload
from repro.platforms.instances import CPU_INSTANCE, InstanceSpec
from repro.platforms.power import CpuPowerModel

__all__ = ["CpuRunResult", "simulate_cpu_run"]

#: Task keys of the breakdown dictionaries, matching Figure 3's legend.
BREAKDOWN_TASKS = (
    "Bond",
    "Comm",
    "Kspace",
    "Modify",
    "Neigh",
    "Other",
    "Output",
    "Pair",
)


@dataclass
class CpuRunResult:
    """Everything measured (modelled) for one CPU-instance run."""

    benchmark: str
    n_atoms: int
    n_ranks: int
    precision: str
    kspace_error: float | None
    #: Mean per-rank seconds per timestep, by Table 1 task (incl. Comm).
    task_seconds: dict[str, float]
    #: Mean per-rank MPI seconds per step, by MPI function.
    mpi_function_seconds: dict[str, float]
    #: Seconds per timestep of the whole run (slowest rank).
    step_seconds: float
    #: Performance in timesteps/second.
    ts_per_s: float
    #: Share of run time inside MPI calls (Figure 4 top).
    mpi_time_fraction: float
    #: Share of run time waiting in MPI calls (Figure 4 bottom).
    mpi_imbalance_fraction: float
    #: Modelled node power draw and the derived efficiency.
    power_watts: float
    energy_efficiency: float
    #: Modelled average physical-core utilization.
    core_utilization: float
    #: Resident memory estimate in bytes.
    memory_bytes: float
    #: Modelled per-rank compute seconds (``None`` when a result is
    #: constructed without the per-rank detail, e.g. in summaries).
    per_rank_compute_seconds: np.ndarray | None = field(repr=False, default=None)
    #: Per-rank span timeline the imbalance figures aggregate over.
    timeline: RankTimeline | None = field(repr=False, default=None)

    def task_fractions(self) -> dict[str, float]:
        total = sum(self.task_seconds.values())
        if total <= 0:
            return {task: 0.0 for task in BREAKDOWN_TASKS}
        return {task: self.task_seconds.get(task, 0.0) / total for task in BREAKDOWN_TASKS}

    def mpi_function_fractions(self) -> dict[str, float]:
        total = sum(self.mpi_function_seconds.values())
        if total <= 0:
            return {fn: 0.0 for fn in self.mpi_function_seconds}
        return {fn: t / total for fn, t in self.mpi_function_seconds.items()}

    def ns_per_day(self, timestep_fs: float) -> float:
        """Simulated nanoseconds per wall-clock day at this throughput."""
        return self.ts_per_s * timestep_fs * 1e-6 * 86_400.0


def _geometry(workload: WorkloadParams, n_atoms: int, n_ranks: int) -> SubdomainGeometry:
    return SubdomainGeometry.build(
        n_ranks,
        workload.box_lengths(n_atoms),
        ghost_cutoff=workload.cutoff + workload.skin,
        number_density=workload.number_density,
        quasi_2d=workload.quasi_2d,
    )


def simulate_cpu_run(
    benchmark: str,
    n_atoms: int,
    n_ranks: int,
    *,
    precision: Precision | str = Precision.MIXED,
    kspace_error: float | None = None,
    seed: int = 0,
    instance: InstanceSpec = CPU_INSTANCE,
    cost_model: CpuCostModel | None = None,
    mpi_model: MpiModel | None = None,
    tracer: object = None,
) -> CpuRunResult:
    """Model one run of ``benchmark`` with ``n_atoms`` on ``n_ranks`` cores.

    The paper maps each MPI process to its own physical core, filling
    one socket before the second (Section 5); ``instance`` bounds the
    rank count accordingly.
    """
    workload = get_workload(benchmark)
    instance.validate_resources(n_ranks=n_ranks)
    if kspace_error is not None and not workload.has_kspace:
        raise ValueError(f"{benchmark} computes no long-range forces")

    precision = parse_precision(precision)
    model = cost_model if cost_model is not None else CpuCostModel(precision=precision)
    if cost_model is None:
        model.precision = precision
    mpi = mpi_model if mpi_model is not None else MpiModel()

    geometry = _geometry(workload, n_atoms, n_ranks)
    n_local = n_atoms / n_ranks
    effective_error = kspace_error if kspace_error is not None else (
        1e-4 if workload.has_kspace else None
    )
    compute = model.compute_times(
        workload,
        n_local,
        n_ranks,
        kspace_error=effective_error,
        n_atoms_total=n_atoms,
    )

    # Jitter models per-rank load variation; the FFT is a globally
    # synchronized collective, so only the local work jitters.
    jitter = mpi.rank_jitter(workload, n_ranks, n_atoms, seed)
    jitterable = compute.total - compute.kspace_fft
    per_rank_compute = jitterable * jitter + compute.kspace_fft

    grid_points = 0.0
    if workload.has_kspace:
        _, grid = kspace_grid(workload, n_atoms, effective_error or 1e-4)
        grid_points = float(np.prod(grid))

    mpi_times: MpiTimes = mpi.step_times(
        workload,
        geometry,
        per_rank_compute,
        kspace_grid_points=grid_points,
        seed=seed,
    )

    # The run-loop step time: the slowest rank's compute plus the uniform
    # communication cost (waits fill the gap on the others).  MPI_Init is
    # outside the run loop, so it does not slow the timestep rate but
    # does count toward profiled MPI time (exactly the paper's setup).
    init = mpi_times.per_function["MPI_Init"]
    uniform_comm = mpi_times.total - mpi_times.imbalance - init
    step_seconds = float(np.max(per_rank_compute)) + uniform_comm
    ts_per_s = 1.0 / step_seconds

    # Task breakdown (mean over ranks).  FFT-transpose comm is charged to
    # Kspace, as LAMMPS' own timing does; the rest of MPI goes to Comm.
    kspace_comm = (
        mpi_times.per_function["MPI_Waitany"]
        + (mpi_times.per_function["MPI_Send"] if grid_points else 0.0) * 0.0
    )
    # MPI_Send contains both reverse-comm and FFT bytes; split it by origin.
    send_total = mpi_times.per_function["MPI_Send"]
    if grid_points > 0 and n_ranks > 1:
        fft_send = 8.0 * grid_points * 4.0 / n_ranks / mpi.bandwidth_b_s
        fft_send = min(fft_send, send_total)
    else:
        fft_send = 0.0
    kspace_comm += fft_send
    comm_task = mpi_times.total - init - kspace_comm

    task_seconds = {
        "Bond": compute.bond,
        "Comm": comm_task,
        "Kspace": compute.kspace + kspace_comm,
        "Modify": compute.modify,
        "Neigh": compute.neigh,
        "Other": compute.other,
        "Output": compute.output,
        "Pair": compute.pair,
    }

    # Build the per-rank timeline the imbalance figures aggregate over:
    # every rank computes, waits at the implicit barrier until the
    # slowest rank arrives, then all ranks pay the uniform comm cost.
    # Figure 4's imbalance is the mean recorded wait span, which equals
    # the analytic ``mpi_times.imbalance`` because the spans store the
    # model's per-rank durations verbatim.
    timeline = RankTimeline.from_model(
        per_rank_compute,
        mpi_times.wait_per_rank,
        comm_seconds=uniform_comm,
    )
    profiled_total = step_seconds + init
    mpi_fraction = mpi_times.total / profiled_total if n_ranks > 1 else 0.0
    imbalance_fraction = (
        timeline.imbalance_seconds() / profiled_total if n_ranks > 1 else 0.0
    )
    # Env resolution is deliberately skipped here: an env-created tracer
    # would be invisible to the caller, so only an explicit one records.
    run_tracer = resolve_tracer(tracer) if tracer is not None else NULL_TRACER
    if run_tracer.enabled:
        timeline.export(run_tracer)

    busy = float(np.mean(per_rank_compute)) / step_seconds
    utilization = min(1.0, workload.core_utilization * busy**0.3)
    power = CpuPowerModel(instance).watts(n_ranks, utilization)

    return CpuRunResult(
        benchmark=benchmark,
        n_atoms=n_atoms,
        n_ranks=n_ranks,
        precision=str(precision.value),
        kspace_error=effective_error if workload.has_kspace else None,
        task_seconds=task_seconds,
        mpi_function_seconds=dict(mpi_times.per_function),
        step_seconds=step_seconds,
        ts_per_s=ts_per_s,
        mpi_time_fraction=mpi_fraction,
        mpi_imbalance_fraction=imbalance_fraction,
        power_watts=power,
        energy_efficiency=ts_per_s / power,
        core_utilization=utilization,
        memory_bytes=workload.memory_bytes(n_atoms),
        per_rank_compute_seconds=per_rank_compute,
        timeline=timeline,
    )
