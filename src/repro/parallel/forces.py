"""Worker-side force evaluation over a subdomain's directed pair list.

The parallel engine runs the paper's ``newton off`` scheme: every
worker stores the *directed* neighbor rows of its local atoms (each
atom's partners sorted by global id) and evaluates, for each owned atom
``i``, the full force ``sum_j f(i, j)`` one-sided — writing only to
``i``'s slots in the shared arrays.  Each unordered pair is therefore
computed twice globally (once per owner), which buys two properties the
half-list scheme cannot offer:

* **disjoint writes** — no inter-worker force reduction or locking, the
  shared force array is partitioned by ownership;
* **bitwise determinism across worker counts** — atom ``i``'s total is
  always the same complete row summed in the same (global-id) order via
  ``np.bincount``'s sequential accumulation, no matter how the box was
  split.

Energy and virial use the standard half-share convention (half of each
directed pair's contribution goes to its owner), accumulated into
per-atom shared slots that the master reduces in canonical atom order.

Three adapters cover every potential in the suite: the generic
:class:`~repro.md.potentials.base.AnalyticPairPotential` path, the
two-pass EAM evaluation (local densities over the widened halo), and
the granular Hooke/history contact model (whose per-contact state lives
in a worker-local :class:`~repro.md.potentials.granular.ContactHistory`
keyed by *directed global* pair ids — mirror-symmetric to the serial
unordered store).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.md.kernels.base import KernelBackend
from repro.md.neighbor import subdomain_directed_pairs
from repro.md.potentials.base import AnalyticPairPotential, PairPotential
from repro.md.potentials.eam import EAMAlloy
from repro.md.potentials.granular import ContactHistory, HookeHistory
from repro.parallel.halo import LocalIndex

__all__ = ["DomainLists", "LocalForces", "evaluate_domain_forces", "max_halo_width"]


def max_halo_width(potentials: list[PairPotential], list_cutoff: float) -> float:
    """Widest ghost shell any of the potentials requires."""
    if not potentials:
        return float(list_cutoff)
    return max(p.halo_width(list_cutoff) for p in potentials)


@dataclass
class DomainLists:
    """One worker's frozen neighbor state between rebuilds."""

    index: LocalIndex
    #: Directed local pairs, sorted by ``(i, global_id[j])``.
    di: np.ndarray
    dj: np.ndarray
    #: Global atom ids per directed row (gathered once per rebuild).
    gdi: np.ndarray
    gdj: np.ndarray
    #: Rows ``[:n_owned_rows]`` have an *owned* ``i`` — a prefix, since
    #: rows are sorted by local ``i`` and owned locals come first.
    n_owned_rows: int
    _dr: np.ndarray | None = field(default=None, repr=False)
    _tmp: np.ndarray | None = field(default=None, repr=False)
    _r2: np.ndarray | None = field(default=None, repr=False)

    @classmethod
    def build(
        cls,
        index: LocalIndex,
        local_positions: np.ndarray,
        list_cutoff: float,
        *,
        excluded_keys: np.ndarray | None = None,
        n_atoms_total: int = 0,
        owned_only: bool = False,
        kernels: "KernelBackend | None" = None,
    ) -> "DomainLists":
        # Non-EAM workloads never read ghost-headed rows; dropping them
        # before the sort (owned_only) cuts the rebuild's lexsort and
        # gather volume without changing any surviving row.  ``kernels``
        # lets the worker's backend (the compiled one) run the local
        # cell-list search natively; it contracts to emit the numpy
        # pairs exactly, so the directed rows are unchanged.
        di, dj = subdomain_directed_pairs(
            local_positions,
            list_cutoff,
            sort_key=index.gids,
            anchor_limit=index.n_owned if owned_only else None,
            kernels=kernels,
        )
        if excluded_keys is not None and len(excluded_keys) and len(di):
            gi = index.gids[di]
            gj = index.gids[dj]
            keys = (
                np.minimum(gi, gj) * np.int64(n_atoms_total) + np.maximum(gi, gj)
            )
            pos = np.searchsorted(excluded_keys, keys)
            pos = np.minimum(pos, len(excluded_keys) - 1)
            keep = excluded_keys[pos] != keys
            di, dj = di[keep], dj[keep]
        return cls(
            index=index,
            di=di,
            dj=dj,
            gdi=index.gids[di],
            gdj=index.gids[dj],
            n_owned_rows=int(np.searchsorted(di, index.n_owned)),
        )

    @property
    def owned_directed_pairs(self) -> int:
        """Stored directed pairs whose ``i`` is an owned atom."""
        return self.n_owned_rows

    def geometry_scratch(
        self, m: int, dtype: np.dtype = np.float64
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-rebuild scratch for the ``dr``/``tmp``/``r2`` hot arrays."""
        if self._dr is None or len(self._dr) < m or self._dr.dtype != dtype:
            self._dr = np.empty((m, 3), dtype=dtype)
            self._tmp = np.empty((m, 3), dtype=dtype)
            self._r2 = np.empty(m, dtype=dtype)
        return self._dr[:m], self._tmp[:m], self._r2[:m]


@dataclass
class LocalForces:
    """Per-owned-atom accumulators of one force pass."""

    forces: np.ndarray
    energy: np.ndarray
    virial: np.ndarray
    torques: np.ndarray | None
    #: Directed interaction count per potential (master halves the
    #: half-list ones to recover the serial convention).
    interactions: list[int] = field(default_factory=list)


def evaluate_domain_forces(
    potentials: list[PairPotential],
    lists: DomainLists,
    positions: np.ndarray,
    *,
    lengths: np.ndarray,
    periodic: np.ndarray,
    backend: KernelBackend,
    statics: dict[str, np.ndarray | None],
    velocities: np.ndarray | None = None,
    omega: np.ndarray | None = None,
    histories: dict[int, ContactHistory] | None = None,
    n_atoms_total: int = 0,
) -> LocalForces:
    """Evaluate every potential over the domain's directed rows.

    ``positions`` is the *global* (raw, possibly unwrapped) position
    array; each pair's displacement is recomputed from it under the
    minimum image every step — exactly the serial kernels' arithmetic —
    so the stored ghost shifts only ever localize the *pair search* at
    rebuild time and atoms crossing a periodic face between rebuilds
    need no special handling.  ``statics`` holds the *local-index*
    gathered per-atom constants (``types``, ``charges``, ``masses``,
    ``radii``); ``velocities`` / ``omega`` are local-gathered per-step
    state (granular only).  ``histories`` maps potential position ->
    worker-local contact store.  All scatter accumulation goes through
    ``backend`` — :meth:`~repro.md.kernels.base.KernelBackend.
    scatter_add` sums in input order, which (with rows sorted by global
    partner id) is what makes the totals independent of the worker
    count.
    """
    index = lists.index
    n_owned = index.n_owned
    # EAM needs the ghost-``i`` rows too (they feed the local densities);
    # everything else only ever reads owned rows, which are a prefix of
    # the sorted directed list — slice instead of masking.
    full_rows = any(isinstance(p, EAMAlloy) for p in potentials)
    m = len(lists.di) if full_rows else lists.n_owned_rows
    di, dj = lists.di[:m], lists.dj[:m]
    # Geometry runs in the storage dtype of the shared position buffer
    # (float32 under SINGLE), mirroring the serial kernels' policy.
    lengths = np.asarray(lengths).astype(positions.dtype, copy=False)
    dr_all, tmp, r2_all = lists.geometry_scratch(m, positions.dtype)
    np.take(positions, lists.gdi[:m], axis=0, out=dr_all, mode="clip")
    np.take(positions, lists.gdj[:m], axis=0, out=tmp, mode="clip")
    np.subtract(dr_all, tmp, out=dr_all)
    # In-place minimum image, same operation sequence as the kernels
    # (divide, round-half-even, mask non-periodic, multiply, subtract),
    # so parallel displacements are bitwise equal to the serial ones.
    np.divide(dr_all, lengths, out=tmp)
    np.rint(tmp, out=tmp)
    if not periodic.all():
        tmp[:, ~periodic] = 0.0
    np.multiply(tmp, lengths, out=tmp)
    np.subtract(dr_all, tmp, out=dr_all)
    np.einsum("ij,ij->i", dr_all, dr_all, out=r2_all)
    owned_mask = di < n_owned

    # Per-atom accumulators follow the accumulate dtype: MIXED gathers
    # float32 per-pair terms into float64 totals.
    at = backend.policy.accumulate_dtype
    out = LocalForces(
        forces=np.zeros((n_owned, 3), dtype=at),
        energy=np.zeros(n_owned, dtype=at),
        virial=np.zeros(n_owned, dtype=at),
        torques=np.zeros((n_owned, 3), dtype=at) if omega is not None else None,
    )

    for slot, pot in enumerate(potentials):
        cutoff_mask = r2_all < pot.cutoff * pot.cutoff
        if isinstance(pot, EAMAlloy):
            _eam_terms(
                pot, lists, dr_all, r2_all, cutoff_mask, owned_mask, backend, out
            )
        elif isinstance(pot, HookeHistory):
            history = histories.setdefault(slot, ContactHistory()) if (
                histories is not None
            ) else ContactHistory()
            _hooke_terms(
                pot,
                lists,
                dr_all,
                r2_all,
                cutoff_mask & owned_mask,
                statics,
                velocities,
                omega,
                history,
                n_atoms_total,
                backend,
                out,
            )
        elif isinstance(pot, AnalyticPairPotential):
            _analytic_terms(
                pot,
                dr_all,
                r2_all,
                cutoff_mask & owned_mask,
                di,
                dj,
                statics,
                backend,
                out,
            )
        else:
            raise TypeError(
                f"no parallel adapter for potential {type(pot).__name__}; "
                "supported: AnalyticPairPotential subclasses, EAMAlloy, "
                "HookeHistory"
            )
    return out


def _analytic_terms(
    pot: AnalyticPairPotential,
    dr_all: np.ndarray,
    r2_all: np.ndarray,
    mask: np.ndarray,
    di: np.ndarray,
    dj: np.ndarray,
    statics: dict[str, np.ndarray | None],
    backend: KernelBackend,
    out: LocalForces,
) -> None:
    sel = np.flatnonzero(mask)
    out.interactions.append(len(sel))
    if len(sel) == 0:
        return
    i, j = di[sel], dj[sel]
    dr, r2 = dr_all[sel], r2_all[sel]
    r = np.sqrt(r2)
    # The pair set was decided in the storage dtype above; the per-pair
    # math now drops to the compute dtype (a no-op except under MIXED).
    ct = backend.policy.compute_dtype
    if dr.dtype != ct:
        dr = dr.astype(ct)
        r2 = r2.astype(ct)
        r = r.astype(ct)
    types = statics["types"]
    charges = statics["charges"]
    type_i = types[i] if pot.needs_types else None
    type_j = types[j] if pot.needs_types else None
    q_i = charges[i].astype(ct, copy=False) if pot.needs_charges else None
    q_j = charges[j].astype(ct, copy=False) if pot.needs_charges else None
    energy, f_over_r = pot.pair_terms(r, r2, type_i, type_j, q_i, q_j)
    backend.scatter_add_sorted(out.forces, i, f_over_r[:, None] * dr)
    backend.scatter_add_sorted(out.energy, i, 0.5 * energy)
    backend.scatter_add_sorted(out.virial, i, 0.5 * f_over_r * r2)


def _eam_terms(
    pot: EAMAlloy,
    lists: DomainLists,
    dr_all: np.ndarray,
    r2_all: np.ndarray,
    cutoff_mask: np.ndarray,
    owned_mask: np.ndarray,
    backend: KernelBackend,
    out: LocalForces,
) -> None:
    """Two-pass EAM over the full local rows (ghost rows feed ``rho``).

    Halo atoms within the force cutoff of an owned atom have *complete*
    density rows by construction (the EAM halo width is ``list_cutoff +
    cutoff``), so their embedding slopes match the serial values; rows
    further out are incomplete but never consumed.
    """
    sel = np.flatnonzero(cutoff_mask)
    out.interactions.append(int(np.count_nonzero(cutoff_mask & owned_mask)))
    n_owned = len(out.energy)
    if len(sel) == 0:
        # Mirror the serial evaluation: with no pairs anywhere the
        # embedding sum is skipped entirely (exact zero, not F(rho->0)).
        return
    i, j = lists.di[sel], lists.dj[sel]
    r2 = r2_all[sel]
    r = np.sqrt(r2)
    ct = backend.policy.compute_dtype
    dr_sel = dr_all[sel]
    if r.dtype != ct:
        r = r.astype(ct)
        r2 = r2.astype(ct)
        dr_sel = dr_sel.astype(ct)

    f_r, df_r = pot.density_function(r)
    # Densities accumulate in the accumulate dtype (f64 under MIXED).
    rho = np.zeros(lists.index.n_local, dtype=backend.policy.accumulate_dtype)
    backend.scatter_add_sorted(rho, i, f_r)
    F_rho, Fp_rho = pot.embedding_function(rho)

    phi, dphi = pot.pair_function(r)
    Fp = Fp_rho.astype(ct, copy=False)
    f_over_r = -(dphi + (Fp[i] + Fp[j]) * df_r) / r

    owned = i < n_owned
    io = i[owned]
    backend.scatter_add_sorted(
        out.forces, io, f_over_r[owned, None] * dr_sel[owned]
    )
    out.energy += F_rho[:n_owned]
    backend.scatter_add_sorted(out.energy, io, 0.5 * phi[owned])
    backend.scatter_add_sorted(out.virial, io, 0.5 * (f_over_r * r2)[owned])


def _hooke_terms(
    pot: HookeHistory,
    lists: DomainLists,
    dr_all: np.ndarray,
    r2_all: np.ndarray,
    mask: np.ndarray,
    statics: dict[str, np.ndarray | None],
    velocities: np.ndarray | None,
    omega: np.ndarray | None,
    history: ContactHistory,
    n_atoms_total: int,
    backend: KernelBackend,
    out: LocalForces,
) -> None:
    """Directed granular contacts, one-sided on the owner.

    Every term of :meth:`HookeHistory.contact_terms` flips sign (or
    stays invariant) under the direction swap exactly as the serial
    two-sided scatter requires, so the owner of each side computes its
    own force/torque/history independently and the results agree with
    the serial evaluation.  The tangential history is keyed by the
    *directed* global pair id; contacts whose owner migrates at a
    rebuild restart their history from zero (a documented deviation —
    the serial store survives migration).
    """
    radii = statics["radii"]
    masses = statics["masses"]
    if radii is None:
        raise ValueError("HookeHistory needs a granular system (radii set)")
    sel = np.flatnonzero(mask)
    out.interactions.append(len(sel))
    i, j = lists.di[sel], lists.dj[sel]
    r = np.sqrt(r2_all[sel])
    touching = r < (radii[i] + radii[j]).astype(r.dtype, copy=False)
    sel, i, j, r = sel[touching], i[touching], j[touching], r[touching]
    gids = lists.index.gids
    keys = gids[i] * np.int64(n_atoms_total) + gids[j]
    xi = history.sync(keys)
    if len(sel) == 0:
        return
    # Contact math in the compute dtype; the tangential history stays
    # float64 (restart state), exactly as the serial evaluation does.
    ct = backend.policy.compute_dtype
    dr_sel = dr_all[sel].astype(ct, copy=False)
    if r.dtype != ct:
        r = r.astype(ct)
    f_i, torque, xi_new, pair_energy, pair_virial = pot.contact_terms(
        dr_sel,
        r,
        radii[i].astype(ct, copy=False),
        radii[j].astype(ct, copy=False),
        masses[i].astype(ct, copy=False),
        masses[j].astype(ct, copy=False),
        velocities[i].astype(ct, copy=False),
        velocities[j].astype(ct, copy=False),
        omega[i].astype(ct, copy=False) if omega is not None else None,
        omega[j].astype(ct, copy=False) if omega is not None else None,
        xi,
    )
    history.store(xi_new)
    backend.scatter_add_sorted(out.forces, i, f_i)
    if out.torques is not None:
        backend.scatter_add_sorted(out.torques, i, -radii[i][:, None] * torque)
    backend.scatter_add_sorted(out.energy, i, 0.5 * pair_energy)
    backend.scatter_add_sorted(out.virial, i, 0.5 * pair_virial)
