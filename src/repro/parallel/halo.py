"""Ownership assignment and ghost (halo) selection for subdomains.

The decomposition is the uniform LAMMPS brick: :func:`repro.parallel.
decomposition.proc_grid` factors the worker count into a 3-D grid and
each worker owns one axis-aligned cell of the box.  Periodic boundaries
are realized by *ghost images*: a worker's halo holds shifted copies
``position + s * L`` (``s`` in ``{-1, 0, 1}`` per periodic dimension) of
every atom that lands within the halo width of its subdomain, so the
local pair search runs with plain Euclidean distances and no
minimum-image logic — exactly how a distributed MD code sees its ghost
atoms after the exchange.

Everything here is a pure function of the wrapped positions, the box
and the grid, so the master and every worker compute *identical*
assignments without communicating anything beyond the arrays already in
shared memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

__all__ = ["assign_owners", "domain_bounds", "select_ghosts", "LocalIndex"]


def assign_owners(
    positions: np.ndarray,
    origin: np.ndarray,
    lengths: np.ndarray,
    grid: tuple[int, int, int],
) -> np.ndarray:
    """Owning worker (flattened grid cell) for each *wrapped* position.

    Ownership is defined by index arithmetic — ``floor((p - origin) /
    sub_length)`` clipped into the grid — rather than interval tests, so
    an atom sitting exactly on a face (including the upper box face,
    where floating-point wrap can land it) gets exactly one owner.
    """
    grid_arr = np.asarray(grid, dtype=np.int64)
    sub = np.asarray(lengths, dtype=float) / grid_arr
    idx = np.floor((np.asarray(positions) - origin) / sub).astype(np.int64)
    idx = np.clip(idx, 0, grid_arr - 1)
    strides = np.array([grid_arr[1] * grid_arr[2], grid_arr[2], 1], dtype=np.int64)
    return idx @ strides


def domain_bounds(
    worker: int,
    origin: np.ndarray,
    lengths: np.ndarray,
    grid: tuple[int, int, int],
) -> tuple[np.ndarray, np.ndarray]:
    """``(lo, hi)`` corner coordinates of one worker's subdomain."""
    coords = np.array(np.unravel_index(worker, grid), dtype=float)
    sub = np.asarray(lengths, dtype=float) / np.asarray(grid, dtype=float)
    lo = np.asarray(origin, dtype=float) + coords * sub
    return lo, lo + sub


def select_ghosts(
    positions: np.ndarray,
    owners: np.ndarray,
    worker: int,
    lo: np.ndarray,
    hi: np.ndarray,
    width: float,
    lengths: np.ndarray,
    periodic: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Halo atoms of one subdomain: ``(global_ids, integer shifts)``.

    Scans the up-to-27 periodic images of every atom and keeps those
    whose shifted position falls within ``width`` of ``[lo, hi]``.  The
    unshifted image of the worker's own atoms is excluded (those are the
    owned locals); *shifted* self-images are kept — with a single grid
    cell along a periodic dimension a domain neighbors itself, and its
    halo must contain its own atoms' wrap-around copies.

    The enumeration order (shift-major, ascending global id within each
    shift) is deterministic, which keeps worker-local atom numbering —
    and hence every downstream reduction — reproducible run to run.
    """
    positions = np.asarray(positions, dtype=float)
    lengths = np.asarray(lengths, dtype=float)
    gids: list[np.ndarray] = []
    shifts: list[np.ndarray] = []
    axes = [(-1, 0, 1) if periodic[d] else (0,) for d in range(3)]
    for shift in product(*axes):
        shift_arr = np.array(shift, dtype=np.int64)
        shifted = positions + shift_arr * lengths
        inside = np.all(shifted >= lo - width, axis=1) & np.all(
            shifted <= hi + width, axis=1
        )
        if shift == (0, 0, 0):
            inside &= owners != worker
        selected = np.flatnonzero(inside)
        if len(selected):
            gids.append(selected)
            shifts.append(np.broadcast_to(shift_arr, (len(selected), 3)))
    if not gids:
        return np.empty(0, dtype=np.int64), np.empty((0, 3), dtype=np.int64)
    return np.concatenate(gids), np.concatenate(shifts)


@dataclass
class LocalIndex:
    """One worker's frozen local atom set (rebuilt with the lists).

    ``gids`` maps local index -> global atom id, owned atoms first
    (ascending id) followed by halo atoms; ``shifts`` holds the integer
    periodic image of each local atom (zero for owned), so the local
    coordinates at any later step are ``wrapped[gids] + shifts * L`` with
    the *current* box lengths — NPT rescales between rebuilds stay
    consistent without re-selecting the halo.
    """

    gids: np.ndarray
    shifts: np.ndarray
    n_owned: int

    @classmethod
    def build(
        cls,
        positions: np.ndarray,
        origin: np.ndarray,
        lengths: np.ndarray,
        periodic: np.ndarray,
        grid: tuple[int, int, int],
        worker: int,
        halo_width: float,
    ) -> "LocalIndex":
        owners = assign_owners(positions, origin, lengths, grid)
        owned = np.flatnonzero(owners == worker)
        lo, hi = domain_bounds(worker, origin, lengths, grid)
        ghost_ids, ghost_shifts = select_ghosts(
            positions, owners, worker, lo, hi, halo_width, lengths, periodic
        )
        gids = np.concatenate([owned, ghost_ids])
        shifts = np.concatenate(
            [np.zeros((len(owned), 3), dtype=np.int64), ghost_shifts]
        )
        return cls(gids=gids, shifts=shifts, n_owned=len(owned))

    @property
    def n_local(self) -> int:
        return len(self.gids)

    def local_positions(self, wrapped: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """Local coordinates (ghosts shifted) for the current step."""
        return wrapped[self.gids] + self.shifts * np.asarray(lengths, dtype=float)
