"""MPI function-level time accounting and the imbalance model.

Reproduces the quantities the paper profiles in Section 5.1:

* the total per-rank share of time spent inside MPI calls (Figure 4 top),
* the breakdown over the most relevant functions — MPI_Init, MPI_Send,
  MPI_Sendrecv, MPI_Wait, MPI_Waitany, MPI_Allreduce, others (Figure 5),
* the *MPI imbalance*: time spent in MPI calls waiting for data
  (Figure 4 bottom).

Model choices mirror the paper's findings:

* MPI_Init's per-rank time grows with the rank count and scales with
  the total execution time (the paper verified this by running 100x
  more timesteps) — modelled as a rank-count-dependent fraction of the
  per-step busy time;
* transfer terms (Send/Sendrecv/Allreduce) grow with the exchanged
  bytes, so they "become more prominent for bigger systems";
* waiting comes from per-rank compute jitter whose amplitude is a
  per-benchmark property (Chain/Chute >> Rhodopsin > LJ ~ EAM).
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.parallel.decomposition import SubdomainGeometry
from repro.perfmodel.workloads import WorkloadParams

__all__ = ["MPI_FUNCTIONS", "MpiTimes", "MpiModel"]

#: The functions the paper's Figures 5 and 12 break MPI time into.
MPI_FUNCTIONS = (
    "MPI_Allreduce",
    "MPI_Init",
    "MPI_Send",
    "MPI_Sendrecv",
    "MPI_Wait",
    "MPI_Waitany",
    "others",
)

#: Ghost exchange payload per atom: three coordinates (plus velocity for
#: a fraction of exchanges), averaged — LAMMPS forwards 24-40 B/atom.
POSITION_BYTES = 24.0
FORCE_BYTES = 24.0


@dataclass
class MpiTimes:
    """Per-step MPI seconds for one simulated run (averaged over ranks)."""

    per_function: dict[str, float] = field(
        default_factory=lambda: {fn: 0.0 for fn in MPI_FUNCTIONS}
    )
    #: Per-rank waiting time (the imbalance component), seconds/step.
    wait_per_rank: np.ndarray = field(default_factory=lambda: np.zeros(1))
    #: Per-rank total MPI time, seconds/step.
    total_per_rank: np.ndarray = field(default_factory=lambda: np.zeros(1))

    @property
    def total(self) -> float:
        return float(np.mean(self.total_per_rank))

    @property
    def imbalance(self) -> float:
        return float(np.mean(self.wait_per_rank))

    def function_fractions(self) -> dict[str, float]:
        total = sum(self.per_function.values())
        if total <= 0:
            return {fn: 0.0 for fn in MPI_FUNCTIONS}
        return {fn: t / total for fn, t in self.per_function.items()}


class MpiModel:
    """Single-node Intel-MPI cost model.

    Parameters are per-message latency, effective per-rank bandwidth
    (shared-memory transport), and the MPI_Init amortization coefficient
    calibrated against Figures 4/5.
    """

    def __init__(
        self,
        *,
        latency_s: float = 2.0e-6,
        bandwidth_b_s: float = 1.5e9,
        allreduce_latency_s: float = 1.5e-6,
        init_base_s: float = 0.6,
        init_fraction_per_log2: float = 0.002,
        n_steps: int = 10_000,
    ) -> None:
        self.latency_s = float(latency_s)
        self.bandwidth_b_s = float(bandwidth_b_s)
        self.allreduce_latency_s = float(allreduce_latency_s)
        #: Fixed per-rank MPI_Init cost of one run (amortized over the
        #: profiling runs' 10k timesteps, Section 5.1).
        self.init_base_s = float(init_base_s)
        self.init_fraction_per_log2 = float(init_fraction_per_log2)
        self.n_steps = int(n_steps)

    # ------------------------------------------------------------------
    def init_seconds_per_step(self, n_ranks: int, mean_compute: float) -> float:
        """Amortized per-step MPI_Init time.

        Two components, both observed by the paper: a fixed per-run
        setup cost (dominant for small/fast systems, making Init the
        largest MPI entry in Figure 5's 32k panels), plus a part that
        "scales with the total execution time" and grows with the rank
        count (verified by the authors with 100x longer runs).
        """
        if n_ranks <= 1:
            return 0.0
        fixed = self.init_base_s / self.n_steps
        scaling = self.init_fraction_per_log2 * math.log2(n_ranks) * mean_compute
        return fixed + scaling

    def rank_jitter(
        self, workload: WorkloadParams, n_ranks: int, n_atoms: int, seed: int
    ) -> np.ndarray:
        """Deterministic per-rank compute-time multipliers ``1 + eps``.

        The jitter amplitude is the benchmark's imbalance property; the
        seed folds in the configuration so repeated runs are identical
        but different setups decorrelate (as real profiles do).
        """
        if n_ranks == 1:
            return np.ones(1)
        # A stable (process-independent) seed mix; Python's hash() is
        # salted per process and would break run-to-run determinism.
        name_tag = zlib.crc32(workload.name.encode())
        rng = np.random.default_rng(
            np.random.SeedSequence([name_tag, n_ranks, n_atoms, seed])
        )
        eps = rng.normal(0.0, workload.imbalance_amplitude, n_ranks)
        # Centre the jitter so the mean rank matches the cost model and
        # the slowest rank is never *faster* than it (keeps parallel
        # efficiency <= 100%).
        eps -= eps.mean()
        return np.maximum(1.0 + eps, 0.5)

    # ------------------------------------------------------------------
    def step_times(
        self,
        workload: WorkloadParams,
        geometry: SubdomainGeometry,
        compute_seconds: np.ndarray,
        *,
        kspace_grid_points: float = 0.0,
        seed: int = 0,
    ) -> MpiTimes:
        """Per-step MPI times given each rank's compute seconds.

        ``compute_seconds`` already includes the per-rank jitter; the
        barrier at the end of the force stage converts the spread into
        MPI_Wait time on the fast ranks.
        """
        n_ranks = geometry.n_ranks
        times = MpiTimes(
            wait_per_rank=np.zeros(n_ranks), total_per_rank=np.zeros(n_ranks)
        )
        if n_ranks == 1:
            return times
        compute_seconds = np.asarray(compute_seconds, dtype=float)
        if len(compute_seconds) != n_ranks:
            raise ValueError("one compute time per rank required")

        # --- ghost exchanges (forward positions, reverse forces) -------
        phases = 2 if workload.newton else 1
        bytes_fwd = geometry.exchange_bytes(workload.comm_bytes_per_atom)
        bytes_rev = geometry.exchange_bytes(FORCE_BYTES) if workload.newton else 0.0
        transfer = (bytes_fwd + bytes_rev) / self.bandwidth_b_s
        n_msgs = geometry.exchange_messages * phases
        latency = n_msgs * self.latency_s

        # LAMMPS' forward comm uses MPI_Sendrecv sweeps; the reverse
        # (force) path posts sends and waits on receives.
        sendrecv = bytes_fwd / self.bandwidth_b_s + 0.5 * latency
        send = bytes_rev / self.bandwidth_b_s + 0.25 * latency
        protocol_wait = 0.25 * latency

        # --- collective operations --------------------------------------
        # Thermo reductions every step; the NPT barostat adds a second.
        n_allreduce = 2 if workload.modify_weight > 4 else 1
        allreduce = n_allreduce * self.allreduce_latency_s * math.ceil(
            math.log2(n_ranks)
        )

        # --- k-space grid communication (FFT transposes) ----------------
        kspace_send = 0.0
        kspace_waitany = 0.0
        if kspace_grid_points > 0:
            # FFT transposes move each rank's grid slab across ranks;
            # 4 bytes/point (-DFFT_SINGLE).  The all-to-all overlaps
            # heavily on a single node, so the per-step cost is ~two
            # slab passes rather than two per FFT.
            slab_bytes = kspace_grid_points * 4.0 / n_ranks
            kspace_send = 2.0 * slab_bytes / self.bandwidth_b_s
            kspace_waitany = (
                min(n_ranks - 1, 8) * self.latency_s + 0.25 * kspace_send
            )

        # --- MPI_Init amortization ---------------------------------------
        init = self.init_seconds_per_step(n_ranks, float(np.mean(compute_seconds)))

        # --- imbalance waits ---------------------------------------------
        barrier = float(np.max(compute_seconds))
        wait_imbalance = barrier - compute_seconds

        base = send + sendrecv + protocol_wait + allreduce + kspace_send + kspace_waitany
        others = 0.05 * base

        times.per_function = {
            "MPI_Allreduce": allreduce,
            "MPI_Init": init,
            "MPI_Send": send + kspace_send,
            "MPI_Sendrecv": sendrecv,
            "MPI_Wait": protocol_wait + float(np.mean(wait_imbalance)),
            "MPI_Waitany": kspace_waitany,
            "others": others,
        }
        times.wait_per_rank = wait_imbalance
        times.total_per_rank = (
            wait_imbalance + base + others + init
        )
        return times
