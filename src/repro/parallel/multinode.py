"""Multi-node scale-out estimator (the Section 4.1 contrast).

The paper motivates its single-node focus by noting that "multi-node
strong scaling ... rapidly becomes inefficient (e.g., 33% parallel
efficiency for LJ on Haswell with 64 nodes)".  This module extends the
single-node model across an interconnect so that contrast can be
reproduced: each node is the CPU instance running one rank per core,
ghost exchanges that cross node boundaries pay network (not
shared-memory) bandwidth and latency, and the collective/imbalance
terms span the whole job.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parallel.decomposition import SubdomainGeometry
from repro.parallel.mpi_model import FORCE_BYTES, MpiModel
from repro.perfmodel.costs import CpuCostModel, kspace_grid
from repro.perfmodel.workloads import get_workload
from repro.platforms.instances import CPU_INSTANCE, InstanceSpec

__all__ = ["MultiNodeResult", "NetworkModel", "simulate_multinode_run"]


@dataclass(frozen=True)
class NetworkModel:
    """Interconnect parameters (100 Gb/s-class fabric defaults)."""

    #: Effective per-rank bandwidth for inter-node messages.  Far below
    #: the NIC line rate: all ranks on a node share it and per-message
    #: payloads are small.
    bandwidth_b_s: float = 1.2e8
    latency_s: float = 1.5e-6
    allreduce_latency_s: float = 3.0e-6


@dataclass
class MultiNodeResult:
    benchmark: str
    n_atoms: int
    n_nodes: int
    total_ranks: int
    step_seconds: float
    ts_per_s: float
    #: Share of ghost-exchange links that cross node boundaries.
    cross_node_fraction: float


def _cross_node_fraction(ranks_per_node: int) -> float:
    """Fraction of a rank's neighbor links that leave its node.

    Node blocks are ~cubic groups of ranks; a block of side ``b`` keeps
    ``(b-1)/b`` of each dimension's links internal.
    """
    side = max(1.0, ranks_per_node ** (1.0 / 3.0))
    return min(1.0, 1.0 / side)


def simulate_multinode_run(
    benchmark: str,
    n_atoms: int,
    n_nodes: int,
    *,
    instance: InstanceSpec = CPU_INSTANCE,
    ranks_per_node: int | None = None,
    network: NetworkModel | None = None,
    kspace_error: float | None = None,
    seed: int = 0,
) -> MultiNodeResult:
    """Model ``benchmark`` across ``n_nodes`` CPU-instance nodes."""
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    workload = get_workload(benchmark)
    network = network if network is not None else NetworkModel()
    per_node = ranks_per_node if ranks_per_node is not None else instance.total_cores
    instance.validate_resources(n_ranks=per_node)
    total_ranks = n_nodes * per_node

    geometry = SubdomainGeometry.build(
        total_ranks,
        workload.box_lengths(n_atoms),
        ghost_cutoff=workload.cutoff + workload.skin,
        number_density=workload.number_density,
        quasi_2d=workload.quasi_2d,
    )
    model = CpuCostModel()
    effective_error = kspace_error if kspace_error is not None else (
        1e-4 if workload.has_kspace else None
    )
    compute = model.compute_times(
        workload,
        n_atoms / total_ranks,
        total_ranks,
        kspace_error=effective_error,
        n_atoms_total=n_atoms,
    )

    mpi = MpiModel()
    jitter = mpi.rank_jitter(workload, total_ranks, n_atoms, seed)
    jitterable = compute.total - compute.kspace_fft
    per_rank = jitterable * jitter + compute.kspace_fft
    barrier = float(np.max(per_rank))

    # Ghost exchange: split intra-node (shared memory) vs inter-node.
    cross = _cross_node_fraction(per_node) if n_nodes > 1 else 0.0
    phases_bytes = geometry.exchange_bytes(workload.comm_bytes_per_atom)
    if workload.newton:
        phases_bytes += geometry.exchange_bytes(FORCE_BYTES)
    intra = (1.0 - cross) * phases_bytes / mpi.bandwidth_b_s
    inter = cross * phases_bytes / network.bandwidth_b_s
    n_msgs = geometry.exchange_messages * (2 if workload.newton else 1)
    latency = n_msgs * (
        (1.0 - cross) * mpi.latency_s + cross * network.latency_s
    )

    allreduce = (
        (2 if workload.modify_weight > 4 else 1)
        * network.allreduce_latency_s
        * np.ceil(np.log2(max(total_ranks, 2)))
    )

    kspace_comm = 0.0
    if workload.has_kspace:
        _, grid = kspace_grid(workload, n_atoms, effective_error or 1e-4)
        grid_points = float(np.prod(grid))
        slab_bytes = grid_points * 4.0 / total_ranks
        # The FFT all-to-all is all inter-node traffic beyond one node.
        bw = mpi.bandwidth_b_s if n_nodes == 1 else network.bandwidth_b_s
        kspace_comm = 2.0 * slab_bytes / bw

    step_seconds = barrier + intra + inter + latency + allreduce + kspace_comm
    return MultiNodeResult(
        benchmark=benchmark,
        n_atoms=n_atoms,
        n_nodes=n_nodes,
        total_ranks=total_ranks,
        step_seconds=step_seconds,
        ts_per_s=1.0 / step_seconds,
        cross_node_fraction=cross,
    )
