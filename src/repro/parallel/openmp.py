"""Hybrid MPI x OpenMP execution model (the paper's Section 2.2 aside).

The INTEL package offers two parallelization levels: MPI spatial
decomposition and OpenMP threading within a rank.  The authors
"experimented with OpenMP and observed that, for our experiments, the
OpenMP parallelization (or a combination of the two) was less
performing than the MPI-based one in all cases" — and therefore ran the
whole campaign with one MPI rank per core.

This module models *why*: OpenMP threading only covers the loop bodies
(a serial fraction per task remains), pays a fork-join barrier per
parallel region, and shares the neighbor-list build poorly — while the
MPI decomposition parallelizes the entire timestep including the
bookkeeping.  ``simulate_hybrid_run`` lets any core budget be split
between ranks and threads; tests assert the paper's conclusion that the
pure-MPI split wins for every suite benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel.executor import CpuRunResult, simulate_cpu_run
from repro.perfmodel.costs import CpuCostModel
from repro.md.precision import parse_precision
from repro.perfmodel.precision import Precision
from repro.perfmodel.workloads import get_workload
from repro.platforms.instances import CPU_INSTANCE, InstanceSpec

__all__ = ["OpenMpModel", "simulate_hybrid_run", "best_hybrid_split"]


@dataclass(frozen=True)
class OpenMpModel:
    """Threading-efficiency parameters of the INTEL package's OpenMP path.

    * ``parallel_fraction``: share of a task's work inside ``omp for``
      regions (Amdahl's serial remainder covers list management, fix
      bookkeeping and reductions);
    * ``barrier_s``: fork-join cost per parallel region per step;
    * ``regions_per_step``: how many parallel regions one timestep opens
      (pair, neighbor, integration, fix loops);
    * ``neigh_parallel_fraction``: the neighbor build threads worse than
      the force loops (shared bins, atomic updates).
    """

    parallel_fraction: float = 0.93
    neigh_parallel_fraction: float = 0.75
    barrier_s: float = 4.0e-6
    regions_per_step: int = 8

    def thread_speedup(self, n_threads: int, parallel_fraction: float) -> float:
        """Amdahl speedup of one task over ``n_threads`` threads."""
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        serial = 1.0 - parallel_fraction
        return 1.0 / (serial + parallel_fraction / n_threads)


def simulate_hybrid_run(
    benchmark: str,
    n_atoms: int,
    n_ranks: int,
    n_threads: int,
    *,
    precision: Precision | str = Precision.MIXED,
    kspace_error: float | None = None,
    seed: int = 0,
    instance: InstanceSpec = CPU_INSTANCE,
    omp: OpenMpModel | None = None,
) -> CpuRunResult:
    """Model ``n_ranks`` MPI ranks, each threading over ``n_threads`` cores.

    ``n_ranks * n_threads`` must fit the instance's physical cores (the
    paper maps work to physical cores only, no hyperthreads).
    """
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    precision = parse_precision(precision)
    total_cores = n_ranks * n_threads
    instance.validate_resources(n_ranks=total_cores)
    omp = omp if omp is not None else OpenMpModel()

    # The MPI layer behaves exactly as in the pure-MPI run with n_ranks
    # ranks; threading shrinks each rank's compute time per Amdahl plus
    # the per-region barrier overhead.
    base = simulate_cpu_run(
        benchmark,
        n_atoms,
        n_ranks,
        precision=precision,
        kspace_error=kspace_error,
        seed=seed,
        instance=instance,
    )
    if n_threads == 1:
        return base

    workload = get_workload(benchmark)
    model = CpuCostModel(precision=precision)
    compute = model.compute_times(
        workload,
        n_atoms / n_ranks,
        n_ranks,
        kspace_error=kspace_error if workload.has_kspace else None,
        n_atoms_total=n_atoms,
    )
    threaded = (
        (compute.pair + compute.bond + compute.modify)
        / omp.thread_speedup(n_threads, omp.parallel_fraction)
        + compute.neigh / omp.thread_speedup(n_threads, omp.neigh_parallel_fraction)
        + compute.kspace  # FFTs stay rank-level in the reference build
        + compute.output
        + compute.other  # bookkeeping is the serial remainder
        + omp.regions_per_step * omp.barrier_s
    )
    speedup = compute.total / threaded

    # Scale the timestep rate; MPI overheads (per rank) are unchanged.
    # simulate_cpu_run always fills per_rank_compute_seconds, but the
    # field is optional on CpuRunResult — fall back to the slowest-rank
    # step time (zero comm) rather than crash on a partial result.
    if base.per_rank_compute_seconds is not None:
        max_compute = float(base.per_rank_compute_seconds.max())
    else:
        max_compute = base.step_seconds
    comm_seconds = base.step_seconds - max_compute
    step_seconds = max_compute / speedup + comm_seconds
    ts_per_s = 1.0 / step_seconds

    scaled_tasks = dict(base.task_seconds)
    for task in ("Pair", "Bond", "Modify", "Neigh", "Kspace", "Output", "Other"):
        if task == "Neigh":
            factor = omp.thread_speedup(n_threads, omp.neigh_parallel_fraction)
        elif task in ("Kspace", "Output", "Other"):
            factor = 1.0
        else:
            factor = omp.thread_speedup(n_threads, omp.parallel_fraction)
        scaled_tasks[task] = scaled_tasks[task] / factor

    return CpuRunResult(
        benchmark=base.benchmark,
        n_atoms=base.n_atoms,
        n_ranks=n_ranks,
        precision=base.precision,
        kspace_error=base.kspace_error,
        task_seconds=scaled_tasks,
        mpi_function_seconds=base.mpi_function_seconds,
        step_seconds=step_seconds,
        ts_per_s=ts_per_s,
        mpi_time_fraction=base.mpi_time_fraction,
        mpi_imbalance_fraction=base.mpi_imbalance_fraction,
        power_watts=base.power_watts,
        energy_efficiency=ts_per_s / base.power_watts,
        core_utilization=base.core_utilization,
        memory_bytes=base.memory_bytes,
        per_rank_compute_seconds=(
            None
            if base.per_rank_compute_seconds is None
            else base.per_rank_compute_seconds / speedup
        ),
    )


def best_hybrid_split(
    benchmark: str,
    n_atoms: int,
    total_cores: int = 64,
    *,
    instance: InstanceSpec = CPU_INSTANCE,
) -> tuple[int, int, float]:
    """Search all (ranks, threads) factorizations of ``total_cores``.

    Returns ``(n_ranks, n_threads, ts_per_s)`` of the fastest split —
    which the tests show is always the pure-MPI one, matching the
    paper's observation.
    """
    best: tuple[int, int, float] | None = None
    for n_ranks in range(1, total_cores + 1):
        if total_cores % n_ranks:
            continue
        n_threads = total_cores // n_ranks
        result = simulate_hybrid_run(
            benchmark, n_atoms, n_ranks, n_threads, instance=instance
        )
        if best is None or result.ts_per_s > best[2]:
            best = (n_ranks, n_threads, result.ts_per_s)
    assert best is not None
    return best
