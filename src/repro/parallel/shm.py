"""Shared-memory array management for the parallel engine.

The domain-decomposed executor keeps all cross-process state —
positions, velocities, forces, per-atom energy/virial accumulators,
the control word and per-worker timing slots — in POSIX shared memory
(:mod:`multiprocessing.shared_memory`), so per-step "communication" is
plain array reads/writes plus two barrier crossings, never pickling.

:class:`SharedArray` wraps one segment + numpy view; :class:`ShmArena`
manages a named collection with a picklable spec so worker processes
can attach to every array regardless of the start method (the ``fork``
context inherits the mappings, but attach-by-name also works under
``spawn``).
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = ["SharedArray", "ShmArena"]


@dataclass(frozen=True)
class _ArraySpec:
    """Picklable recipe for attaching to one shared array."""

    name: str
    shape: tuple[int, ...]
    dtype: str


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a named segment without resource-tracker registration.

    On Python < 3.13 every attach registers the segment with the
    resource tracker, which unlinks it when *any* process exits — the
    classic cause of "leaked shared_memory" warnings and vanished
    buffers in worker pools.  Worse, under the ``fork`` start method the
    workers share the parent's tracker process, so unregistering *after*
    the fact would erase the creator's own registration.  Suppressing
    the register call during attach leaves exactly one record: the
    creator's, which owns cleanup.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original  # type: ignore[assignment]


class SharedArray:
    """A numpy array backed by one shared-memory segment."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        shape: tuple[int, ...],
        dtype: np.dtype,
        *,
        owner: bool,
    ) -> None:
        self._shm = shm
        self._owner = owner
        self.array = np.ndarray(shape, dtype=dtype, buffer=shm.buf)

    @classmethod
    def create(cls, shape: tuple[int, ...], dtype) -> "SharedArray":
        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        out = cls(shm, tuple(shape), dtype, owner=True)
        out.array[...] = np.zeros((), dtype=dtype)
        return out

    @classmethod
    def attach(cls, spec: _ArraySpec) -> "SharedArray":
        shm = _attach_untracked(spec.name)
        return cls(shm, spec.shape, np.dtype(spec.dtype), owner=False)

    @property
    def spec(self) -> _ArraySpec:
        return _ArraySpec(
            self._shm.name, tuple(self.array.shape), self.array.dtype.str
        )

    def close(self) -> None:
        """Drop this process's mapping (and unlink if it is the owner)."""
        # The numpy view holds a buffer reference; release it first or
        # SharedMemory.close() raises BufferError on some platforms.
        self.array = None  # type: ignore[assignment]
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - lingering external view
            return
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


class ShmArena:
    """A named collection of shared arrays with one picklable spec.

    The master builds the arena with :meth:`create`; each worker calls
    :meth:`attach` on the ``specs`` mapping received in its payload and
    gets the same named views.  Either side indexes arrays by name:
    ``arena["positions"]``.
    """

    def __init__(self, arrays: dict[str, SharedArray], *, owner: bool) -> None:
        self._arrays = arrays
        self._owner = owner

    @classmethod
    def create(cls, layout: dict[str, tuple[tuple[int, ...], object]]) -> "ShmArena":
        """Allocate zero-filled arrays: ``{name: (shape, dtype)}``."""
        arrays: dict[str, SharedArray] = {}
        try:
            for name, (shape, dtype) in layout.items():
                arrays[name] = SharedArray.create(shape, dtype)
        except Exception:
            for array in arrays.values():
                array.close()
            raise
        return cls(arrays, owner=True)

    @classmethod
    def attach(cls, specs: dict[str, _ArraySpec]) -> "ShmArena":
        arrays: dict[str, SharedArray] = {}
        try:
            for name, spec in specs.items():
                arrays[name] = SharedArray.attach(spec)
        except Exception:
            for array in arrays.values():
                array.close()
            raise
        return cls(arrays, owner=False)

    @property
    def specs(self) -> dict[str, _ArraySpec]:
        return {name: array.spec for name, array in self._arrays.items()}

    def __getitem__(self, name: str) -> np.ndarray:
        return self._arrays[name].array

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    @property
    def nbytes(self) -> int:
        """Total bytes across every shared segment (observability)."""
        return sum(array.array.nbytes for array in self._arrays.values())

    def close(self) -> None:
        for array in self._arrays.values():
            array.close()
        self._arrays = {}
