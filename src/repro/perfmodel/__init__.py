"""Calibrated performance model of LAMMPS on the two instances.

The functional engine (:mod:`repro.md`) supplies *what* work a timestep
does (pair interactions, rebuild cadence, grid sizes); this package maps
that work onto the paper's hardware (Table 3) through per-task cost
laws whose coefficients are calibrated against the paper's quoted anchor
numbers (:mod:`repro.perfmodel.calibration`).  The CPU/GPU executors in
:mod:`repro.parallel` and :mod:`repro.gpu` combine these compute costs
with communication and offload models to regenerate every figure.
"""

from repro.perfmodel.calibration import PAPER_ANCHORS, PaperAnchors
from repro.perfmodel.costs import CpuCostCoefficients, CpuCostModel
from repro.perfmodel.precision import PRECISIONS, Precision, precision_pair_factor
from repro.perfmodel.workloads import (
    RANK_COUNTS,
    SIZES_K,
    WorkloadParams,
    get_workload,
    workloads,
)

__all__ = [
    "WorkloadParams",
    "workloads",
    "get_workload",
    "SIZES_K",
    "RANK_COUNTS",
    "CpuCostModel",
    "CpuCostCoefficients",
    "Precision",
    "PRECISIONS",
    "precision_pair_factor",
    "PaperAnchors",
    "PAPER_ANCHORS",
]
