"""Anchor numbers quoted in the paper, used to calibrate and test.

Every constant below is a number the paper states explicitly (with the
section it comes from).  The model-validation tests assert that the
simulated campaign reproduces each anchor within a tolerance — these
are the "absolute" points that pin down the cost-model coefficients;
everything else is shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PaperAnchors", "PAPER_ANCHORS"]


@dataclass(frozen=True)
class PaperAnchors:
    """Quoted measurements from the paper, by section."""

    # --- Section 5.2, CPU strong scaling -------------------------------
    #: Rhodopsin, 2048k atoms, 64 ranks, baseline 1e-4 threshold.
    rhodo_cpu_2048k_64r_ts: float = 10.77
    #: Its parallel efficiency at 64 ranks (Section 7 quotes 74.29%).
    rhodo_cpu_2048k_64r_eff: float = 0.7429
    #: Chute best small-system performance (32k atoms).
    chute_cpu_32k_best_ts: float = 10_697.0
    #: Chute parallel efficiency floor for systems > 32k atoms.
    chute_cpu_eff_floor: float = 0.48
    #: Profiled average physical-core utilization per benchmark.
    core_utilization: dict = field(
        default_factory=lambda: {
            "chute": 0.24,
            "lj": 0.48,
            "chain": 0.56,
            "eam": 0.63,
            "rhodo": 0.83,
        }
    )

    # --- Section 7, error-threshold sensitivity ------------------------
    #: Rhodopsin 2048k / 64 ranks at threshold 1e-7.
    rhodo_cpu_2048k_64r_ts_e7: float = 3.54
    rhodo_cpu_2048k_64r_eff_e7: float = 0.5654
    #: Rhodopsin GPU, 2048k atoms on 8 GPUs: 1e-4 vs 1e-7.
    rhodo_gpu_2048k_8g_ts: float = 16.09
    rhodo_gpu_2048k_8g_ts_e7: float = 0.46

    # --- Section 6.2, GPU strong scaling --------------------------------
    #: Worst GPU parallel efficiency observed.
    gpu_parallel_eff_floor: float = 0.2328
    #: No more than 48 total MPI ranks were beneficial on the GPU node.
    gpu_max_useful_ranks: int = 48
    #: Average per-GPU utilization on 2-million-atom systems (Section 10).
    gpu_utilization_2m: float = 0.30

    # --- Section 8, precision -------------------------------------------
    lj_cpu_2048k_64r_ts_single: float = 115.2
    lj_cpu_2048k_64r_ts_double: float = 98.9
    lj_gpu_2048k_8g_ts_single: float = 170.0
    lj_gpu_2048k_8g_ts_double: float = 121.6
    rhodo_cpu_2048k_64r_ts_single: float = 11.5
    rhodo_cpu_2048k_64r_ts_double: float = 8.4
    rhodo_gpu_2048k_8g_ts_single: float = 17.1
    rhodo_gpu_2048k_8g_ts_double: float = 16.5

    # --- Section 10, headline turnaround ---------------------------------
    #: Rhodopsin 2048k: ~2 ns/day on the CPU node, ~2.8 ns/day on 8 GPUs
    #: (at the 2 fs timestep).
    rhodo_cpu_ns_per_day: float = 2.0
    rhodo_gpu_ns_per_day: float = 2.8

    # --- Section 4.1, memory ---------------------------------------------
    #: Biggest experiment's memory footprint.
    max_memory_gb: float = 2.9


PAPER_ANCHORS = PaperAnchors()
