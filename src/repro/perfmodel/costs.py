"""Per-task compute-cost laws for one CPU core.

Costs follow the paper's own complexity analysis (Section 2.1):

* Pair   — O(N * npa_avg), scaled by force-field arithmetic cost and
  halved under Newton's third law;
* Neigh  — an O(N * list_size) rebuild amortized over the skin-dependent
  rebuild cadence, plus a per-step displacement check;
* Bond   — O(bonded elements);
* Kspace — B-spline assignment/interpolation O(N * order^3) plus four
  3-D FFTs at O(G log G), with the grid G chosen by the LAMMPS error
  machinery from the threshold (Section 7's knob);
* Modify — O(N) weighted by the benchmark's fix stack;
* Output/Other — small O(N) bookkeeping plus a fixed per-step overhead.

Coefficients are for one Xeon 8358 core at turbo and were calibrated so
the full campaign reproduces the paper's anchor numbers (see
``repro.perfmodel.calibration`` and ``tests/test_model_anchors.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.md.kspace.error import select_grid
from repro.perfmodel.precision import Precision, precision_pair_factor
from repro.perfmodel.workloads import WorkloadParams

__all__ = ["CpuCostCoefficients", "ComputeTimes", "CpuCostModel", "kspace_grid"]

#: LAMMPS' reference force for relative accuracy: two unit charges at
#: unit distance with the Coulomb constant folded in (real units).
TWO_CHARGE_FORCE = 332.06


@dataclass(frozen=True)
class CpuCostCoefficients:
    """Seconds-per-operation constants for one CPU core (mixed precision)."""

    pair_per_interaction: float = 8.0e-9
    neigh_build_per_pair: float = 2.2e-9
    neigh_check_per_atom: float = 1.5e-9
    bond_per_element: float = 2.8e-8
    modify_per_atom: float = 1.2e-8
    output_per_atom: float = 1.0e-10
    other_per_atom: float = 4.0e-9
    step_overhead: float = 3.0e-6
    #: Spread + interpolate per atom (assignment order^5 stencil folded).
    kspace_assign_per_atom: float = 5.0e-7
    #: Per grid point per log2(G), for the 4 FFTs of one ik-differentiated
    #: PPPM solve (single-precision MKL, -DFFT_SINGLE).
    fft_per_point_log: float = 7.2e-10
    #: Parallel FFT speedup exponent: the distributed transposes make the
    #: long-range solve scale as P^0.85 rather than P (the paper's
    #: Section 7: "the long-range portion of the timestep exhibits worse
    #: strong scaling properties, most likely due to the global
    #: communication steps required by the 3D FFT").
    fft_parallel_exponent: float = 0.83
    #: Uniform slowdown of every task (used for the weaker GPU-instance
    #: host CPU: lower frequency, older core).
    core_slowdown: float = 1.0

    def slowed(self, factor: float) -> "CpuCostCoefficients":
        """A copy with every per-operation cost scaled by ``factor``."""
        return replace(self, core_slowdown=self.core_slowdown * factor)


@dataclass(frozen=True)
class ComputeTimes:
    """Per-rank, per-timestep compute seconds by Table 1 task (no comm)."""

    pair: float
    neigh: float
    bond: float
    kspace: float
    modify: float
    output: float
    other: float
    #: The FFT share of ``kspace`` — globally synchronized, so per-rank
    #: compute jitter does not apply to it (the executor uses the split).
    kspace_fft: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.pair
            + self.neigh
            + self.bond
            + self.kspace
            + self.modify
            + self.output
            + self.other
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "Pair": self.pair,
            "Neigh": self.neigh,
            "Bond": self.bond,
            "Kspace": self.kspace,
            "Modify": self.modify,
            "Output": self.output,
            "Other": self.other,
        }


_GRID_CACHE: dict[tuple[str, int, float], tuple[float, tuple[int, int, int]]] = {}


def kspace_grid(
    workload: WorkloadParams, n_atoms: int, accuracy: float
) -> tuple[float, tuple[int, int, int]]:
    """PPPM ``(alpha, grid)`` for a production-size deck.

    Delegates to the same LAMMPS-style error machinery the functional
    PPPM solver uses, evaluated on the deck's box geometry.  Memoized:
    the campaign re-evaluates the same (deck, size, threshold) points
    across many figures.
    """
    if not workload.has_kspace:
        raise ValueError(f"workload {workload.name!r} has no k-space solver")
    key = (workload.name, int(n_atoms), float(accuracy))
    if key not in _GRID_CACHE:
        _GRID_CACHE[key] = select_grid(
            accuracy,
            workload.box_lengths(n_atoms),
            workload.cutoff,
            n_atoms,
            workload.qsq_per_atom * n_atoms,
            order=5,
            two_charge_force=TWO_CHARGE_FORCE,
        )
    return _GRID_CACHE[key]


class CpuCostModel:
    """Maps workload operation counts to per-core compute times."""

    def __init__(
        self,
        coefficients: CpuCostCoefficients | None = None,
        precision: Precision | str = Precision.MIXED,
    ) -> None:
        self.coefficients = (
            coefficients if coefficients is not None else CpuCostCoefficients()
        )
        self.precision = Precision(precision)

    # ------------------------------------------------------------------
    def compute_times(
        self,
        workload: WorkloadParams,
        n_local: float,
        n_ranks: int,
        *,
        kspace_error: float | None = None,
        n_atoms_total: int | None = None,
        thermo_every: int = 100,
    ) -> ComputeTimes:
        """Per-step compute seconds for a rank owning ``n_local`` atoms.

        ``n_atoms_total`` (defaults to ``n_local * n_ranks``) sets the
        global FFT grid; ``kspace_error`` overrides the workload's
        baseline threshold (the Section 7 sweep).
        """
        c = self.coefficients
        slow = c.core_slowdown
        if n_local <= 0:
            raise ValueError("n_local must be positive")
        n_total = (
            int(n_atoms_total)
            if n_atoms_total is not None
            else int(round(n_local * n_ranks))
        )

        pair_factor = precision_pair_factor(workload.name, self.precision)
        pair = (
            n_local
            * workload.pair_interactions_per_atom()
            * workload.pair_cost_factor
            * c.pair_per_interaction
            * pair_factor
            * slow
        )

        stored_pairs = n_local * workload.list_neighbors_per_atom * (
            0.5 if workload.newton else 1.0
        )
        neigh = (
            stored_pairs * c.neigh_build_per_pair / workload.rebuild_every
            + n_local * c.neigh_check_per_atom
        ) * slow

        elements = workload.bonds_per_atom + workload.angles_per_atom
        bond = n_local * elements * c.bond_per_element * slow

        kspace = 0.0
        kspace_fft = 0.0
        if workload.has_kspace:
            accuracy = kspace_error if kspace_error is not None else 1e-4
            _, grid = kspace_grid(workload, n_total, accuracy)
            grid_points = float(np.prod(grid))
            kspace_fft = (
                grid_points
                * math.log2(max(grid_points, 2.0))
                * c.fft_per_point_log
                / n_ranks**c.fft_parallel_exponent
            ) * slow
            assign = n_local * c.kspace_assign_per_atom * slow
            kspace = kspace_fft + assign

        modify = n_local * workload.modify_weight * c.modify_per_atom * slow
        output = n_local * c.output_per_atom * slow / max(thermo_every, 1) * 100.0
        other = (n_local * c.other_per_atom + c.step_overhead) * slow

        return ComputeTimes(
            pair=pair,
            neigh=neigh,
            bond=bond,
            kspace=kspace,
            modify=modify,
            output=output,
            other=other,
            kspace_fft=kspace_fft,
        )
