"""Floating-point precision modes and their pair-kernel cost factors.

Section 8 of the paper: LAMMPS usually computes pairwise forces in
single precision while accumulating in double ("mixed"); the INTEL
package flag (CPU) and a recompile (GPU) switch the *whole pairwise
computation* to single or double.  Only the Pair task is affected — the
paper's observation that the overall impact depends on the pair share
of the benchmark (LJ on GPU most sensitive, Rhodopsin on GPU barely)
then falls out of the task composition.
"""

from __future__ import annotations

from enum import Enum

__all__ = [
    "Precision",
    "PRECISIONS",
    "precision_pair_factor",
    "gpu_precision_pair_factor",
]


class Precision(str, Enum):
    """Arithmetic precision of the pairwise non-bonded computation."""

    SINGLE = "single"
    MIXED = "mixed"
    DOUBLE = "double"


PRECISIONS: tuple[Precision, ...] = (
    Precision.SINGLE,
    Precision.MIXED,
    Precision.DOUBLE,
)

# CPU: the Ice Lake AVX-512 units process twice as many floats as
# doubles per vector, but the pair kernel is partly memory/gather bound,
# so the observed penalty is well below 2x.  Per-benchmark double
# factors are calibrated to Section 8's quotes: LJ 115.2 -> 98.9 TS/s
# (total -14%, pair share ~0.7 => pair factor ~1.22) and rhodopsin
# 11.5 -> 8.4 TS/s (total -27%, pair share ~0.65 plus transcendental
# math that vectorizes worse in double => pair factor ~1.55).
_CPU_DOUBLE_FACTOR: dict[str, float] = {
    "lj": 1.22,
    "eam": 1.25,  # "EAM showing similar behavior to the LJ experiment"
    "chain": 2.2,  # "Chain behaving similarly to Rhodopsin"
    "chute": 1.30,
    "rhodo": 1.55,
}

# Mixed accumulates in double: a small overhead over pure single.
_CPU_MIXED_FACTOR = 1.04

# GPU: the V100 has a 1:2 FP64:FP32 throughput ratio, but pair kernels
# are partly bandwidth bound; calibrated to LJ-GPU 170.0 -> 121.6 TS/s
# (total -28% with pair-kernel share ~0.55 => factor ~1.9).
_GPU_DOUBLE_FACTOR: dict[str, float] = {
    "lj": 1.55,
    "eam": 1.55,
    "chain": 1.6,
    "rhodo": 1.7,
    "chute": 1.8,  # unused (no GPU support) but kept total
}
_GPU_MIXED_FACTOR = 1.06


def precision_pair_factor(benchmark: str, precision: Precision | str) -> float:
    """CPU pair-task slowdown factor relative to single precision."""
    precision = Precision(precision)
    if precision is Precision.SINGLE:
        return 1.0
    if precision is Precision.MIXED:
        return _CPU_MIXED_FACTOR
    try:
        return _CPU_DOUBLE_FACTOR[benchmark]
    except KeyError:
        raise KeyError(f"no CPU precision factors for benchmark {benchmark!r}") from None


def gpu_precision_pair_factor(benchmark: str, precision: Precision | str) -> float:
    """GPU pair-kernel slowdown factor relative to single precision."""
    precision = Precision(precision)
    if precision is Precision.SINGLE:
        return 1.0
    if precision is Precision.MIXED:
        return _GPU_MIXED_FACTOR
    try:
        return _GPU_DOUBLE_FACTOR[benchmark]
    except KeyError:
        raise KeyError(f"no GPU precision factors for benchmark {benchmark!r}") from None
