"""Per-benchmark workload parameters feeding the performance model.

Each :class:`WorkloadParams` captures what one timestep of a benchmark
*does* at production scale (Table 2 plus the LAMMPS deck geometry):
number density, neighbor counts, bonded topology size, fix weight,
whether Newton's third law halves the pair work, the rebuild cadence
implied by the skin, and the box geometry for a given atom count.  The
values mirror the functional engine's own measurements (tests compare
them) but are closed-form so the model can evaluate 2-million-atom
configurations instantly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "WorkloadParams",
    "workloads",
    "get_workload",
    "SIZES_K",
    "RANK_COUNTS",
    "GPU_COUNTS",
]

#: The paper's four experiment sizes, in thousands of atoms (Section 5).
SIZES_K: tuple[int, ...] = (32, 256, 864, 2048)

#: MPI-rank sweep of the CPU characterization (Figures 3-6).
RANK_COUNTS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)

#: GPU-device sweep of the GPU characterization (Figures 7-9).
GPU_COUNTS: tuple[int, ...] = (1, 2, 4, 6, 8)


@dataclass(frozen=True)
class WorkloadParams:
    """Production-scale workload description of one suite benchmark."""

    name: str
    #: Atoms per cubic length-unit of the deck (sigma^-3 or Angstrom^-3).
    number_density: float
    #: Average neighbors within the force cutoff (Table 2).
    neighbors_per_atom: float
    cutoff: float
    skin: float
    #: Newton's 3rd law halves stored/computed pairs (False for Chute).
    newton: bool
    #: Relative per-pair arithmetic cost vs plain LJ (force-field math).
    pair_cost_factor: float
    #: Bonded elements per atom (bonds + angles).
    bonds_per_atom: float = 0.0
    angles_per_atom: float = 0.0
    #: Relative per-atom cost of fixes/integration ("Modify" task).
    modify_weight: float = 1.0
    #: Timesteps between neighbor rebuilds (skin-dependent).
    rebuild_every: float = 10.0
    #: Per-rank compute-time jitter amplitude (drives MPI imbalance).
    imbalance_amplitude: float = 0.01
    #: Long-range solver active (Rhodopsin only).
    has_kspace: bool = False
    #: Mean squared charge per atom (for the k-space error model), in
    #: the deck's charge units (Coulomb constant folded in).
    qsq_per_atom: float = 0.0
    #: Physical timestep for ns/day conversion.
    timestep_fs: float = 5.0
    #: Chute's bed is a thin slab: decompose in x/y only.
    quasi_2d: bool = False
    #: Slab height (length units) when quasi_2d.
    slab_height: float = 16.0
    #: Reference GPU package supports this pair style.
    gpu_supported: bool = True
    #: Average physical-core utilization the paper profiled (Section 5.2).
    core_utilization: float = 0.5
    #: Forward-comm payload per ghost atom.  Point particles ship three
    #: coordinates (24 B); granular particles also need velocities and
    #: angular velocities every step for the damped contact forces.
    comm_bytes_per_atom: float = 24.0

    # ------------------------------------------------------------------
    def box_lengths(self, n_atoms: int) -> np.ndarray:
        """Deck box dimensions for ``n_atoms`` at the deck density."""
        if n_atoms < 1:
            raise ValueError("n_atoms must be positive")
        volume = n_atoms / self.number_density
        if self.quasi_2d:
            area = volume / self.slab_height
            side = math.sqrt(area)
            return np.array([side, side, self.slab_height])
        side = volume ** (1.0 / 3.0)
        return np.array([side, side, side])

    @property
    def list_neighbors_per_atom(self) -> float:
        """Average stored neighbors (inside cutoff + skin)."""
        scale = ((self.cutoff + self.skin) / self.cutoff) ** 3
        return self.neighbors_per_atom * scale

    def pair_interactions_per_atom(self) -> float:
        """Computed pair interactions per atom per step."""
        factor = 0.5 if self.newton else 1.0
        return self.neighbors_per_atom * factor

    def memory_bytes(self, n_atoms: int) -> float:
        """Rough resident-set estimate: per-atom state + neighbor list.

        Matches the paper's observation that even the biggest experiment
        needs only ~2.9 GB (Section 4.1).
        """
        per_atom_state = 180.0  # x, v, f, type, image, molecule, ...
        neighbor_entry = 4.0  # int32 neighbor indices
        half = 0.5 if self.newton else 1.0
        # Average list occupancy between rebuilds sits midway between the
        # cutoff sphere and the cutoff+skin sphere.
        occupancy = ((self.cutoff + 0.5 * self.skin) / self.cutoff) ** 3
        stored = self.neighbors_per_atom * occupancy * half
        return n_atoms * (per_atom_state + neighbor_entry * stored)


workloads: dict[str, WorkloadParams] = {
    "lj": WorkloadParams(
        name="lj",
        number_density=0.8442,
        neighbors_per_atom=55.0,
        cutoff=2.5,
        skin=0.3,
        newton=True,
        pair_cost_factor=1.0,
        modify_weight=1.0,
        rebuild_every=10.0,
        imbalance_amplitude=0.012,
        timestep_fs=10.8,
        core_utilization=0.48,
    ),
    "chain": WorkloadParams(
        name="chain",
        number_density=0.8442,
        neighbors_per_atom=5.0,
        cutoff=1.12,
        skin=0.4,
        newton=True,
        # Short lists amortize badly: more per-pair loop overhead.
        pair_cost_factor=1.45,
        bonds_per_atom=0.99,
        modify_weight=2.0,  # Langevin: RNG + drag per atom
        rebuild_every=12.0,
        imbalance_amplitude=0.08,
        timestep_fs=10.8,
        core_utilization=0.56,
    ),
    "eam": WorkloadParams(
        name="eam",
        number_density=4.0 / 3.615**3,  # fcc copper
        neighbors_per_atom=45.0,
        cutoff=4.95,
        skin=1.0,
        newton=True,
        # Two-pass evaluation plus embedding-function interpolation.
        pair_cost_factor=1.45,
        modify_weight=1.0,
        rebuild_every=30.0,  # a solid: atoms barely move
        imbalance_amplitude=0.008,
        timestep_fs=5.0,
        core_utilization=0.63,
    ),
    "chute": WorkloadParams(
        name="chute",
        number_density=1.03,  # settled granular packing
        neighbors_per_atom=7.0,
        cutoff=1.0,
        skin=0.1,
        newton=False,  # Section 3: no Newton's-third-law sharing
        # Hookean springs are cheap but history management adds state.
        pair_cost_factor=0.9,
        modify_weight=1.4,  # gravity + wall + angular integration
        rebuild_every=15.0,
        # Flowing granular beds develop density gradients: the paper
        # measures the worst parallel efficiency (48%) and core
        # utilization (24%) for Chute.
        imbalance_amplitude=0.22,
        timestep_fs=1.0,
        quasi_2d=True,
        gpu_supported=False,
        core_utilization=0.24,
        comm_bytes_per_atom=80.0,  # x + v + omega + radius per ghost
    ),
    "rhodo": WorkloadParams(
        name="rhodo",
        number_density=0.1,  # solvated all-atom system, atoms/A^3
        neighbors_per_atom=440.0,
        cutoff=10.0,
        skin=2.0,
        newton=True,
        # erfc is table-interpolated and the ~440-entry lists amortize
        # loop overheads: per-pair cost lands *below* sparse-list LJ.
        pair_cost_factor=0.77,
        bonds_per_atom=1.0,
        angles_per_atom=0.5,
        modify_weight=8.0,  # NPT chains + SHAKE iterations
        rebuild_every=10.0,
        imbalance_amplitude=0.15,
        has_kspace=True,
        # <q^2> with the Coulomb constant folded in (SPC/E-like charges).
        qsq_per_atom=119.0,
        timestep_fs=2.0,
        core_utilization=0.83,
    ),
}


def get_workload(name: str) -> WorkloadParams:
    """Look up workload parameters by benchmark name."""
    try:
        return workloads[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; expected one of {tuple(workloads)}"
        ) from None
