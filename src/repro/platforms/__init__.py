"""Hardware descriptions of the two benchmarked instances (Table 3).

The paper's campaign ran on two Oracle-cloud nodes: a dual-socket Intel
Xeon Platinum 8358 "CPU instance" and a dual-socket Xeon 8167M with
eight NVIDIA V100s ("GPU instance").  These dataclasses carry the full
Table 3 specification plus the utilization-based power models that
substitute for the paper's ``powerstat`` / ``nvidia-smi`` measurements.
"""

from repro.platforms.instances import (
    CPU_INSTANCE,
    GPU_INSTANCE,
    CpuSpec,
    GpuSpec,
    InstanceSpec,
)
from repro.platforms.power import (
    CpuPowerModel,
    GpuPowerModel,
    PowerSample,
    UnderSampledRunWarning,
)

__all__ = [
    "CpuSpec",
    "GpuSpec",
    "InstanceSpec",
    "CPU_INSTANCE",
    "GPU_INSTANCE",
    "CpuPowerModel",
    "GpuPowerModel",
    "PowerSample",
    "UnderSampledRunWarning",
]
