"""Instance specifications — a faithful transcription of Table 3."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CpuSpec", "GpuSpec", "InstanceSpec", "CPU_INSTANCE", "GPU_INSTANCE"]


@dataclass(frozen=True)
class CpuSpec:
    """One CPU socket model (Table 3, "CPU Specs")."""

    model: str
    cores: int  # physical cores per socket
    threads: int  # hardware threads per socket
    frequency_ghz: float
    turbo_ghz: float
    l1_kb_per_core: int
    l2_mb_per_core: float
    l3_mb_shared: float
    tech_node_nm: int
    tdp_watts: float

    @property
    def peak_frequency_hz(self) -> float:
        return self.turbo_ghz * 1e9


@dataclass(frozen=True)
class GpuSpec:
    """One GPU device model (Table 3, "GPU Specs")."""

    model: str
    sms: int
    global_memory_gb: int
    l2_mb_shared: float
    l1_kb_per_sm: int
    frequency_ghz: float
    tech_node_nm: int
    tdp_watts: float
    #: FP64:FP32 throughput ratio (V100 is 1:2).
    fp64_ratio: float = 0.5
    #: PCIe gen3 x16 practical bandwidth per direction.
    pcie_gb_s: float = 12.0


@dataclass(frozen=True)
class InstanceSpec:
    """A complete single node (Table 3, "Instance Specs")."""

    name: str
    cpu: CpuSpec
    sockets: int
    memory_gb: int
    os: str = "Ubuntu 20.04.4 LTS"
    kernel: str = "Linux 5.13.0-1033-oracle"
    gpu: GpuSpec | None = None
    n_gpus: int = 0
    #: Idle draw of the whole node (fans, DRAM, uncore) — feeds the
    #: power model, not part of Table 3 itself.
    idle_watts: float = 90.0

    @property
    def total_cores(self) -> int:
        return self.cpu.cores * self.sockets

    @property
    def total_threads(self) -> int:
        return self.cpu.threads * self.sockets

    def validate_resources(self, n_ranks: int = 0, n_gpus: int = 0) -> None:
        """Raise when an experiment asks for more hardware than exists."""
        if n_ranks > self.total_cores:
            raise ValueError(
                f"{n_ranks} MPI ranks exceed the {self.total_cores} physical "
                f"cores of {self.name} (the paper maps one rank per core)"
            )
        if n_gpus > self.n_gpus:
            raise ValueError(
                f"{n_gpus} GPUs requested but {self.name} has {self.n_gpus}"
            )


#: The "CPU instance": dual-socket Xeon Platinum 8358 (Ice Lake, 10 nm).
CPU_INSTANCE = InstanceSpec(
    name="cpu-instance",
    cpu=CpuSpec(
        model="Intel Xeon Platinum 8358",
        cores=32,
        threads=64,
        frequency_ghz=2.6,
        turbo_ghz=3.4,
        l1_kb_per_core=64,
        l2_mb_per_core=1.0,
        l3_mb_shared=48.0,
        tech_node_nm=10,
        tdp_watts=250.0,
    ),
    sockets=2,
    memory_gb=1024,
)

#: The "GPU instance": dual-socket Xeon 8167M plus eight NVIDIA V100s.
GPU_INSTANCE = InstanceSpec(
    name="gpu-instance",
    cpu=CpuSpec(
        model="Intel Xeon Platinum 8167M",
        cores=26,
        threads=52,
        frequency_ghz=2.0,
        turbo_ghz=2.4,
        l1_kb_per_core=32,
        l2_mb_per_core=1.0,
        l3_mb_shared=35.75,
        tech_node_nm=14,
        tdp_watts=165.0,
    ),
    sockets=2,
    memory_gb=768,
    gpu=GpuSpec(
        model="NVIDIA V100",
        sms=84,
        global_memory_gb=16,
        l2_mb_shared=6.0,
        l1_kb_per_sm=128,
        frequency_ghz=1.35,
        tech_node_nm=12,
        tdp_watts=300.0,
    ),
    n_gpus=8,
    idle_watts=120.0,
)
