"""Utilization-based node power models (the ``powerstat``/``nvidia-smi``
substitute).

The paper samples node power at 0.5 s with ``powerstat`` (CPU instance)
and ``nvidia-smi`` (GPU devices).  Lacking the hardware, we model draw
from utilization: an idle floor plus a per-core (or per-device) active
component capped at TDP.  :class:`PowerSampler` then emulates the fixed
0.5 s sampling loop over a run, which is why the harness (Section 4.2)
insists every benchmark run lasts at least ten seconds.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.platforms.instances import InstanceSpec

__all__ = [
    "PowerSample",
    "CpuPowerModel",
    "GpuPowerModel",
    "PowerSampler",
    "UnderSampledRunWarning",
    "reset_under_sample_warnings",
]

#: The framework's fixed power sampling period (Section 4.2).
SAMPLING_PERIOD_S = 0.5

#: Minimum run duration the methodology requires so that enough power
#: samples land inside the measurement window.
MIN_RUN_SECONDS = 10.0


class UnderSampledRunWarning(RuntimeWarning):
    """A power-sampled run was shorter than :data:`MIN_RUN_SECONDS`.

    The series is still returned — short smoke runs are legitimate — but
    the Section 4.2 methodology (and the Gromacs energy-efficiency paper
    it leans on) says too few 0.5 s samples make the average watts, and
    anything derived from them, statistically meaningless.  Consumers
    should surface the flag rather than quietly report the number.
    """


#: Process-wide dedup sets so the under-sampling warning fires once per
#: call site kind, not once per benchmark window (a --quick bench run
#: takes dozens of short windows).
_WARNED_SITES: set[str] = set()


def warn_under_sampled(site: str, duration_s: float, minimum: float) -> bool:
    """Emit :class:`UnderSampledRunWarning` once per process per ``site``.

    Returns ``True`` when the warning was actually raised (first time).
    """
    if site in _WARNED_SITES:
        return False
    _WARNED_SITES.add(site)
    warnings.warn(
        f"{site}: run lasted {duration_s:.2f} s, below the "
        f"{minimum:.0f} s the Section 4.2 power-sampling methodology "
        "requires — the energy/watts figures are under-sampled and "
        "should not be compared across runs",
        UnderSampledRunWarning,
        stacklevel=3,
    )
    return True


def reset_under_sample_warnings() -> None:
    """Re-arm the once-per-process under-sampling warnings (tests)."""
    _WARNED_SITES.clear()


@dataclass(frozen=True)
class PowerSample:
    """One 0.5 s power reading."""

    time_s: float
    watts: float


class CpuPowerModel:
    """Socket power = share of TDP proportional to active-core load.

    ``watts(n, util)``: the node idle floor plus each of the ``n`` busy
    cores drawing its per-core share of the socket TDP scaled by its
    utilization (the paper reports per-benchmark physical-core
    utilizations of 24 % for Chute up to 83 % for Rhodopsin).
    """

    def __init__(self, instance: InstanceSpec) -> None:
        self.instance = instance
        # Reserve ~20% of TDP for the uncore; the rest splits per core.
        self._per_core_watts = 0.8 * instance.cpu.tdp_watts / instance.cpu.cores

    def watts(self, active_cores: int, utilization: float) -> float:
        if active_cores < 0 or not 0.0 <= utilization <= 1.0:
            raise ValueError("active_cores >= 0 and utilization in [0, 1]")
        active_cores = min(active_cores, self.instance.total_cores)
        draw = self.instance.idle_watts + (
            active_cores * self._per_core_watts * utilization
        )
        cap = self.instance.idle_watts + self.instance.sockets * self.instance.cpu.tdp_watts
        return min(draw, cap)


class GpuPowerModel:
    """Node power for the GPU instance: host model + per-device draw.

    Each active V100 draws an idle floor (~40 W) plus utilization times
    the remaining headroom to its 300 W TDP; the host CPU contributes
    through the same per-core model as the CPU instance.
    """

    GPU_IDLE_WATTS = 40.0

    def __init__(self, instance: InstanceSpec) -> None:
        if instance.gpu is None:
            raise ValueError("GpuPowerModel needs an instance with GPUs")
        self.instance = instance
        self._host = CpuPowerModel(instance)

    def watts(
        self,
        active_gpus: int,
        gpu_utilization: float,
        host_active_cores: int = 0,
        host_utilization: float = 0.0,
    ) -> float:
        if active_gpus < 0 or not 0.0 <= gpu_utilization <= 1.0:
            raise ValueError("active_gpus >= 0 and gpu_utilization in [0, 1]")
        gpu = self.instance.gpu
        assert gpu is not None
        active_gpus = min(active_gpus, self.instance.n_gpus)
        device_draw = active_gpus * (
            self.GPU_IDLE_WATTS
            + gpu_utilization * (gpu.tdp_watts - self.GPU_IDLE_WATTS)
        )
        # Idle (powered but unused) devices still draw their floor.
        idle_devices = (self.instance.n_gpus - active_gpus) * self.GPU_IDLE_WATTS
        return self._host.watts(host_active_cores, host_utilization) + device_draw + idle_devices


class PowerSampler:
    """Emulates the 0.5 s sampling loop of ``powerstat`` / ``nvidia-smi``.

    Given a mean power and a run duration, produces the discrete sample
    series the real tools would have logged (with small deterministic
    sampling noise), and averages it back the way the aggregator does.
    """

    def __init__(self, seed: int = 0, noise_fraction: float = 0.02) -> None:
        self._rng = np.random.default_rng(seed)
        self.noise_fraction = float(noise_fraction)

    def sample_run(self, mean_watts: float, duration_s: float) -> list[PowerSample]:
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if duration_s < MIN_RUN_SECONDS:
            warn_under_sampled("PowerSampler", duration_s, MIN_RUN_SECONDS)
        times = np.arange(0.0, duration_s, SAMPLING_PERIOD_S)
        noise = self._rng.normal(0.0, self.noise_fraction * mean_watts, len(times))
        return [
            PowerSample(float(t), float(max(0.0, mean_watts + dn)))
            for t, dn in zip(times, noise)
        ]

    @staticmethod
    def average(samples: list[PowerSample]) -> float:
        if not samples:
            raise ValueError("no power samples collected")
        return float(np.mean([s.watts for s in samples]))
