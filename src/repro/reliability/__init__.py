"""Fault tolerance: checkpoint/restart + supervised crash recovery.

Three layers (see ``docs/RELIABILITY.md``):

* :mod:`repro.md.restart` (format v2) serializes the *complete*
  dynamical state — this package's foundation, kept in ``repro.md``
  because serial restarts need it too;
* :class:`CheckpointManager` adds the periodic/atomic/retained write
  policy and corrupted-file-skipping recovery;
* :class:`ResilientRunner` supervises a run: detect worker failure,
  respawn from the last checkpoint with bounded backoff, degrade to
  the serial executor when respawns are exhausted.

:class:`FaultPlan` is the deterministic crash injector driving the
test harness (``$REPRO_FAULT_PLAN`` / ``--fault-plan``).

On top of those sits :mod:`repro.reliability.certify` — hash-chained
trajectory digests, certification manifests, and ``repro certify``
replay verification (``docs/REPRODUCIBILITY.md``).
"""

from repro.reliability.certify import (
    CertificationManifest,
    CertificationRecorder,
    DigestChain,
    DigestChainError,
    DigestRecorder,
    ManifestError,
    audit_cache,
    certify_run,
)
from repro.reliability.checkpoint import (
    CheckpointIntegrityError,
    CheckpointManager,
)
from repro.reliability.faultplan import FaultPlan, FaultSpec
from repro.reliability.recovery import RecoveryEvent, ResilientRunner

__all__ = [
    "CertificationManifest",
    "CertificationRecorder",
    "CheckpointIntegrityError",
    "CheckpointManager",
    "DigestChain",
    "DigestChainError",
    "DigestRecorder",
    "FaultPlan",
    "FaultSpec",
    "ManifestError",
    "RecoveryEvent",
    "ResilientRunner",
    "audit_cache",
    "certify_run",
]
