"""Fault tolerance: checkpoint/restart + supervised crash recovery.

Three layers (see ``docs/RELIABILITY.md``):

* :mod:`repro.md.restart` (format v2) serializes the *complete*
  dynamical state — this package's foundation, kept in ``repro.md``
  because serial restarts need it too;
* :class:`CheckpointManager` adds the periodic/atomic/retained write
  policy and corrupted-file-skipping recovery;
* :class:`ResilientRunner` supervises a run: detect worker failure,
  respawn from the last checkpoint with bounded backoff, degrade to
  the serial executor when respawns are exhausted.

:class:`FaultPlan` is the deterministic crash injector driving the
test harness (``$REPRO_FAULT_PLAN`` / ``--fault-plan``).
"""

from repro.reliability.checkpoint import CheckpointManager
from repro.reliability.faultplan import FaultPlan, FaultSpec
from repro.reliability.recovery import RecoveryEvent, ResilientRunner

__all__ = [
    "CheckpointManager",
    "FaultPlan",
    "FaultSpec",
    "RecoveryEvent",
    "ResilientRunner",
]
