"""Reproducibility certification: digest chains, manifests, replay.

The certification stack turns the engine's determinism contracts into
*checkable artifacts*:

* :mod:`~repro.reliability.certify.digest` — hash-chained per-interval
  trajectory digests (tampering anywhere invalidates the tail);
* :mod:`~repro.reliability.certify.manifest` — the self-checksummed
  provenance record (platform, numpy, backend + provider, precision,
  workers, chain head);
* :mod:`~repro.reliability.certify.record` — the run-directory glue
  that writes both alongside snapshot-v2 checkpoints;
* :mod:`~repro.reliability.certify.verify` — ``repro certify``: replay
  a seedable checkpoint interval and compare (bitwise in a matching
  environment, PR-5 tolerance tiers cross-mode), plus the service
  cache auditor.

See ``docs/REPRODUCIBILITY.md`` for the format and the semantics.
"""

from repro.reliability.certify.digest import (
    CHAIN_SCHEMA,
    DigestChain,
    DigestChainError,
    DigestEntry,
    DigestRecorder,
    interval_digest,
    state_witness,
)
from repro.reliability.certify.manifest import (
    MANIFEST_SCHEMA,
    CertificationManifest,
    ManifestError,
)
from repro.reliability.certify.record import (
    CHAIN_FILENAME,
    MANIFEST_FILENAME,
    CertificationRecorder,
    chain_path,
    manifest_path,
)
from repro.reliability.certify.verify import (
    CacheAuditReport,
    CertificationError,
    CertificationReport,
    audit_cache,
    certify_run,
)

__all__ = [
    "CHAIN_SCHEMA",
    "CHAIN_FILENAME",
    "MANIFEST_SCHEMA",
    "MANIFEST_FILENAME",
    "DigestChain",
    "DigestChainError",
    "DigestEntry",
    "DigestRecorder",
    "interval_digest",
    "state_witness",
    "CertificationManifest",
    "ManifestError",
    "CertificationRecorder",
    "chain_path",
    "manifest_path",
    "CacheAuditReport",
    "CertificationError",
    "CertificationReport",
    "audit_cache",
    "certify_run",
]
