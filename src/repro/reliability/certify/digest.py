"""Hash-chained per-interval trajectory digests.

The unit of trust is the **interval digest**: a SHA-256 over the
canonicalized dynamical state of a :class:`~repro.md.simulation.
Simulation` at one step — box, positions, velocities, forces (plus
granular omega/torques when present) as little-endian float64 bytes in
a fixed field order, followed by the integrator's canonical-JSON state.
Promoting float32 storage to float64 is exact, so the byte stream is a
pure function of the simulated numbers, not of the storage dtype's
memory layout, strides, or platform byte order.

Digests are **chained**: entry *k* carries
``chained_k = SHA256(chained_{k-1} || digest_k || index:step || witness)``
with ``chained_{-1}`` a schema-derived genesis value.  Editing,
reordering, or truncating any interval therefore invalidates every
later ``chained`` value and the chain head — tampering anywhere
invalidates the tail, which is what lets a manifest certify a whole
run by recording one head hash.

Each entry also records a small **witness** (total/potential energy and
temperature).  Witnesses are covered by the chained hash and are what
cross-mode verification compares when bitwise equality is off the
table (different kernel backend, compiled provider, or precision mode
— see ``docs/REPRODUCIBILITY.md`` §4: the engine's backends agree only
to the last ulp, not bit for bit).

Re-executed steps are first-class: crash recovery (PR 4) replays from
the latest checkpoint, so :meth:`DigestChain.observe` treats a
same-step observation as a *verification* — the recomputed digest must
match the recorded one (the bitwise-recovery contract) and a mismatch
raises :class:`DigestChainError` loudly instead of corrupting the
chain.  Only the documented non-bitwise recovery path (degradation to
the serial executor) rewinds the chain, via :meth:`DigestChain.
rewind_to`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = [
    "CHAIN_SCHEMA",
    "DigestChainError",
    "DigestEntry",
    "DigestChain",
    "DigestRecorder",
    "interval_digest",
    "state_witness",
]

#: Chain-file schema tag; also the seed of the genesis chained value.
CHAIN_SCHEMA = "repro-digest-chain/1"


class DigestChainError(ValueError):
    """A digest chain is broken: tampered, truncated, or diverged."""


def _json_default(obj):
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON-serializable: {type(obj).__name__}")


def _canonical_json(payload) -> bytes:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=_json_default
    ).encode("utf-8")


def _hash_array(digest, name: str, array) -> None:
    data = np.ascontiguousarray(np.asarray(array, dtype="<f8"))
    digest.update(name.encode("utf-8"))
    digest.update(np.int64(data.size).tobytes())
    digest.update(data.tobytes())


def interval_digest(simulation) -> str:
    """SHA-256 over the canonicalized dynamical state at this step.

    Two simulations produce the same digest **iff** they hold bitwise
    the same step counter, box, per-atom state, and integrator state —
    the currency of the engine's determinism contracts (identical
    backend + precision + worker-count execution is bitwise
    reproducible; everything else is compared through witnesses).
    """
    system = simulation.system
    digest = hashlib.sha256()
    digest.update(b"repro-state-digest/1")
    digest.update(np.int64(simulation.step_number).tobytes())
    _hash_array(digest, "box_lengths", system.box.lengths)
    _hash_array(digest, "positions", system.positions)
    _hash_array(digest, "velocities", system.velocities)
    _hash_array(digest, "forces", system.forces)
    if system.omega is not None:
        _hash_array(digest, "omega", system.omega)
        _hash_array(digest, "torques", system.torques)
    digest.update(
        _canonical_json(
            {
                "integrator": type(simulation.integrator).__name__,
                "state": simulation.integrator.state_dict(),
            }
        )
    )
    return digest.hexdigest()


def state_witness(simulation) -> dict:
    """The small JSON-safe observable set recorded with each digest."""
    return {
        "total_energy": float(simulation.total_energy()),
        "potential_energy": float(simulation.potential_energy),
        "temperature": float(
            simulation.system.temperature(simulation.n_constraints)
        ),
    }


@dataclass(frozen=True)
class DigestEntry:
    """One link of the chain: an interval digest plus its chained hash."""

    index: int
    step: int
    digest: str
    chained: str
    witness: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "step": self.step,
            "digest": self.digest,
            "chained": self.chained,
            "witness": self.witness,
        }

    @classmethod
    def from_json(cls, data: dict) -> "DigestEntry":
        return cls(
            index=int(data["index"]),
            step=int(data["step"]),
            digest=str(data["digest"]),
            chained=str(data["chained"]),
            witness=dict(data.get("witness", {})),
        )


def _chain_hash(previous: str, digest: str, index: int, step: int,
                witness: dict) -> str:
    payload = hashlib.sha256()
    payload.update(previous.encode("ascii"))
    payload.update(digest.encode("ascii"))
    payload.update(f"{index}:{step}".encode("ascii"))
    payload.update(_canonical_json(witness))
    return payload.hexdigest()


class DigestChain:
    """An append-only, hash-chained sequence of interval digests."""

    def __init__(self) -> None:
        self.entries: list[DigestEntry] = []

    # ------------------------------------------------------------------
    @property
    def genesis(self) -> str:
        """The chained value before any entry (schema-derived)."""
        return hashlib.sha256(CHAIN_SCHEMA.encode("ascii")).hexdigest()

    @property
    def head(self) -> str:
        """The chained hash of the newest entry (genesis when empty)."""
        return self.entries[-1].chained if self.entries else self.genesis

    def entry_at_step(self, step: int) -> DigestEntry | None:
        for entry in reversed(self.entries):
            if entry.step == step:
                return entry
        return None

    def steps(self) -> list[int]:
        return [entry.step for entry in self.entries]

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def append_record(self, step: int, digest: str, witness: dict) -> DigestEntry:
        """Append one pre-computed record, chaining it to the head."""
        index = len(self.entries)
        entry = DigestEntry(
            index=index,
            step=int(step),
            digest=digest,
            chained=_chain_hash(self.head, digest, index, int(step), witness),
            witness=dict(witness),
        )
        self.entries.append(entry)
        return entry

    def observe(self, simulation) -> DigestEntry:
        """Record the simulation's current state as the next link.

        Observing a step that is already recorded (crash recovery
        re-executes steps from the latest checkpoint) *verifies* instead
        of appending: the recomputed digest must equal the recorded one
        — the bitwise-recovery contract — and a mismatch raises
        :class:`DigestChainError` naming the step.
        """
        step = int(simulation.step_number)
        existing = self.entry_at_step(step)
        if existing is not None:
            digest = interval_digest(simulation)
            if digest != existing.digest:
                raise DigestChainError(
                    f"re-executed step {step} diverged from its recorded "
                    f"digest ({digest[:16]}… vs {existing.digest[:16]}…): "
                    "recovery is contractually bitwise, so the trajectory "
                    "or the chain has been corrupted"
                )
            return existing
        if self.entries and step < self.entries[-1].step:
            raise DigestChainError(
                f"out-of-order observation at step {step}: the chain "
                f"already ends at step {self.entries[-1].step} and has no "
                f"record for {step} to verify against"
            )
        return self.append_record(
            step, interval_digest(simulation), state_witness(simulation)
        )

    def rewind_to(self, step: int) -> int:
        """Drop entries after ``step``; returns how many were dropped.

        Only the degrade-to-serial recovery path uses this: serial
        continuation is documented as *not* bitwise with the parallel
        prefix, so the tail recorded before the failure is no longer
        the run's trajectory and must be re-recorded.
        """
        kept = [entry for entry in self.entries if entry.step <= int(step)]
        dropped = len(self.entries) - len(kept)
        self.entries = kept
        return dropped

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Recompute every chained hash; raise on the first bad link."""
        previous = self.genesis
        last_step = None
        for position, entry in enumerate(self.entries):
            if entry.index != position:
                raise DigestChainError(
                    f"chain record {position} carries index {entry.index}: "
                    "records were reordered or removed"
                )
            if last_step is not None and entry.step <= last_step:
                raise DigestChainError(
                    f"chain record {position} (step {entry.step}) does not "
                    f"advance past step {last_step}: records were "
                    "reordered or duplicated"
                )
            expected = _chain_hash(
                previous, entry.digest, entry.index, entry.step, entry.witness
            )
            if entry.chained != expected:
                raise DigestChainError(
                    f"chain record {position} (step {entry.step}) fails its "
                    f"chained hash: the record (or an earlier one) was "
                    "edited — every digest from here to the head is invalid"
                )
            previous = entry.chained
            last_step = entry.step

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Write the chain as JSONL (header line + one line per entry).

        The write is atomic (temp file + ``os.replace``) so a crash can
        never leave a half-written chain under the final name.
        """
        import os

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [json.dumps({"schema": CHAIN_SCHEMA})]
        lines.extend(
            json.dumps(entry.to_json(), sort_keys=True)
            for entry in self.entries
        )
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        tmp.write_text("\n".join(lines) + "\n")
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: str | Path, *, verify: bool = True) -> "DigestChain":
        """Parse a chain file; verifies linkage unless ``verify=False``."""
        path = Path(path)
        if not path.exists():
            raise DigestChainError(f"no digest chain at {path}")
        lines = [
            line for line in path.read_text().splitlines() if line.strip()
        ]
        if not lines:
            raise DigestChainError(f"digest chain {path} is empty")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise DigestChainError(
                f"digest chain {path} header is not JSON: {exc}"
            ) from exc
        if header.get("schema") != CHAIN_SCHEMA:
            raise DigestChainError(
                f"digest chain {path} has schema "
                f"{header.get('schema')!r}, expected {CHAIN_SCHEMA!r}"
            )
        chain = cls()
        for number, line in enumerate(lines[1:], start=2):
            try:
                chain.entries.append(DigestEntry.from_json(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise DigestChainError(
                    f"digest chain {path} line {number} is unreadable: "
                    f"{exc!r}"
                ) from exc
        if verify:
            chain.verify()
        return chain

    @classmethod
    def from_records(cls, records, *, verify: bool = True) -> "DigestChain":
        """Rebuild a chain from JSON-safe records (e.g. a JobResult's)."""
        chain = cls()
        chain.entries = [DigestEntry.from_json(record) for record in records]
        if verify:
            chain.verify()
        return chain

    def __len__(self) -> int:
        return len(self.entries)


class DigestRecorder:
    """Cadenced chain recording, pluggable into ``RunConfig(digest=)``.

    ``maybe_record`` observes the simulation on every step divisible by
    ``every`` — the same cadence contract as
    :meth:`~repro.reliability.CheckpointManager.maybe_checkpoint`, so a
    recorder sharing a checkpoint manager's cadence digests exactly the
    states the retained snapshots hold, which is what makes replay
    verification possible.  When a ``path`` is given, every change is
    persisted atomically.
    """

    def __init__(
        self,
        *,
        every: int,
        path: str | Path | None = None,
        chain: DigestChain | None = None,
    ) -> None:
        if int(every) < 1:
            raise ValueError("every must be >= 1")
        self.every = int(every)
        self.path = None if path is None else Path(path)
        self.chain = chain if chain is not None else DigestChain()

    def _persist(self) -> None:
        if self.path is not None:
            self.chain.save(self.path)

    def maybe_record(self, simulation) -> DigestEntry | None:
        """Periodic hook for ``Simulation.run``: record on the cadence."""
        if simulation.step_number % self.every != 0:
            return None
        return self.record(simulation)

    def record(self, simulation) -> DigestEntry:
        """Observe the current state unconditionally (cadence-ignoring)."""
        before = len(self.chain)
        entry = self.chain.observe(simulation)
        if len(self.chain) != before:
            self._persist()
        return entry

    def rewind_to(self, step: int) -> int:
        """Forward to :meth:`DigestChain.rewind_to`, persisting."""
        dropped = self.chain.rewind_to(step)
        if dropped:
            self._persist()
        return dropped

    def finalize(self, simulation) -> DigestEntry:
        """Record the final state even when it is off the cadence.

        Idempotent: if the final step is already the newest entry this
        verifies it instead of appending, so chains end at the run's
        last step exactly once regardless of ``steps % every``.
        """
        return self.record(simulation)
