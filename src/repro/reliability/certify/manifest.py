"""Certification manifests: the provenance record of one run.

A digest chain says *what* trajectory a run produced; the
:class:`CertificationManifest` says *where and how* — platform, numpy
version, kernel backend and compiled provider, precision policy,
worker count — plus the chain head that seals the trajectory.  The
SCC17 Tersoff reproduction study (PAPERS.md) is the motivating
example: when a replay disagrees, the first question is always "same
compiler? same precision? same machine?", and the manifest is what
lets ``repro certify`` answer it in the error message instead of
leaving the user to archaeology.

The manifest is self-checksummed: ``manifest_sha256`` is a SHA-256
over the canonical JSON of every other field, so editing any field of
a stored ``manifest.json`` (say, relabeling a single-precision run as
double) is detected before any physics is replayed and raises
:class:`ManifestError` naming the file.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform as platform_module
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = ["MANIFEST_SCHEMA", "CertificationManifest", "ManifestError"]

#: Manifest schema tag; bump on incompatible layout changes.
MANIFEST_SCHEMA = "repro-certification/1"


class ManifestError(ValueError):
    """A certification manifest is missing, malformed, or tampered."""


@dataclass
class CertificationManifest:
    """Everything needed to rebuild, replay, and attribute one run.

    The workload fields (``benchmark``/``deck_sha256``/``n_atoms``/
    ``seed``/``steps``) plus the execution fields (``workers``/
    ``precision``/``backend``/``backend_provider``) are sufficient to
    reconstruct the simulation for replay; the environment fields
    (``numpy_version``/``python_version``/``platform``/``machine``)
    exist so a cross-host digest mismatch is *attributable* — the
    certify error prints both sides.  ``chain_head``/``chain_entries``/
    ``final_state_digest`` seal the trajectory the manifest vouches for.
    """

    schema: str
    benchmark: str | None
    deck_sha256: str | None
    n_atoms: int
    seed: int | None
    steps: int
    workers: int
    precision: str
    backend: str
    backend_provider: str | None
    checkpoint_every: int
    digest_every: int
    prefix: str
    numpy_version: str
    python_version: str
    platform: str
    machine: str
    chain_head: str
    chain_entries: int
    final_step: int
    final_state_digest: str
    #: Free-form extras (e.g. recovery-event counts); covered by the
    #: checksum like everything else.
    extra: dict = field(default_factory=dict)
    #: Self-checksum over the canonical JSON of all other fields.
    manifest_sha256: str = ""

    # ------------------------------------------------------------------
    def payload(self) -> dict:
        """Every field except the checksum, JSON-ready."""
        data = asdict(self)
        data.pop("manifest_sha256")
        return data

    def checksum(self) -> str:
        """SHA-256 over the canonical JSON of :meth:`payload`."""
        canonical = json.dumps(
            self.payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def seal(self) -> "CertificationManifest":
        """Fill in ``manifest_sha256``; returns self for chaining."""
        self.manifest_sha256 = self.checksum()
        return self

    # ------------------------------------------------------------------
    @classmethod
    def capture(
        cls,
        simulation,
        chain,
        *,
        benchmark: str | None = None,
        deck_text: str | None = None,
        n_atoms: int | None = None,
        seed: int | None = None,
        steps: int,
        workers: int = 1,
        checkpoint_every: int = 0,
        digest_every: int = 0,
        prefix: str = "ckpt",
        extra: dict | None = None,
    ) -> "CertificationManifest":
        """Snapshot the environment + simulation config + chain head.

        The backend/provider/precision recorded are the simulation's
        *live* values (what actually executed), not what was requested
        — an ``auto`` backend request is resolved by the time this is
        called, so the manifest names the kernel that produced the
        digests.
        """
        import numpy as np

        from repro.md.kernels import backend_spec
        from repro.service.spec import state_digest

        backend = backend_spec(simulation.backend)
        provider = None
        if backend == "compiled":
            from repro.md.kernels.compiled import provider_info

            info = provider_info()
            provider = info.get("kind") if info else None
        manifest = cls(
            schema=MANIFEST_SCHEMA,
            benchmark=benchmark,
            deck_sha256=(
                None
                if deck_text is None
                else hashlib.sha256(deck_text.encode()).hexdigest()
            ),
            n_atoms=int(
                simulation.system.n_atoms if n_atoms is None else n_atoms
            ),
            seed=None if seed is None else int(seed),
            steps=int(steps),
            workers=int(workers),
            precision=simulation.precision.mode.value,
            backend=backend,
            backend_provider=provider,
            checkpoint_every=int(checkpoint_every),
            digest_every=int(digest_every),
            prefix=str(prefix),
            numpy_version=np.__version__,
            python_version=platform_module.python_version(),
            platform=platform_module.platform(),
            machine=platform_module.machine(),
            chain_head=chain.head,
            chain_entries=len(chain),
            final_step=int(simulation.step_number),
            final_state_digest=state_digest(simulation.system),
            extra=dict(extra or {}),
        )
        return manifest.seal()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Write the sealed manifest atomically as pretty JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if not self.manifest_sha256:
            self.seal()
        data = asdict(self)
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        tmp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: str | Path, *, verify: bool = True) -> "CertificationManifest":
        """Read a manifest; verify its self-checksum unless told not to."""
        path = Path(path)
        if not path.exists():
            raise ManifestError(f"no certification manifest at {path}")
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ManifestError(f"manifest {path} is not JSON: {exc}") from exc
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ManifestError(
                f"manifest {path} carries unknown fields {sorted(unknown)}"
            )
        try:
            manifest = cls(**data)
        except TypeError as exc:
            raise ManifestError(f"manifest {path} is incomplete: {exc}") from exc
        if manifest.schema != MANIFEST_SCHEMA:
            raise ManifestError(
                f"manifest {path} has schema {manifest.schema!r}, "
                f"expected {MANIFEST_SCHEMA!r}"
            )
        if verify:
            expected = manifest.checksum()
            if manifest.manifest_sha256 != expected:
                raise ManifestError(
                    f"manifest {path} fails its self-checksum "
                    f"(recorded {manifest.manifest_sha256[:16]}…, "
                    f"recomputed {expected[:16]}…): a field was edited "
                    "after sealing"
                )
        return manifest

    # ------------------------------------------------------------------
    def environment_summary(self) -> str:
        """One line naming backend/provider/precision/workers/platform."""
        provider = self.backend_provider or "-"
        return (
            f"backend={self.backend} provider={provider} "
            f"precision={self.precision} workers={self.workers} "
            f"numpy={self.numpy_version} platform={self.platform}"
        )
