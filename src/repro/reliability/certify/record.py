"""Run-directory glue: record digests + manifest alongside checkpoints.

A *certified run directory* is an ordinary checkpoint directory (the
``{prefix}-{step:09d}.npz`` files a
:class:`~repro.reliability.CheckpointManager` retains) plus two
artifacts this module maintains:

``digests.jsonl``
    The hash-chained trajectory digest chain
    (:class:`~repro.reliability.certify.digest.DigestChain`), persisted
    after every new link.
``manifest.json``
    The sealed :class:`~repro.reliability.certify.manifest.
    CertificationManifest`, written once at :meth:`CertificationRecorder.
    finalize`.

:class:`CertificationRecorder` is the producer side; ``repro certify``
(:mod:`repro.reliability.certify.verify`) is the consumer.  The
recorder plugs into ``RunConfig(digest=...)`` exactly like a
checkpoint manager plugs into ``RunConfig(checkpoint=...)``, and into
:class:`~repro.reliability.ResilientRunner` (``digest=``) so recovery
re-execution verifies rather than corrupts the chain.
"""

from __future__ import annotations

from pathlib import Path

from repro.reliability.certify.digest import DigestChain, DigestRecorder
from repro.reliability.certify.manifest import CertificationManifest

__all__ = [
    "CHAIN_FILENAME",
    "MANIFEST_FILENAME",
    "CertificationRecorder",
    "chain_path",
    "manifest_path",
]

#: Digest-chain file name inside a certified run directory.
CHAIN_FILENAME = "digests.jsonl"
#: Manifest file name inside a certified run directory.
MANIFEST_FILENAME = "manifest.json"


def chain_path(run_dir: str | Path) -> Path:
    """Where a run directory's digest chain lives."""
    return Path(run_dir) / CHAIN_FILENAME


def manifest_path(run_dir: str | Path) -> Path:
    """Where a run directory's certification manifest lives."""
    return Path(run_dir) / MANIFEST_FILENAME


class CertificationRecorder:
    """Maintain a run directory's digest chain and final manifest.

    Parameters
    ----------
    directory:
        The run directory (normally the checkpoint directory).
    every:
        Digest cadence in steps; align it with the checkpoint cadence
        so every retained snapshot has a chain entry to replay against.
    """

    def __init__(self, directory: str | Path, *, every: int) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.recorder = DigestRecorder(
            every=every, path=chain_path(self.directory)
        )

    @property
    def chain(self) -> DigestChain:
        """The live digest chain being recorded."""
        return self.recorder.chain

    # ------------------------------------------------------------------
    # RunConfig(digest=...) / ResilientRunner(digest=...) surface
    # ------------------------------------------------------------------
    def maybe_record(self, simulation):
        """Cadenced hook for ``Simulation.run`` — see DigestRecorder."""
        return self.recorder.maybe_record(simulation)

    def record(self, simulation):
        """Unconditional observation (used for baselines/final states)."""
        return self.recorder.record(simulation)

    def rewind_to(self, step: int) -> int:
        """Drop chain entries past ``step`` (degrade-serial recovery)."""
        return self.recorder.rewind_to(step)

    # ------------------------------------------------------------------
    def finalize(
        self,
        simulation,
        *,
        steps: int,
        benchmark: str | None = None,
        deck_text: str | None = None,
        n_atoms: int | None = None,
        seed: int | None = None,
        workers: int = 1,
        checkpoint_every: int = 0,
        prefix: str = "ckpt",
        extra: dict | None = None,
    ) -> CertificationManifest:
        """Seal the run: final digest entry + manifest on disk.

        Records the final state (idempotently — off-cadence final steps
        get their entry, on-cadence ones are verified), then captures
        and writes ``manifest.json``.  Returns the sealed manifest.
        """
        self.recorder.finalize(simulation)
        manifest = CertificationManifest.capture(
            simulation,
            self.chain,
            benchmark=benchmark,
            deck_text=deck_text,
            n_atoms=n_atoms,
            seed=seed,
            steps=steps,
            workers=workers,
            checkpoint_every=checkpoint_every,
            digest_every=self.recorder.every,
            prefix=prefix,
            extra=extra,
        )
        manifest.save(manifest_path(self.directory))
        return manifest
