"""Replay verification: ``repro certify`` and the cache auditor.

:func:`certify_run` is the consumer of a certified run directory
(:mod:`repro.reliability.certify.record`): it picks a checkpoint
interval — random but seedable, or pinned with ``at_step=`` — restores
the interval's starting snapshot, re-executes the steps, and compares
what the replay produces against what the digest chain sealed.

Two verdicts, because the engine has two determinism regimes
(``docs/REPRODUCIBILITY.md``):

``"bitwise"``
    The replay environment matches the manifest — same kernel backend,
    same compiled provider, same precision mode, same executor family
    (serial vs parallel) — so every interval digest must match **bit
    for bit**.  Any mismatch raises :class:`CertificationError` with a
    manifest-attributed diagnostic naming both environments.
``"cross-mode-equivalent"``
    The environments differ (replaying a compiled-backend run on a
    machine that only has numpy, or a double run in mixed precision),
    so bitwise equality is physically off the table; the replay is
    instead held to the PR-5 per-precision parity tiers
    (:data:`repro.md.precision.PARITY_TOLERANCES`) on the chain's
    witness observables and on the end-of-interval state.

:func:`audit_cache` applies the same machinery to a service result
cache (PR 8): every stored :class:`~repro.service.spec.JobResult`
carries its digest-chain records, so the auditor can re-verify chain
linkage, check the result sits under its own content address, and —
with ``replay=True`` — re-execute entries and demand the same head.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.md.precision import PARITY_TOLERANCES
from repro.reliability.certify.digest import (
    DigestChain,
    DigestChainError,
    interval_digest,
)
from repro.reliability.certify.manifest import CertificationManifest
from repro.reliability.certify.record import chain_path, manifest_path

__all__ = [
    "CertificationError",
    "CertificationReport",
    "CacheAuditReport",
    "certify_run",
    "audit_cache",
]

#: Coarseness rank for picking the governing cross-mode tolerance tier.
_PRECISION_RANK = {"double": 0, "mixed": 1, "single": 2}


class CertificationError(ValueError):
    """A replay failed certification (with an attributable diagnostic)."""


@dataclass
class CertificationReport:
    """What one successful :func:`certify_run` established."""

    run_dir: str
    #: ``"bitwise"`` or ``"cross-mode-equivalent"``.
    verdict: str
    #: ``(start_step, end_step)`` of the replayed interval.
    interval: tuple[int, int]
    #: Chain steps whose digests/witnesses were checked in the replay.
    checked_steps: list[int]
    #: Governing tolerance (None for bitwise verdicts).
    tolerance: float | None
    #: The sealed chain head the manifest vouches for.
    chain_head: str
    #: Total entries in the verified chain.
    chain_entries: int
    #: The manifest's environment line (what produced the run).
    recorded_environment: str
    #: The replay's environment line (what verified it).
    replay_environment: str
    #: Human-readable check log, one line per verification performed.
    checks: list[str] = field(default_factory=list)

    def summary(self) -> str:
        """One line suitable for CLI output."""
        lo, hi = self.interval
        tol = "bit-for-bit" if self.tolerance is None else f"tol {self.tolerance:.0e}"
        return (
            f"certified {self.run_dir}: verdict={self.verdict} "
            f"interval=[{lo}, {hi}] ({len(self.checked_steps)} digest "
            f"point(s), {tol}); chain head {self.chain_head[:16]}… "
            f"({self.chain_entries} entries)"
        )


def _local_environment(simulation, workers: int) -> str:
    """The replay-side counterpart of ``manifest.environment_summary``."""
    import platform as platform_module

    from repro.md.kernels import backend_spec

    backend = backend_spec(simulation.backend)
    provider = "-"
    if backend == "compiled":
        from repro.md.kernels.compiled import provider_info

        info = provider_info()
        provider = (info.get("kind") if info else None) or "-"
    return (
        f"backend={backend} provider={provider} "
        f"precision={simulation.precision.mode.value} workers={workers} "
        f"numpy={np.__version__} platform={platform_module.platform()}"
    )


def _checkpoint_steps(run_dir: Path, prefix: str) -> dict[int, Path]:
    """Step -> path for every retained ``{prefix}-*.npz`` snapshot."""
    steps: dict[int, Path] = {}
    for path in sorted(run_dir.glob(f"{prefix}-*.npz")):
        tail = path.stem.rsplit("-", 1)[-1]
        if tail.isdigit():
            steps[int(tail)] = path
    return steps


def _build_for_replay(manifest: CertificationManifest, *, backend, precision,
                      workers, deck_text):
    """Reconstruct the manifest's simulation for replay.

    Returns ``(simulation, workers)``.  Overrides (``backend=`` /
    ``precision=`` / ``workers=``) replace the manifest's values —
    that's the cross-mode path; ``None`` means "as recorded".
    """
    if manifest.benchmark is not None:
        from repro.suite import get_benchmark

        build = get_benchmark(manifest.benchmark).build
        kwargs = {} if manifest.seed is None else {"seed": int(manifest.seed)}
        sim = build(int(manifest.n_atoms), **kwargs)
    else:
        if deck_text is None:
            raise CertificationError(
                "this run was produced from a literal deck; pass the deck "
                "text (repro certify --deck FILE) so the simulation can "
                f"be rebuilt — the manifest only seals its hash "
                f"{manifest.deck_sha256!r}"
            )
        import hashlib

        have = hashlib.sha256(deck_text.encode()).hexdigest()
        if have != manifest.deck_sha256:
            raise CertificationError(
                f"supplied deck text hashes to {have[:16]}… but the "
                f"manifest seals {str(manifest.deck_sha256)[:16]}…: this "
                "is not the deck that produced the run"
            )
        from repro.md.deck import parse_deck

        sim = parse_deck(deck_text).simulation
    precision = manifest.precision if precision is None else precision
    backend = manifest.backend if backend is None else backend
    workers = manifest.workers if workers is None else int(workers)
    sim.set_precision(precision)
    sim.set_backend(backend)
    if workers > 1:
        from repro.parallel.engine import ParallelForceExecutor

        executor = ParallelForceExecutor(
            workers,
            quasi_2d=(manifest.benchmark == "chute"),
            precision=precision,
        )
        sim.force_executor = executor
        executor.bind(sim)
    return sim, workers


def _is_bitwise_environment(manifest: CertificationManifest, simulation,
                            workers: int) -> bool:
    """Bitwise replay is promised only when the execution mode matches.

    Backend, compiled provider, and precision must equal the manifest's;
    the executor *family* must match too (serial vs parallel differ in
    summation order), though parallel worker counts are interchangeable
    — the engine is bitwise across 1/2/4 workers by contract.
    """
    from repro.md.kernels import backend_spec

    backend = backend_spec(simulation.backend)
    if backend != manifest.backend:
        return False
    if backend == "compiled":
        from repro.md.kernels.compiled import provider_info

        info = provider_info()
        if (info.get("kind") if info else None) != manifest.backend_provider:
            return False
    if simulation.precision.mode.value != manifest.precision:
        return False
    return (workers > 1) == (manifest.workers > 1)


def _cross_mode_tolerance(manifest: CertificationManifest, simulation) -> float:
    """The governing tier: the coarser of the two precision modes."""
    modes = (manifest.precision, simulation.precision.mode.value)
    tier = max(modes, key=lambda mode: _PRECISION_RANK[mode])
    return PARITY_TOLERANCES[tier]


def certify_run(
    run_dir: str | Path,
    *,
    seed: int | None = None,
    at_step: int | None = None,
    backend: str | None = None,
    precision: str | None = None,
    workers: int | None = None,
    deck_text: str | None = None,
    logger=None,
) -> CertificationReport:
    """Verify one certified run directory by interval replay.

    Raises
    ------
    ManifestError
        ``manifest.json`` is missing, malformed, or edited (the
        self-checksum catches any post-seal field change).
    DigestChainError
        ``digests.jsonl`` is unreadable, internally inconsistent, or
        does not end at the head the manifest seals (truncation).
    CheckpointIntegrityError
        A snapshot needed for the replay fails its CRC/size record.
    CertificationError
        The replay itself disagrees with the chain — with a diagnostic
        attributing the mismatch to the recorded vs replay environment.
    """
    from repro.md import RunConfig
    from repro.md.restart import load_snapshot, restore_simulation
    from repro.reliability.checkpoint import CheckpointManager

    run_dir = Path(run_dir)
    log = logger if logger is not None else (lambda _line: None)
    manifest = CertificationManifest.load(manifest_path(run_dir))
    chain = DigestChain.load(chain_path(run_dir))
    if len(chain) != manifest.chain_entries or chain.head != manifest.chain_head:
        raise DigestChainError(
            f"digest chain of {run_dir} ends at entry {len(chain)} with "
            f"head {chain.head[:16]}…, but the manifest seals "
            f"{manifest.chain_entries} entries with head "
            f"{manifest.chain_head[:16]}…: the chain was truncated or "
            "rewritten after the run finished"
        )

    snapshots = _checkpoint_steps(run_dir, manifest.prefix)
    if not snapshots:
        raise CertificationError(
            f"no retained '{manifest.prefix}-*.npz' checkpoints under "
            f"{run_dir}: nothing to replay from"
        )
    chain_steps = set(chain.steps())
    ordered = sorted(snapshots)
    # Candidate intervals: start at a retained snapshot, end at the next
    # retained snapshot (or the run's final step), and contain at least
    # one chain entry to check the replay against.
    candidates: list[tuple[int, int]] = []
    for position, start in enumerate(ordered):
        end = (
            ordered[position + 1]
            if position + 1 < len(ordered)
            else manifest.final_step
        )
        if end > start and any(start < s <= end for s in chain_steps):
            candidates.append((start, end))
    if not candidates:
        raise CertificationError(
            f"no replayable interval in {run_dir}: retained checkpoints "
            f"at steps {ordered} share no digest entries "
            f"(chain records steps {sorted(chain_steps)})"
        )
    if at_step is not None:
        matches = [c for c in candidates if c[0] == int(at_step)]
        if not matches:
            raise CertificationError(
                f"no replayable interval starts at step {at_step}; "
                f"candidates start at {[c[0] for c in candidates]}"
            )
        start, end = matches[0]
    else:
        start, end = random.Random(seed).choice(candidates)
    log(f"replaying interval [{start}, {end}] of {run_dir} "
        f"({len(candidates)} candidate interval(s))")

    # Integrity-check the snapshots the verdict will lean on.
    manager = CheckpointManager(run_dir, prefix=manifest.prefix)
    manager.verify_integrity(snapshots[start])
    if end in snapshots:
        manager.verify_integrity(snapshots[end])

    sim, replay_workers = _build_for_replay(
        manifest,
        backend=backend,
        precision=precision,
        workers=workers,
        deck_text=deck_text,
    )
    try:
        cast = (
            sim.precision.mode.value
            if sim.precision.mode.value != manifest.precision
            else None
        )
        restore_simulation(sim, snapshots[start], cast=cast)
        # A run that degraded to the serial executor mid-flight mixes
        # two executor families in one chain; its pre-degradation
        # snapshots only certify cross-mode (docs/REPRODUCIBILITY.md §5).
        bitwise = _is_bitwise_environment(
            manifest, sim, replay_workers
        ) and not manifest.extra.get("degraded")
        tolerance = None if bitwise else _cross_mode_tolerance(manifest, sim)
        recorded_env = manifest.environment_summary()
        replay_env = _local_environment(sim, replay_workers)

        checked: list[int] = []
        checks: list[str] = []
        for entry in chain.entries:
            if not (start < entry.step <= end):
                continue
            sim.run(RunConfig(steps=entry.step - sim.step_number))
            if bitwise:
                replayed = interval_digest(sim)
                if replayed != entry.digest:
                    raise CertificationError(
                        f"digest mismatch at step {entry.step} of "
                        f"{run_dir}: the replay does not reproduce the "
                        f"sealed chain bit for bit.\n"
                        f"  recorded under: {recorded_env}\n"
                        f"  replayed under: {replay_env}\n"
                        f"  recorded digest {entry.digest[:16]}…, "
                        f"replayed {replayed[:16]}…\n"
                        "The environments match the manifest, so this is "
                        "not a backend/provider/precision difference: the "
                        "run directory's snapshots or chain are corrupt, "
                        "or the kernel has drifted from its certified "
                        "behavior."
                    )
                checks.append(f"step {entry.step}: digest bit-for-bit OK")
            else:
                from repro.reliability.certify.digest import state_witness

                observed = state_witness(sim)
                for name, recorded in entry.witness.items():
                    have = observed.get(name)
                    if have is None:
                        continue
                    scale = max(1.0, abs(float(recorded)))
                    delta = abs(float(have) - float(recorded)) / scale
                    if delta > tolerance:
                        raise CertificationError(
                            f"cross-mode witness '{name}' diverged at "
                            f"step {entry.step} of {run_dir}: "
                            f"|Δ|/scale = {delta:.3e} > tol "
                            f"{tolerance:.0e}.\n"
                            f"  recorded under: {recorded_env}\n"
                            f"  replayed under: {replay_env}"
                        )
                checks.append(
                    f"step {entry.step}: witnesses within {tolerance:.0e}"
                )
            checked.append(entry.step)

        # End-of-interval state check against the ending snapshot (when
        # one is retained): bitwise replay must match exactly; a
        # cross-mode replay within the governing positional tolerance.
        if end in snapshots:
            reference = load_snapshot(snapshots[end]).system
            mine = sim.system
            ref_x = np.asarray(reference.positions, dtype=np.float64)
            my_x = np.asarray(mine.positions, dtype=np.float64)
            if bitwise:
                if not (
                    np.array_equal(ref_x, my_x)
                    and np.array_equal(
                        np.asarray(reference.velocities, dtype=np.float64),
                        np.asarray(mine.velocities, dtype=np.float64),
                    )
                ):
                    raise CertificationError(
                        f"end-of-interval state at step {end} of {run_dir} "
                        "does not match the retained snapshot bit for "
                        f"bit.\n  recorded under: {recorded_env}\n"
                        f"  replayed under: {replay_env}"
                    )
                checks.append(f"step {end}: snapshot state bit-for-bit OK")
            else:
                delta = float(np.abs(ref_x - my_x).max())
                if delta > tolerance:
                    raise CertificationError(
                        f"end-of-interval positions at step {end} of "
                        f"{run_dir} diverge by |dx|max = {delta:.3e} > "
                        f"tol {tolerance:.0e}.\n"
                        f"  recorded under: {recorded_env}\n"
                        f"  replayed under: {replay_env}"
                    )
                checks.append(
                    f"step {end}: snapshot |dx|max within {tolerance:.0e}"
                )
    finally:
        sim.close()

    report = CertificationReport(
        run_dir=str(run_dir),
        verdict="bitwise" if bitwise else "cross-mode-equivalent",
        interval=(start, end),
        checked_steps=checked,
        tolerance=tolerance,
        chain_head=chain.head,
        chain_entries=len(chain),
        recorded_environment=recorded_env,
        replay_environment=replay_env,
        checks=checks,
    )
    log(report.summary())
    return report


# ----------------------------------------------------------------------
# Cache auditing (repro certify --cache)
# ----------------------------------------------------------------------


@dataclass
class CacheAuditReport:
    """What :func:`audit_cache` established about one result cache."""

    cache_dir: str
    #: Entries examined.
    scanned: int = 0
    #: Entries whose chain linkage + head + address all verified.
    verified: int = 0
    #: Entries additionally re-executed and head-compared.
    replayed: int = 0
    #: key -> reason for entries that could not be fully checked
    #: (legacy records without chains, foreign-environment addresses).
    skipped: dict[str, str] = field(default_factory=dict)
    #: ``(key, problem)`` pairs; an empty list means the audit passed.
    findings: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing failed verification."""
        return not self.findings

    def summary(self) -> str:
        """One line suitable for CLI output."""
        state = "OK" if self.ok else f"{len(self.findings)} FINDING(S)"
        return (
            f"cache audit of {self.cache_dir}: {self.scanned} scanned, "
            f"{self.verified} verified, {self.replayed} replayed, "
            f"{len(self.skipped)} skipped — {state}"
        )


def audit_cache(
    cache_dir: str | Path,
    *,
    replay: bool = False,
    limit: int | None = None,
    seed: int | None = None,
    logger=None,
) -> CacheAuditReport:
    """Audit a service result cache's stored records.

    For every ``<key>.json`` record: rebuild the digest chain from the
    stored records (verifying every chained hash), check it ends at the
    stored ``digest_head``, check the record sits under its own content
    address, and — when the stored spec is available and the local
    environment resolves to the same backend/provider — recompute the
    address from the spec.  ``replay=True`` additionally re-executes up
    to ``limit`` replayable entries (seedable sample) and demands the
    same chain head, the end-to-end guard over the content-address
    path.  Problems become report *findings*; nothing raises, so one
    bad record cannot mask another.
    """
    from repro.service.spec import JobResult, JobSpec

    cache_dir = Path(cache_dir)
    log = logger if logger is not None else (lambda _line: None)
    report = CacheAuditReport(cache_dir=str(cache_dir))
    files = sorted(cache_dir.glob("*.json"))
    for path in files:
        key = path.stem
        report.scanned += 1
        try:
            result = JobResult.from_json(json.loads(path.read_text()))
        except (json.JSONDecodeError, TypeError, KeyError) as exc:
            report.findings.append((key, f"unreadable record: {exc!r}"))
            continue
        if result.key != key:
            report.findings.append(
                (key, f"record claims key {result.key[:16]}… but is "
                      f"stored under {key[:16]}…")
            )
            continue
        if not result.digest_chain:
            report.skipped[key] = "no digest chain (pre-certification record)"
            continue
        try:
            chain = DigestChain.from_records(result.digest_chain)
        except DigestChainError as exc:
            report.findings.append((key, f"broken digest chain: {exc}"))
            continue
        if chain.head != result.digest_head:
            report.findings.append(
                (key, f"chain head {chain.head[:16]}… does not match the "
                      f"stored digest_head {str(result.digest_head)[:16]}…")
            )
            continue
        spec = None
        if result.spec_json is not None:
            try:
                spec = JobSpec.from_json(result.spec_json)
            except (TypeError, ValueError, KeyError) as exc:
                report.findings.append((key, f"unreadable stored spec: {exc!r}"))
                continue
            payload = spec.canonical_payload()
            if (
                payload["backend"] != result.backend
                or payload["backend_provider"] != result.backend_provider
            ):
                # Produced under a different resolved environment (e.g.
                # numba provider elsewhere, cc here): the address cannot
                # be recomputed locally, and a replay would not be
                # bitwise — verified as far as the chain goes.
                report.skipped[key] = (
                    f"foreign environment ({result.backend}/"
                    f"{result.backend_provider} vs local "
                    f"{payload['backend']}/{payload['backend_provider']})"
                )
                report.verified += 1
                continue
            if spec.cache_key() != key:
                report.findings.append(
                    (key, "stored spec recomputes to address "
                          f"{spec.cache_key()[:16]}…, not {key[:16]}…")
                )
                continue
        report.verified += 1
        log(f"{key[:16]}…: chain OK ({len(chain)} entries)")

    if replay:
        replayable = [
            path for path in files if _replay_candidate(path, report)
        ]
        rng = random.Random(seed)
        rng.shuffle(replayable)
        if limit is not None:
            replayable = replayable[: int(limit)]
        for path in replayable:
            _replay_entry(path, report, log)
    log(report.summary())
    return report


def _replay_candidate(path: Path, report: CacheAuditReport) -> bool:
    """Only verified entries with a stored spec are worth re-executing."""
    key = path.stem
    if key in report.skipped:
        return False
    if any(found_key == key for found_key, _ in report.findings):
        return False
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError:
        return False
    return bool(data.get("spec_json")) and bool(data.get("digest_chain"))


def _replay_entry(path: Path, report: CacheAuditReport, log) -> None:
    """Re-execute one cached job and demand the same chain head."""
    import dataclasses

    from repro.service.runner import execute_job
    from repro.service.spec import JobResult, JobSpec

    key = path.stem
    stored = JobResult.from_json(json.loads(path.read_text()))
    spec = JobSpec.from_json(stored.spec_json)
    if spec.fault_plan is not None:
        # Replay fault-free: recovery makes fault plans result-neutral,
        # so the reference replay must reproduce the same head anyway.
        spec = dataclasses.replace(spec, fault_plan=None)
    fresh = execute_job(spec)
    report.replayed += 1
    if fresh.digest_head != stored.digest_head:
        report.findings.append(
            (key, "replay produced chain head "
                  f"{str(fresh.digest_head)[:16]}… but the cache stores "
                  f"{str(stored.digest_head)[:16]}… (backend="
                  f"{stored.backend} provider={stored.backend_provider} "
                  f"precision={stored.precision} workers="
                  f"{stored.engine_workers})")
        )
    elif fresh.state_digest != stored.state_digest:
        report.findings.append(
            (key, "replay reproduced the chain head but not the final "
                  "state digest — the stored record is internally "
                  "inconsistent")
        )
    else:
        log(f"{key[:16]}…: replay head matches")
