"""Periodic, atomic, retained checkpoints of a running simulation.

:class:`CheckpointManager` is the policy layer over
:func:`repro.md.restart.save_snapshot`'s format-v2 payloads:

* **cadence** — ``maybe_checkpoint`` writes on every step divisible by
  ``every`` (it plugs straight into ``Simulation.run(checkpoint=...)``);
* **atomicity** — payloads are written to a hidden temp file in the
  same directory and ``os.replace``d into place, so a crash mid-write
  can never leave a truncated file under a checkpoint name;
* **retention** — only the newest ``keep_last`` checkpoints are kept;
* **integrity** — every write records the file's CRC32 + byte size in
  ``{prefix}-integrity.json``; ``verify_integrity`` (called by
  ``restore_latest`` and by ``repro certify``) diagnoses a damaged
  retained file as *truncated* or *bit-corrupted*
  (:class:`CheckpointIntegrityError`) instead of letting it fail deep
  inside numpy deserialization;
* **recovery** — ``restore_latest`` walks the retained files newest
  first and restores the first one that parses, skipping corrupted
  leftovers;
* **observability** — writes are traced (``checkpoint.write`` spans)
  and counted (``md_checkpoints_total``, ``md_checkpoint_write_seconds``,
  ``md_checkpoint_bytes``) when a tracer/registry is attached;
* **fault injection** — a checkpoint-phase :class:`~repro.reliability.
  faultplan.FaultSpec` simulates the process dying mid-write: a partial
  temp file is left behind, no checkpoint is recorded, and the named
  worker is scheduled to die (in-band, at its next command — see
  ``ParallelForceExecutor.kill_worker``) so the run aborts the way a
  real crash would.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from pathlib import Path

import numpy as np

from repro.md.restart import (
    Snapshot,
    SnapshotError,
    restore_simulation,
    snapshot_payload,
)
from repro.observability import resolve_tracer

__all__ = ["CheckpointManager", "CheckpointIntegrityError"]


class CheckpointIntegrityError(SnapshotError):
    """A retained checkpoint's bytes do not match its CRC/size record.

    Subclasses :class:`~repro.md.restart.SnapshotError` so recovery's
    skip-and-try-older loop treats a damaged file exactly like an
    unparseable one — but callers that verify *explicitly* (``repro
    certify``) get a diagnosis naming the damage (truncation vs bit
    corruption) instead of an arbitrary numpy deserialization error.
    """


class CheckpointManager:
    """Write/retain/restore policy for periodic simulation checkpoints.

    Parameters
    ----------
    directory:
        Where checkpoint files live (created if missing).
    every:
        Checkpoint every N steps; ``0`` disables the periodic cadence
        (explicit :meth:`write` calls still work).
    keep_last:
        Retention depth; older checkpoints are deleted after each write.
    prefix:
        Filename prefix; files are ``{prefix}-{step:09d}.npz``.
    metrics, tracer:
        Optional observability sinks (same conventions as Simulation).
    fault_plan:
        Optional :class:`~repro.reliability.faultplan.FaultPlan`
        consulted for ``checkpoint``-phase faults on every write.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        every: int = 0,
        keep_last: int = 3,
        prefix: str = "ckpt",
        metrics=None,
        tracer=None,
        fault_plan=None,
    ) -> None:
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.every = int(every)
        self.keep_last = int(keep_last)
        self.prefix = str(prefix)
        self.metrics = metrics
        self.tracer = resolve_tracer(tracer)
        self.fault_plan = fault_plan
        self.writes = 0

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def path_for(self, step: int) -> Path:
        return self.directory / f"{self.prefix}-{int(step):09d}.npz"

    def integrity_path(self) -> Path:
        """The CRC/size index covering this prefix's checkpoints."""
        return self.directory / f"{self.prefix}-integrity.json"

    def checkpoints(self) -> list[Path]:
        """Retained checkpoint files, oldest first (sorted by step)."""
        return sorted(self.directory.glob(f"{self.prefix}-*.npz"))

    def latest(self) -> Path | None:
        files = self.checkpoints()
        return files[-1] if files else None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def maybe_checkpoint(self, simulation) -> Path | None:
        """Periodic hook for ``Simulation.run``: write on the cadence."""
        if self.every <= 0 or simulation.step_number % self.every != 0:
            return None
        return self.write(simulation)

    def write(self, simulation) -> Path | None:
        """Checkpoint the simulation's current step atomically.

        Returns the final path, or ``None`` when a checkpoint-phase
        fault consumed the write (the crash-mid-write simulation).
        """
        step = simulation.step_number
        final = self.path_for(step)
        tmp = final.parent / f".{final.name}.tmp"
        start = time.perf_counter()
        with self.tracer.span("checkpoint.write", "checkpoint"):
            # Gathering the payload may round-trip worker state (the
            # parallel executor dumps contact histories over shm), so it
            # happens before any file I/O.
            payload = snapshot_payload(simulation)
            fault = (
                self.fault_plan.take(step, "checkpoint")
                if self.fault_plan is not None
                else None
            )
            if fault is not None:
                # Simulate dying mid-write: a partial temp file is left
                # on disk (restore_latest must skip it), the final name
                # never appears, and the named worker's death is
                # scheduled so the run aborts like a real crash.
                tmp.write_bytes(b"\x00" * 512)
                executor = simulation.force_executor
                if hasattr(executor, "kill_worker"):
                    executor.kill_worker(fault.worker)
                return None
            with open(tmp, "wb") as handle:
                np.savez_compressed(handle, **payload)
            crc = zlib.crc32(tmp.read_bytes())
            size = tmp.stat().st_size
            os.replace(tmp, final)
            self._record_integrity(final.name, crc, size)
        elapsed = time.perf_counter() - start
        self.writes += 1
        if self.metrics is not None:
            self.metrics.counter("md_checkpoints_total").inc()
            self.metrics.histogram("md_checkpoint_write_seconds").observe(elapsed)
            self.metrics.gauge("md_checkpoint_bytes").set(final.stat().st_size)
        self._prune()
        return final

    def _prune(self) -> None:
        files = self.checkpoints()
        dropped = []
        for stale in files[: -self.keep_last]:
            try:
                stale.unlink()
            except FileNotFoundError:  # pragma: no cover - lost race
                pass
            dropped.append(stale.name)
        if dropped:
            index = self._load_index()
            for name in dropped:
                index.pop(name, None)
            self._save_index(index)

    # ------------------------------------------------------------------
    # Integrity (CRC32 + size per retained file)
    # ------------------------------------------------------------------
    def _load_index(self) -> dict:
        path = self.integrity_path()
        if not path.exists():
            return {}
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError:
            return {}  # damaged index: files fall back to unverified
        return data if isinstance(data, dict) else {}

    def _save_index(self, index: dict) -> None:
        path = self.integrity_path()
        tmp = path.with_name(f".{path.name}.tmp")
        tmp.write_text(json.dumps(index, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)

    def _record_integrity(self, name: str, crc: int, size: int) -> None:
        index = self._load_index()
        index[name] = {"crc32": int(crc), "bytes": int(size)}
        self._save_index(index)

    def verify_integrity(self, path: str | Path) -> bool:
        """Check one retained checkpoint against its CRC/size record.

        Returns ``True`` when the bytes match the record and ``False``
        when the file predates the integrity index (legacy directories
        — nothing to check against).  Raises
        :class:`CheckpointIntegrityError` naming the damage when the
        record exists but the bytes disagree: a size mismatch is
        diagnosed as truncation/growth, a CRC mismatch as bit
        corruption — *before* numpy ever tries to deserialize them.
        """
        path = Path(path)
        record = self._load_index().get(path.name)
        if record is None:
            return False
        if not path.exists():
            raise CheckpointIntegrityError(
                f"checkpoint {path} is recorded in the integrity index "
                "but missing on disk"
            )
        size = path.stat().st_size
        if size != int(record["bytes"]):
            raise CheckpointIntegrityError(
                f"checkpoint {path} is {size} bytes but was written as "
                f"{record['bytes']} bytes: the file was truncated or "
                "appended to after the write"
            )
        crc = zlib.crc32(path.read_bytes())
        if crc != int(record["crc32"]):
            raise CheckpointIntegrityError(
                f"checkpoint {path} fails its CRC32 "
                f"({crc:#010x} vs recorded {int(record['crc32']):#010x}): "
                "the file's bytes were altered after the write"
            )
        return True

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def restore_latest(self, simulation) -> tuple[Path, Snapshot]:
        """Restore the newest checkpoint that parses.

        Corrupted or truncated files (e.g. the artifact of a crash
        mid-write) are skipped with the next-older file tried instead;
        :class:`~repro.md.restart.SnapshotError` is raised only when no
        retained checkpoint is restorable.
        """
        last_error: SnapshotError | None = None
        for path in reversed(self.checkpoints()):
            try:
                self.verify_integrity(path)
                snapshot = restore_simulation(simulation, path)
            except SnapshotError as exc:
                last_error = exc
                continue
            return path, snapshot
        detail = f" (last error: {last_error})" if last_error else ""
        raise SnapshotError(
            f"no restorable checkpoint under {self.directory}{detail}"
        )
