"""Deterministic fault plans for crash-injection testing.

A fault plan is an ordered list of one-shot :class:`FaultSpec` entries,
each naming *what* fails (``kill`` a worker process or make it
``hang``), *who* fails (the worker id), and *when* (the first dispatch
of a given phase at or after a step number).  The parallel engine
consults the plan master-side right before it dispatches each command,
so a spec fires exactly once even when the run later rolls back past
its step — which is what makes recovery tests deterministic instead of
an infinite crash loop.

Text syntax (``$REPRO_FAULT_PLAN`` and the ``--fault-plan`` CLI flag)::

    kind:worker:step[:phase][;kind:worker:step[:phase]]...

with ``kind`` one of ``kill``/``hang``, ``phase`` one of ``step``
(default, the pair-force dispatch), ``rebuild`` (the neighbor-rebuild
dispatch) or ``checkpoint`` (fired by the checkpoint manager mid-write).
Example: ``kill:1:40;hang:0:80:rebuild``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

__all__ = ["FaultSpec", "FaultPlan", "FAULT_KINDS", "FAULT_PHASES", "ENV_VAR"]

FAULT_KINDS = ("kill", "hang")
FAULT_PHASES = ("step", "rebuild", "checkpoint")

#: Environment variable the engine resolves a plan from when none was
#: passed explicitly.
ENV_VAR = "REPRO_FAULT_PLAN"


@dataclass
class FaultSpec:
    """One scheduled fault: ``kind`` on ``worker`` at/after ``step``."""

    kind: str
    worker: int
    step: int
    phase: str = "step"
    #: One-shot latch; set by :meth:`FaultPlan.take` when dispatched.
    fired: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (expected one of "
                f"{'/'.join(FAULT_KINDS)})"
            )
        if self.phase not in FAULT_PHASES:
            raise ValueError(
                f"unknown fault phase {self.phase!r} (expected one of "
                f"{'/'.join(FAULT_PHASES)})"
            )
        self.worker = int(self.worker)
        self.step = int(self.step)
        if self.worker < 0:
            raise ValueError("fault worker id must be non-negative")
        if self.step < 0:
            raise ValueError("fault step must be non-negative")

    def spec_string(self) -> str:
        return f"{self.kind}:{self.worker}:{self.step}:{self.phase}"


class FaultPlan:
    """An ordered collection of one-shot :class:`FaultSpec` entries."""

    def __init__(self, specs: list[FaultSpec] | tuple[FaultSpec, ...] = ()) -> None:
        self.specs = list(specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({'; '.join(s.spec_string() for s in self.specs)})"

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``kind:worker:step[:phase]`` (``;``-separated) syntax."""
        specs: list[FaultSpec] = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            parts = chunk.split(":")
            if len(parts) not in (3, 4):
                raise ValueError(
                    f"bad fault spec {chunk!r}: expected "
                    "kind:worker:step[:phase]"
                )
            kind, worker, step = parts[0], parts[1], parts[2]
            phase = parts[3] if len(parts) == 4 else "step"
            try:
                specs.append(
                    FaultSpec(kind=kind, worker=int(worker), step=int(step), phase=phase)
                )
            except ValueError as exc:
                raise ValueError(f"bad fault spec {chunk!r}: {exc}") from exc
        return cls(specs)

    @classmethod
    def from_env(cls, env_var: str = ENV_VAR) -> "FaultPlan | None":
        """Plan from the environment, or ``None`` when unset/empty."""
        text = os.environ.get(env_var, "")
        if not text.strip():
            return None
        return cls.parse(text)

    def take(self, step: int, phase: str) -> FaultSpec | None:
        """Pop the first unfired spec due at ``(step, phase)``.

        A spec is due at the first matching-phase dispatch whose step is
        ``>= spec.step`` — consuming it here (master-side, *before* the
        command goes out) is what prevents it from refiring when the
        supervisor rolls the run back past ``spec.step``.
        """
        for spec in self.specs:
            if not spec.fired and spec.phase == phase and step >= spec.step:
                spec.fired = True
                return spec
        return None

    def pending(self) -> list[FaultSpec]:
        """Specs that have not fired yet."""
        return [spec for spec in self.specs if not spec.fired]
