"""Supervised recovery: run a simulation to completion despite crashes.

:class:`ResilientRunner` wraps ``Simulation.run`` with the recovery
state machine documented in ``docs/RELIABILITY.md``::

    RUNNING --ParallelEngineError--> FAILED
    FAILED  --restarts <= max_restarts--> backoff, restore latest
            checkpoint, respawn the worker pool  --> RUNNING
    FAILED  --restarts  > max_restarts--> degrade to the serial
            executor, restore latest checkpoint  --> RUNNING (serial)

Worker death is detected by the engine (watchdog-aborted barriers for a
killed process, barrier timeout for a hang) and surfaces as
:class:`~repro.parallel.engine.ParallelEngineError`; the failed pool is
already torn down respawnable by the time the error reaches this layer,
so "respawn" is simply the next dispatch after the checkpoint restore.
Restores go through :meth:`CheckpointManager.restore_latest`, which
skips corrupted files — including the partial temp file a crash during
a checkpoint write leaves behind.

Because the restore is exact (format v2) and the engine is bitwise
deterministic across worker counts, a recovered parallel run finishes
bit-for-bit identical to the uninterrupted one.  Only the final
degradation to the serial executor abandons bitwise equality (serial
half-list summation order differs), staying within ~1e-10 relative.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.md.config import RunConfig
from repro.md.simulation import SerialForceExecutor, Simulation
from repro.parallel.engine import ParallelEngineError
from repro.reliability.checkpoint import CheckpointManager

__all__ = ["ResilientRunner", "RecoveryEvent"]


@dataclass
class RecoveryEvent:
    """One entry of the supervisor's recovery log."""

    #: Step the failure surfaced at (the step being executed).
    step: int
    #: Action taken: ``"respawn"`` or ``"degrade-serial"``.
    action: str
    #: Step of the checkpoint the run resumed from.
    resumed_from_step: int
    #: Restart ordinal (1-based).
    restart_index: int
    #: First line of the engine error.
    error: str


class ResilientRunner:
    """Drive ``simulation.run`` under checkpointing with crash recovery.

    Parameters
    ----------
    simulation:
        The simulation to drive.  With a
        :class:`~repro.parallel.engine.ParallelForceExecutor` attached,
        worker failures are recovered; with the serial executor this
        degenerates to a plain checkpointed run.
    checkpoint:
        The :class:`CheckpointManager` providing the periodic cadence
        and the restore points.
    max_restarts:
        Worker-pool respawns allowed before degrading to the serial
        executor.
    backoff_seconds:
        Base of the exponential backoff slept before restart ``k``
        (``backoff_seconds * 2**(k-1)``).
    digest:
        Optional :class:`~repro.reliability.certify.digest.
        DigestRecorder` (or :class:`~repro.reliability.certify.record.
        CertificationRecorder`) recording the hash-chained trajectory
        digests *through* recovery: a bitwise respawn re-executes steps
        whose digests are already recorded, which the chain verifies
        idempotently (a divergent re-execution fails loudly), while the
        non-bitwise degrade-to-serial path rewinds the chain to the
        resume step so the abandoned parallel tail is re-recorded.
    metrics:
        Optional registry; failures/restarts/degradations are counted
        (``md_worker_failures_total``, ``md_restarts_total``,
        ``md_degradations_total``).
    logger:
        Optional ``callable(str)`` receiving one line per recovery
        action (e.g. ``print`` or ``logging.info``).
    """

    def __init__(
        self,
        simulation: Simulation,
        checkpoint: CheckpointManager,
        *,
        max_restarts: int = 2,
        backoff_seconds: float = 0.05,
        digest=None,
        metrics=None,
        logger=None,
    ) -> None:
        self.simulation = simulation
        self.checkpoint = checkpoint
        self.max_restarts = int(max_restarts)
        self.backoff_seconds = float(backoff_seconds)
        self.digest = digest
        self.metrics = metrics
        self.logger = logger
        self.events: list[RecoveryEvent] = []
        self.degraded = False

    def _log(self, message: str) -> None:
        if self.logger is not None:
            self.logger(message)

    def run(self, n_steps: int) -> list[RecoveryEvent]:
        """Run ``n_steps`` more steps, recovering from worker failures.

        Returns the recovery log (empty when nothing failed).  Raises
        the final :class:`ParallelEngineError` only if even the serial
        degradation path cannot make progress (which would indicate a
        bug, not a worker fault).
        """
        simulation = self.simulation
        target = simulation.step_number + int(n_steps)
        # A baseline checkpoint guarantees a restore point even when the
        # first failure lands before the first periodic write.
        if self.checkpoint.latest() is None:
            self.checkpoint.write(simulation)
        restarts = 0
        while simulation.step_number < target:
            try:
                simulation.run(
                    RunConfig(
                        steps=target - simulation.step_number,
                        checkpoint=self.checkpoint,
                        digest=self.digest,
                    )
                )
            except ParallelEngineError as exc:
                failed_step = simulation.step_number
                restarts += 1
                if self.metrics is not None:
                    self.metrics.counter("md_worker_failures_total").inc()
                if restarts > self.max_restarts:
                    self._degrade_to_serial()
                    action = "degrade-serial"
                    if self.metrics is not None:
                        self.metrics.counter("md_degradations_total").inc()
                else:
                    action = "respawn"
                    if self.metrics is not None:
                        self.metrics.counter("md_restarts_total").inc()
                    time.sleep(self.backoff_seconds * 2 ** (restarts - 1))
                _, snapshot = self.checkpoint.restore_latest(simulation)
                if action == "degrade-serial" and self.digest is not None:
                    # Serial continuation is legitimately not bitwise
                    # with the parallel prefix: the chain entries past
                    # the resume point describe a trajectory this run
                    # will no longer produce, so drop them for
                    # re-recording instead of tripping the idempotent
                    # re-execution check.
                    self.digest.rewind_to(snapshot.step_number)
                event = RecoveryEvent(
                    step=failed_step,
                    action=action,
                    resumed_from_step=snapshot.step_number,
                    restart_index=restarts,
                    error=str(exc).splitlines()[0],
                )
                self.events.append(event)
                self._log(
                    f"[reliability] step {failed_step}: {event.error} -> "
                    f"{action}, resuming from step {snapshot.step_number} "
                    f"(restart {restarts}/{self.max_restarts})"
                )
        return self.events

    def _degrade_to_serial(self) -> None:
        """Replace the parallel executor with the serial one for good."""
        old = self.simulation.force_executor
        try:
            old.close()
        except Exception:  # pragma: no cover - teardown best-effort
            pass
        serial = SerialForceExecutor()
        serial.bind(self.simulation)
        self.simulation.force_executor = serial
        self.degraded = True
