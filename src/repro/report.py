"""One versioned record envelope for every benchmark harness.

The characterization produces records from five harnesses (kernels,
precision, scaling, service, power) plus the campaign orchestrator.
Before ``repro-bench-report/2`` each harness invented its own top-level
shape and the common provenance facts — which backend ran, which
precision modes, where the energy numbers came from, what platform —
drifted between them.  This module defines those fields **once**:

* :func:`platform_info` — the interpreter/host stamp every record
  carries;
* :func:`make_report` — build a validated record: the shared envelope
  plus the harness's own payload keys merged at top level (so existing
  consumers keep reading ``results``/``summary``/... unchanged);
* :func:`validate_report` — structural validation used by the tests
  that audit each tracked ``BENCH_*.json``.

The envelope, version 2::

    schema       "repro-bench-report/2"
    kind         kernels | precision | scaling | service | power | campaign
    created_unix epoch seconds (> 0)
    platform     {python, numpy, machine, system, ...extras}
    backend      {requested, resolved}     (names or lists of names)
    precision    "double" | [...modes]
    energy       {provider, kind}          provenance of any joules

Payload keys merge beside the envelope and may never shadow it.
"""

from __future__ import annotations

import json
import platform as _platform
import time
from pathlib import Path

import numpy as np

__all__ = [
    "SCHEMA",
    "KINDS",
    "PRECISIONS",
    "ENERGY_KINDS",
    "ReportError",
    "energy_provenance",
    "platform_info",
    "make_report",
    "validate_report",
    "load_report",
]

SCHEMA = "repro-bench-report/2"

#: One per harness; ``campaign`` is the merged sweep record.
KINDS = ("kernels", "precision", "scaling", "service", "power", "campaign")

PRECISIONS = ("single", "mixed", "double")

#: Where a record's energy numbers come from: hardware counters
#: (``measured``), /proc/stat utilization scaling (``estimated``), the
#: calibrated model (``modeled``), or nothing — the host exposes no
#: counters and the run did not model them (``unavailable``).
ENERGY_KINDS = ("measured", "estimated", "modeled", "unavailable")

#: The envelope fields a payload may never shadow.
ENVELOPE_FIELDS = (
    "schema",
    "kind",
    "created_unix",
    "platform",
    "backend",
    "precision",
    "energy",
)

_PLATFORM_REQUIRED = ("python", "numpy", "machine", "system")


class ReportError(ValueError):
    """A record does not satisfy the ``repro-bench-report/2`` envelope."""


def energy_provenance() -> dict:
    """The envelope ``energy`` block for this host's active provider."""
    try:
        from repro.observability.telemetry.providers import detect_provider

        provider = detect_provider()
        return {"provider": provider.name, "kind": provider.kind}
    except Exception:
        return {"provider": "none", "kind": "unavailable"}


def platform_info(**extra) -> dict:
    """The host stamp shared by every record (plus harness extras)."""
    info = {
        "python": _platform.python_version(),
        "numpy": np.__version__,
        "machine": _platform.machine(),
        "system": _platform.system(),
    }
    info.update(extra)
    return info


def make_report(
    kind: str,
    *,
    backend: dict | str | None = None,
    precision=None,
    energy: dict | None = None,
    platform: dict | None = None,
    created_unix: float | None = None,
    **payload,
) -> dict:
    """Build and validate one ``repro-bench-report/2`` record.

    ``backend`` may be a bare name (used for both requested and
    resolved) or an explicit ``{"requested": ..., "resolved": ...}``
    mapping.  ``precision`` is one mode or the list of swept modes and
    defaults to ``"double"``.  ``energy`` defaults to provenance-free
    (``provider="none", kind="unavailable"``) so harnesses without
    telemetry stay honest rather than silent.
    """
    if isinstance(backend, str):
        backend = {"requested": backend, "resolved": backend}
    record = {
        "schema": SCHEMA,
        "kind": kind,
        "created_unix": time.time() if created_unix is None else created_unix,
        "platform": platform if platform is not None else platform_info(),
        "backend": backend if backend is not None else {
            "requested": "auto",
            "resolved": "auto",
        },
        "precision": precision if precision is not None else "double",
        "energy": energy if energy is not None else {
            "provider": "none",
            "kind": "unavailable",
        },
    }
    shadowed = sorted(set(payload) & set(ENVELOPE_FIELDS))
    if shadowed:
        raise ReportError(f"payload shadows envelope fields: {shadowed}")
    record.update(payload)
    return validate_report(record)


def _check_precision(value, problems: list[str]) -> None:
    if isinstance(value, str):
        if value not in PRECISIONS:
            problems.append(f"precision {value!r} not in {PRECISIONS}")
        return
    if isinstance(value, (list, tuple)):
        if not value:
            problems.append("precision list is empty")
        for mode in value:
            if mode not in PRECISIONS:
                problems.append(f"precision {mode!r} not in {PRECISIONS}")
        return
    problems.append(f"precision must be a mode or list of modes, got {value!r}")


def validate_report(record) -> dict:
    """Validate the envelope; returns ``record`` or raises ReportError."""
    if not isinstance(record, dict):
        raise ReportError(f"record must be a dict, got {type(record).__name__}")
    problems: list[str] = []

    if record.get("schema") != SCHEMA:
        problems.append(f"schema {record.get('schema')!r} != {SCHEMA!r}")
    if record.get("kind") not in KINDS:
        problems.append(f"kind {record.get('kind')!r} not in {KINDS}")

    created = record.get("created_unix")
    if not isinstance(created, (int, float)) or created <= 0:
        problems.append(f"created_unix must be positive epoch seconds, got {created!r}")

    host = record.get("platform")
    if not isinstance(host, dict):
        problems.append("platform must be a dict")
    else:
        for field in _PLATFORM_REQUIRED:
            if not isinstance(host.get(field), str) or not host.get(field):
                problems.append(f"platform.{field} must be a non-empty string")

    backend = record.get("backend")
    if not isinstance(backend, dict):
        problems.append("backend must be a dict with requested/resolved")
    else:
        for field in ("requested", "resolved"):
            if field not in backend:
                problems.append(f"backend.{field} is missing")

    if "precision" not in record:
        problems.append("precision is missing")
    else:
        _check_precision(record["precision"], problems)

    energy = record.get("energy")
    if not isinstance(energy, dict):
        problems.append("energy must be a dict with provider/kind")
    else:
        if not isinstance(energy.get("provider"), str) or not energy.get("provider"):
            problems.append("energy.provider must be a non-empty string")
        if energy.get("kind") not in ENERGY_KINDS:
            problems.append(
                f"energy.kind {energy.get('kind')!r} not in {ENERGY_KINDS}"
            )

    if problems:
        raise ReportError("; ".join(problems))
    return record


def load_report(path: str | Path) -> dict:
    """Read and validate a record from ``path``."""
    return validate_report(json.loads(Path(path).read_text()))
