"""Async batch-simulation service.

Many :class:`JobSpec`-described runs in; each *unique* one executed
once on a bounded pool of persistent worker processes; results served
through a content-addressed cache.  See ``docs/SERVICE.md``.
"""

from repro.service.cache import ResultCache
from repro.service.runner import execute_job
from repro.service.scheduler import (
    BatchService,
    Job,
    JobFailedError,
    ServiceClosedError,
)
from repro.service.spec import JobResult, JobSpec, state_digest
from repro.service.spool import SpoolClient, SpoolServer, spool_layout

__all__ = [
    "BatchService",
    "Job",
    "JobFailedError",
    "JobResult",
    "JobSpec",
    "ResultCache",
    "ServiceClosedError",
    "SpoolClient",
    "SpoolServer",
    "execute_job",
    "spool_layout",
    "state_digest",
]
