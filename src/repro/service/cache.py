"""Content-addressed result cache: bounded LRU memory + optional disk.

The cache maps a :meth:`JobSpec.cache_key` address to the stored
:class:`~repro.service.spec.JobResult`.  Two layers:

* **memory** — an LRU dict bounded by ``max_entries``; a hit refreshes
  recency, an insert past the bound evicts the least-recently-used
  entry (counted, never silent);
* **disk** (optional) — one ``<key>.json`` file per result under
  ``directory``, written atomically (temp file + ``os.replace``) so a
  crash mid-write can never serve a truncated record.  Disk hits are
  promoted back into memory.  This layer is what lets ``python -m
  repro serve`` answer resubmissions across service restarts, and what
  the spool transport serves result files from.

All operations are thread-safe; the service's scheduler, submitter
threads and the spool server share one instance.  When a
:class:`~repro.observability.metrics.MetricsRegistry` is attached,
hits/misses/evictions/insertions are counted under ``service_cache_*``.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from pathlib import Path

from repro.service.spec import JobResult

__all__ = ["ResultCache"]


class ResultCache:
    """Bounded, content-addressed store for job results.

    Parameters
    ----------
    max_entries:
        Memory-layer bound; the oldest (least recently used) entry is
        evicted when an insert would exceed it.  Must be >= 1.
    directory:
        Optional disk layer; ``None`` keeps the cache memory-only.
    metrics:
        Optional metrics registry for hit/miss/eviction counters.
    """

    def __init__(
        self,
        max_entries: int = 1024,
        *,
        directory: str | Path | None = None,
        metrics=None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self.directory = None if directory is None else Path(directory)
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.metrics = metrics
        self._entries: OrderedDict[str, JobResult] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _gauge_size(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("service_cache_entries").set(len(self._entries))

    def path_for(self, key: str) -> Path | None:
        """Disk path of one address (None for memory-only caches)."""
        if self.directory is None:
            return None
        return self.directory / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, key: str) -> JobResult | None:
        """Look an address up (memory first, then disk); None on miss."""
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                self._count("service_cache_hits_total")
                return result
        disk = self._read_disk(key)
        with self._lock:
            if disk is not None:
                self.hits += 1
                self._count("service_cache_hits_total")
                self._insert(key, disk)
                return disk
            self.misses += 1
            self._count("service_cache_misses_total")
            return None

    def put(self, key: str, result: JobResult) -> None:
        """Store one result under its address (memory + disk)."""
        path = self.path_for(key)
        if path is not None:
            payload = json.dumps(result.to_json(), indent=2) + "\n"
            tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
            tmp.write_text(payload)
            os.replace(tmp, path)  # atomic: never a truncated record
        with self._lock:
            self._insert(key, result)
            self._count("service_cache_insertions_total")

    def _insert(self, key: str, result: JobResult) -> None:
        """Lock held: LRU insert with bound enforcement."""
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._count("service_cache_evictions_total")
        self._gauge_size()

    def _read_disk(self, key: str) -> JobResult | None:
        path = self.path_for(key)
        if path is None or not path.exists():
            return None
        try:
            return JobResult.from_json(json.loads(path.read_text()))
        except (json.JSONDecodeError, TypeError, KeyError):
            return None  # partial/corrupt file: treat as a miss

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._entries:
                return True
        path = self.path_for(key)
        return path is not None and path.exists()

    def keys(self) -> tuple[str, ...]:
        """Memory-resident addresses, LRU-oldest first."""
        with self._lock:
            return tuple(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "disk": None if self.directory is None else str(self.directory),
            }
